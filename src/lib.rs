//! Umbrella crate for the ReCon reproduction: re-exports every workspace
//! crate so examples and integration tests can use a single dependency.
//!
//! See `README.md` for a tour and `DESIGN.md` for the system inventory.

pub use recon;
pub use recon_cpu as cpu;
pub use recon_dift as dift;
pub use recon_isa as isa;
pub use recon_mem as mem;
pub use recon_secure as secure;
pub use recon_sim as sim;
pub use recon_verify as verify;
pub use recon_workloads as workloads;

//! Deadline and cancellation semantics of `run_budgeted`: fuel and
//! cycle budgets fire inside the commit loop, preserve partial
//! statistics, and never corrupt the simulator — an exhausted
//! experiment can immediately run again to completion.

use std::sync::atomic::AtomicBool;
use std::sync::Arc;

use recon_secure::SecureConfig;
use recon_sim::{Budget, DeadlineReason, Experiment, SimError};
use recon_workloads::{find, Scale, Suite};

fn bench(name: &str) -> recon_workloads::Benchmark {
    find(Suite::Spec2017, name, Scale::Quick).expect("benchmark exists")
}

#[test]
fn fuel_deadline_preserves_partial_stats() {
    let exp = Experiment::default();
    let b = bench("xalancbmk");
    match exp.try_run(&b.workload, SecureConfig::stt(), &Budget::with_fuel(1000)) {
        Err(SimError::DeadlineExceeded { partial, reason }) => {
            assert_eq!(reason, DeadlineReason::Fuel);
            assert!(!partial.completed);
            assert!(partial.cycles > 0, "simulation actually progressed");
            let committed = partial.committed();
            assert!(
                committed > 0 && committed <= 1000 + 8,
                "committed {committed}: capped at fuel (+ up to one commit width)"
            );
        }
        other => panic!("expected fuel deadline, got {other:?}"),
    }
}

#[test]
fn cycle_deadline_reports_max_cycles() {
    let exp = Experiment::default();
    let b = bench("mcf");
    let budget = Budget {
        max_cycles: Some(100),
        ..Budget::default()
    };
    match exp.try_run(&b.workload, SecureConfig::nda(), &budget) {
        Err(SimError::DeadlineExceeded { partial, reason }) => {
            assert_eq!(reason, DeadlineReason::MaxCycles);
            assert_eq!(partial.cycles, 100);
        }
        other => panic!("expected cycle deadline, got {other:?}"),
    }
}

#[test]
fn pre_cancelled_budget_returns_cancelled_with_partial() {
    let exp = Experiment::default();
    let b = bench("mcf");
    let cancel = Arc::new(AtomicBool::new(true));
    let budget = Budget {
        cancel: Some(Arc::clone(&cancel)),
        ..Budget::default()
    };
    match exp.try_run(&b.workload, SecureConfig::stt(), &budget) {
        Err(SimError::Cancelled { partial }) => {
            assert!(!partial.completed, "cancelled before completion");
        }
        other => panic!("expected cancellation, got {other:?}"),
    }
}

#[test]
fn generous_budget_matches_unbudgeted_run() {
    let exp = Experiment::default();
    let b = bench("mcf");
    let plain = exp.run(&b.workload, SecureConfig::stt_recon());
    let budgeted = exp
        .try_run(&b.workload, SecureConfig::stt_recon(), &Budget::default())
        .expect("no deadline with an unlimited budget");
    assert!(plain.completed && budgeted.completed);
    assert_eq!(plain.cycles, budgeted.cycles);
    assert_eq!(plain.committed(), budgeted.committed());
    assert_eq!(plain.guarded_loads(), budgeted.guarded_loads());
}

#[test]
fn deadline_does_not_poison_subsequent_runs() {
    let exp = Experiment::default();
    let b = bench("mcf");
    let deadline = exp.try_run(&b.workload, SecureConfig::stt(), &Budget::with_fuel(500));
    assert!(matches!(deadline, Err(SimError::DeadlineExceeded { .. })));
    // Fresh run right after: completes and matches a clean baseline.
    let again = exp
        .try_run(&b.workload, SecureConfig::stt(), &Budget::default())
        .expect("healthy run after a deadline");
    assert!(again.completed);
    assert_eq!(
        again.cycles,
        exp.run(&b.workload, SecureConfig::stt()).cycles
    );
}

#[test]
fn into_partial_recovers_stats_from_either_error() {
    let exp = Experiment::default();
    let b = bench("mcf");
    let err = exp
        .try_run(&b.workload, SecureConfig::nda(), &Budget::with_fuel(200))
        .unwrap_err();
    let partial = err.into_partial();
    assert!(partial.committed() > 0);
    assert!(!partial.completed);
}

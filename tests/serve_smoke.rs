//! End-to-end smoke test of `recon serve` over loopback: submission,
//! caching, backpressure, deadlines, metrics, and graceful shutdown —
//! the same sequence the CI `serve-smoke` job drives.

use recon_serve::{client, job, json, JobSpec, ServeConfig, Server};

fn start(workers: usize, queue_cap: usize) -> Server {
    Server::start(&ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers,
        queue_cap,
        ..ServeConfig::default()
    })
    .expect("bind loopback")
}

fn direct_payload(spec_json: &str) -> String {
    let v = json::parse(spec_json).expect("spec parses");
    let spec = JobSpec::from_json(&v).expect("spec validates");
    job::execute(&spec, None).expect("direct execution").payload
}

#[test]
fn served_results_match_direct_execution_and_cache() {
    let server = start(2, 8);
    let addr = server.addr();

    // Liveness first.
    let health = client::request(addr, "GET", "/healthz", None).unwrap();
    assert_eq!(health.status, 200);
    assert_eq!(health.body, "{\"status\":\"ok\"}");

    // A run job and a verify job, byte-compared against direct runs.
    for spec in [
        r#"{"kind":"run","suite":"spec2017","bench":"mcf","scheme":"stt+recon"}"#,
        r#"{"kind":"verify","gadget":"spectre-v1","scheme":"stt"}"#,
    ] {
        let expected = direct_payload(spec);
        let first = client::submit_job(addr, spec).unwrap();
        assert_eq!(first.status, 200, "{}", first.body);
        assert_eq!(first.body, expected, "served bytes == direct bytes");
        assert_eq!(first.header("x-recon-cache"), Some("miss"));

        // Same submission again: served from the content-addressed
        // cache, still byte-identical.
        let second = client::submit_job(addr, spec).unwrap();
        assert_eq!(second.status, 200);
        assert_eq!(second.body, expected);
        assert_eq!(second.header("x-recon-cache"), Some("hit"));
    }

    // Malformed submissions are refused before touching the queue.
    let bad = client::submit_job(addr, r#"{"kind":"run","suite":"nope"}"#).unwrap();
    assert_eq!(bad.status, 400);
    assert!(bad.body.contains("invalid_job"), "{}", bad.body);

    let resp = client::request(addr, "POST", "/shutdown", None).unwrap();
    assert_eq!(resp.status, 200);
    server.wait();
}

#[test]
fn deadline_job_answers_408_and_does_not_poison_the_pool() {
    let server = start(1, 4);
    let addr = server.addr();

    // 1000 fuel against a workload tens of thousands of instructions
    // long: the deadline must fire inside the commit loop.
    let deadline_spec =
        r#"{"kind":"run","suite":"spec2017","bench":"xalancbmk","scheme":"stt","fuel":1000}"#;
    let resp = client::submit_job(addr, deadline_spec).unwrap();
    assert_eq!(resp.status, 408, "{}", resp.body);
    let v = json::parse(&resp.body).expect("deadline body is JSON");
    assert_eq!(
        v.get("error").and_then(json::Json::as_str),
        Some("deadline_exceeded")
    );
    assert_eq!(v.get("reason").and_then(json::Json::as_str), Some("fuel"));
    let partial = v.get("partial").expect("partial stats present");
    let committed = partial
        .get("committed")
        .and_then(json::Json::as_u64)
        .unwrap();
    assert!(committed > 0, "partial stats are real");

    // The single worker survived: a healthy job still completes.
    let ok = client::submit_job(
        addr,
        r#"{"kind":"run","suite":"spec2017","bench":"mcf","scheme":"nda"}"#,
    )
    .unwrap();
    assert_eq!(ok.status, 200, "{}", ok.body);

    let resp = client::request(addr, "POST", "/shutdown", None).unwrap();
    assert_eq!(resp.status, 200);
    server.wait();
}

#[test]
fn flooded_one_slot_queue_backpressures_with_429() {
    let server = start(1, 1);
    let addr = server.addr();

    // Eight concurrent distinct submissions against one worker and one
    // queue slot: at most two can be admitted at any instant, so the
    // flood must observe 429s. Rejected clients retry until served —
    // backpressure sheds load, it does not lose requests.
    let specs: Vec<String> = ["unsafe", "nda", "nda+recon", "stt", "stt+recon"]
        .iter()
        .flat_map(|scheme| {
            ["mcf", "deepsjeng"].iter().map(move |bench| {
                format!(
                    r#"{{"kind":"run","suite":"spec2017","bench":"{bench}","scheme":"{scheme}"}}"#
                )
            })
        })
        .collect();
    let handles: Vec<_> = specs
        .iter()
        .cloned()
        .map(|spec| {
            std::thread::spawn(move || {
                let mut rejected = 0u64;
                loop {
                    let resp = client::submit_job(addr, &spec).unwrap();
                    match resp.status {
                        429 => {
                            assert_eq!(resp.header("retry-after"), Some("1"));
                            rejected += 1;
                            std::thread::sleep(std::time::Duration::from_millis(1));
                        }
                        200 => return rejected,
                        other => panic!("unexpected status {other}: {}", resp.body),
                    }
                }
            })
        })
        .collect();
    let total_rejections: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
    assert!(
        total_rejections >= 1,
        "a 10-way flood of a 1-slot queue must hit backpressure"
    );

    // The metrics endpoint agrees.
    let metrics = client::request(addr, "GET", "/metrics", None).unwrap();
    assert_eq!(metrics.status, 200);
    let counter = |name: &str| -> u64 {
        metrics
            .body
            .lines()
            .find(|l| l.starts_with(name) && l.as_bytes().get(name.len()) == Some(&b' '))
            .and_then(|l| l.split_whitespace().nth(1))
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("metric {name} missing"))
    };
    assert_eq!(counter("recon_jobs_rejected_total"), total_rejections);
    assert_eq!(counter("recon_jobs_completed_total"), specs.len() as u64);
    assert_eq!(counter("recon_jobs_failed_total"), 0);
    // The liveness watchdog is armed on every served run; no legal
    // workload deadlocks, so the stall counter exists and reads zero.
    assert_eq!(counter("recon_stalls_detected_total"), 0);
    assert_eq!(counter("recon_queue_capacity"), 1);
    assert!(metrics
        .body
        .contains("recon_job_seconds_bucket{kind=\"run\",le=\"+Inf\"}"));

    let resp = client::request(addr, "POST", "/shutdown", None).unwrap();
    assert_eq!(resp.status, 200);
    assert!(resp.body.contains("graceful"));
    server.wait();

    // After shutdown the listener is gone.
    assert!(client::request(addr, "GET", "/healthz", None).is_err());
}

//! End-to-end security regression: the full gadget × scheme verdict
//! matrix, its determinism, the already-leaked cost claim, and the
//! reveal-soundness invariant — the test-suite twin of `recon verify`.

use recon_repro::secure::SecureConfig;
use recon_repro::verify::{self, Verdict};

/// The whole matrix meets its expectations: the unsafe baseline LEAKS
/// on every transmit gadget, every secure configuration is SECURE on
/// every gadget, the already-leaked gadget is SECURE everywhere, and no
/// run raises a reveal-soundness violation.
#[test]
fn verdict_matrix_matches_the_security_claim() {
    let report = verify::run_matrix(None, None, 2);
    assert_eq!(report.cells.len(), 4 * 5);
    let unexpected = report.unexpected();
    assert!(
        unexpected.is_empty(),
        "violated expectations:\n{}",
        unexpected.join("\n")
    );
    let leaks: Vec<_> = report
        .cells
        .iter()
        .filter(|c| c.result.verdict == Verdict::Leaks)
        .map(|c| c.result.gadget)
        .collect();
    assert_eq!(
        leaks,
        ["spectre-v1", "store-bypass", "cross-core"],
        "exactly the transmit gadgets leak, and only on the baseline"
    );
    for cell in &report.cells {
        if cell.result.verdict == Verdict::Leaks {
            assert!(
                cell.result.divergence.is_some(),
                "a LEAKS verdict must carry its first divergent observation"
            );
        }
    }
}

/// The already-leaked gadget: both ReCon-stacked schemes stay SECURE
/// while doing strictly less protection work than their bases.
#[test]
fn already_leaked_word_is_cheaper_under_recon() {
    let report = verify::run_matrix(Some("already-leaked"), None, 2);
    assert!(
        report
            .cells
            .iter()
            .all(|c| c.result.verdict == Verdict::Secure),
        "already-leaked is SECURE under every scheme (it leaks in order)"
    );
    assert_eq!(report.lifts.len(), 2, "NDA and STT pairs both compared");
    for l in &report.lifts {
        assert!(
            l.pass(),
            "{} must strictly beat {}: delayed {} vs {}, tainted {} vs {}, cycles {} vs {}",
            l.with_recon.label(),
            l.base.label(),
            l.delayed_recon,
            l.delayed_base,
            l.guarded_recon,
            l.guarded_base,
            l.cycles_recon,
            l.cycles_base
        );
    }
}

/// Verdicts and trace digests are byte-identical across worker counts
/// and repeated runs.
#[test]
fn matrix_is_deterministic_across_jobs_and_runs() {
    let fingerprint = |jobs: usize| {
        verify::run_matrix(Some("spectre-v1"), None, jobs)
            .cells
            .iter()
            .map(|c| {
                (
                    c.result.gadget,
                    c.result.scheme,
                    c.result.verdict == Verdict::Leaks,
                    c.result.digest_a,
                    c.result.digest_b,
                )
            })
            .collect::<Vec<_>>()
    };
    let once = fingerprint(1);
    assert_eq!(once, fingerprint(4));
    assert_eq!(once, fingerprint(1));
}

/// A scheme filter narrows the matrix to one column.
#[test]
fn scheme_filter_selects_one_column() {
    let report = verify::run_matrix(Some("store-bypass"), Some(SecureConfig::stt_recon()), 1);
    assert_eq!(report.cells.len(), 1);
    let cell = &report.cells[0];
    assert_eq!(cell.result.scheme, SecureConfig::stt_recon());
    assert_eq!(cell.result.verdict, Verdict::Secure);
}

/// Embedded gadgets — leakage payloads spliced into corpus host
/// programs at their `;@gadget` marker — behave exactly like their
/// synthetic counterparts: LEAKS on the unsafe baseline (with a
/// concrete divergent observation), SECURE under every protected
/// scheme including both ReCon stacks.
#[test]
fn embedded_gadgets_leak_on_baseline_and_are_secure_under_recon() {
    for name in ["spectre-v1@quicksort", "store-bypass@memref"] {
        let report = verify::run_matrix(Some(name), None, 2);
        assert_eq!(report.cells.len(), 5, "{name}: one row, five schemes");
        let unexpected = report.unexpected();
        assert!(
            unexpected.is_empty(),
            "{name} violated expectations:\n{}",
            unexpected.join("\n")
        );
        let leaks: Vec<_> = report
            .cells
            .iter()
            .filter(|c| c.result.verdict == Verdict::Leaks)
            .collect();
        assert_eq!(leaks.len(), 1, "{name} leaks exactly on the baseline");
        assert_eq!(leaks[0].result.scheme, SecureConfig::unsafe_baseline());
        assert!(
            leaks[0].result.divergence.is_some(),
            "{name}: a LEAKS verdict carries its first divergent observation"
        );
    }
}

/// `recon verify --embedded` widens the unfiltered matrix by the
/// embedded rows: on the baseline column, both embedded gadgets join
/// the three synthetic transmit gadgets as LEAKS.
#[test]
fn embedded_flag_widens_the_matrix() {
    let report = recon_repro::verify::run_matrix_budgeted_with(
        None,
        Some(SecureConfig::unsafe_baseline()),
        2,
        &recon_repro::sim::Budget::default(),
        true,
    );
    assert_eq!(report.cells.len(), 6, "four synthetic + two embedded rows");
    let mut leaks: Vec<_> = report
        .cells
        .iter()
        .filter(|c| c.result.verdict == Verdict::Leaks)
        .map(|c| c.result.gadget)
        .collect();
    leaks.sort_unstable();
    assert_eq!(
        leaks,
        [
            "cross-core",
            "spectre-v1",
            "spectre-v1@quicksort",
            "store-bypass",
            "store-bypass@memref"
        ],
        "every transmit gadget, synthetic or embedded, leaks on the baseline"
    );
}

/// The reveal-soundness invariant holds on a real benchmark from each
/// suite under STT+ReCon.
#[test]
fn reveal_soundness_holds_on_benchmarks() {
    for run in verify::soundness_sweep(2) {
        assert!(
            run.violations.is_empty(),
            "{} ({}): {:?}",
            run.name,
            run.suite,
            run.violations
        );
    }
}

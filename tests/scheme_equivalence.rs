//! Property-based integration tests: security schemes are *timing*
//! mechanisms — they must never change architectural results.
//!
//! Random workload-generator instances are executed on the golden
//! functional model and on the out-of-order core under every scheme;
//! final memory and accumulator state must agree everywhere.

use proptest::prelude::*;

use recon_repro::cpu::CoreConfig;
use recon_repro::isa::{reg::names::*, DataMem, Program, SparseMem};
use recon_repro::mem::MemConfig;
use recon_repro::recon::ReconConfig;
use recon_repro::secure::SecureConfig;
use recon_repro::sim::System;
use recon_repro::workloads::gen::{branchy, btree, gadget, hash, list, stream};
use recon_repro::workloads::Workload;

const ALL_SCHEMES: [fn() -> SecureConfig; 5] = [
    SecureConfig::unsafe_baseline,
    SecureConfig::nda,
    SecureConfig::nda_recon,
    SecureConfig::stt,
    SecureConfig::stt_recon,
];

/// Runs `program` on the OoO core under `secure`; returns (R5, memory).
fn run_oo(program: &Program, secure: SecureConfig) -> (u64, SparseMem) {
    let w = Workload::single(program.clone());
    let mut sys = System::new(
        &w,
        CoreConfig::tiny(),
        MemConfig::scaled(),
        secure,
        ReconConfig::default(),
    );
    let r = sys.run(50_000_000);
    assert!(r.completed, "must finish under {secure}");
    let sum = sys.cores()[0].arch_read(R5);
    (sum, sys.data().clone())
}

fn golden(program: &Program) -> (u64, SparseMem) {
    let mut mem = SparseMem::from_image(&program.image);
    let mut state = recon_repro::isa::ArchState::at_entry(program);
    for _ in 0..50_000_000u64 {
        if state.halted {
            break;
        }
        recon_repro::isa::exec::step(program, &mut state, &mut mem).expect("golden run ok");
    }
    assert!(state.halted);
    (state.read(R5), mem)
}

fn assert_equivalent(program: &Program) -> Result<(), TestCaseError> {
    let (gold_sum, gold_mem) = golden(program);
    for mk in ALL_SCHEMES {
        let secure = mk();
        let (sum, mut mem) = run_oo(program, secure);
        prop_assert_eq!(sum, gold_sum, "accumulator differs under {}", secure);
        // Every image word must match the golden final state.
        for (addr, _) in program.image.iter() {
            prop_assert_eq!(
                mem.read(addr),
                gold_mem.peek(addr),
                "word {:#x} differs under {}",
                addr,
                secure
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    #[test]
    fn gadget_programs_are_scheme_invariant(
        seed in 0u64..1000,
        slots_pow in 4u32..7,
        stores in 0u8..3,
        indirect in 0u8..5,
        cyclic in proptest::bool::ANY,
    ) {
        let p = gadget::generate(gadget::GadgetParams {
            slots: 1 << slots_pow,
            cond_lines: 16,
            passes: 2,
            stores_per_16: stores,
            indirect_per_16: indirect,
            cyclic,
            seed,
            ..Default::default()
        });
        assert_equivalent(&p)?;
    }

    #[test]
    fn hash_programs_are_scheme_invariant(seed in 0u64..1000) {
        let p = hash::generate(hash::HashParams {
            buckets: 32,
            lookups: 96,
            keys: 64,
            cond_lines: 8,
            seed,
        });
        assert_equivalent(&p)?;
    }

    #[test]
    fn list_programs_are_scheme_invariant(seed in 0u64..1000, chains in 1u64..5) {
        let p = list::generate(list::ListParams {
            nodes: 64,
            chains,
            visits: 40,
            cond_lines: 8,
            payload_slots: 16,
            seed,
        });
        assert_equivalent(&p)?;
    }

    #[test]
    fn btree_programs_are_scheme_invariant(seed in 0u64..1000) {
        let p = btree::generate(btree::BtreeParams { height: 5, searches: 32, seed });
        assert_equivalent(&p)?;
    }

    #[test]
    fn branchy_and_stream_are_scheme_invariant(seed in 0u64..1000) {
        let b = branchy::generate(branchy::BranchyParams {
            values: 64,
            iterations: 128,
            seed,
        });
        assert_equivalent(&b)?;
        let s = stream::generate(stream::StreamParams {
            elements: 64,
            passes: 2,
            writes: true,
            stride_words: 1,
        });
        assert_equivalent(&s)?;
    }
}

//! A step-by-step reproduction of the paper's Figure 1 execution
//! overview: reveal on load-pair commit, speculative use of the revealed
//! address, conceal on store, and concealed store-to-load forwarding.

use recon_repro::mem::{MemConfig, MemorySystem};
use recon_repro::recon::{LoadPairTable, ReconConfig};

/// Steps ①–④ of Figure 1 at the metadata level: a committed load pair
/// reveals `[a]`; a later speculative load of `[a]` may dereference.
#[test]
fn steps_1_to_4_reveal_then_speculative_use() {
    let mut mem = MemorySystem::new(1, MemConfig::scaled(), ReconConfig::default());
    let mut lpt = LoadPairTable::full(64);
    let a = 0x1000u64;

    // ① LD1 [a] commits: installs its address under its dest preg p1.
    let r1 = mem.read(0, a);
    assert!(!r1.revealed, "nothing revealed yet");
    assert_eq!(lpt.commit_load(1, None, a, r1.revealed), None);

    // ② LD2 [val1] commits: the pair is detected, [a] becomes revealed.
    let revealed_addr = lpt.commit_load(2, Some(1), 0x2000, false);
    assert_eq!(revealed_addr, Some(a));
    assert!(mem.reveal(0, a));

    // ③ A (speculative) LD3 [a] now sees the word revealed…
    let r3 = mem.read(0, a);
    assert!(
        r3.revealed,
        "③ safe to pass the revealed value to a transmitter"
    );
    // …④ so its dependent LD4 may dereference without protection —
    // at the LPT level, the install is skipped for the revealed word.
    assert_eq!(lpt.commit_load(3, None, a, r3.revealed), None);
    assert_eq!(lpt.stats().installs_skipped_revealed, 1);
}

/// Steps ⑤–⑦: a store conceals `[a]`; a later committed pair reveals
/// it anew.
#[test]
fn steps_5_to_7_conceal_then_re_reveal() {
    let mut mem = MemorySystem::new(1, MemConfig::scaled(), ReconConfig::default());
    let a = 0x1000u64;
    mem.read(0, a);
    mem.reveal(0, a);
    assert!(mem.read(0, a).revealed);

    // ⑤ ST val2, [a] performs: the address is concealed again.
    mem.write(0, a);
    // ⑥ A speculative load of [a] must not be treated as safe.
    assert!(!mem.read(0, a).revealed, "⑥ new secret at [a]");

    // ⑦ A new committed dependent pair re-reveals the new value.
    assert!(mem.reveal(0, a));
    assert!(mem.read(0, a).revealed, "⑦ revealed anew");
}

/// Steps ⑧–⑩ (the SQ/SB timeline) at the pipeline level: a load that
/// receives its value by store forwarding is treated as concealed even
/// if the stale copy outside the core is still marked revealed; once
/// the store exits the SB, the outside world is concealed too.
#[test]
fn steps_8_to_10_forwarding_is_concealed() {
    use recon_repro::cpu::CoreConfig;
    use recon_repro::isa::{reg::names::*, Asm};
    use recon_repro::secure::SecureConfig;
    use recon_repro::sim::System;
    use recon_repro::workloads::Workload;

    // Reveal [a] first (committed pair), then store to [a] and load it
    // back immediately: the load forwards from the SQ/SB and must be
    // concealed (§4.4.2), so a dependent dereference is delayed.
    let mut asm = Asm::new();
    let a = 0x1000u64;
    asm.data(a, 0x2000);
    asm.data(0x2000, 0x3000);
    asm.data(0x3000, 7);
    asm.li(R1, a);
    asm.load(R2, R1, 0); // LD1
    asm.load(R3, R2, 0); // LD2: reveals [a]
    asm.li(R4, 0x2000);
    asm.store(R4, R1, 0); // ST val2, [a] (same value, still conceals)
    asm.load(R5, R1, 0); // LD5: forwarded from SQ/SB -> concealed ⑧⑨
    asm.load(R6, R5, 0); // dependent dereference
    asm.halt();
    let program = asm.assemble().unwrap();

    let mut sys = System::new(
        &Workload::single(program),
        CoreConfig::paper(),
        MemConfig::scaled(),
        SecureConfig::stt_recon(),
        ReconConfig::default(),
    );
    let r = sys.run(100_000);
    assert!(r.completed);
    let c = &r.cores[0];
    // LD5 must have been forwarded, not revealed: among committed loads,
    // at most LD... the only revealed-load commit possible is a cache
    // read of [a] — the forwarded LD5 must not count.
    assert_eq!(
        c.revealed_loads_committed, 0,
        "⑨ forwarding always supplies concealed data"
    );
    // ⑩ After the store drains, the memory side is concealed.
    assert!(
        !sys.mem().probe_revealed(0, a),
        "⑩ concealed outside the core"
    );
}

//! The parallel runner must be a pure speedup: identical results to a
//! serial run for any worker count, and no duplicated work — the unsafe
//! baseline shared by several scheme trios runs once per benchmark.

use recon_cpu::CoreConfig;
use recon_secure::SecureConfig;
use recon_sim::{run_batch, Experiment, SystemResult};
use recon_workloads::gen::btree::{self, BtreeParams};
use recon_workloads::gen::hash::{self, HashParams};
use recon_workloads::{Benchmark, Suite};

fn small_benchmarks() -> Vec<Benchmark> {
    vec![
        Benchmark::single(
            "hash-small",
            Suite::Spec2017,
            hash::generate(HashParams {
                buckets: 16,
                lookups: 128,
                keys: 32,
                cond_lines: 8,
                seed: 3,
            }),
        ),
        Benchmark::single(
            "btree-small",
            Suite::Spec2017,
            btree::generate(BtreeParams {
                height: 6,
                searches: 64,
                seed: 9,
            }),
        ),
    ]
}

fn small_experiment() -> Experiment {
    Experiment {
        core: CoreConfig::tiny(),
        max_cycles: 10_000_000,
        ..Experiment::default()
    }
}

fn assert_same_result(a: &SystemResult, b: &SystemResult, what: &str) {
    assert_eq!(a.cycles, b.cycles, "{what}: cycles diverge");
    assert_eq!(a.committed(), b.committed(), "{what}: committed diverge");
    assert_eq!(
        a.guarded_loads(),
        b.guarded_loads(),
        "{what}: guarded loads diverge"
    );
    assert_eq!(
        a.mem.reveals_set, b.mem.reveals_set,
        "{what}: reveals diverge"
    );
    assert_eq!(
        a.mem.revealed_loads, b.mem.revealed_loads,
        "{what}: revealed loads diverge"
    );
}

#[test]
fn parallel_matrix_matches_serial() {
    let exp = small_experiment();
    let benches = small_benchmarks();
    let (serial, _) = exp.run_matrices(&benches, 1);
    let (parallel, batch) = exp.run_matrices(&benches, 4);
    assert_eq!(serial.len(), parallel.len());
    for (s, p) in serial.iter().zip(&parallel) {
        assert_eq!(s.name, p.name, "benchmark order must be deterministic");
        assert_same_result(&s.baseline, &p.baseline, s.name);
        assert_same_result(&s.nda, &p.nda, s.name);
        assert_same_result(&s.nda_recon, &p.nda_recon, s.name);
        assert_same_result(&s.stt, &p.stt, s.name);
        assert_same_result(&s.stt_recon, &p.stt_recon, s.name);
    }
    // Five unique configurations per benchmark, no more.
    assert_eq!(batch.job_count(), 5 * benches.len());
    assert_eq!(batch.timings.len(), batch.job_count());
    assert!(batch.wall_seconds > 0.0);
}

#[test]
fn baseline_dedup_runs_each_config_once() {
    let exp = small_experiment();
    let benches = small_benchmarks();
    // The NDA trio and the STT trio both request the unsafe baseline:
    // six requests, five unique configurations.
    let configs = [
        SecureConfig::unsafe_baseline(),
        SecureConfig::nda(),
        SecureConfig::nda_recon(),
        SecureConfig::unsafe_baseline(),
        SecureConfig::stt(),
        SecureConfig::stt_recon(),
    ];
    let batch = run_batch(&exp, &benches, &configs, 2);
    assert_eq!(
        batch.job_count(),
        5 * benches.len(),
        "baseline must run once per benchmark"
    );
    for b in &benches {
        let hits = batch
            .timings
            .iter()
            .filter(|t| t.bench == b.name && t.config == SecureConfig::unsafe_baseline())
            .count();
        assert_eq!(hits, 1, "{}: exactly one baseline job", b.name);
    }
    // Deduped results still answer every request.
    for b in &benches {
        for c in configs {
            assert!(
                batch.get(b.name, c).is_some(),
                "{} under {c} resolvable",
                b.name
            );
        }
    }
}

#[test]
fn batch_timings_are_consistent() {
    let exp = small_experiment();
    let benches = small_benchmarks();
    let (_, batch) = exp.run_matrices(&benches, 2);
    // Serial-sum covers every job; each job took measurable (>= 0) time
    // and recorded the simulated cycle count of its run.
    assert!(batch.serial_seconds() >= 0.0);
    for t in &batch.timings {
        assert!(t.seconds >= 0.0);
        let r = batch
            .get(t.bench, t.config)
            .expect("timing entry has a result");
        assert_eq!(t.cycles, r.cycles);
    }
}

//! The paged flat store must be observationally equivalent to the
//! word-granular map it replaced: same read-back values, zero for
//! anything never written, no aliasing across pages.

use std::collections::HashMap;

use recon_isa::rng::{Rng, SplitMix64};
use recon_isa::{DataMem, SparseMem};

/// Addresses that stress the paging: dense neighbours, both sides of
/// page boundaries, same word-index on distant pages, and the top of
/// the address space.
fn interesting_addrs() -> Vec<u64> {
    let mut addrs = Vec::new();
    for base in [0u64, 0x1000, 0x3F_F000, 0xFFFF_FFFF_FFFF_F000] {
        for off in [0u64, 8, 0xFF0, 0xFF8] {
            addrs.push(base.wrapping_add(off) & !7);
        }
    }
    addrs
}

#[test]
fn random_ops_match_word_map_reference() {
    let mut paged = SparseMem::new();
    let mut reference: HashMap<u64, u64> = HashMap::new();
    let mut rng = SplitMix64::new(0xD1CE);
    let addrs = interesting_addrs();

    for step in 0..20_000u64 {
        // Mix targeted addresses with uniformly random ones.
        let addr = if rng.below(4) == 0 {
            addrs[rng.below_usize(addrs.len())]
        } else {
            rng.next_u64() & !7
        };
        if rng.below(2) == 0 {
            let value = rng.next_u64();
            paged.write(addr, value);
            reference.insert(addr, value);
        } else {
            let expect = reference.get(&addr).copied().unwrap_or(0);
            assert_eq!(paged.read(addr), expect, "step {step}: read {addr:#x}");
        }
    }
    // Full sweep: every word the reference knows about, plus the
    // targeted addresses (which may never have been written and must
    // then read zero).
    for (&addr, &value) in &reference {
        assert_eq!(paged.read(addr), value, "final sweep at {addr:#x}");
    }
    for addr in addrs {
        let expect = reference.get(&addr).copied().unwrap_or(0);
        assert_eq!(paged.read(addr), expect, "targeted sweep at {addr:#x}");
    }
}

#[test]
fn page_boundary_neighbours_are_independent() {
    let mut m = SparseMem::new();
    // Straddle the 4 KiB boundary: last word of one page, first of the
    // next. Writes to one must not leak into the other.
    m.write(0x0FF8, 0xAAAA);
    m.write(0x1000, 0xBBBB);
    m.write(0x1FF8, 0xCCCC);
    m.write(0x2000, 0xDDDD);
    assert_eq!(m.read(0x0FF8), 0xAAAA);
    assert_eq!(m.read(0x1000), 0xBBBB);
    assert_eq!(m.read(0x1FF8), 0xCCCC);
    assert_eq!(m.read(0x2000), 0xDDDD);
    assert_eq!(m.read(0x0FF0), 0, "untouched neighbour below the boundary");
    assert_eq!(m.read(0x1008), 0, "untouched neighbour above the boundary");
}

#[test]
fn sparse_reads_allocate_nothing() {
    let mut m = SparseMem::new();
    let mut rng = SplitMix64::new(7);
    for _ in 0..1_000 {
        assert_eq!(m.read(rng.next_u64() & !7), 0);
    }
    assert_eq!(
        m.resident_pages(),
        0,
        "pure readers must not allocate pages"
    );
}

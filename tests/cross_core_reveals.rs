//! Integration tests for §5.3: reveal/conceal metadata riding the
//! coherence protocol across cores.

use recon_repro::mem::{DirState, MemConfig, MemorySystem, Mesi, ServedBy};
use recon_repro::recon::ReconConfig;

fn sys(cores: usize) -> MemorySystem {
    MemorySystem::new(cores, MemConfig::scaled(), ReconConfig::default())
}

#[test]
fn reveal_travels_with_a_cache_to_cache_forward() {
    let mut m = sys(2);
    m.read(0, 0x1000);
    m.reveal(0, 0x1000);
    let r = m.read(1, 0x1000);
    assert_eq!(r.served_by, ServedBy::RemoteCache);
    assert!(r.revealed, "the mask travels with the data");
}

#[test]
fn or_merge_preserves_reveals_across_consecutive_evictions() {
    // Cores 0 and 1 reveal different words of the same line; after both
    // evict, a third core learns about *both* reveals (§5.3's OR rule).
    let mut m = sys(3);
    m.read(0, 0x0);
    m.read(1, 0x0);
    m.reveal(0, 0x0);
    m.reveal(1, 0x8);
    // Evict the line from both cores' private hierarchies (L2 pressure:
    // scaled L2 has 64 sets, same-set stride 4 KiB).
    for i in 1..=16u64 {
        m.read(0, i * 4096);
        m.read(1, i * 4096);
    }
    assert_eq!(m.l2_state(0, 0x0), None);
    assert_eq!(m.l2_state(1, 0x0), None);
    let r0 = m.read(2, 0x0);
    let r1 = m.read(2, 0x8);
    assert!(
        r0.revealed && r1.revealed,
        "directory accumulated both reveals"
    );
}

#[test]
fn writer_owns_the_mask_and_conceals_coherently() {
    // Core 0 reveals a word and the directory learns of it via core 1's
    // read. Core 0 then writes the word: its conceal must win over the
    // stale directory copy when core 1 re-reads (overwrite, not OR).
    let mut m = sys(2);
    m.read(0, 0x5008);
    m.reveal(0, 0x5008);
    assert!(m.read(1, 0x5008).revealed, "reveal propagated");
    m.write(0, 0x5008); // invalidates core 1, conceals the word
    assert_eq!(m.l1_state(1, 0x5008), None, "reader invalidated");
    assert!(!m.read(1, 0x5008).revealed, "the new value is concealed");
}

#[test]
fn invalidated_reader_loses_its_private_reveals() {
    // Footnote 1 of the paper: the invalidated reader's bit-vector is
    // lost — its locally revealed words are concealed after refetch.
    let mut m = sys(2);
    m.read(0, 0x3000);
    m.read(1, 0x3000);
    m.reveal(1, 0x3008); // core 1's private reveal, unknown to the dir
    m.write(0, 0x3000); // invalidates core 1 (mask lost)
    assert!(!m.read(1, 0x3008).revealed);
    assert!(m.stats().mask_bits_lost_inval >= 1);
}

#[test]
fn ownership_transfer_passes_the_mask_writer_to_writer() {
    let mut m = sys(2);
    m.write(0, 0x4000);
    m.reveal(0, 0x4008);
    assert_eq!(m.dir_state(0x4000), Some(DirState::Owned { owner: 0 }));
    m.write(1, 0x4000); // §5.3 case (iii): mask passes on invalidation
    assert_eq!(m.dir_state(0x4000), Some(DirState::Owned { owner: 1 }));
    assert!(m.read(1, 0x4008).revealed, "reveal arrived with ownership");
    assert!(!m.read(1, 0x4000).revealed, "the written word is concealed");
}

#[test]
fn exclusive_silently_upgrades_and_keeps_masks() {
    let mut m = sys(1);
    m.read(0, 0x2000);
    assert_eq!(m.l1_state(0, 0x2000), Some(Mesi::Exclusive));
    m.reveal(0, 0x2008);
    m.write(0, 0x2000); // silent E -> M
    assert_eq!(m.l1_state(0, 0x2000), Some(Mesi::Modified));
    assert!(m.read(0, 0x2008).revealed, "other words keep their reveals");
    assert!(!m.read(0, 0x2000).revealed, "the written word is concealed");
}

#[test]
fn llc_eviction_drops_the_directory_metadata() {
    // An in-cache directory loses reveal state when the LLC line leaves
    // the hierarchy (memory stores no masks).
    let mut m = MemorySystem::new(
        1,
        MemConfig {
            l1: recon_repro::mem::CacheGeometry::new(512, 2),
            l2: recon_repro::mem::CacheGeometry::new(1024, 2),
            llc: recon_repro::mem::CacheGeometry::new(2048, 2),
            ..MemConfig::scaled()
        },
        ReconConfig::default(),
    );
    m.read(0, 0x0);
    m.reveal(0, 0x0);
    // Stream enough lines to purge 0x0 from the 32-line LLC.
    for i in 1..=64u64 {
        m.read(0, i * 64);
    }
    assert_eq!(m.dir_state(0x0), None, "line left the hierarchy");
    assert!(
        !m.read(0, 0x0).revealed,
        "refetched from memory all-concealed"
    );
}

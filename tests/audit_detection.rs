//! Silent-corruption defense, end to end: a seeded soft-error campaign
//! must detect every unmasked fault, the auditor must never fire on a
//! healthy run under any scheme, and `BENCH_audit.json` keeps its
//! schema.

use recon_secure::SecureConfig;
use recon_serve::json;
use recon_sim::{run_campaign, Budget, CampaignConfig, Experiment, FaultSite, System};
use recon_workloads::{find, Scale, Suite};

const ALL_SCHEMES: [fn() -> SecureConfig; 5] = [
    SecureConfig::unsafe_baseline,
    SecureConfig::nda,
    SecureConfig::nda_recon,
    SecureConfig::stt,
    SecureConfig::stt_recon,
];

/// The auditor is pure observation: on healthy runs of every scheme it
/// must stay silent (zero false positives) and leave the simulated
/// result bit-identical to an unaudited run.
#[test]
fn fault_free_audited_runs_are_clean_for_all_schemes() {
    let exp = Experiment::default();
    let b = find(Suite::Spec2017, "mcf", Scale::Quick).unwrap();
    for scheme in ALL_SCHEMES {
        let scheme = scheme();
        let mut plain = System::new(&b.workload, exp.core, exp.mem, scheme, exp.recon);
        let plain_result = plain
            .run_budgeted(exp.max_cycles, &Budget::default())
            .unwrap_or_else(|e| panic!("unaudited {scheme} run failed: {e:?}"));

        let budget = Budget {
            audit_every_cycles: Some(256),
            ..Budget::default()
        };
        let mut audited = System::new(&b.workload, exp.core, exp.mem, scheme, exp.recon);
        let audited_result = audited
            .run_budgeted(exp.max_cycles, &budget)
            .unwrap_or_else(|e| panic!("audit false positive under {scheme}: {e:?}"));
        assert_eq!(
            plain_result, audited_result,
            "audit sweep perturbed the {scheme} run"
        );
    }
}

/// A small seeded campaign: every injected fault is either detected
/// (auditor, digest divergence, checkpoint rejection, stall, crash) or
/// provably masked — never silent — and fault-free reference runs never
/// trip the auditor.
#[test]
fn seeded_campaign_has_no_silent_corruption_and_no_false_positives() {
    let cfg = CampaignConfig {
        seed: 42,
        faults: 25,
        audit_every: 256,
    };
    let report = run_campaign(&cfg);

    assert_eq!(report.false_positives, 0, "auditor fired on a healthy run");
    assert_eq!(report.silent(), 0, "a fault corrupted state undetected");
    assert!(report.injected() > 0, "campaign injected nothing");
    assert!(report.detected() > 0, "campaign detected nothing");
    assert_eq!(
        report.sites.iter().map(|(s, _)| *s).collect::<Vec<_>>(),
        FaultSite::ALL,
        "per-site rows keep FaultSite::ALL order"
    );

    // Detection latency is only reported for auditor detections, and is
    // bounded by construction (a sweep runs every `audit_every` cycles,
    // plus the same window of post-completion slack).
    for (site, st) in &report.sites {
        if st.detected_audit > 0 {
            assert!(
                st.latency_max <= 2 * cfg.audit_every,
                "{}: audit latency {} beyond the cadence window",
                site.name(),
                st.latency_max
            );
        }
    }

    // The same seed reproduces the same campaign, fault for fault.
    let again = run_campaign(&cfg);
    assert_eq!(again.sites, report.sites, "campaign is not deterministic");
    assert_eq!(again.no_target, report.no_target);
}

/// `BENCH_audit.json` golden schema: exactly these top-level keys, in
/// order, with one row per fault site.
#[test]
fn bench_audit_json_schema() {
    let cfg = CampaignConfig {
        seed: 7,
        faults: 10,
        audit_every: 256,
    };
    let report = run_campaign(&cfg);
    let doc = json::parse(&report.to_json()).expect("BENCH_audit.json is valid JSON");
    assert_eq!(
        doc.keys(),
        vec![
            "schema",
            "seed",
            "audit_every",
            "faults_requested",
            "faults_injected",
            "no_target",
            "false_positives",
            "detected",
            "masked",
            "silent",
            "sites"
        ]
    );
    assert_eq!(
        doc.get("schema").and_then(json::Json::as_str),
        Some("recon-bench-audit-v1")
    );
    assert_eq!(doc.get("seed").and_then(json::Json::as_u64), Some(7));

    let json::Json::Arr(sites) = doc.get("sites").expect("sites present") else {
        panic!("sites is an array");
    };
    let names: Vec<&str> = sites
        .iter()
        .map(|s| s.get("site").and_then(json::Json::as_str).unwrap())
        .collect();
    assert_eq!(
        names,
        ["reveal-mask", "dir-state", "lpt", "regfile", "ckpt-bytes"]
    );
    for s in sites {
        assert_eq!(
            s.keys(),
            vec![
                "site",
                "injected",
                "detected_audit",
                "detected_digest",
                "detected_ckpt_reject",
                "detected_stall",
                "detected_crash",
                "masked",
                "silent",
                "latency_mean_cycles",
                "latency_max_cycles"
            ]
        );
    }
}

//! Suite-level behavioural integration tests: every benchmark stand-in
//! completes under every scheme, and the headline orderings of the
//! paper's evaluation hold.

use recon_repro::mem::MemConfig;
use recon_repro::secure::SecureConfig;
use recon_repro::sim::{Experiment, SystemResult};
use recon_repro::workloads::{parsec, spec2017, Scale};

const MATRIX: [fn() -> SecureConfig; 5] = [
    SecureConfig::unsafe_baseline,
    SecureConfig::nda,
    SecureConfig::nda_recon,
    SecureConfig::stt,
    SecureConfig::stt_recon,
];

/// Every benchmark completes and makes progress; schemes are rotated
/// across benchmarks so all five configurations are exercised without
/// running the full 100-cell cross product (see the `#[ignore]`d
/// variant below for that).
#[test]
fn every_spec2017_benchmark_completes_with_scheme_rotation() {
    let exp = Experiment::default();
    for (i, b) in spec2017(Scale::Quick).into_iter().enumerate() {
        let secure = MATRIX[i % MATRIX.len()]();
        let r = exp.run(&b.workload, secure);
        assert!(r.completed, "{} under {secure}", b.name);
        assert!(r.ipc() > 0.05, "{} under {secure}: ipc {}", b.name, r.ipc());
    }
}

/// The full benchmark × scheme cross product (~100 runs). Slow; run
/// explicitly with `cargo test -- --ignored`.
#[test]
#[ignore = "full 100-run cross product; the rotation test covers tier-1"]
fn every_spec2017_benchmark_completes_under_every_scheme() {
    let exp = Experiment::default();
    for b in spec2017(Scale::Quick) {
        for mk in MATRIX {
            let secure = mk();
            let r = exp.run(&b.workload, secure);
            assert!(r.completed, "{} under {secure}", b.name);
            assert!(r.ipc() > 0.05, "{} under {secure}: ipc {}", b.name, r.ipc());
        }
    }
}

#[test]
fn every_parsec_benchmark_completes_on_four_cores() {
    let exp = Experiment {
        mem: MemConfig::scaled_multicore(),
        ..Experiment::default()
    };
    for b in parsec(Scale::Quick) {
        let r = exp.run(&b.workload, SecureConfig::stt_recon());
        assert!(r.completed, "{}", b.name);
        assert_eq!(r.cores.len(), 4, "{}", b.name);
        assert!(r.cores.iter().all(|c| c.committed > 1000), "{}", b.name);
    }
}

/// The headline orderings, on the benchmarks the paper highlights.
#[test]
fn headline_orderings_hold() {
    let exp = Experiment::default();
    let names = ["xalancbmk", "omnetpp", "mcf", "leela"];
    let mut recovered = 0;
    for name in names {
        let b = recon_repro::workloads::find(
            recon_repro::workloads::Suite::Spec2017,
            name,
            Scale::Quick,
        )
        .unwrap();
        let base = exp.run(&b.workload, SecureConfig::unsafe_baseline());
        let stt = exp.run(&b.workload, SecureConfig::stt());
        let sttr = exp.run(&b.workload, SecureConfig::stt_recon());
        let nda = exp.run(&b.workload, SecureConfig::nda());
        let n = |r: &SystemResult| r.ipc() / base.ipc();
        // Secure schemes cost performance on the pointer-heavy set.
        assert!(
            n(&stt) < 0.99,
            "{name}: STT should degrade, got {}",
            n(&stt)
        );
        assert!(n(&nda) <= n(&stt) + 0.02, "{name}: NDA at least as strict");
        // ReCon never hurts ...
        assert!(
            n(&sttr) >= n(&stt) - 0.005,
            "{name}: ReCon must not hurt ({} vs {})",
            n(&sttr),
            n(&stt)
        );
        // ... and recovers meaningfully on most of this set.
        if n(&sttr) > n(&stt) + 0.01 {
            recovered += 1;
        }
        // Fewer tainted loads with ReCon (Figure 7).
        assert!(
            sttr.guarded_loads() <= stt.guarded_loads(),
            "{name}: ReCon should not taint more committed loads"
        );
    }
    assert!(
        recovered >= 3,
        "ReCon should visibly recover on at least 3/4, got {recovered}"
    );
}

/// Streaming benchmarks are unaffected by any scheme (paper: bwaves,
/// imagick, lbm show no degradation and no room to boost).
#[test]
fn streaming_benchmarks_are_unaffected() {
    let exp = Experiment::default();
    for name in ["bwaves", "lbm", "imagick"] {
        let b = recon_repro::workloads::find(
            recon_repro::workloads::Suite::Spec2017,
            name,
            Scale::Quick,
        )
        .unwrap();
        let base = exp.run(&b.workload, SecureConfig::unsafe_baseline());
        let stt = exp.run(&b.workload, SecureConfig::stt());
        let ratio = stt.ipc() / base.ipc();
        assert!(ratio > 0.98, "{name}: {ratio}");
    }
}

/// ReCon's reveal coverage requires the deeper cache levels for
/// large-working-set benchmarks (Figure 10's story).
#[test]
fn mcf_needs_more_than_the_l1_for_its_reveals() {
    use recon_repro::recon::{ReconConfig, ReconLevels};
    let b =
        recon_repro::workloads::find(recon_repro::workloads::Suite::Spec2017, "mcf", Scale::Quick)
            .unwrap();
    let run = |levels| {
        let exp = Experiment {
            recon: ReconConfig {
                levels,
                ..ReconConfig::default()
            },
            ..Experiment::default()
        };
        exp.run(&b.workload, SecureConfig::stt_recon())
    };
    let l1 = run(ReconLevels::L1Only);
    let all = run(ReconLevels::All);
    assert!(
        all.cores[0].revealed_loads_committed > 2 * l1.cores[0].revealed_loads_committed,
        "full coverage should preserve far more reveals: L1 {} vs all {}",
        l1.cores[0].revealed_loads_committed,
        all.cores[0].revealed_loads_committed,
    );
}

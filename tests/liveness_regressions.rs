//! Liveness regressions: the watchdog must stay silent on hard-but-
//! legal pipeline patterns (structural hazards held for many cycles)
//! under every scheme, and must fire — with named forensics — on the
//! one known deadlock, PR 8's AMO/empty-SQ issue gate, reintroduced
//! behind the `amo_empty_sq_bug` test hook.

use recon::ReconConfig;
use recon_cpu::CoreConfig;
use recon_isa::reg::names::*;
use recon_isa::{AluKind, Inst, MemImage, Program};
use recon_mem::MemConfig;
use recon_secure::SecureConfig;
use recon_sim::{Budget, SimError, System};
use recon_workloads::Workload;

const DATA_BASE: u64 = 0x2000;
const MAX_CYCLES: u64 = 2_000_000;

fn all_schemes() -> [SecureConfig; 5] {
    [
        SecureConfig::unsafe_baseline(),
        SecureConfig::nda(),
        SecureConfig::nda_recon(),
        SecureConfig::stt(),
        SecureConfig::stt_recon(),
    ]
}

fn program(code: Vec<Inst>) -> Program {
    let p = Program {
        code,
        entry: 0,
        image: MemImage::new(),
    };
    p.validate().expect("test program must be well-formed");
    p
}

fn system(p: &Program, core: CoreConfig, secure: SecureConfig) -> System {
    System::new(
        &Workload::single(p.clone()),
        core,
        MemConfig::default(),
        secure,
        ReconConfig::default(),
    )
}

/// Runs `p` with the watchdog at its default window (Budget::default
/// leaves `watchdog_cycles` unset) and asserts clean completion.
fn completes_under_all_schemes(p: &Program, label: &str) {
    for secure in all_schemes() {
        let mut sys = system(p, CoreConfig::tiny(), secure);
        let r = sys
            .run_budgeted(MAX_CYCLES, &Budget::default())
            .unwrap_or_else(|e| panic!("{label} under {secure}: {e}"));
        assert!(r.completed, "{label} under {secure} must halt");
    }
}

// ---------------------------------------------------------------------
// Near-deadlock patterns that MUST complete (watchdog default-on).
// ---------------------------------------------------------------------

/// Pattern 1: the store queue is full when its oldest entry reaches the
/// ROB head — 4x the tiny core's 8 SQ entries, back to back.
#[test]
fn sq_full_at_head_completes_under_all_schemes() {
    let mut code = vec![Inst::LoadImm {
        dst: R1,
        imm: DATA_BASE,
    }];
    for k in 0..32i64 {
        code.push(Inst::Store {
            val: R1,
            base: R1,
            offset: 8 * k,
        });
    }
    code.push(Inst::Halt);
    completes_under_all_schemes(&program(code), "sq-full burst");
}

/// Pattern 2: load-queue / miss saturation — 4x the tiny core's 8 LQ
/// entries, each load touching a distinct cache line so misses pile up.
#[test]
fn lq_miss_saturation_completes_under_all_schemes() {
    let mut code = vec![Inst::LoadImm {
        dst: R1,
        imm: DATA_BASE,
    }];
    for k in 0..32usize {
        let dst = recon_isa::ArchReg::new(2 + (k % 8));
        code.push(Inst::Load {
            dst,
            base: R1,
            offset: 64 * k as i64,
        });
    }
    code.push(Inst::Halt);
    completes_under_all_schemes(&program(code), "lq miss burst");
}

/// Pattern 3: a serializing AMO chain, each AMO with a store fetched
/// into its shadow — exactly the shape that deadlocked under the PR 8
/// gate, legal and completing on trunk.
#[test]
fn amo_chain_with_shadow_stores_completes_under_all_schemes() {
    let mut code = vec![
        Inst::LoadImm {
            dst: R1,
            imm: DATA_BASE,
        },
        Inst::AluImm {
            kind: AluKind::Add,
            dst: R3,
            a: R0,
            imm: 1,
        },
    ];
    for k in 0..16i64 {
        code.push(Inst::AmoAdd {
            dst: R2,
            base: R1,
            offset: 0,
            add: R3,
        });
        code.push(Inst::Store {
            val: R2,
            base: R1,
            offset: 8 + 8 * (k % 4),
        });
    }
    code.push(Inst::Halt);
    let p = program(code);
    completes_under_all_schemes(&p, "amo chain");

    // The chain is architecturally visible: 16 increments of +1.
    let mut sys = system(&p, CoreConfig::tiny(), SecureConfig::stt_recon());
    sys.run_budgeted(MAX_CYCLES, &Budget::default()).unwrap();
    assert_eq!(sys.data().peek(DATA_BASE), 16);
}

// ---------------------------------------------------------------------
// The reintroduced PR 8 bug: watchdog fires with named forensics.
// ---------------------------------------------------------------------

/// The minimal deadlock: a store fetched into the AMO's shadow sits in
/// the SQ, and the historical gate refuses to issue the AMO until the
/// SQ is empty — which it never will be.
fn amo_shadow_store() -> Program {
    program(vec![
        Inst::LoadImm {
            dst: R1,
            imm: DATA_BASE,
        },
        Inst::AmoAdd {
            dst: R2,
            base: R1,
            offset: 8,
            add: R1,
        },
        Inst::Store {
            val: R1,
            base: R1,
            offset: 0,
        },
        Inst::Halt,
    ])
}

#[test]
fn amo_bug_hook_stalls_within_the_window_with_forensics() {
    const WINDOW: u64 = 10_000;
    let buggy = CoreConfig {
        amo_empty_sq_bug: true,
        ..CoreConfig::tiny()
    };
    let p = amo_shadow_store();
    for secure in all_schemes() {
        let mut sys = system(&p, buggy, secure);
        let budget = Budget {
            watchdog_cycles: Some(WINDOW),
            ..Budget::default()
        };
        match sys.run_budgeted(MAX_CYCLES, &budget) {
            Err(SimError::Stalled { report, .. }) => {
                // Fires within one window of the last commit: commits
                // stop almost immediately, so well before 2*WINDOW.
                assert!(
                    report.cycle < 2 * WINDOW,
                    "under {secure}: watchdog fired late, cycle {}",
                    report.cycle
                );
                assert_eq!(report.window, WINDOW);
                let text = report.to_string();
                assert!(
                    text.contains("amoadd"),
                    "under {secure}: forensics must name the AMO at the ROB head:\n{text}"
                );
                assert!(
                    text.contains("LIVENESS STALL"),
                    "under {secure}: report header missing:\n{text}"
                );
            }
            other => panic!("under {secure}: expected a stall, got {other:?}"),
        }
    }
}

/// The same program completes everywhere once the gate is fixed — the
/// regression the hook exists to guard.
#[test]
fn amo_shadow_store_completes_on_trunk() {
    completes_under_all_schemes(&amo_shadow_store(), "amo shadow store");
}

#[test]
fn watchdog_can_be_disabled_and_deadline_fires_instead() {
    let buggy = CoreConfig {
        amo_empty_sq_bug: true,
        ..CoreConfig::tiny()
    };
    let mut sys = system(&amo_shadow_store(), buggy, SecureConfig::unsafe_baseline());
    let budget = Budget {
        watchdog_cycles: Some(0), // 0 = watchdog off
        ..Budget::default()
    };
    match sys.run_budgeted(30_000, &budget) {
        Err(SimError::DeadlineExceeded { .. }) => {}
        other => panic!("expected the cycle deadline (watchdog off), got {other:?}"),
    }
}

// ---------------------------------------------------------------------
// Fuzz acceptance: the campaign finds the injected bug and shrinks it.
// ---------------------------------------------------------------------

#[test]
fn fuzz_finds_and_shrinks_the_injected_amo_bug() {
    let dir = std::env::temp_dir().join(format!("recon-fuzz-accept-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let report = recon_fuzz::run_fuzz(&recon_fuzz::FuzzConfig {
        seed: 42,
        count: 8,
        quick: true,
        oracle: recon_fuzz::OracleConfig {
            core: CoreConfig {
                amo_empty_sq_bug: true,
                ..CoreConfig::tiny()
            },
            watchdog_cycles: 5_000,
            skip_snapshot: true,
            ..recon_fuzz::OracleConfig::default()
        },
        out_dir: Some(dir.clone()),
        ..recon_fuzz::FuzzConfig::default()
    });
    assert!(
        !report.failures.is_empty(),
        "the injected bug must surface within 8 programs"
    );
    for f in &report.failures {
        assert_eq!(f.kind, "stall");
        assert!(
            f.shrunk_len <= 12,
            "program {} shrunk to only {} instructions",
            f.index,
            f.shrunk_len
        );
        let path = f.repro_path.as_ref().expect("repro written");
        let text = std::fs::read_to_string(path).unwrap();
        let back = recon_asm::assemble(&text).expect("repro must re-assemble");
        assert_eq!(back.program.code, f.program.code);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

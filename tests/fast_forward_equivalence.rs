//! The fast paths must be invisible: pre-decoded streams, the packed
//! reveal-mask arrays, and functional fast-forward are performance
//! features, so every one of them has to produce byte-identical results
//! to the path it replaces.
//!
//! Three angles:
//!
//! 1. the pre-decoded interpreter vs the per-step accessor-decode
//!    reference, instruction for instruction, on real workloads;
//! 2. the detailed simulator (which now fetches from the pre-decoded
//!    stream and merges masks through the packed arrays) must be
//!    deterministic across repeated runs for all five schemes;
//! 3. a fast-forwarded run's detailed region vs a replica restored from
//!    a snapshot taken at the mode switch, and the functional engine's
//!    architectural state vs a detailed run frozen at the same commit
//!    count.

use recon::ReconConfig;
use recon_cpu::CoreConfig;
use recon_isa::{
    run_collect, run_decoded, ArchState, DataMem, DecodedProgram, MemEffect, SparseMem,
};
use recon_mem::MemConfig;
use recon_secure::SecureConfig;
use recon_sim::{Budget, System};
use recon_workloads::{find, Benchmark, Scale, Suite};

fn single_thread_picks() -> Vec<Benchmark> {
    [
        (Suite::Spec2017, "mcf"),
        (Suite::Spec2006, "milc"),
        (Suite::Spec2017, "xalancbmk"),
    ]
    .into_iter()
    .map(|(suite, name)| find(suite, name, Scale::Quick).expect("benchmark exists"))
    .collect()
}

fn all_schemes() -> [SecureConfig; 5] {
    [
        SecureConfig::unsafe_baseline(),
        SecureConfig::nda(),
        SecureConfig::nda_recon(),
        SecureConfig::stt(),
        SecureConfig::stt_recon(),
    ]
}

fn system_for(b: &Benchmark, scheme: SecureConfig) -> System {
    let mem = if b.workload.num_threads() > 1 {
        MemConfig::scaled_multicore()
    } else {
        MemConfig::scaled()
    };
    System::new(
        &b.workload,
        CoreConfig::paper(),
        mem,
        scheme,
        ReconConfig::default(),
    )
}

#[test]
fn decoded_interpreter_matches_per_step_decode() {
    for b in single_thread_picks() {
        let program = &b.workload.program;

        // Reference: per-step accessor decode, trace materialized.
        let (trace, ref_state) = run_collect(program, usize::MAX).expect("reference run");
        assert!(ref_state.halted, "{}: reference run halts", b.name);

        // Fast path: decode once, interpret the dense stream.
        let decoded = DecodedProgram::decode(program);
        let mut mem = SparseMem::from_image(&program.image);
        let mut st = ArchState::at_entry(program);
        let steps = run_decoded(&decoded, &mut st, &mut mem, u64::MAX).expect("decoded run");

        assert_eq!(steps, trace.len() as u64, "{}: step counts", b.name);
        assert_eq!(st, ref_state, "{}: final architectural state", b.name);

        // Every address the reference run stored to must hold the same
        // value under the fast path.
        let mut ref_mem = SparseMem::from_image(&program.image);
        for r in &trace {
            if let MemEffect::Store { addr, value } = r.mem {
                ref_mem.write(addr, value);
            }
        }
        for r in &trace {
            if let MemEffect::Store { addr, .. } = r.mem {
                assert_eq!(
                    mem.read(addr),
                    ref_mem.read(addr),
                    "{}: memory at {addr:#x}",
                    b.name
                );
            }
        }
    }
}

#[test]
fn detailed_runs_are_deterministic_for_every_scheme() {
    let mut picks = single_thread_picks();
    picks.push(find(Suite::Parsec, "canneal", Scale::Quick).expect("benchmark exists"));
    for b in &picks {
        for scheme in all_schemes() {
            let first = system_for(b, scheme).run(200_000_000);
            let second = system_for(b, scheme).run(200_000_000);
            assert!(first.completed, "{} under {scheme}: completes", b.name);
            assert_eq!(
                first, second,
                "{} under {scheme}: repeated detailed runs must be byte-identical",
                b.name
            );
        }
    }
}

#[test]
fn fast_forward_detailed_region_matches_snapshot_restore_replica() {
    let b = find(Suite::Spec2017, "mcf", Scale::Quick).expect("benchmark exists");
    const FF: u64 = 50_000;
    for scheme in all_schemes() {
        let mut warm = system_for(&b, scheme);
        let executed = warm.fast_forward(FF);
        assert_eq!(executed, FF, "warmup shorter than the program");
        let snap = warm.snapshot_bytes();
        let warm_result = warm.run(200_000_000);
        assert!(warm_result.completed, "{scheme}: warm run completes");

        let mut replica = system_for(&b, scheme);
        replica.restore_bytes(&snap).expect("snapshot restores");
        let replica_result = replica.run(200_000_000);
        assert_eq!(
            warm_result, replica_result,
            "{scheme}: detailed region after fast-forward must be \
             byte-identical to the snapshot/restore replica"
        );
    }
}

#[test]
fn fast_forward_budget_equals_explicit_fast_forward() {
    let b = find(Suite::Spec2017, "mcf", Scale::Quick).expect("benchmark exists");
    const FF: u64 = 40_000;
    for scheme in [SecureConfig::unsafe_baseline(), SecureConfig::stt_recon()] {
        let mut explicit = system_for(&b, scheme);
        explicit.fast_forward(FF);
        let explicit_result = explicit.run(200_000_000);

        let mut budgeted = system_for(&b, scheme);
        let budget = Budget {
            fast_forward: Some(FF),
            ..Budget::default()
        };
        let budgeted_result = budgeted
            .run_budgeted(200_000_000, &budget)
            .expect("budgeted run completes");
        assert_eq!(budgeted.fast_forwarded(), FF);
        assert_eq!(
            explicit_result, budgeted_result,
            "{scheme}: Budget::fast_forward is exactly System::fast_forward"
        );
    }
}

#[test]
fn functional_engine_reaches_the_detailed_architectural_state() {
    let b = find(Suite::Spec2017, "mcf", Scale::Quick).expect("benchmark exists");
    const FF: u64 = 30_000;
    let program = &b.workload.program;

    // Functional run to halt: the committed-instruction count and the
    // final data memory are the architectural ground truth.
    let decoded = DecodedProgram::decode(program);
    let mut func_mem = SparseMem::from_image(&program.image);
    let mut st = ArchState::at_entry(program);
    let total = run_decoded(&decoded, &mut st, &mut func_mem, u64::MAX).expect("functional run");
    assert!(st.halted);

    // Every address the program ever stores to (from the reference
    // interpreter's trace) — the addresses where final memory is
    // observable.
    let (trace, _) = run_collect(program, usize::MAX).expect("reference run");
    let stores: Vec<u64> = trace
        .iter()
        .filter_map(|r| match r.mem {
            MemEffect::Store { addr, .. } => Some(addr),
            _ => None,
        })
        .collect();

    for scheme in [SecureConfig::unsafe_baseline(), SecureConfig::stt_recon()] {
        // Cold detailed run: commits exactly the functional count and
        // leaves the same memory behind.
        let mut cold = system_for(&b, scheme);
        let cold_result = cold.run(200_000_000);
        assert!(cold_result.completed);
        assert_eq!(
            cold_result.committed(),
            total,
            "{scheme}: detailed and functional instruction counts"
        );

        // Warm run: the functional prefix plus the detailed tail must
        // cover the same program, and end in the same memory.
        let mut warm = system_for(&b, scheme);
        assert_eq!(warm.fast_forward(FF), FF);
        let warm_result = warm.run(200_000_000);
        assert!(warm_result.completed);
        assert_eq!(
            warm_result.committed() + FF,
            total,
            "{scheme}: warm tail picks up exactly where the warmup stopped"
        );

        for &addr in &stores {
            let expect = func_mem.peek(addr);
            assert_eq!(
                cold.data().peek(addr),
                expect,
                "{scheme}: cold-run memory at {addr:#x}"
            );
            assert_eq!(
                warm.data().peek(addr),
                expect,
                "{scheme}: warm-run memory at {addr:#x}"
            );
        }
    }
}

//! Security integration tests: the speculative-observability guarantees
//! of NDA, STT, and ReCon on Spectre-style gadgets.

use recon_repro::cpu::CoreConfig;
use recon_repro::isa::{reg::names::*, Asm, Program};
use recon_repro::mem::MemConfig;
use recon_repro::recon::ReconConfig;
use recon_repro::secure::SecureConfig;
use recon_repro::sim::System;
use recon_repro::workloads::Workload;

/// Builds the Spectre v1 gadget; returns (program, transmitter pc).
/// When `leak_first` is set, the program dereferences the secret
/// non-speculatively before the gadget runs.
fn gadget(leak_first: bool) -> (Program, usize) {
    let mut a = Asm::new();
    a.data(0x100, 0x4000); // the secret (an address-like value)
    a.data(0x4000, 1);
    a.data(0x20_0000, 1); // branch condition on a cold line
    if leak_first {
        a.li(R1, 0x100);
        a.load(R2, R1, 0);
        a.load(R3, R2, 0); // non-speculative dereference: reveals 0x100
        a.and(R9, R3, R0);
        for _ in 0..8 {
            a.addi(R9, R9, 0);
        }
    } else {
        a.li(R9, 0);
    }
    a.li(R10, 0x20_0000);
    a.add(R10, R10, R9);
    a.load(R11, R10, 0); // slow condition keeps the branch unresolved
    let body = a.new_label();
    let end = a.new_label();
    a.bne(R11, R0, body);
    a.jump(end);
    a.bind(body);
    a.addi(R1, R9, 0x100);
    a.load(R2, R1, 0); // access: loads the secret speculatively
    let transmitter = a.here();
    a.load(R3, R2, 0); // transmit: secret-dependent address
    a.bind(end);
    a.halt();
    (a.assemble().unwrap(), transmitter)
}

fn transmitter_observable(program: &Program, pc: usize, secure: SecureConfig) -> bool {
    let mut sys = System::new(
        &Workload::single(program.clone()),
        CoreConfig::paper(),
        MemConfig::scaled(),
        secure,
        ReconConfig::default(),
    );
    sys.cores_mut()[0].record_observations(true);
    let r = sys.run(1_000_000);
    assert!(r.completed);
    sys.cores_mut()[0]
        .take_observations()
        .iter()
        .any(|o| o.pc == pc && o.speculative)
}

#[test]
fn unsafe_baseline_leaks_the_secret() {
    let (p, t) = gadget(false);
    assert!(transmitter_observable(
        &p,
        t,
        SecureConfig::unsafe_baseline()
    ));
}

#[test]
fn stt_blocks_the_transmitter() {
    let (p, t) = gadget(false);
    assert!(!transmitter_observable(&p, t, SecureConfig::stt()));
}

#[test]
fn nda_blocks_the_transmitter() {
    let (p, t) = gadget(false);
    assert!(!transmitter_observable(&p, t, SecureConfig::nda()));
}

#[test]
fn recon_preserves_protection_for_unleaked_secrets() {
    // The critical security property: ReCon must not weaken the scheme
    // for values that never leaked non-speculatively.
    let (p, t) = gadget(false);
    assert!(!transmitter_observable(&p, t, SecureConfig::stt_recon()));
    assert!(!transmitter_observable(&p, t, SecureConfig::nda_recon()));
}

#[test]
fn recon_lifts_protection_only_for_public_values() {
    // Once the program itself dereferenced the value non-speculatively,
    // the speculative transmitter reveals nothing new and may execute.
    let (p, t) = gadget(true);
    assert!(transmitter_observable(&p, t, SecureConfig::stt_recon()));
    assert!(transmitter_observable(&p, t, SecureConfig::nda_recon()));
    // Plain STT/NDA still block it (they don't track public-ness).
    assert!(!transmitter_observable(&p, t, SecureConfig::stt()));
    assert!(!transmitter_observable(&p, t, SecureConfig::nda()));
}

#[test]
fn a_store_re_conceals_the_value() {
    // Reveal, then overwrite the pointer word: the new value must be
    // protected again (§4.4).
    let mut a = Asm::new();
    a.data(0x100, 0x4000);
    a.data(0x4000, 1);
    a.data(0x4800, 1);
    a.data(0x20_0000, 1);
    // Reveal 0x100.
    a.li(R1, 0x100);
    a.load(R2, R1, 0);
    a.load(R3, R2, 0);
    // Overwrite it: a NEW secret lives there now.
    a.li(R4, 0x4800);
    a.store(R4, R1, 0);
    a.and(R9, R3, R0);
    for _ in 0..8 {
        a.addi(R9, R9, 0);
    }
    // The gadget again.
    a.li(R10, 0x20_0000);
    a.add(R10, R10, R9);
    a.load(R11, R10, 0);
    let body = a.new_label();
    let end = a.new_label();
    a.bne(R11, R0, body);
    a.jump(end);
    a.bind(body);
    a.addi(R1, R9, 0x100);
    a.load(R2, R1, 0);
    let transmitter = a.here();
    a.load(R3, R2, 0);
    a.bind(end);
    a.halt();
    let p = a.assemble().unwrap();
    assert!(
        !transmitter_observable(&p, transmitter, SecureConfig::stt_recon()),
        "the overwritten word must be concealed again"
    );
}

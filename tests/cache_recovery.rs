//! Crash-safe cache persistence, end-to-end: results served before a
//! shutdown (clean here; `kill -9` is exercised by the CLI's
//! `kill_restart` test) are served as cache hits by a fresh server on
//! the same `--cache-dir`, and a torn record appended to the log — as a
//! crash mid-append would leave — is dropped at recovery, counted, and
//! never served.

use std::io::Write as _;

use recon_serve::{client, ServeConfig, Server};

const SPEC: &str = r#"{"kind":"verify","gadget":"spectre-v1","scheme":"stt+recon"}"#;

fn start(dir: &std::path::Path) -> Server {
    Server::start(&ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        queue_cap: 4,
        cache_dir: Some(dir.to_path_buf()),
        ..ServeConfig::default()
    })
    .expect("bind loopback with cache dir")
}

fn scrape(metrics: &str, name: &str) -> u64 {
    metrics
        .lines()
        .find(|l| l.starts_with(name) && l.as_bytes().get(name.len()) == Some(&b' '))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(u64::MAX)
}

#[test]
fn restart_serves_recovered_entries_and_drops_the_torn_tail() {
    let dir = std::env::temp_dir().join(format!("recon-cache-recovery-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // First life: execute once (miss), observe the digest-keyed replay
    // hit, then drain cleanly.
    let first_body;
    {
        let server = start(&dir);
        let addr = server.addr();
        let miss = client::submit_job(addr, SPEC).expect("first submission");
        assert_eq!(miss.status, 200);
        assert_eq!(miss.header("x-recon-cache"), Some("miss"));
        first_body = miss.body.clone();
        let hit = client::submit_job(addr, SPEC).expect("second submission");
        assert_eq!(hit.header("x-recon-cache"), Some("hit"));
        client::request(addr, "POST", "/shutdown", None).expect("shutdown");
        server.wait();
    }

    // Crash simulation: a torn append — a record cut off mid-payload,
    // exactly what `kill -9` between write and close can leave behind.
    let log = dir.join("cache.log");
    let snap = dir.join("cache.snap");
    assert!(
        log.exists() || snap.exists(),
        "persistence must have written something under {}",
        dir.display()
    );
    {
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .create(true)
            .open(&log)
            .expect("append to log");
        // Valid magic, a digest, a length of 64 — then only 3 payload
        // bytes instead of 64 + checksum.
        f.write_all(&0x3143_4352u32.to_le_bytes()).unwrap();
        f.write_all(&0xDEAD_BEEFu64.to_le_bytes()).unwrap();
        f.write_all(&64u32.to_le_bytes()).unwrap();
        f.write_all(b"torn").unwrap();
    }

    // Second life: the good entry is recovered and served as a hit with
    // identical bytes; the torn tail is dropped and counted.
    {
        let server = start(&dir);
        let addr = server.addr();
        let hit = client::submit_job(addr, SPEC).expect("post-restart submission");
        assert_eq!(hit.status, 200);
        assert_eq!(
            hit.header("x-recon-cache"),
            Some("hit"),
            "recovered entry must be served from the cache"
        );
        assert_eq!(hit.body, first_body, "recovered bytes must be identical");

        let metrics = client::request(addr, "GET", "/metrics", None)
            .expect("metrics")
            .body;
        assert!(
            scrape(&metrics, "recon_cache_recovered_total") >= 1,
            "{metrics}"
        );
        assert_eq!(
            scrape(&metrics, "recon_cache_dropped_records_total"),
            1,
            "exactly the torn tail is dropped: {metrics}"
        );
        client::request(addr, "POST", "/shutdown", None).expect("shutdown");
        server.wait();
    }

    // Third life: recovery compacted — reopening again drops nothing.
    {
        let server = start(&dir);
        let addr = server.addr();
        let metrics = client::request(addr, "GET", "/metrics", None)
            .expect("metrics")
            .body;
        assert_eq!(scrape(&metrics, "recon_cache_dropped_records_total"), 0);
        let hit = client::submit_job(addr, SPEC).expect("third-life submission");
        assert_eq!(hit.header("x-recon-cache"), Some("hit"));
        client::request(addr, "POST", "/shutdown", None).expect("shutdown");
        server.wait();
    }

    let _ = std::fs::remove_dir_all(&dir);
}

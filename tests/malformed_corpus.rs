//! Malformed-input corpus: the server must answer every broken request
//! with a clean `400` (or a clean close) — it may never hang, panic, or
//! take the whole service down with it.

use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::time::Duration;

use recon_serve::{client, ServeConfig, Server};

fn start() -> Server {
    Server::start(&ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        queue_cap: 4,
        // Short server-side read timeout so under-delivered bodies
        // (Content-Length larger than what was sent) fail fast.
        read_timeout: Duration::from_millis(200),
        write_timeout: Duration::from_millis(500),
        ..ServeConfig::default()
    })
    .expect("bind loopback")
}

/// Writes raw bytes, then reads whatever the server answers until it
/// closes the connection (bounded by a client-side read timeout so a
/// hung server fails the test instead of wedging it).
fn exchange(addr: std::net::SocketAddr, raw: &[u8]) -> Vec<u8> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    stream.write_all(raw).expect("write corpus bytes");
    let mut out = Vec::new();
    let _ = stream.read_to_end(&mut out);
    out
}

#[test]
fn malformed_requests_get_400_and_never_hang() {
    let server = start();
    let addr = server.addr();

    let corpus: &[(&str, &[u8])] = &[
        ("not HTTP at all", b"this is not an http request\r\n\r\n"),
        ("binary garbage", b"\x00\xff\xfe\x01\x80garbage\x00\r\n\r\n"),
        ("empty request line", b"\r\n\r\n"),
        ("method only", b"POST\r\n\r\n"),
        (
            "unparseable JSON body",
            b"POST /jobs HTTP/1.1\r\nContent-Length: 5\r\n\r\n{oops",
        ),
        (
            "valid JSON, invalid spec",
            b"POST /jobs HTTP/1.1\r\nContent-Length: 13\r\n\r\n{\"kind\":\"no\"}",
        ),
        (
            "no body on a job submission",
            b"POST /jobs HTTP/1.1\r\nContent-Length: 0\r\n\r\n",
        ),
        (
            "non-numeric content length",
            b"POST /jobs HTTP/1.1\r\nContent-Length: abc\r\n\r\n",
        ),
        (
            "oversized content length",
            b"POST /jobs HTTP/1.1\r\nContent-Length: 99999999\r\n\r\n",
        ),
        (
            "body shorter than declared",
            b"POST /jobs HTTP/1.1\r\nContent-Length: 50\r\n\r\n{\"kind\"",
        ),
        (
            "batch that is not an object",
            b"POST /jobs/batch HTTP/1.1\r\nContent-Length: 4\r\n\r\n[1,2",
        ),
        (
            "batch without a jobs array",
            b"POST /jobs/batch HTTP/1.1\r\nContent-Length: 11\r\n\r\n{\"jobs\":42}",
        ),
        (
            "invalid UTF-8 JSON body",
            b"POST /jobs HTTP/1.1\r\nContent-Length: 4\r\n\r\n\xff\xfe\x80\x81",
        ),
    ];

    for (label, raw) in corpus {
        let reply = exchange(addr, raw);
        let text = String::from_utf8_lossy(&reply);
        assert!(
            text.starts_with("HTTP/1.1 400"),
            "{label}: wanted a 400, got {text:?}"
        );
    }

    // Truncated requests where the peer gives up mid-way: the server
    // must just close its side (a 400 may or may not make it out).
    for raw in [
        &b"POST /jobs HT"[..],
        &b"POST /jobs HTTP/1.1\r\nContent-"[..],
    ] {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        stream.write_all(raw).unwrap();
        let _ = stream.shutdown(std::net::Shutdown::Write);
        let mut out = Vec::new();
        let _ = stream.read_to_end(&mut out); // must return, not hang
    }

    // After the whole corpus the service is still healthy and still
    // serves real work.
    let health = client::request(addr, "GET", "/healthz", None).expect("healthz");
    assert_eq!(health.status, 200);
    let metrics = client::request(addr, "GET", "/metrics", None).expect("metrics");
    assert_eq!(metrics.status, 200);

    let shutdown = client::request(addr, "POST", "/shutdown", None).expect("shutdown");
    assert_eq!(shutdown.status, 200);
    server.wait();
}

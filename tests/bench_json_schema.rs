//! Schema stability for the JSON reports the repo writes:
//! `BENCH_runner.json` (`BatchResults::write_json`), `BENCH_serve.json`
//! (`BenchServeReport`), and `BENCH_speed.json` (`SpeedReport`). All
//! are parsed back with the serving layer's own JSON reader, so the
//! documents stay valid JSON with a fixed field set — and the runner's
//! timings stay deterministic across worker counts.

use recon_secure::SecureConfig;
use recon_serve::{json, BenchServeReport};
use recon_sim::{run_batch, Experiment, SpeedReport};
use recon_workloads::{find, Scale, Suite};

fn tmp_path(name: &str) -> String {
    std::env::temp_dir()
        .join(format!("recon-{}-{name}", std::process::id()))
        .to_string_lossy()
        .into_owned()
}

/// `(bench, scheme, cycles)` rows — everything in a timing that must
/// not depend on the worker count.
fn timing_rows(doc: &json::Json) -> Vec<(String, String, u64)> {
    let json::Json::Arr(rows) = doc.get("job_timings").expect("job_timings present") else {
        panic!("job_timings is an array");
    };
    rows.iter()
        .map(|r| {
            (
                r.get("bench")
                    .and_then(json::Json::as_str)
                    .unwrap()
                    .to_string(),
                r.get("scheme")
                    .and_then(json::Json::as_str)
                    .unwrap()
                    .to_string(),
                r.get("cycles").and_then(json::Json::as_u64).unwrap(),
            )
        })
        .collect()
}

#[test]
fn batch_results_json_schema_and_determinism_across_jobs() {
    let exp = Experiment::default();
    let benches = vec![
        find(Suite::Spec2017, "mcf", Scale::Quick).unwrap(),
        find(Suite::Spec2017, "deepsjeng", Scale::Quick).unwrap(),
    ];
    let configs = [SecureConfig::unsafe_baseline(), SecureConfig::stt_recon()];

    let mut rows_by_jobs = Vec::new();
    for jobs in [1usize, 4] {
        let batch = run_batch(&exp, &benches, &configs, jobs);
        let path = tmp_path(&format!("runner-{jobs}.json"));
        batch.write_json(&path).expect("write BENCH_runner.json");
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();

        let doc = json::parse(&text).expect("BENCH_runner.json is valid JSON");
        // The golden schema: exactly these top-level keys, in order.
        assert_eq!(
            doc.keys(),
            vec![
                "jobs",
                "unique_jobs",
                "failed_jobs",
                "wall_seconds",
                "serial_seconds",
                "speedup",
                "job_timings"
            ]
        );
        assert_eq!(
            doc.get("jobs").and_then(json::Json::as_u64),
            Some(jobs as u64)
        );
        assert_eq!(doc.get("unique_jobs").and_then(json::Json::as_u64), Some(4));
        assert_eq!(doc.get("failed_jobs").and_then(json::Json::as_u64), Some(0));
        assert!(
            doc.get("wall_seconds")
                .and_then(json::Json::as_f64)
                .unwrap()
                >= 0.0
        );
        let rows = timing_rows(&doc);
        assert_eq!(rows.len(), 4);
        for (_, _, cycles) in &rows {
            assert!(*cycles > 0);
        }
        rows_by_jobs.push(rows);
    }
    assert_eq!(
        rows_by_jobs[0], rows_by_jobs[1],
        "timing rows (bench, scheme, cycles) are identical for --jobs 1 and --jobs 4"
    );
}

#[test]
fn bench_serve_report_golden() {
    let report = BenchServeReport {
        clients: 8,
        requests_per_client: 200,
        queue_cap: 1,
        ok: 1580,
        deadline: 20,
        backpressure_429: 431,
        mismatches: 0,
        lost: 0,
        cache_hits: 1200,
        cache_misses: 400,
        wall_seconds: 12.5,
        throughput_rps: 128.0,
        p50_ms: 40.25,
        p95_ms: 150.5,
        p99_ms: 310.125,
    };
    // Byte-for-byte golden: any schema change must update this test.
    let golden = "{\n  \"clients\": 8,\n  \"requests_per_client\": 200,\n  \"queue_cap\": 1,\n  \"ok\": 1580,\n  \"deadline\": 20,\n  \"backpressure_429\": 431,\n  \"mismatches\": 0,\n  \"lost\": 0,\n  \"cache_hits\": 1200,\n  \"cache_misses\": 400,\n  \"wall_seconds\": 12.500000,\n  \"throughput_rps\": 128.000,\n  \"p50_ms\": 40.250,\n  \"p95_ms\": 150.500,\n  \"p99_ms\": 310.125\n}\n";
    assert_eq!(report.to_json(), golden);

    // Round-trip through the parser.
    let doc = json::parse(&report.to_json()).expect("valid JSON");
    assert_eq!(doc.get("ok").and_then(json::Json::as_u64), Some(1580));
    assert_eq!(
        doc.get("p99_ms").and_then(json::Json::as_f64),
        Some(310.125)
    );

    // And through the file writer.
    let path = tmp_path("serve-golden.json");
    report.write_json(&path).expect("write BENCH_serve.json");
    let text = std::fs::read_to_string(&path).unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(text, golden);
}

#[test]
fn speed_report_json_schema_and_determinism() {
    let report = SpeedReport::measure(Suite::Spec2017, "mcf", true);

    let path = tmp_path("speed.json");
    report.write_json(&path).expect("write BENCH_speed.json");
    let text = std::fs::read_to_string(&path).unwrap();
    std::fs::remove_file(&path).ok();

    let doc = json::parse(&text).expect("BENCH_speed.json is valid JSON");
    // The golden schema: exactly these top-level keys, in order.
    assert_eq!(
        doc.keys(),
        vec![
            "scale",
            "suite",
            "bench",
            "functional_instructions",
            "functional_seconds",
            "functional_mips",
            "fast_forward",
            "functional_over_detailed",
            "end_to_end_speedup",
            "detailed_region_identical",
            "schemes",
            "audit",
            "micro"
        ]
    );
    assert_eq!(doc.get("bench").and_then(json::Json::as_str), Some("mcf"));
    assert_eq!(
        doc.get("detailed_region_identical")
            .map(|v| matches!(v, json::Json::Bool(true))),
        Some(true),
        "every scheme's detailed region must be byte-identical"
    );

    // One row per scheme, in matrix order, with the fixed row schema.
    let json::Json::Arr(rows) = doc.get("schemes").expect("schemes present") else {
        panic!("schemes is an array");
    };
    let labels: Vec<&str> = rows
        .iter()
        .map(|r| r.get("scheme").and_then(json::Json::as_str).unwrap())
        .collect();
    assert_eq!(labels, ["unsafe", "NDA", "NDA+ReCon", "STT", "STT+ReCon"]);
    for r in rows {
        assert_eq!(
            r.keys(),
            vec![
                "scheme",
                "instructions",
                "detailed_seconds",
                "detailed_mips",
                "warm_seconds",
                "speedup",
                "identical"
            ]
        );
    }

    // The audited-run row: identical simulated result, bounded host
    // overhead (the sweep is pure observation).
    let audit = doc.get("audit").expect("audit present");
    assert_eq!(
        audit.keys(),
        vec![
            "audit_every",
            "sweeps",
            "sweep_seconds",
            "run_seconds",
            "overhead_fraction",
            "identical"
        ]
    );
    assert!(
        audit
            .get("audit_every")
            .and_then(json::Json::as_u64)
            .unwrap()
            > 0
    );
    assert_eq!(
        audit
            .get("identical")
            .map(|v| matches!(v, json::Json::Bool(true))),
        Some(true),
        "the audit sweep must not perturb the simulated run"
    );

    // The three isolation microbenchmarks, each with a positive
    // throughput on both sides.
    let json::Json::Arr(micro) = doc.get("micro").expect("micro present") else {
        panic!("micro is an array");
    };
    let names: Vec<&str> = micro
        .iter()
        .map(|m| m.get("name").and_then(json::Json::as_str).unwrap())
        .collect();
    assert_eq!(names, ["decode", "mask", "mem"]);
    for m in micro {
        assert!(m.get("baseline_mops").and_then(json::Json::as_f64).unwrap() > 0.0);
        assert!(
            m.get("optimized_mops")
                .and_then(json::Json::as_f64)
                .unwrap()
                > 0.0
        );
    }

    // Everything except host timings is deterministic across runs.
    let again = SpeedReport::measure(Suite::Spec2017, "mcf", true);
    assert_eq!(
        again.functional_instructions,
        report.functional_instructions
    );
    assert_eq!(again.fast_forward, report.fast_forward);
    assert_eq!(again.schemes.len(), report.schemes.len());
    for (a, b) in again.schemes.iter().zip(&report.schemes) {
        assert_eq!(a.scheme, b.scheme);
        assert_eq!(a.instructions, b.instructions);
        assert!(a.identical && b.identical);
    }
}

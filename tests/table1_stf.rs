//! Integration test for Table 1: the four memory-dependence-prediction
//! cases of the store-to-load-forwarding example (Figure 2).

use recon_repro::secure::SecureConfig;
use recon_repro::sim::scenarios::{run_table1, table1_scenario, Observability};

#[test]
fn case1_mem_mem_recon_observes_both_stt_observes_first_only() {
    let s = table1_scenario(0x300); // no alias: both loads go to memory
    assert_eq!(
        run_table1(&s, SecureConfig::stt()),
        Observability {
            pc3: true,
            pc4: false
        },
        "STT: ld [r4] observable, ld [r5] delayed"
    );
    assert_eq!(
        run_table1(&s, SecureConfig::stt_recon()),
        Observability {
            pc3: true,
            pc4: true
        },
        "ReCon: [r4] is revealed, so ld [r5] may execute — nothing new leaks"
    );
}

#[test]
fn case2_mem_stf_forwarded_second_load_never_observable() {
    let s = table1_scenario(0x200); // store aliases PC4's target
    for secure in [SecureConfig::stt(), SecureConfig::stt_recon()] {
        assert_eq!(
            run_table1(&s, secure),
            Observability {
                pc3: true,
                pc4: false
            },
            "{secure}: the forwarded value is concealed in the SQ/SB"
        );
    }
}

#[test]
fn cases34_stf_first_load_conceals_the_chain() {
    let s = table1_scenario(0x100); // store aliases PC3's target
    for secure in [SecureConfig::stt(), SecureConfig::stt_recon()] {
        assert_eq!(
            run_table1(&s, secure),
            Observability {
                pc3: false,
                pc4: false
            },
            "{secure}: store forwarding reverts ReCon to STT behaviour"
        );
    }
}

#[test]
fn nda_matches_stt_observability_on_every_case() {
    // §4.5.2: "A similar argument holds for NDA permissive propagation."
    for (target, expect) in [
        (
            0x300u64,
            Observability {
                pc3: true,
                pc4: false,
            },
        ),
        (
            0x200,
            Observability {
                pc3: true,
                pc4: false,
            },
        ),
        (
            0x100,
            Observability {
                pc3: false,
                pc4: false,
            },
        ),
    ] {
        let s = table1_scenario(target);
        assert_eq!(
            run_table1(&s, SecureConfig::nda()),
            expect,
            "target {target:#x}"
        );
    }
}

//! The corpus suite end-to-end: every embedded real program runs in the
//! detailed simulator under every scheme, passes its own self-check,
//! and lands on its golden digest — and the result is invisible to the
//! performance machinery (worker counts, functional fast-forward,
//! checkpoint/restore).

use recon::ReconConfig;
use recon_asm::corpus::{self, DIGEST_ADDR, STATUS_ADDR, STATUS_PASS};
use recon_cpu::CoreConfig;
use recon_mem::MemConfig;
use recon_secure::SecureConfig;
use recon_sim::{Budget, Experiment, System};
use recon_workloads::{find, Benchmark, Scale, Suite};

fn corpus_benchmarks() -> Vec<Benchmark> {
    corpus::names()
        .into_iter()
        .map(|name| find(Suite::Corpus, name, Scale::Quick).expect("corpus benchmark exists"))
        .collect()
}

fn all_schemes() -> [SecureConfig; 5] {
    [
        SecureConfig::unsafe_baseline(),
        SecureConfig::nda(),
        SecureConfig::nda_recon(),
        SecureConfig::stt(),
        SecureConfig::stt_recon(),
    ]
}

fn system_for(b: &Benchmark, scheme: SecureConfig) -> System {
    System::new(
        &b.workload,
        CoreConfig::paper(),
        MemConfig::scaled(),
        scheme,
        ReconConfig::default(),
    )
}

/// Every corpus program, under every scheme, halts, writes the passing
/// status word, and computes its golden digest — the schemes change
/// timing, never answers.
#[test]
fn corpus_programs_self_check_under_every_scheme() {
    for b in corpus_benchmarks() {
        let golden = corpus::find(b.name).expect("corpus entry").golden_digest;
        for scheme in all_schemes() {
            let mut sys = system_for(&b, scheme);
            let r = sys.run(200_000_000);
            assert!(r.completed, "{} under {scheme}: completes", b.name);
            assert_eq!(
                sys.data().peek(STATUS_ADDR),
                STATUS_PASS,
                "{} under {scheme}: self-check failed (digest {:#x})",
                b.name,
                sys.data().peek(DIGEST_ADDR)
            );
            assert_eq!(
                sys.data().peek(DIGEST_ADDR),
                golden,
                "{} under {scheme}: digest drifted from golden",
                b.name
            );
        }
    }
}

/// The suite runner over the corpus is a pure speedup: serial and
/// 4-worker runs produce identical per-scheme results, and repeated
/// detailed runs are byte-identical.
#[test]
fn corpus_suite_results_are_identical_across_worker_counts() {
    let exp = Experiment::default();
    let benches = corpus_benchmarks();
    let (serial, _) = exp.run_matrices(&benches, 1);
    let (parallel, batch) = exp.run_matrices(&benches, 4);
    assert_eq!(serial.len(), parallel.len());
    for (s, p) in serial.iter().zip(&parallel) {
        assert_eq!(s.name, p.name, "benchmark order must be deterministic");
        assert_eq!(s.baseline, p.baseline, "{}: baseline diverges", s.name);
        assert_eq!(s.nda, p.nda, "{}: nda diverges", s.name);
        assert_eq!(s.nda_recon, p.nda_recon, "{}: nda+recon diverges", s.name);
        assert_eq!(s.stt, p.stt, "{}: stt diverges", s.name);
        assert_eq!(s.stt_recon, p.stt_recon, "{}: stt+recon diverges", s.name);
    }
    assert_eq!(batch.job_count(), 5 * benches.len());
}

/// Functional fast-forward on a corpus program: the warmed run still
/// self-checks with the golden digest under every scheme, and its
/// detailed region is byte-identical to a replica restored from a
/// snapshot taken at the mode switch.
#[test]
fn quicksort_fast_forward_matches_snapshot_restore_replica() {
    let b = find(Suite::Corpus, "quicksort", Scale::Quick).expect("benchmark exists");
    let golden = corpus::QUICKSORT_DIGEST;
    const FF: u64 = 5_000;
    for scheme in all_schemes() {
        let mut warm = system_for(&b, scheme);
        let executed = warm.fast_forward(FF);
        assert_eq!(executed, FF, "warmup shorter than the program");
        let snap = warm.snapshot_bytes();
        let warm_result = warm.run(200_000_000);
        assert!(warm_result.completed, "{scheme}: warm run completes");
        assert_eq!(
            warm.data().peek(STATUS_ADDR),
            STATUS_PASS,
            "{scheme}: warmed quicksort self-check"
        );
        assert_eq!(
            warm.data().peek(DIGEST_ADDR),
            golden,
            "{scheme}: warmed quicksort digest"
        );

        let mut replica = system_for(&b, scheme);
        replica.restore_bytes(&snap).expect("snapshot restores");
        let replica_result = replica.run(200_000_000);
        assert_eq!(
            warm_result, replica_result,
            "{scheme}: detailed region after fast-forward must be \
             byte-identical to the snapshot/restore replica"
        );
    }
}

/// `Budget::fast_forward` (the `--fast-forward` flag's path through the
/// suite runner) is exactly `System::fast_forward` on corpus programs,
/// and the digest is warmup-invariant.
#[test]
fn corpus_fast_forward_budget_equals_explicit_fast_forward() {
    let b = find(Suite::Corpus, "quicksort", Scale::Quick).expect("benchmark exists");
    const FF: u64 = 8_000;
    for scheme in [SecureConfig::unsafe_baseline(), SecureConfig::stt_recon()] {
        let mut explicit = system_for(&b, scheme);
        explicit.fast_forward(FF);
        let explicit_result = explicit.run(200_000_000);

        let mut budgeted = system_for(&b, scheme);
        let budget = Budget {
            fast_forward: Some(FF),
            ..Budget::default()
        };
        let budgeted_result = budgeted
            .run_budgeted(200_000_000, &budget)
            .expect("budgeted run completes");
        assert_eq!(budgeted.fast_forwarded(), FF);
        assert_eq!(
            explicit_result, budgeted_result,
            "{scheme}: Budget::fast_forward is exactly System::fast_forward"
        );
        assert_eq!(
            budgeted.data().peek(DIGEST_ADDR),
            corpus::QUICKSORT_DIGEST,
            "{scheme}: digest is warmup-invariant"
        );
    }
}

//! Leakage characterization with the Clueless-style DIFT tool (§6.2).
//!
//! Analyzes a handful of benchmark stand-ins and prints how much of
//! their address space leaks through non-speculative execution — under
//! full dynamic information-flow tracking versus the direct
//! load-pair subset that ReCon's LPT can capture (the paper's Figure 4
//! metric), plus a demonstration of why constant-time code leaks
//! nothing.
//!
//! Run with: `cargo run --release --example leakage_analysis`

use recon_dift::analyze_program;
use recon_isa::{reg::names::*, Asm};
use recon_workloads::{find, Scale, Suite};

fn main() {
    println!("per-benchmark leakage (fraction of touched address space):\n");
    println!(
        "{:<12} {:>8} {:>8} {:>10}",
        "benchmark", "DIFT", "pairs", "coverage"
    );
    for name in ["mcf", "xalancbmk", "gcc", "cactuBSSN", "lbm", "leela"] {
        let b = find(Suite::Spec2017, name, Scale::Quick).expect("benchmark exists");
        let r = analyze_program(&b.workload.program, 50_000_000).expect("terminates");
        println!(
            "{:<12} {:>7.1}% {:>7.1}% {:>9.1}%",
            name,
            r.dift_fraction() * 100.0,
            r.pair_fraction() * 100.0,
            r.coverage() * 100.0,
        );
    }

    println!();
    println!("why coverage matters: ReCon only reveals what load pairs leak.");
    println!("cactuBSSN computes addresses with ALU ops between loads, so its");
    println!("leakage is DIFT-only — and ReCon recovers little there (Fig. 9).");
    println!();

    // The §3.2 lesson: a secret-dependent lookup leaks; the constant-time
    // version of the same computation does not.
    let mut leaky = Asm::new();
    leaky.data(0x100, 3); // the secret selector
    for i in 0..8u64 {
        leaky.data(0x200 + i * 8, 100 + i); // AES_KEYS
    }
    leaky.li(R1, 0x100).load(R2, R1, 0); // selector = ...
    leaky.shli(R2, R2, 3);
    leaky.li(R3, 0x200).add(R3, R3, R2);
    leaky.load(R4, R3, 0); // key = AES_KEYS[selector]  <- leaks!
    leaky.halt();
    let leaky_report = analyze_program(&leaky.assemble().unwrap(), 1000).unwrap();

    let mut ct = Asm::new();
    ct.data(0x100, 3);
    for i in 0..8u64 {
        ct.data(0x200 + i * 8, 100 + i);
    }
    ct.li(R1, 0x100).load(R2, R1, 0); // selector
    ct.li(R5, 0).li(R6, 0).li(R7, 8);
    let top = ct.here();
    // Constant-time select: access *every* key, mask the match.
    ct.shli(R8, R6, 3);
    ct.li(R9, 0x200);
    ct.add(R9, R9, R8);
    ct.load(R10, R9, 0); // tmp = AES_KEYS[i] (index from induction!)
    ct.xor(R11, R6, R2);
    ct.alu(recon_isa::AluKind::Sltu, R11, R0, R11); // 1 if i != selector
    ct.li(R12, 1);
    ct.sub(R11, R12, R11); // 1 if i == selector
    ct.mul(R11, R11, R10);
    ct.or(R5, R5, R11); // key |= mask & tmp
    ct.addi(R6, R6, 1);
    ct.bltu_to(R6, R7, top);
    ct.halt();
    let ct_report = analyze_program(&ct.assemble().unwrap(), 10_000).unwrap();

    println!("secret-dependent key lookup (insecure, §3.2):");
    println!(
        "  leaked words: {} (the selector's address is a leakage point: {})",
        leaky_report.dift_leaked,
        if leaky_report.dift_leaked > 0 {
            "yes"
        } else {
            "no"
        },
    );
    println!("constant-time key selection (recommended):");
    println!(
        "  leaked words: {} — the selector never becomes an address, so the",
        ct_report.dift_leaked
    );
    println!("  ReCon threat model never declassifies it.");
}

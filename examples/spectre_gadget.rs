//! Security demonstration: what an attacker can and cannot observe.
//!
//! Reconstructs the paper's running example (§1): a secret sits at an
//! address the program only accesses speculatively. Under the unsafe
//! baseline the dependent "transmitter" load executes speculatively and
//! touches a secret-dependent cache line (observable!). Under STT it is
//! delayed. Under STT+ReCon it is *still* delayed — unless the value
//! previously leaked through non-speculative execution, in which case
//! nothing new can leak (the SPT security definition).
//!
//! Run with: `cargo run --release --example spectre_gadget`

use recon_isa::{reg::names::*, Asm, Program};
use recon_secure::SecureConfig;
use recon_sim::scenarios::{run_table1, table1_scenario};
use recon_sim::System;
use recon_workloads::Workload;

/// Builds the classic Spectre v1 shape with a *never-leaked* secret:
/// `if (x < size) { y = a[x]; z = b[y]; }` where the in-bounds check
/// mispredicts and `a[x]` reads the secret.
fn build_gadget(reveal_first: bool) -> (Program, usize) {
    let mut a = Asm::new();
    a.data(0x100, 0xDEAD_BEE8); // THE SECRET (a plausible address value)
    a.data(0x200, 0); // `size` = 0: the in-bounds check always fails
    a.data(0xDEAD_BEE8, 1); // the probe array line the secret selects
    if reveal_first {
        // The program itself dereferences the secret non-speculatively
        // first (e.g. sloppy non-constant-time code): per the threat
        // model the value is now public.
        a.li(R1, 0x100);
        a.load(R2, R1, 0);
        a.load(R3, R2, 0); // pair: reveals 0x100
        a.and(R9, R3, R0); // serialize the gadget behind the reveal
        for _ in 0..8 {
            a.addi(R9, R9, 0);
        }
    } else {
        a.li(R9, 0);
    }
    // size check: load size (cold line -> slow), branch, then the gadget.
    a.li(R10, 0x20_0000);
    a.data(0x20_0000, 1); // "x < size" is (spuriously) true
    a.add(R10, R10, R9);
    a.load(R11, R10, 0);
    let body = a.new_label();
    let end = a.new_label();
    a.bne(R11, R0, body);
    a.jump(end);
    a.bind(body);
    a.addi(R1, R9, 0x100);
    a.load(R2, R1, 0); // y = a[x]: loads the secret
    let transmitter = a.here();
    a.load(R3, R2, 0); // z = b[y]: the transmitter
    a.bind(end);
    a.halt();
    (a.assemble().expect("gadget assembles"), transmitter)
}

fn observe(program: &Program, transmitter: usize, secure: SecureConfig) -> bool {
    let mut sys = System::new(
        &Workload::single(program.clone()),
        recon_cpu::CoreConfig::paper(),
        recon_mem::MemConfig::scaled(),
        secure,
        recon::ReconConfig::default(),
    );
    sys.cores_mut()[0].record_observations(true);
    let r = sys.run(1_000_000);
    assert!(r.completed);
    sys.cores_mut()[0]
        .take_observations()
        .iter()
        .any(|o| o.pc == transmitter && o.speculative)
}

fn main() {
    println!("Spectre gadget: can the transmitter leak the secret?\n");

    let (never_leaked, t1) = build_gadget(false);
    let (already_public, t2) = build_gadget(true);

    println!(
        "{:<42} {:>8} {:>8} {:>11}",
        "scenario", "unsafe", "STT", "STT+ReCon"
    );
    let row = |name: &str, p: &Program, t: usize| {
        let show = |b: bool| if b { "LEAKS" } else { "safe" };
        println!(
            "{:<42} {:>8} {:>8} {:>11}",
            name,
            show(observe(p, t, SecureConfig::unsafe_baseline())),
            show(observe(p, t, SecureConfig::stt())),
            show(observe(p, t, SecureConfig::stt_recon())),
        );
    };
    row("secret never leaked non-speculatively", &never_leaked, t1);
    row(
        "secret already public (prior dereference)",
        &already_public,
        t2,
    );

    println!();
    println!("* Row 1: ReCon preserves STT's guarantee — a value that never");
    println!("  leaked non-speculatively stays protected under speculation.");
    println!("* Row 2: the program already exposed the value through its own");
    println!("  non-speculative pointer dereference, so the \"leak\" transmits");
    println!("  nothing an attacker could not already observe (§3.2).");
    println!();

    // Bonus: the Table 1 store-forwarding cases, programmatically.
    println!("Store-to-load forwarding (Table 1) sanity:");
    let s = table1_scenario(0x100);
    let o = run_table1(&s, SecureConfig::stt_recon());
    println!(
        "  forwarded (concealed) data lifts nothing: PC3 observable = {}, PC4 observable = {}",
        o.pc3, o.pc4
    );
}

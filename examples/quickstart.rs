//! Quickstart: the ReCon mechanism end to end, in one file.
//!
//! Builds a Spectre-style gadget (a bounds check gating a pointer
//! dereference), runs it on the out-of-order core under the unsafe
//! baseline, STT, and STT+ReCon, and prints what each configuration
//! costs — demonstrating that the defense delays the dependent load and
//! that ReCon lifts the delay once the pointer has leaked
//! non-speculatively.
//!
//! Run with: `cargo run --release --example quickstart`

use recon_isa::{reg::names::*, Asm};
use recon_secure::SecureConfig;
use recon_sim::Experiment;
use recon_workloads::Workload;

fn main() {
    // A toy victim: repeatedly executes
    //     if (cond[i]) { p = table[i]; v = *p; sum += v; }
    // where `cond[i]` misses the cache (so the branch stays unresolved
    // while the dereference chain wants to execute speculatively).
    let slots: u64 = 64;
    let passes: u64 = 8;
    let cond_lines: u64 = 8192; // streams past every cache level
    let mut a = Asm::new();
    for i in 0..cond_lines {
        a.data(0x10_0000 + i * 64, 1); // conditions: one per line
    }
    for i in 0..slots {
        a.data(0x20_0000 + i * 8, 0x30_0000 + ((i * 17) % slots) * 8);
        a.data(0x30_0000 + i * 8, i + 1);
    }
    a.li(R8, 0).li(R9, passes).li(R5, 0);
    a.li(R12, 0x10_0000).li(R13, 0); // streaming condition cursor
    let outer = a.here();
    a.li(R11, 0x20_0000).li(R6, 0).li(R7, slots);
    let top = a.here();
    a.add(R10, R12, R13);
    a.load(R2, R10, 0); // the slow bounds check (always a fresh line)
    let skip = a.new_label();
    a.beq(R2, R0, skip);
    a.load(R3, R11, 0); // LD1: load the pointer
    a.load(R4, R3, 0); // LD2: dereference it (a ReCon load pair)
    a.add(R5, R5, R4);
    a.bind(skip);
    a.addi(R13, R13, 64).andi(R13, R13, cond_lines * 64 - 1);
    a.addi(R11, R11, 8).addi(R6, R6, 1);
    a.bltu_to(R6, R7, top);
    a.addi(R8, R8, 1);
    a.bltu_to(R8, R9, outer);
    a.halt();
    let workload = Workload::single(a.assemble().expect("valid program"));

    let exp = Experiment::default();
    println!("running the gadget under three configurations...\n");
    let base = exp.run(&workload, SecureConfig::unsafe_baseline());
    let stt = exp.run(&workload, SecureConfig::stt());
    let sttr = exp.run(&workload, SecureConfig::stt_recon());

    println!(
        "{:<14} {:>9} {:>7} {:>15} {:>15}",
        "config", "cycles", "IPC", "tainted loads", "revealed loads"
    );
    for (name, r) in [("unsafe", &base), ("STT", &stt), ("STT+ReCon", &sttr)] {
        println!(
            "{:<14} {:>9} {:>7.3} {:>15} {:>15}",
            name,
            r.cycles,
            r.ipc(),
            r.guarded_loads(),
            r.cores[0].revealed_loads_committed,
        );
    }
    println!();
    println!(
        "STT overhead: {:.1}%  ->  STT+ReCon overhead: {:.1}%",
        (stt.cycles as f64 / base.cycles as f64 - 1.0) * 100.0,
        (sttr.cycles as f64 / base.cycles as f64 - 1.0) * 100.0,
    );
    println!();
    println!("What happened: the first pass dereferences each pointer");
    println!("non-speculatively, so ReCon's load-pair table reveals the pointer");
    println!(
        "words through the cache hierarchy ({} reveal requests).",
        sttr.mem.reveals_set
    );
    println!("On later passes the loads hit revealed words, are not tainted,");
    println!("and the dependent dereferences issue without waiting for the");
    println!("bounds check to resolve — recovering the lost memory-level");
    println!("parallelism exactly as in the paper's Figure 6.");
}

//! Multicore reveal sharing through the coherence protocol (§5.3).
//!
//! Four threads chase the same shared pointer table. With ReCon, the
//! reveal bit-vectors ride the MESI transactions: a pointer revealed by
//! one core reaches the others through directory write-backs and
//! cache-to-cache forwards, so every core lifts its defenses without
//! re-learning — the effect behind the paper's PARSEC results
//! (Figure 8).
//!
//! Run with: `cargo run --release --example multicore_sharing`

use recon::ReconConfig;
use recon_cpu::CoreConfig;
use recon_mem::MemConfig;
use recon_secure::SecureConfig;
use recon_sim::System;
use recon_workloads::gen::parallel::{generate, ParKind, ParallelParams};

fn main() {
    let workload = generate(ParallelParams {
        kind: ParKind::SharedChase,
        slots: 512,
        cond_lines: 2048,
        passes: 3,
        seed: 7,
    });
    println!("4 threads, shared 512-entry pointer table, 3 passes each\n");

    let mut rows = Vec::new();
    for secure in [
        SecureConfig::unsafe_baseline(),
        SecureConfig::stt(),
        SecureConfig::stt_recon(),
    ] {
        let mut sys = System::new(
            &workload,
            CoreConfig::paper(),
            MemConfig::scaled_multicore(),
            secure,
            ReconConfig::default(),
        );
        let r = sys.run(50_000_000);
        assert!(r.completed, "workload finishes");
        rows.push((secure.label(), r));
    }

    let base_cycles = rows[0].1.cycles;
    println!(
        "{:<12} {:>9} {:>10} {:>13} {:>14} {:>14}",
        "config", "cycles", "norm time", "reveals set", "c2c forwards", "revealed loads"
    );
    for (name, r) in &rows {
        let revealed: u64 = r.cores.iter().map(|c| c.revealed_loads_committed).sum();
        println!(
            "{:<12} {:>9} {:>10.3} {:>13} {:>14} {:>14}",
            name,
            r.cycles,
            r.cycles as f64 / base_cycles as f64,
            r.mem.reveals_set,
            r.mem.remote_forwards,
            revealed,
        );
    }

    let recon_run = &rows[2].1;
    let consumers = recon_run
        .cores
        .iter()
        .filter(|c| c.revealed_loads_committed > 0)
        .count();
    println!();
    println!(
        "{consumers}/4 cores consumed revealed words; reveals propagate between \
         cores via directory OR-merges on eviction and travel with \
         cache-to-cache forwards — no extra protocol messages."
    );
}

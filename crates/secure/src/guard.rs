//! The guard table: per-physical-register speculation guards.
//!
//! A *guard* on a physical register is the dynamic sequence number of the
//! **youngest speculative load** whose value the register (transitively)
//! derives from — STT's *youngest root of taint* (YRoT). For NDA the
//! guard on a load's destination is the load's own sequence number and
//! never propagates.
//!
//! A guard is *active* while its root load is still speculative, i.e.
//! while an unresolved speculation shadow older than the root exists.
//! Because shadows resolve in program order, activity reduces to a single
//! comparison against the *shadow frontier* (the sequence number of the
//! oldest unresolved shadow-casting instruction):
//!
//! > guard `g` is active  ⇔  `frontier < g`
//!
//! (if the oldest unresolved shadow is older than the root load, the
//! root — and everything derived from it — is still speculative).
//! No explicit untaint broadcast is needed: when the frontier advances
//! past `g`, every register guarded by `g` becomes free simultaneously,
//! exactly like STT's untaint broadcast.

use recon_isa::snap::{SnapError, SnapReader, SnapWriter};

/// Sequence number of a dynamic instruction (monotonic per core).
pub type Seq = u64;

/// Per-physical-register guard state for one core.
///
/// ```
/// use recon_secure::GuardTable;
///
/// let mut g = GuardTable::new(8);
/// g.set(3, 100);                    // p3 rooted at speculative load #100
/// assert!(g.is_active(3, 50));      // frontier 50 < 100: still tainted
/// assert!(!g.is_active(3, 100));    // frontier reached the root: free
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct GuardTable {
    guards: Vec<Option<Seq>>,
}

impl GuardTable {
    /// Creates a table for `num_pregs` physical registers, all unguarded.
    #[must_use]
    pub fn new(num_pregs: usize) -> Self {
        GuardTable {
            guards: vec![None; num_pregs],
        }
    }

    /// Number of registers tracked.
    #[must_use]
    pub fn len(&self) -> usize {
        self.guards.len()
    }

    /// Whether the table tracks no registers.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.guards.is_empty()
    }

    /// The raw guard on `preg`, if any.
    #[must_use]
    pub fn get(&self, preg: usize) -> Option<Seq> {
        self.guards[preg]
    }

    /// Sets the guard of `preg` to root sequence `root`.
    pub fn set(&mut self, preg: usize, root: Seq) {
        self.guards[preg] = Some(root);
    }

    /// Clears the guard of `preg` (value is unconditionally safe).
    pub fn clear(&mut self, preg: usize) {
        self.guards[preg] = None;
    }

    /// Whether the guard on `preg` is *active* given the current shadow
    /// frontier: active ⇔ an unresolved shadow older than the root
    /// exists ⇔ `frontier < root`.
    ///
    /// A `frontier` of [`Seq::MAX`] means "no unresolved shadows".
    #[must_use]
    pub fn is_active(&self, preg: usize, frontier: Seq) -> bool {
        matches!(self.guards[preg], Some(root) if frontier < root)
    }

    /// STT taint propagation: computes the guard for a destination whose
    /// sources carry the given guards, with `own_root` set when the
    /// producing instruction is itself a speculative (unrevealed) load.
    /// The result is the *youngest* root among all contributors, but only
    /// counting guards that are still active at the given frontier
    /// (inactive guards have already been implicitly untainted).
    #[must_use]
    pub fn propagate(
        &self,
        srcs: impl IntoIterator<Item = usize>,
        own_root: Option<Seq>,
        frontier: Seq,
    ) -> Option<Seq> {
        let from_srcs = srcs
            .into_iter()
            .filter_map(|p| self.guards[p])
            .filter(|&root| frontier < root)
            .max();
        match (from_srcs, own_root) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        }
    }

    /// Iterates `(preg, root)` over every guarded register, in index
    /// order, regardless of activity (the audit sweep needs stale guards
    /// too).
    pub fn iter(&self) -> impl Iterator<Item = (usize, Seq)> + '_ {
        self.guards
            .iter()
            .enumerate()
            .filter_map(|(p, g)| g.map(|root| (p, root)))
    }

    /// Clears every guard (squash recovery resets taint conservatively;
    /// squashed state is re-derived as instructions re-execute).
    pub fn clear_all(&mut self) {
        self.guards.iter_mut().for_each(|g| *g = None);
    }

    /// Number of currently guarded registers, given the frontier (for
    /// stats).
    #[must_use]
    pub fn active_count(&self, frontier: Seq) -> usize {
        self.guards
            .iter()
            .flatten()
            .filter(|&&root| frontier < root)
            .count()
    }

    /// Serializes every guard slot in index order. Stale (inactive)
    /// guards are serialized verbatim: they are part of the
    /// deterministic state an uninterrupted run would also carry.
    pub fn save_snap(&self, w: &mut SnapWriter) {
        w.tag(b"GRDT");
        w.u64(self.guards.len() as u64);
        for g in &self.guards {
            match g {
                Some(root) => {
                    w.bool(true);
                    w.u64(*root);
                }
                None => w.bool(false),
            }
        }
    }

    /// Reconstructs a table from [`GuardTable::save_snap`] bytes.
    ///
    /// # Errors
    ///
    /// Propagates decode errors from a truncated or corrupt stream.
    pub fn load_snap(r: &mut SnapReader<'_>) -> Result<GuardTable, SnapError> {
        r.expect_tag(b"GRDT")?;
        let count = r.u64()? as usize;
        let mut guards = Vec::with_capacity(count.min(4096));
        for _ in 0..count {
            guards.push(if r.bool()? { Some(r.u64()?) } else { None });
        }
        Ok(GuardTable { guards })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_table_unguarded() {
        let g = GuardTable::new(4);
        for p in 0..4 {
            assert!(g.get(p).is_none());
            assert!(!g.is_active(p, 0));
        }
    }

    #[test]
    fn activity_is_frontier_comparison() {
        let mut g = GuardTable::new(2);
        g.set(0, 10);
        assert!(g.is_active(0, 0), "shadow older than root");
        assert!(g.is_active(0, 9));
        assert!(!g.is_active(0, 10), "frontier at the root: root is safe");
        assert!(!g.is_active(0, Seq::MAX), "no shadows at all");
    }

    #[test]
    fn clear_removes_guard() {
        let mut g = GuardTable::new(2);
        g.set(1, 5);
        g.clear(1);
        assert!(!g.is_active(1, 0));
    }

    #[test]
    fn propagate_takes_youngest_active_root() {
        let mut g = GuardTable::new(4);
        g.set(0, 10);
        g.set(1, 20);
        // Both active at frontier 5: YRoT = 20.
        assert_eq!(g.propagate([0, 1], None, 5), Some(20));
        // Frontier 15 deactivates root 10: only 20 remains.
        assert_eq!(g.propagate([0, 1], None, 15), Some(20));
        // Frontier 25 deactivates everything.
        assert_eq!(g.propagate([0, 1], None, 25), None);
    }

    #[test]
    fn propagate_includes_own_root() {
        let mut g = GuardTable::new(2);
        g.set(0, 10);
        assert_eq!(g.propagate([0], Some(30), 0), Some(30), "own root youngest");
        assert_eq!(
            g.propagate([0], Some(5), 0),
            Some(10),
            "source root youngest"
        );
        assert_eq!(g.propagate([], Some(7), 0), Some(7));
        assert_eq!(g.propagate([], None, 0), None);
    }

    #[test]
    fn untaint_is_implicit_and_simultaneous() {
        // Registers guarded by roots 10 and 12; when the frontier passes
        // 12 both become free at once (the STT untaint broadcast).
        let mut g = GuardTable::new(3);
        g.set(0, 10);
        g.set(1, 12);
        assert_eq!(g.active_count(5), 2);
        assert_eq!(g.active_count(11), 1);
        assert_eq!(g.active_count(12), 0);
    }

    #[test]
    fn clear_all_resets() {
        let mut g = GuardTable::new(3);
        g.set(0, 1);
        g.set(2, 2);
        g.clear_all();
        assert_eq!(g.active_count(0), 0);
    }
}

//! Secure speculation schemes: the unsafe baseline, NDA permissive
//! propagation, and STT.
//!
//! The three schemes are expressed as *policies* over a single guard
//! mechanism (see [`crate::guard`]):
//!
//! * **Baseline** — no guards; every value broadcasts and every
//!   instruction executes as soon as its operands are ready.
//! * **NDA (permissive propagation)** — a speculative load's result is
//!   guarded by the load's own sequence number: dependents cannot *read*
//!   the value until the load has left every speculation shadow. Nothing
//!   propagates, no transmitter analysis is needed (§2.1).
//! * **STT** — a speculative load taints its destination; taint
//!   propagates through dependents as the *youngest root of taint*
//!   (YRoT); transmitters (memory instructions and branch resolution)
//!   cannot *execute* while an operand's YRoT is still speculative
//!   (§2.2).
//!
//! **ReCon** composes with either: a load whose word is *revealed* never
//! receives a guard (§5.4), restoring the memory-level parallelism the
//! scheme would otherwise sacrifice.

use core::fmt;

/// The secure speculation scheme a core runs.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum SchemeKind {
    /// Unsafe out-of-order baseline (no speculation defense).
    #[default]
    Unsafe,
    /// Non-speculative Data Access, permissive-propagation variant.
    Nda,
    /// Speculative Taint Tracking.
    Stt,
}

impl SchemeKind {
    /// All schemes, baseline first.
    pub const ALL: [SchemeKind; 3] = [SchemeKind::Unsafe, SchemeKind::Nda, SchemeKind::Stt];

    /// Whether a speculative load's *value* is withheld from dependents
    /// until the load is safe (NDA's defense).
    #[must_use]
    pub fn delays_value_broadcast(self) -> bool {
        matches!(self, SchemeKind::Nda)
    }

    /// Whether taint propagates through dependent instructions (STT's
    /// DIFT mechanism).
    #[must_use]
    pub fn propagates_taint(self) -> bool {
        matches!(self, SchemeKind::Stt)
    }

    /// Whether transmitters with guarded operands are blocked from
    /// executing (STT's defense; NDA needs none because guarded values
    /// are never readable in the first place).
    #[must_use]
    pub fn blocks_transmitters(self) -> bool {
        matches!(self, SchemeKind::Stt)
    }

    /// Whether the scheme applies any defense at all.
    #[must_use]
    pub fn is_secure(self) -> bool {
        !matches!(self, SchemeKind::Unsafe)
    }
}

impl fmt::Display for SchemeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SchemeKind::Unsafe => "unsafe",
            SchemeKind::Nda => "NDA",
            SchemeKind::Stt => "STT",
        };
        f.write_str(s)
    }
}

/// A scheme plus whether the ReCon optimization is stacked on top —
/// the six configurations of the paper's evaluation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct SecureConfig {
    /// The underlying secure speculation scheme.
    pub kind: SchemeKind,
    /// Whether ReCon reveals lift the scheme's defenses.
    pub recon: bool,
}

impl SecureConfig {
    /// The unsafe baseline.
    #[must_use]
    pub fn unsafe_baseline() -> Self {
        SecureConfig {
            kind: SchemeKind::Unsafe,
            recon: false,
        }
    }

    /// NDA without ReCon.
    #[must_use]
    pub fn nda() -> Self {
        SecureConfig {
            kind: SchemeKind::Nda,
            recon: false,
        }
    }

    /// NDA with ReCon.
    #[must_use]
    pub fn nda_recon() -> Self {
        SecureConfig {
            kind: SchemeKind::Nda,
            recon: true,
        }
    }

    /// STT without ReCon.
    #[must_use]
    pub fn stt() -> Self {
        SecureConfig {
            kind: SchemeKind::Stt,
            recon: false,
        }
    }

    /// STT with ReCon.
    #[must_use]
    pub fn stt_recon() -> Self {
        SecureConfig {
            kind: SchemeKind::Stt,
            recon: true,
        }
    }

    /// Every accepted spelling for [`SecureConfig::parse`], for error
    /// messages.
    pub const PARSE_NAMES: &'static str = "unsafe|nda|nda+recon|stt|stt+recon";

    /// Parses a scheme name as spelled on the CLI and in `recon serve`
    /// job submissions (`unsafe`/`baseline`, `nda`, `nda+recon` or
    /// `nda-recon`, `stt`, `stt+recon` or `stt-recon`; case-insensitive).
    #[must_use]
    pub fn parse(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "unsafe" | "baseline" => Some(SecureConfig::unsafe_baseline()),
            "nda" => Some(SecureConfig::nda()),
            "nda+recon" | "nda-recon" => Some(SecureConfig::nda_recon()),
            "stt" => Some(SecureConfig::stt()),
            "stt+recon" | "stt-recon" => Some(SecureConfig::stt_recon()),
            _ => None,
        }
    }

    /// A short label like `"STT+ReCon"` for reports.
    #[must_use]
    pub fn label(&self) -> String {
        if self.recon {
            format!("{}+ReCon", self.kind)
        } else {
            self.kind.to_string()
        }
    }
}

impl fmt::Display for SecureConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_has_no_defense() {
        let k = SchemeKind::Unsafe;
        assert!(!k.delays_value_broadcast());
        assert!(!k.propagates_taint());
        assert!(!k.blocks_transmitters());
        assert!(!k.is_secure());
    }

    #[test]
    fn nda_delays_broadcast_only() {
        let k = SchemeKind::Nda;
        assert!(k.delays_value_broadcast());
        assert!(!k.propagates_taint());
        assert!(!k.blocks_transmitters());
        assert!(k.is_secure());
    }

    #[test]
    fn stt_taints_and_blocks_transmitters() {
        let k = SchemeKind::Stt;
        assert!(!k.delays_value_broadcast());
        assert!(k.propagates_taint());
        assert!(k.blocks_transmitters());
        assert!(k.is_secure());
    }

    #[test]
    fn labels() {
        assert_eq!(SecureConfig::stt_recon().label(), "STT+ReCon");
        assert_eq!(SecureConfig::nda().label(), "NDA");
        assert_eq!(SecureConfig::unsafe_baseline().label(), "unsafe");
    }

    #[test]
    fn constructors_match_fields() {
        assert_eq!(
            SecureConfig::nda_recon(),
            SecureConfig {
                kind: SchemeKind::Nda,
                recon: true
            }
        );
        assert_eq!(
            SecureConfig::stt(),
            SecureConfig {
                kind: SchemeKind::Stt,
                recon: false
            }
        );
    }
}

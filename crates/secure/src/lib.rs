//! # recon-secure
//!
//! Secure speculation schemes for the ReCon reproduction: the **unsafe
//! baseline**, **NDA** (permissive propagation), and **STT** (speculative
//! taint tracking), expressed as policies over a unified per-register
//! *guard* mechanism that the out-of-order core (`recon-cpu`) enforces.
//!
//! The unification (documented in [`guard`]) is that both defenses key
//! off the same quantity — the sequence number of the youngest
//! speculative load a value derives from — compared against the core's
//! *shadow frontier*:
//!
//! | scheme | guard placed on          | guard blocks                  |
//! |--------|--------------------------|-------------------------------|
//! | NDA    | the load's own dst       | *reading* the value           |
//! | STT    | dst, propagated (YRoT)   | *executing* transmitters      |
//!
//! **ReCon** (the paper's contribution) lifts either defense for loads
//! that read a *revealed* word: no guard is placed, so dependent loads
//! issue immediately (§5.4).
//!
//! ```
//! use recon_secure::{SchemeKind, SecureConfig, GuardTable};
//!
//! // The six evaluated configurations:
//! let configs = [
//!     SecureConfig::unsafe_baseline(),
//!     SecureConfig::nda(), SecureConfig::nda_recon(),
//!     SecureConfig::stt(), SecureConfig::stt_recon(),
//! ];
//! assert_eq!(configs[4].label(), "STT+ReCon");
//!
//! // STT taint propagation through a dependence chain:
//! let mut g = GuardTable::new(16);
//! g.set(1, 100);                                  // p1 <- speculative load #100
//! let yrot = g.propagate([1], None, 0);           // add p2, p1, r0
//! assert_eq!(yrot, Some(100));                    // p2 inherits the root
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod guard;
pub mod scheme;

pub use guard::{GuardTable, Seq};
pub use scheme::{SchemeKind, SecureConfig};

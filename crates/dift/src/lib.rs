//! # recon-dift
//!
//! A trace-based leakage characterization tool after *Clueless* (the
//! paper's §6.1–6.2 companion): global dynamic information-flow tracking
//! that detects *values turned into addresses*, plus the direct
//! load-pair subset ReCon can capture.
//!
//! The ratio between the two is the paper's Figure 4 (leakage breakdown)
//! and the x-axis of Figure 9 (leakage/performance correlation).
//!
//! ```
//! use recon_dift::analyze_program;
//! use recon_isa::{Asm, reg::names::*};
//!
//! // A classic pointer dereference leaks the pointer's address.
//! let mut a = Asm::new();
//! a.data(0x100, 0x200).data(0x200, 7);
//! a.li(R1, 0x100).load(R2, R1, 0).load(R3, R2, 0).halt();
//! let report = analyze_program(&a.assemble()?, 10_000)?;
//! assert_eq!(report.dift_leaked, 1);
//! assert_eq!(report.pair_leaked, 1); // captured by a direct pair
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod report;
pub mod taint;

pub use report::{analyze_program, analyze_program_budgeted, LeakReport};
pub use taint::LeakageAnalysis;

//! Trace-based leakage tracking, after the paper's companion tool
//! *Clueless* (§6.1–6.2).
//!
//! Two trackers run over the same committed-instruction trace:
//!
//! * **Global DIFT** — every register (and memory word) carries the set
//!   of memory addresses its value transitively derives from. When a
//!   value is *turned into an address* (used as the base of a memory
//!   access), every address in its provenance set becomes a **leakage
//!   point**: its content has been exposed to the memory hierarchy.
//!   A store to an address reverts it to non-leaked (its content is a
//!   new, unobserved value).
//! * **Direct load pairs** — ReCon's subset: a register directly written
//!   by a load (and not modified since) carries that one address; using
//!   it as a base leaks exactly that address. This is what the
//!   load-pair table can capture (§4.3).
//!
//! The pair-leaked set is a subset of the DIFT-leaked set by
//! construction; their ratio is the paper's Figure 4 / Figure 9 metric.

use std::collections::{HashMap, HashSet};

use recon_isa::{ArchReg, Inst, MemEffect, StepRecord, NUM_ARCH_REGS};

/// Cap on provenance-set size: beyond this a value is treated as
/// deriving from "many" addresses, all already recorded. Keeps the
/// analysis linear on pathological chains.
const PROVENANCE_CAP: usize = 128;

/// Per-value provenance: which memory addresses the value derives from.
type Provenance = HashSet<u64>;

/// The leakage analysis state.
///
/// Feed it every committed instruction (a [`recon_isa::StepRecord`]
/// stream) via
/// [`LeakageAnalysis::observe`], then read the [`crate::LeakReport`].
#[derive(Debug, Default)]
pub struct LeakageAnalysis {
    /// Global-DIFT provenance per architectural register.
    reg_prov: [Provenance; NUM_ARCH_REGS],
    /// Provenance carried by memory words (through stores).
    mem_prov: HashMap<u64, Provenance>,
    /// Direct-load provenance: register was written by a load from this
    /// address and is unmodified since.
    reg_direct: [Option<u64>; NUM_ARCH_REGS],

    /// Addresses currently leaked per global DIFT.
    leaked_dift: HashSet<u64>,
    /// Addresses currently leaked via direct load pairs.
    leaked_pair: HashSet<u64>,
    /// Addresses ever leaked (never reverted) per global DIFT.
    ever_dift: HashSet<u64>,
    /// Addresses ever leaked via direct pairs.
    ever_pair: HashSet<u64>,
    /// Every word address the program touched.
    touched: HashSet<u64>,
}

impl LeakageAnalysis {
    /// Creates an empty analysis.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn leak_via_reg(&mut self, base: ArchReg) {
        // Global DIFT: everything in the base register's provenance has
        // now been exposed as (part of) an address.
        for addr in &self.reg_prov[base.index()] {
            self.leaked_dift.insert(*addr);
            self.ever_dift.insert(*addr);
        }
        // Direct pair: only a pristine directly-loaded value counts.
        if let Some(addr) = self.reg_direct[base.index()] {
            self.leaked_pair.insert(addr);
            self.ever_pair.insert(addr);
        }
    }

    fn write_reg(&mut self, dst: ArchReg, prov: Provenance, direct: Option<u64>) {
        if dst.is_zero() {
            return;
        }
        let mut prov = prov;
        if prov.len() > PROVENANCE_CAP {
            // Keep an arbitrary subset; the dropped members were already
            // inserted into `leaked_*` if ever used as addresses.
            prov = prov.into_iter().take(PROVENANCE_CAP).collect();
        }
        self.reg_prov[dst.index()] = prov;
        self.reg_direct[dst.index()] = direct;
    }

    fn merged_prov(&self, srcs: impl IntoIterator<Item = ArchReg>) -> Provenance {
        let mut out = Provenance::new();
        for s in srcs {
            out.extend(self.reg_prov[s.index()].iter().copied());
        }
        out
    }

    /// Processes one committed instruction.
    pub fn observe(&mut self, rec: &StepRecord) {
        // 1. Address uses leak the provenance of every address source
        //    (two for multi-source loads, §5.1.1).
        for base in rec.inst.addr_srcs().into_iter().flatten() {
            self.leak_via_reg(base);
        }
        // 2. Memory effects update touched / provenance / reverts.
        match rec.mem {
            MemEffect::Load { addr, .. } => {
                self.touched.insert(addr);
            }
            MemEffect::Store { addr, .. } | MemEffect::Amo { addr, .. } => {
                self.touched.insert(addr);
                // New content: the address reverts to non-leaked.
                self.leaked_dift.remove(&addr);
                self.leaked_pair.remove(&addr);
            }
            MemEffect::None => {}
        }
        // 3. Dataflow.
        match rec.inst {
            Inst::LoadImm { dst, .. } => {
                self.write_reg(dst, Provenance::new(), None);
            }
            Inst::Alu { dst, a, b, .. } => {
                let prov = self.merged_prov([a, b]);
                self.write_reg(dst, prov, None);
            }
            Inst::AluImm { dst, a, .. } => {
                let prov = self.merged_prov([a]);
                self.write_reg(dst, prov, None);
            }
            Inst::Load { dst, .. } | Inst::LoadIdx { dst, .. } => {
                let MemEffect::Load { addr, .. } = rec.mem else {
                    unreachable!("load records a Load effect")
                };
                // The value derives from the word itself plus whatever
                // the word's stored provenance was.
                let mut prov = self.mem_prov.get(&addr).cloned().unwrap_or_default();
                prov.insert(addr);
                self.write_reg(dst, prov, Some(addr));
            }
            Inst::Store { val, .. } => {
                let MemEffect::Store { addr, .. } = rec.mem else {
                    unreachable!("store records a Store effect")
                };
                self.mem_prov
                    .insert(addr, self.reg_prov[val.index()].clone());
            }
            Inst::AmoAdd { dst, add, .. } => {
                let MemEffect::Amo { addr, .. } = rec.mem else {
                    unreachable!("amo records an Amo effect")
                };
                let mut loaded = self.mem_prov.get(&addr).cloned().unwrap_or_default();
                loaded.insert(addr);
                self.write_reg(dst, loaded.clone(), None);
                loaded.extend(self.reg_prov[add.index()].iter().copied());
                self.mem_prov.insert(addr, loaded);
            }
            Inst::Branch { .. } | Inst::Jump { .. } | Inst::Nop | Inst::Halt => {}
        }
    }

    /// Words the program has touched so far.
    #[must_use]
    pub fn touched_words(&self) -> usize {
        self.touched.len()
    }

    /// Addresses currently leaked under global DIFT.
    #[must_use]
    pub fn dift_leaked_now(&self) -> usize {
        self.leaked_dift.len()
    }

    /// Addresses currently leaked via direct load pairs.
    #[must_use]
    pub fn pair_leaked_now(&self) -> usize {
        self.leaked_pair.len()
    }

    /// Addresses ever leaked under global DIFT.
    #[must_use]
    pub fn dift_leaked_ever(&self) -> usize {
        self.ever_dift.len()
    }

    /// Addresses ever leaked via direct load pairs.
    #[must_use]
    pub fn pair_leaked_ever(&self) -> usize {
        self.ever_pair.len()
    }

    /// Whether `addr` is currently a DIFT leakage point.
    #[must_use]
    pub fn is_leaked(&self, addr: u64) -> bool {
        self.leaked_dift.contains(&addr)
    }

    /// Whether `addr` is currently a direct-pair leakage point.
    #[must_use]
    pub fn is_pair_leaked(&self, addr: u64) -> bool {
        self.leaked_pair.contains(&addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recon_isa::reg::names::*;
    use recon_isa::{run_collect, Asm};

    fn analyze(asm: Asm) -> LeakageAnalysis {
        let p = asm.assemble().unwrap();
        let (trace, _) = run_collect(&p, 1_000_000).unwrap();
        let mut la = LeakageAnalysis::new();
        for rec in &trace {
            la.observe(rec);
        }
        la
    }

    #[test]
    fn direct_dereference_leaks_the_pointer_word() {
        let mut a = Asm::new();
        a.data(0x100, 0x200).data(0x200, 5);
        a.li(R1, 0x100).load(R2, R1, 0).load(R3, R2, 0).halt();
        let la = analyze(a);
        assert!(
            la.is_leaked(0x100),
            "0x100's content was used as an address"
        );
        assert!(la.is_pair_leaked(0x100), "and it was a direct pair");
        assert!(
            !la.is_leaked(0x200),
            "the target's content never became an address"
        );
    }

    #[test]
    fn indirect_dereference_leaks_dift_only() {
        // v = mem[0x100] + mem[0x108]; load [v]: both sources leak under
        // DIFT; neither is a *direct* pair.
        let mut a = Asm::new();
        a.data(0x100, 0x80).data(0x108, 0x80).data(0x100 + 0x60, 1);
        a.li(R1, 0x100);
        a.load(R2, R1, 0);
        a.load(R3, R1, 8);
        a.add(R4, R2, R3);
        a.load(R5, R4, 0);
        a.halt();
        let la = analyze(a);
        assert!(la.is_leaked(0x100) && la.is_leaked(0x108));
        assert!(!la.is_pair_leaked(0x100) && !la.is_pair_leaked(0x108));
        assert!(la.dift_leaked_now() >= 2);
        assert_eq!(la.pair_leaked_now(), 0);
    }

    #[test]
    fn offset_still_forms_a_pair() {
        let mut a = Asm::new();
        a.data(0x100, 0x200).data(0x210, 5);
        a.li(R1, 0x100).load(R2, R1, 0).load(R3, R2, 0x10).halt();
        let la = analyze(a);
        assert!(
            la.is_pair_leaked(0x100),
            "offsets do not break pairs (§4.3)"
        );
    }

    #[test]
    fn store_reverts_leakage() {
        let mut a = Asm::new();
        a.data(0x100, 0x200).data(0x200, 5);
        a.li(R1, 0x100).load(R2, R1, 0).load(R3, R2, 0);
        a.li(R4, 0x300).store(R4, R1, 0); // overwrite the pointer word
        a.halt();
        let la = analyze(a);
        assert!(!la.is_leaked(0x100), "new content is unobserved");
        assert!(!la.is_pair_leaked(0x100));
        assert_eq!(la.dift_leaked_ever(), 1, "but it *was* leaked once");
    }

    #[test]
    fn provenance_propagates_through_memory() {
        // v = mem[0x100]; store v to 0x300; w = mem[0x300]; load [w]:
        // 0x100 leaked (its content flowed into the address), and 0x300
        // leaked too.
        let mut a = Asm::new();
        a.data(0x100, 0x400).data(0x400, 9);
        a.li(R1, 0x100).load(R2, R1, 0);
        a.li(R3, 0x300).store(R2, R3, 0);
        a.load(R4, R3, 0);
        a.load(R5, R4, 0);
        a.halt();
        let la = analyze(a);
        assert!(la.is_leaked(0x100), "provenance flowed through memory");
        assert!(la.is_leaked(0x300));
        // The final load *is* a direct pair with the load from 0x300.
        assert!(la.is_pair_leaked(0x300));
        assert!(!la.is_pair_leaked(0x100), "0x100 is two hops away");
    }

    #[test]
    fn alu_breaks_direct_but_not_dift() {
        let mut a = Asm::new();
        a.data(0x100, 0x1F8).data(0x200, 5);
        a.li(R1, 0x100).load(R2, R1, 0);
        a.addi(R2, R2, 8); // modify: no longer a pristine load value
        a.load(R3, R2, 0);
        a.halt();
        let la = analyze(a);
        assert!(la.is_leaked(0x100));
        assert!(!la.is_pair_leaked(0x100));
    }

    #[test]
    fn touched_counts_all_accessed_words() {
        let mut a = Asm::new();
        a.data(0x100, 1);
        a.li(R1, 0x100).load(R2, R1, 0).store(R2, R1, 8).halt();
        let la = analyze(a);
        assert_eq!(la.touched_words(), 2);
    }

    #[test]
    fn pair_leaks_are_subset_of_dift() {
        // Structural invariant, exercised on a small pointer-chase.
        let mut a = Asm::new();
        for i in 0..8u64 {
            a.data(0x1000 + i * 8, 0x2000 + ((i + 1) % 8) * 8);
            a.data(0x2000 + i * 8, 0x1000 + i * 8);
        }
        a.li(R1, 0x1000);
        for _ in 0..16 {
            a.load(R1, R1, 0);
        }
        a.halt();
        let la = analyze(a);
        assert!(la.pair_leaked_now() <= la.dift_leaked_now());
        assert!(la.pair_leaked_now() > 0);
    }
}

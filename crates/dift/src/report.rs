//! Leakage reports: the Figure 4 metrics.

use recon_isa::Program;

use crate::taint::LeakageAnalysis;

/// Summary of a program's non-speculative leakage.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct LeakReport {
    /// Distinct words the program touched.
    pub touched_words: usize,
    /// Words ever identified as leakage points by global DIFT.
    pub dift_leaked: usize,
    /// Words ever identified as leakage points by direct load pairs
    /// (a subset of `dift_leaked`).
    pub pair_leaked: usize,
    /// Committed instructions analyzed.
    pub instructions: u64,
}

impl LeakReport {
    /// Fraction of the touched address space leaked under global DIFT
    /// (Figure 4's full bars).
    #[must_use]
    pub fn dift_fraction(&self) -> f64 {
        ratio(self.dift_leaked, self.touched_words)
    }

    /// Fraction of the touched address space leaked via direct load
    /// pairs (Figure 4's hatched bars).
    #[must_use]
    pub fn pair_fraction(&self) -> f64 {
        ratio(self.pair_leaked, self.touched_words)
    }

    /// Ratio of pair-captured leakage to all DIFT leakage — the
    /// "coverage" metric of Figure 9 (1.0 = every leak is a load pair).
    #[must_use]
    pub fn coverage(&self) -> f64 {
        ratio(self.pair_leaked, self.dift_leaked)
    }
}

fn ratio(num: usize, den: usize) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// Runs a program functionally and analyzes its leakage.
///
/// # Errors
///
/// Returns an error if the program faults (misaligned access or runaway
/// `pc`) before halting.
pub fn analyze_program(
    program: &Program,
    max_steps: usize,
) -> Result<LeakReport, recon_isa::ExecError> {
    analyze_program_budgeted(program, max_steps).map(|(report, _)| report)
}

/// As [`analyze_program`], but also reports whether the program halted
/// within `max_steps`. `false` means the report covers only a prefix of
/// the execution — a *partial* result, which deadline-aware callers
/// (`recon serve` analyze jobs with a fuel budget) report as such
/// instead of presenting truncated metrics as final.
///
/// # Errors
///
/// As [`analyze_program`].
pub fn analyze_program_budgeted(
    program: &Program,
    max_steps: usize,
) -> Result<(LeakReport, bool), recon_isa::ExecError> {
    let mut mem = recon_isa::SparseMem::from_image(&program.image);
    let mut la = LeakageAnalysis::new();
    let (n, halted) =
        recon_isa::exec::run_with_status(program, &mut mem, max_steps, |rec| la.observe(rec))?;
    Ok((
        LeakReport {
            touched_words: la.touched_words(),
            dift_leaked: la.dift_leaked_ever(),
            pair_leaked: la.pair_leaked_ever(),
            instructions: n,
        },
        halted,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use recon_isa::reg::names::*;
    use recon_isa::Asm;

    #[test]
    fn pointer_chase_has_full_coverage() {
        // Pure pointer chasing: every DIFT leak is a direct pair.
        let mut a = Asm::new();
        for i in 0..8u64 {
            a.data(0x1000 + i * 8, 0x1000 + ((i + 1) % 8) * 8);
        }
        a.li(R1, 0x1000);
        for _ in 0..8 {
            a.load(R1, R1, 0);
        }
        a.halt();
        let r = analyze_program(&a.assemble().unwrap(), 10_000).unwrap();
        assert_eq!(r.dift_leaked, r.pair_leaked);
        assert!((r.coverage() - 1.0).abs() < 1e-12);
        // 7 of the 8 loaded values were themselves dereferenced (the
        // last chase's value never becomes an address).
        assert!(r.dift_fraction() > 0.8, "got {}", r.dift_fraction());
    }

    #[test]
    fn streaming_leaks_nothing() {
        let mut a = Asm::new();
        for i in 0..8u64 {
            a.data(0x1000 + i * 8, i);
        }
        a.li(R1, 0x1000).li(R5, 0);
        for i in 0..8i64 {
            a.load(R2, R1, i * 8);
            a.add(R5, R5, R2);
        }
        a.halt();
        let r = analyze_program(&a.assemble().unwrap(), 10_000).unwrap();
        assert_eq!(r.dift_leaked, 0);
        assert_eq!(r.pair_leaked, 0);
        assert_eq!(r.coverage(), 0.0);
    }

    #[test]
    fn empty_report_has_zero_fractions() {
        let r = LeakReport {
            touched_words: 0,
            dift_leaked: 0,
            pair_leaked: 0,
            instructions: 0,
        };
        assert_eq!(r.dift_fraction(), 0.0);
        assert_eq!(r.pair_fraction(), 0.0);
    }
}

//! Register renaming: map table, free list, and the physical register
//! file (values + ready bits).

use recon_isa::snap::{SnapError, SnapReader, SnapWriter};
use recon_isa::{ArchReg, NUM_ARCH_REGS};
use std::collections::VecDeque;

/// A physical register index.
pub type PReg = u32;

/// Renaming applied to one instruction's destination, recorded in the
/// ROB for commit (free the old mapping) or squash (restore it).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct DstRename {
    /// The architectural destination.
    pub arch: ArchReg,
    /// The previous physical mapping (freed at commit, restored at
    /// squash).
    pub old: PReg,
    /// The newly allocated physical register.
    pub new: PReg,
}

/// Rename state + physical register file of one core.
///
/// Physical register 0 is permanently mapped to `r0` and always reads
/// zero.
#[derive(Clone, Debug)]
pub struct Rename {
    map: [PReg; NUM_ARCH_REGS],
    free: VecDeque<PReg>,
    values: Vec<u64>,
    ready: Vec<bool>,
}

impl Rename {
    /// Creates rename state with `num_pregs` physical registers.
    /// Architectural registers start mapped to pregs `0..32`, all ready
    /// with value 0.
    ///
    /// # Panics
    ///
    /// Panics if `num_pregs <= NUM_ARCH_REGS`.
    #[must_use]
    pub fn new(num_pregs: usize) -> Self {
        assert!(num_pregs > NUM_ARCH_REGS, "need more pregs than arch regs");
        let mut map = [0; NUM_ARCH_REGS];
        for (i, m) in map.iter_mut().enumerate() {
            *m = i as PReg;
        }
        Rename {
            map,
            free: (NUM_ARCH_REGS as PReg..num_pregs as PReg).collect(),
            values: vec![0; num_pregs],
            ready: vec![true; num_pregs],
        }
    }

    /// Total physical registers.
    #[must_use]
    pub fn num_pregs(&self) -> usize {
        self.values.len()
    }

    /// Free physical registers remaining.
    #[must_use]
    pub fn free_count(&self) -> usize {
        self.free.len()
    }

    /// The current physical mapping of an architectural register.
    #[must_use]
    pub fn lookup(&self, arch: ArchReg) -> PReg {
        self.map[arch.index()]
    }

    /// Allocates a new physical register for a write to `arch`.
    /// Returns `None` (stall) if the free list is empty. Writes to `r0`
    /// still allocate (so dependent bookkeeping is uniform); the PRF
    /// read path forces `r0`'s value to zero at read.
    pub fn allocate(&mut self, arch: ArchReg) -> Option<DstRename> {
        let new = self.free.pop_front()?;
        let old = self.map[arch.index()];
        self.map[arch.index()] = new;
        self.ready[new as usize] = false;
        Some(DstRename { arch, old, new })
    }

    /// Commit: the old mapping is dead, recycle it.
    pub fn commit(&mut self, rename: DstRename) {
        self.free.push_back(rename.old);
    }

    /// Squash: restore the previous mapping and recycle the speculative
    /// allocation. Must be applied youngest-first.
    pub fn undo(&mut self, rename: DstRename) {
        debug_assert_eq!(
            self.map[rename.arch.index()],
            rename.new,
            "undo out of order"
        );
        self.map[rename.arch.index()] = rename.old;
        self.ready[rename.new as usize] = true; // freed regs read as ready
        self.free.push_front(rename.new);
    }

    /// Whether the physical register's value is available.
    #[must_use]
    pub fn is_ready(&self, preg: PReg) -> bool {
        self.ready[preg as usize]
    }

    /// Reads a physical register (the `r0` mapping reads zero).
    #[must_use]
    pub fn read(&self, preg: PReg) -> u64 {
        if preg == 0 {
            0
        } else {
            self.values[preg as usize]
        }
    }

    /// Writes a physical register and marks it ready.
    pub fn write(&mut self, preg: PReg, value: u64) {
        self.values[preg as usize] = value;
        self.ready[preg as usize] = true;
    }

    /// Seeds an architectural register with an initial value (used to
    /// pass thread ids / stack pointers before simulation starts).
    pub fn seed(&mut self, arch: ArchReg, value: u64) {
        if !arch.is_zero() {
            let p = self.map[arch.index()];
            self.values[p as usize] = value;
            self.ready[p as usize] = true;
        }
    }

    /// Audits the rename partition invariant: the map table, the free
    /// list, and the in-flight *old* mappings held in the ROB
    /// (`inflight_olds`) must together hold every physical register
    /// exactly once, and every index must be in range. A flipped map or
    /// free-list entry breaks this immediately.
    pub fn audit(
        &self,
        site: &str,
        inflight_olds: impl IntoIterator<Item = PReg>,
        out: &mut Vec<recon::AuditViolation>,
    ) {
        let n = self.num_pregs();
        let mut seen = vec![0u32; n];
        let mut count = |preg: PReg, whence: &str, out: &mut Vec<recon::AuditViolation>| {
            if (preg as usize) < n {
                seen[preg as usize] += 1;
            } else {
                out.push(recon::AuditViolation::new(
                    "rename-preg-range",
                    format!("{site}.rename"),
                    format!("{whence} holds p{preg}, but only {n} pregs exist"),
                ));
            }
        };
        for (a, &p) in self.map.iter().enumerate() {
            count(p, &format!("map[r{a}]"), out);
        }
        for &p in &self.free {
            count(p, "free list", out);
        }
        for p in inflight_olds {
            count(p, "in-flight old mapping", out);
        }
        for (p, &c) in seen.iter().enumerate() {
            if c != 1 {
                out.push(recon::AuditViolation::new(
                    if c == 0 {
                        "rename-preg-leaked"
                    } else {
                        "rename-preg-dup"
                    },
                    format!("{site}.rename"),
                    format!("p{p} held by {c} owners (map ∪ free ∪ in-flight olds), expected 1"),
                ));
            }
        }
    }

    /// Injects a single-bit soft error into the value of a physical
    /// register currently mapped by an architectural register (the live
    /// architectural state). Readiness is left untouched: this models a
    /// silent PRF bit-flip, not a scheduling event. Returns a
    /// description of the flipped site, or `None` when the chosen
    /// register cannot carry a visible fault (the `r0` mapping).
    pub fn inject_flip(&mut self, rng: &mut recon_isa::rng::SplitMix64) -> Option<String> {
        use recon_isa::rng::Rng as _;
        let arch = 1 + (rng.next_u64() as usize % (NUM_ARCH_REGS - 1));
        let preg = self.map[arch] as usize;
        let bit = rng.next_u64() % 64;
        if preg == 0 {
            return None; // p0 reads as zero: the flip would be invisible
        }
        self.values[preg] ^= 1 << bit;
        Some(format!("r{arch}=p{preg} value bit {bit}"))
    }

    /// Serializes the map table, the free list **in order** (allocation
    /// order determines future renames, so it is architectural state for
    /// replay purposes), and the physical register file.
    pub fn save_snap(&self, w: &mut SnapWriter) {
        w.tag(b"RNAM");
        for &m in &self.map {
            w.u32(m);
        }
        w.u32(self.free.len() as u32);
        for &p in &self.free {
            w.u32(p);
        }
        w.u32(self.values.len() as u32);
        for &v in &self.values {
            w.u64(v);
        }
        for &r in &self.ready {
            w.bool(r);
        }
    }

    /// Reconstructs rename state from [`Rename::save_snap`] bytes.
    ///
    /// # Errors
    ///
    /// Propagates decode errors from a truncated or corrupt stream.
    pub fn load_snap(r: &mut SnapReader<'_>) -> Result<Rename, SnapError> {
        r.expect_tag(b"RNAM")?;
        let mut map = [0; NUM_ARCH_REGS];
        for m in map.iter_mut() {
            *m = r.u32()?;
        }
        let free_len = r.u32()? as usize;
        let mut free = VecDeque::with_capacity(free_len.min(4096));
        for _ in 0..free_len {
            free.push_back(r.u32()?);
        }
        let num_pregs = r.u32()? as usize;
        let mut values = Vec::with_capacity(num_pregs.min(4096));
        for _ in 0..num_pregs {
            values.push(r.u64()?);
        }
        let mut ready = Vec::with_capacity(num_pregs.min(4096));
        for _ in 0..num_pregs {
            ready.push(r.bool()?);
        }
        Ok(Rename {
            map,
            free,
            values,
            ready,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recon_isa::reg::names::*;

    #[test]
    fn initial_mapping_is_identity() {
        let r = Rename::new(64);
        assert_eq!(r.lookup(R0), 0);
        assert_eq!(r.lookup(R31), 31);
        assert_eq!(r.free_count(), 32);
        assert!(r.is_ready(5));
    }

    #[test]
    fn allocate_changes_mapping() {
        let mut r = Rename::new(64);
        let dr = r.allocate(R1).unwrap();
        assert_eq!(dr.arch, R1);
        assert_eq!(dr.old, 1);
        assert_eq!(r.lookup(R1), dr.new);
        assert!(!r.is_ready(dr.new));
    }

    #[test]
    fn stall_when_free_list_empty() {
        let mut r = Rename::new(33);
        assert!(r.allocate(R1).is_some());
        assert!(r.allocate(R2).is_none(), "only one spare preg");
    }

    #[test]
    fn commit_recycles_old() {
        let mut r = Rename::new(34);
        let a = r.allocate(R1).unwrap();
        let b = r.allocate(R1).unwrap();
        assert_eq!(b.old, a.new);
        assert_eq!(r.free_count(), 0);
        r.commit(a); // frees preg 1 (the original mapping)
        assert_eq!(r.free_count(), 1);
        let c = r.allocate(R2).unwrap();
        assert_eq!(c.new, 1);
        let _ = b;
    }

    #[test]
    fn undo_restores_mapping_youngest_first() {
        let mut r = Rename::new(64);
        let a = r.allocate(R1).unwrap();
        let b = r.allocate(R1).unwrap();
        r.undo(b);
        assert_eq!(r.lookup(R1), a.new);
        r.undo(a);
        assert_eq!(r.lookup(R1), 1);
    }

    #[test]
    fn read_write_values() {
        let mut r = Rename::new(64);
        let a = r.allocate(R3).unwrap();
        r.write(a.new, 42);
        assert!(r.is_ready(a.new));
        assert_eq!(r.read(a.new), 42);
    }

    #[test]
    fn preg_zero_reads_zero() {
        let mut r = Rename::new(64);
        r.values[0] = 99; // even if scribbled on
        assert_eq!(r.read(0), 0);
    }

    #[test]
    fn seed_sets_initial_value() {
        let mut r = Rename::new(64);
        r.seed(R7, 0x1000);
        assert_eq!(r.read(r.lookup(R7)), 0x1000);
        r.seed(R0, 5); // ignored
        assert_eq!(r.read(0), 0);
    }
}

//! Per-core statistics.

use recon::LptStats;

/// Counters accumulated by one core over a run.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct CoreStats {
    /// Cycles simulated.
    pub cycles: u64,
    /// Instructions committed.
    pub committed: u64,
    /// Loads committed.
    pub loads_committed: u64,
    /// Stores committed.
    pub stores_committed: u64,
    /// Conditional branches committed.
    pub branches_committed: u64,
    /// Branch mispredictions (squashes from branches).
    pub branch_mispredicts: u64,
    /// Memory-order violation squashes.
    pub memory_violations: u64,
    /// Instructions squashed (wrong path).
    pub squashed: u64,

    // ---- security-scheme behaviour --------------------------------------
    /// Loads that completed while speculative and received a guard
    /// (STT: tainted their destination; NDA: withheld their value),
    /// including wrong-path loads.
    pub guarded_loads: u64,
    /// Committed loads whose destination was guarded (tainted) when they
    /// completed — the paper's "tainted loads" metric (Figure 7).
    pub guarded_loads_committed: u64,
    /// Loads whose issue (STT: tainted address; NDA: unreadable operand)
    /// was delayed at least one cycle by the scheme.
    pub loads_delayed_by_scheme: u64,
    /// Total cycles of scheme-induced issue delay across all loads.
    pub scheme_delay_cycles: u64,
    /// Committed loads that read a *revealed* word (ReCon lifted the
    /// defense).
    pub revealed_loads_committed: u64,
    /// Reveal requests sent by the LPT at commit.
    pub reveals_requested: u64,
    /// LPT statistics.
    pub lpt: LptStats,
    /// Pipeline-trace events evicted by the ring buffer (silent
    /// truncation made visible; see `Core::trace_dropped`).
    pub trace_dropped: u64,

    // ---- commit-stall attribution (who blocks the ROB head) -------------
    /// Cycles the ROB head was an incomplete load.
    pub stall_head_load: u64,
    /// Cycles the ROB head was an incomplete store (or SB full).
    pub stall_head_store: u64,
    /// Cycles the ROB head was an unresolved branch.
    pub stall_head_branch: u64,
    /// Cycles the ROB head was another incomplete instruction.
    pub stall_head_other: u64,
    /// Cycles the ROB was empty (frontend-bound).
    pub stall_empty: u64,
}

impl CoreStats {
    /// Instructions per cycle.
    #[must_use]
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed as f64 / self.cycles as f64
        }
    }

    /// Fraction of committed loads that were guarded (tainted).
    #[must_use]
    pub fn guarded_load_fraction(&self) -> f64 {
        if self.loads_committed == 0 {
            0.0
        } else {
            self.guarded_loads as f64 / self.loads_committed as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_zero_when_no_cycles() {
        assert_eq!(CoreStats::default().ipc(), 0.0);
    }

    #[test]
    fn ipc_computes() {
        let s = CoreStats {
            cycles: 100,
            committed: 250,
            ..CoreStats::default()
        };
        assert!((s.ipc() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn guarded_fraction() {
        let s = CoreStats {
            loads_committed: 10,
            guarded_loads: 4,
            ..CoreStats::default()
        };
        assert!((s.guarded_load_fraction() - 0.4).abs() < 1e-12);
    }
}

//! # recon-cpu
//!
//! A cycle-level out-of-order core for the ReCon reproduction, with the
//! structures of the paper's Table 2 configuration: 8-wide fetch / issue
//! / commit, a 352-entry reorder buffer, 160-entry instruction queue,
//! 128/72-entry load/store queues, a store buffer, gshare branch
//! prediction with full wrong-path execution and squash, and speculation
//! shadows cast by branches and stores.
//!
//! The security schemes of `recon-secure` (NDA, STT) hook into issue and
//! load-completion, and ReCon's [`recon::LoadPairTable`] lives in the
//! commit stage, sending reveal requests to the `recon-mem` hierarchy.
//!
//! See [`Core`] for the main type, and `recon-sim` for the multicore
//! wrapper that drives cores against a shared memory system.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bpred;
pub mod config;
pub mod core;
pub mod forensics;
pub mod lsq;
pub mod mdp;
pub mod rename;
pub mod rob;
pub mod shadow;
pub mod stats;
pub mod trace;

pub use crate::core::{Core, Observation};
pub use config::{CoreConfig, MdpMode};
pub use forensics::{CoreStallInfo, HeadForensics, QueueOcc};
pub use stats::CoreStats;

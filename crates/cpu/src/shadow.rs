//! Speculation-shadow tracking.
//!
//! The paper's evaluated threat model treats an instruction as
//! speculative while an older *control* instruction (unresolved branch)
//! or *store* (unresolved address) exists (§6.1). Each such instruction
//! casts a shadow from dispatch until it resolves; the **frontier** is
//! the sequence number of the oldest unresolved shadow-caster.
//!
//! An instruction with sequence `s` is speculative iff `frontier() < s`
//! — this single comparison drives guard (taint) activity in
//! [`recon_secure::GuardTable`].

use std::collections::BTreeSet;

use recon_secure::Seq;

/// Tracks unresolved shadow-casting instructions of one core.
///
/// ```
/// use recon_cpu::shadow::ShadowTracker;
///
/// let mut sh = ShadowTracker::new();
/// assert!(!sh.is_speculative(10)); // no shadows: nothing speculative
/// sh.cast(5);
/// assert!(sh.is_speculative(10)); // an older branch is unresolved
/// assert!(!sh.is_speculative(5)); // the caster itself is not shadowed
/// sh.resolve(5);
/// assert!(!sh.is_speculative(10));
/// ```
#[derive(Clone, Debug, Default)]
pub struct ShadowTracker {
    unresolved: BTreeSet<Seq>,
}

impl ShadowTracker {
    /// Creates an empty tracker.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// A shadow-casting instruction (branch or store) dispatched.
    pub fn cast(&mut self, seq: Seq) {
        self.unresolved.insert(seq);
    }

    /// The shadow-caster resolved (branch executed / store address
    /// computed).
    pub fn resolve(&mut self, seq: Seq) {
        self.unresolved.remove(&seq);
    }

    /// Removes all casters with sequence `>= first` (squash).
    pub fn squash_from(&mut self, first: Seq) {
        self.unresolved = self
            .unresolved
            .iter()
            .copied()
            .filter(|&s| s < first)
            .collect();
    }

    /// The oldest unresolved shadow-caster, or `Seq::MAX` when none —
    /// the value to compare guards against.
    #[must_use]
    pub fn frontier(&self) -> Seq {
        self.unresolved.first().copied().unwrap_or(Seq::MAX)
    }

    /// Whether an instruction with sequence `seq` is currently under a
    /// speculation shadow.
    #[must_use]
    pub fn is_speculative(&self, seq: Seq) -> bool {
        self.frontier() < seq
    }

    /// Iterates unresolved casters in ascending sequence order.
    pub fn iter(&self) -> impl Iterator<Item = Seq> + '_ {
        self.unresolved.iter().copied()
    }

    /// Number of unresolved shadows (for stats).
    #[must_use]
    pub fn len(&self) -> usize {
        self.unresolved.len()
    }

    /// Whether no shadows are outstanding.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.unresolved.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_tracker_nothing_speculative() {
        let sh = ShadowTracker::new();
        assert_eq!(sh.frontier(), Seq::MAX);
        assert!(!sh.is_speculative(0));
        assert!(sh.is_empty());
    }

    #[test]
    fn frontier_is_oldest() {
        let mut sh = ShadowTracker::new();
        sh.cast(30);
        sh.cast(10);
        sh.cast(20);
        assert_eq!(sh.frontier(), 10);
        sh.resolve(10);
        assert_eq!(sh.frontier(), 20);
    }

    #[test]
    fn resolution_in_any_order() {
        let mut sh = ShadowTracker::new();
        sh.cast(1);
        sh.cast(2);
        sh.resolve(2); // younger resolves first
        assert!(sh.is_speculative(3), "older shadow still pending");
        sh.resolve(1);
        assert!(!sh.is_speculative(3));
    }

    #[test]
    fn squash_drops_younger() {
        let mut sh = ShadowTracker::new();
        sh.cast(5);
        sh.cast(10);
        sh.cast(15);
        sh.squash_from(10);
        assert_eq!(sh.len(), 1);
        assert_eq!(sh.frontier(), 5);
    }

    #[test]
    fn caster_not_shadowed_by_itself() {
        let mut sh = ShadowTracker::new();
        sh.cast(7);
        assert!(!sh.is_speculative(7));
        assert!(sh.is_speculative(8));
    }
}

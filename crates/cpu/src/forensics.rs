//! Stall forensics: a structured snapshot of *why* a core is not
//! committing, taken by the liveness watchdog when forward progress
//! stops (see `recon_sim`'s `SimError::Stalled`).
//!
//! The report is deliberately plain data — strings and numbers — so it
//! can be rendered for a human, serialized into a persisted result
//! record, and shipped in an HTTP error body without dragging pipeline
//! types along.

use core::fmt;

use recon_isa::snap::{SnapError, SnapReader, SnapWriter};

/// Occupancy of one pipeline queue at the stall point.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct QueueOcc {
    /// Queue name (`rob`, `iq`, `lq`, `sq`, `sb`).
    pub name: String,
    /// Entries currently held.
    pub len: u64,
    /// Capacity.
    pub cap: u64,
}

impl QueueOcc {
    fn save_snap(&self, w: &mut SnapWriter) {
        w.str(&self.name);
        w.u64(self.len);
        w.u64(self.cap);
    }

    fn load_snap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(QueueOcc {
            name: r.str()?,
            len: r.u64()?,
            cap: r.u64()?,
        })
    }
}

/// Forensics for the instruction at the ROB head — the one whose
/// inability to commit is stalling the core.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct HeadForensics {
    /// Dynamic sequence number.
    pub seq: u64,
    /// Static instruction index.
    pub pc: u64,
    /// Rendered instruction text (e.g. `amoadd r3, [r1+0x0], r2`).
    pub inst: String,
    /// Pipeline status (`waiting-issue`, `executing …`, `done`).
    pub status: String,
    /// Precise wait-reason classification.
    pub wait: String,
    /// Effective (or best-effort predicted) memory address, if any.
    pub addr: Option<u64>,
    /// Whether the instruction sits under an unresolved shadow.
    pub speculative: bool,
    /// Whether the security scheme ever delayed it.
    pub delayed_by_scheme: bool,
    /// Source operands currently guarded by the scheme: `(preg, root)`.
    pub guarded_operands: Vec<(u32, u64)>,
    /// L1 MESI state of the accessed line, when an address is known.
    pub l1_state: Option<String>,
    /// L2 MESI state of the accessed line.
    pub l2_state: Option<String>,
    /// Directory state of the accessed line.
    pub dir_state: Option<String>,
    /// Whether the accessed word is marked revealed (ReCon metadata).
    pub word_revealed: Option<bool>,
    /// LPT entry active under the head's base-address register: the
    /// address a committed producer load installed there.
    pub lpt_entry: Option<u64>,
}

fn save_opt_u64(w: &mut SnapWriter, v: Option<u64>) {
    w.bool(v.is_some());
    w.u64(v.unwrap_or(0));
}

fn load_opt_u64(r: &mut SnapReader<'_>) -> Result<Option<u64>, SnapError> {
    let some = r.bool()?;
    let v = r.u64()?;
    Ok(some.then_some(v))
}

fn save_opt_str(w: &mut SnapWriter, v: Option<&str>) {
    w.bool(v.is_some());
    w.str(v.unwrap_or(""));
}

fn load_opt_str(r: &mut SnapReader<'_>) -> Result<Option<String>, SnapError> {
    let some = r.bool()?;
    let s = r.str()?;
    Ok(some.then_some(s))
}

impl HeadForensics {
    fn save_snap(&self, w: &mut SnapWriter) {
        w.u64(self.seq);
        w.u64(self.pc);
        w.str(&self.inst);
        w.str(&self.status);
        w.str(&self.wait);
        save_opt_u64(w, self.addr);
        w.bool(self.speculative);
        w.bool(self.delayed_by_scheme);
        w.u32(self.guarded_operands.len() as u32);
        for &(p, root) in &self.guarded_operands {
            w.u32(p);
            w.u64(root);
        }
        save_opt_str(w, self.l1_state.as_deref());
        save_opt_str(w, self.l2_state.as_deref());
        save_opt_str(w, self.dir_state.as_deref());
        w.bool(self.word_revealed.is_some());
        w.bool(self.word_revealed.unwrap_or(false));
        save_opt_u64(w, self.lpt_entry);
    }

    fn load_snap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let seq = r.u64()?;
        let pc = r.u64()?;
        let inst = r.str()?;
        let status = r.str()?;
        let wait = r.str()?;
        let addr = load_opt_u64(r)?;
        let speculative = r.bool()?;
        let delayed_by_scheme = r.bool()?;
        let n = r.u32()? as usize;
        let mut guarded_operands = Vec::with_capacity(n.min(64));
        for _ in 0..n {
            let p = r.u32()?;
            let root = r.u64()?;
            guarded_operands.push((p, root));
        }
        let l1_state = load_opt_str(r)?;
        let l2_state = load_opt_str(r)?;
        let dir_state = load_opt_str(r)?;
        let revealed_some = r.bool()?;
        let revealed = r.bool()?;
        let lpt_entry = load_opt_u64(r)?;
        Ok(HeadForensics {
            seq,
            pc,
            inst,
            status,
            wait,
            addr,
            speculative,
            delayed_by_scheme,
            guarded_operands,
            l1_state,
            l2_state,
            dir_state,
            word_revealed: revealed_some.then_some(revealed),
            lpt_entry,
        })
    }
}

/// One core's view at the stall point: queue occupancies, scheme state,
/// and the ROB-head instruction's forensics.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CoreStallInfo {
    /// Core id.
    pub core: u64,
    /// Instructions committed so far.
    pub committed: u64,
    /// Whether the program's `halt` already committed.
    pub halted: bool,
    /// Whether the core froze on an exhausted fuel budget.
    pub out_of_fuel: bool,
    /// Next fetch index (the architectural pc when the window is empty).
    pub fetch_pc: u64,
    /// Pipeline queue occupancies.
    pub queues: Vec<QueueOcc>,
    /// Unresolved speculation shadows in flight.
    pub shadows: u64,
    /// Physical registers currently guarded by the scheme.
    pub guards_active: u64,
    /// The ROB-head instruction, if the window is non-empty.
    pub head: Option<HeadForensics>,
}

impl CoreStallInfo {
    /// Serializes the per-core stall info.
    pub fn save_snap(&self, w: &mut SnapWriter) {
        w.tag(b"CSI1");
        w.u64(self.core);
        w.u64(self.committed);
        w.bool(self.halted);
        w.bool(self.out_of_fuel);
        w.u64(self.fetch_pc);
        w.u32(self.queues.len() as u32);
        for q in &self.queues {
            q.save_snap(w);
        }
        w.u64(self.shadows);
        w.u64(self.guards_active);
        w.bool(self.head.is_some());
        if let Some(h) = &self.head {
            h.save_snap(w);
        }
    }

    /// Reconstructs stall info from [`CoreStallInfo::save_snap`] bytes.
    ///
    /// # Errors
    ///
    /// Propagates decode errors from a truncated or corrupt stream.
    pub fn load_snap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        r.expect_tag(b"CSI1")?;
        let core = r.u64()?;
        let committed = r.u64()?;
        let halted = r.bool()?;
        let out_of_fuel = r.bool()?;
        let fetch_pc = r.u64()?;
        let nq = r.u32()? as usize;
        let mut queues = Vec::with_capacity(nq.min(16));
        for _ in 0..nq {
            queues.push(QueueOcc::load_snap(r)?);
        }
        let shadows = r.u64()?;
        let guards_active = r.u64()?;
        let head = if r.bool()? {
            Some(HeadForensics::load_snap(r)?)
        } else {
            None
        };
        Ok(CoreStallInfo {
            core,
            committed,
            halted,
            out_of_fuel,
            fetch_pc,
            queues,
            shadows,
            guards_active,
            head,
        })
    }
}

impl fmt::Display for CoreStallInfo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "core {}: {} committed, fetch_pc {}",
            self.core, self.committed, self.fetch_pc
        )?;
        if self.halted {
            write!(f, ", halted")?;
        }
        if self.out_of_fuel {
            write!(f, ", out of fuel")?;
        }
        writeln!(f)?;
        write!(f, "  queues:")?;
        for q in &self.queues {
            write!(f, " {} {}/{}", q.name, q.len, q.cap)?;
        }
        writeln!(
            f,
            "; shadows {}, guarded pregs {}",
            self.shadows, self.guards_active
        )?;
        match &self.head {
            None => writeln!(f, "  rob head: <empty window>")?,
            Some(h) => {
                writeln!(
                    f,
                    "  rob head: seq {} pc {} `{}` [{}]{}{}",
                    h.seq,
                    h.pc,
                    h.inst,
                    h.status,
                    if h.speculative { " speculative" } else { "" },
                    if h.delayed_by_scheme {
                        " scheme-delayed"
                    } else {
                        ""
                    },
                )?;
                writeln!(f, "  wait reason: {}", h.wait)?;
                if let Some(addr) = h.addr {
                    write!(f, "  address {addr:#x}")?;
                    if let Some(s) = &h.l1_state {
                        write!(f, ": L1 {s}")?;
                    }
                    if let Some(s) = &h.l2_state {
                        write!(f, ", L2 {s}")?;
                    }
                    if let Some(s) = &h.dir_state {
                        write!(f, ", dir {s}")?;
                    }
                    if let Some(rev) = h.word_revealed {
                        write!(f, ", word {}", if rev { "revealed" } else { "concealed" })?;
                    }
                    writeln!(f)?;
                }
                for &(p, root) in &h.guarded_operands {
                    writeln!(f, "  guarded operand: p{p} (root seq {root})")?;
                }
                if let Some(a) = h.lpt_entry {
                    writeln!(f, "  lpt entry under base operand: addr {a:#x}")?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CoreStallInfo {
        CoreStallInfo {
            core: 1,
            committed: 42,
            halted: false,
            out_of_fuel: false,
            fetch_pc: 7,
            queues: vec![QueueOcc {
                name: "rob".into(),
                len: 3,
                cap: 32,
            }],
            shadows: 2,
            guards_active: 1,
            head: Some(HeadForensics {
                seq: 9,
                pc: 4,
                inst: "amoadd r3, [r1+0x0], r2".into(),
                status: "waiting-issue".into(),
                wait: "amo at head blocked on 1 younger store(s)".into(),
                addr: Some(0x4000),
                speculative: false,
                delayed_by_scheme: false,
                guarded_operands: vec![(5, 8)],
                l1_state: Some("Modified".into()),
                l2_state: None,
                dir_state: Some("Owned".into()),
                word_revealed: Some(false),
                lpt_entry: Some(0x4010),
            }),
        }
    }

    #[test]
    fn snap_round_trips() {
        let info = sample();
        let mut w = SnapWriter::new();
        info.save_snap(&mut w);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        let back = CoreStallInfo::load_snap(&mut r).unwrap();
        assert_eq!(back, info);
        assert!(r.is_exhausted());
    }

    #[test]
    fn display_names_the_head_and_reason() {
        let text = sample().to_string();
        assert!(text.contains("amoadd"), "{text}");
        assert!(text.contains("wait reason"), "{text}");
        assert!(text.contains("rob 3/32"), "{text}");
        assert!(text.contains("0x4000"), "{text}");
    }

    #[test]
    fn empty_window_renders() {
        let info = CoreStallInfo {
            head: None,
            ..sample()
        };
        assert!(info.to_string().contains("<empty window>"));
    }
}

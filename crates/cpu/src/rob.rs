//! The reorder buffer.

use recon_isa::Inst;
use recon_secure::Seq;

use crate::bpred::PredToken;
use crate::rename::{DstRename, PReg};

/// Execution status of a ROB entry.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Status {
    /// Dispatched, waiting in the instruction queue.
    Waiting,
    /// Issued to a functional unit; completes at the given cycle.
    Executing {
        /// Absolute cycle at which the result is available.
        done_at: u64,
    },
    /// Result available (or no result needed).
    Done,
}

/// One in-flight instruction.
#[derive(Clone, Debug)]
pub struct RobEntry {
    /// Dynamic sequence number (monotonic, never reused after squash in
    /// the same window — squashed seqs are simply abandoned).
    pub seq: Seq,
    /// Static instruction index.
    pub pc: usize,
    /// The instruction.
    pub inst: Inst,
    /// Renamed source registers, aligned with `inst.srcs()`.
    pub srcs: [Option<PReg>; 2],
    /// Destination rename, if the instruction writes a register.
    pub dst: Option<DstRename>,
    /// Pipeline status.
    pub status: Status,
    /// For conditional branches: `(predicted_taken, predictor token)`.
    pub pred: Option<(bool, PredToken)>,
    /// For resolved conditional branches: the actual direction.
    pub taken_actual: Option<bool>,
    /// Effective address, once computed (loads/stores/amo).
    pub addr: Option<u64>,
    /// For loads: the accessed word was marked revealed (ReCon).
    pub revealed: bool,
    /// For loads: the value came from SQ/SB forwarding (always concealed,
    /// §4.4.2).
    pub forwarded: bool,
    /// Computed result value (for register writeback / store data).
    pub value: Option<u64>,
    /// The guard root placed on the destination at completion, if any
    /// (NDA: own seq; STT: YRoT) — kept for statistics.
    pub guard_root: Option<Seq>,
    /// Whether this instruction was ever delayed by the security scheme
    /// (for the Figure 7 tainted-loads statistic).
    pub was_delayed_by_scheme: bool,
}

impl RobEntry {
    fn new(seq: Seq, pc: usize, inst: Inst) -> Self {
        RobEntry {
            seq,
            pc,
            inst,
            srcs: [None, None],
            dst: None,
            status: Status::Waiting,
            pred: None,
            taken_actual: None,
            addr: None,
            revealed: false,
            forwarded: false,
            value: None,
            guard_root: None,
            was_delayed_by_scheme: false,
        }
    }
}

/// The reorder buffer: a bounded, seq-indexed window of in-flight
/// instructions.
#[derive(Clone, Debug)]
pub struct Rob {
    entries: std::collections::VecDeque<RobEntry>,
    capacity: usize,
    next_seq: Seq,
}

impl Rob {
    /// Creates an empty ROB with the given capacity.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0);
        Rob {
            entries: std::collections::VecDeque::with_capacity(capacity),
            capacity,
            next_seq: 0,
        }
    }

    /// Whether a new instruction can be dispatched.
    #[must_use]
    pub fn has_space(&self) -> bool {
        self.entries.len() < self.capacity
    }

    /// Current occupancy.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Configured capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Whether the window is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Allocates the next entry.
    ///
    /// # Panics
    ///
    /// Panics if the ROB is full (check [`Rob::has_space`] first).
    pub fn push(&mut self, pc: usize, inst: Inst) -> Seq {
        assert!(self.has_space(), "ROB full");
        let seq = self.next_seq;
        self.next_seq += 1;
        self.entries.push_back(RobEntry::new(seq, pc, inst));
        seq
    }

    /// The oldest entry, if any.
    #[must_use]
    pub fn head(&self) -> Option<&RobEntry> {
        self.entries.front()
    }

    /// Removes and returns the oldest entry (commit).
    pub fn pop_head(&mut self) -> Option<RobEntry> {
        self.entries.pop_front()
    }

    /// Access an entry by sequence number.
    #[must_use]
    pub fn get(&self, seq: Seq) -> Option<&RobEntry> {
        let head = self.entries.front()?.seq;
        if seq < head {
            return None;
        }
        self.entries.get((seq - head) as usize)
    }

    /// Mutable access by sequence number.
    pub fn get_mut(&mut self, seq: Seq) -> Option<&mut RobEntry> {
        let head = self.entries.front()?.seq;
        if seq < head {
            return None;
        }
        self.entries.get_mut((seq - head) as usize)
    }

    /// Iterates oldest → youngest.
    pub fn iter(&self) -> impl Iterator<Item = &RobEntry> {
        self.entries.iter()
    }

    /// Iterates mutably oldest → youngest.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut RobEntry> {
        self.entries.iter_mut()
    }

    /// The next sequence number a pushed entry would receive. At a
    /// drained-pipeline checkpoint the window is empty and this counter
    /// is the only ROB state worth serializing.
    #[must_use]
    pub fn next_seq(&self) -> Seq {
        self.next_seq
    }

    /// Restores the sequence counter (checkpoint restore; the window
    /// must be empty).
    ///
    /// # Panics
    ///
    /// Panics if the window still holds entries.
    pub fn set_next_seq(&mut self, seq: Seq) {
        assert!(self.entries.is_empty(), "ROB must be empty to restore");
        self.next_seq = seq;
    }

    /// Removes every entry **younger than** `seq`, returning them
    /// youngest-first (the order rename undo must be applied in).
    ///
    /// Squashed sequence numbers are reused by subsequent pushes: the
    /// caller must purge them from every side structure (IQ, LSQ,
    /// shadows, guards), which also keeps the window's sequence numbers
    /// contiguous.
    pub fn squash_after(&mut self, seq: Seq) -> Vec<RobEntry> {
        let mut squashed = Vec::new();
        while matches!(self.entries.back(), Some(e) if e.seq > seq) {
            squashed.push(self.entries.pop_back().expect("checked"));
        }
        if let Some(youngest_kept) = self.entries.back() {
            self.next_seq = youngest_kept.seq + 1;
        } else if let Some(oldest_squashed) = squashed.last() {
            self.next_seq = oldest_squashed.seq;
        }
        squashed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nop() -> Inst {
        Inst::Nop
    }

    #[test]
    fn push_assigns_monotonic_seq() {
        let mut rob = Rob::new(4);
        assert_eq!(rob.push(0, nop()), 0);
        assert_eq!(rob.push(1, nop()), 1);
        assert_eq!(rob.len(), 2);
    }

    #[test]
    fn get_by_seq() {
        let mut rob = Rob::new(4);
        rob.push(0, nop());
        rob.push(1, nop());
        assert_eq!(rob.get(1).unwrap().pc, 1);
        assert!(rob.get(2).is_none());
        rob.pop_head();
        assert!(rob.get(0).is_none(), "committed entries unreachable");
        assert_eq!(rob.get(1).unwrap().pc, 1);
    }

    #[test]
    fn capacity_enforced() {
        let mut rob = Rob::new(2);
        rob.push(0, nop());
        rob.push(1, nop());
        assert!(!rob.has_space());
        rob.pop_head();
        assert!(rob.has_space());
    }

    #[test]
    fn squash_returns_youngest_first() {
        let mut rob = Rob::new(8);
        for pc in 0..5 {
            rob.push(pc, nop());
        }
        let squashed = rob.squash_after(1);
        let seqs: Vec<_> = squashed.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![4, 3, 2]);
        assert_eq!(rob.len(), 2);
        // Squashed sequence numbers are reused to keep the window
        // contiguous.
        assert_eq!(rob.push(9, nop()), 2);
    }

    #[test]
    #[should_panic(expected = "ROB full")]
    fn push_past_capacity_panics() {
        let mut rob = Rob::new(1);
        rob.push(0, nop());
        rob.push(1, nop());
    }
}

//! Optional pipeline event tracing, for debugging and for tests that
//! assert pipeline-order invariants.
//!
//! Tracing is off by default and costs nothing when disabled; when
//! enabled (see `Core::record_trace`), every major pipeline event is
//! appended to an in-memory log the caller drains.

use recon_secure::Seq;

/// One pipeline event.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TraceEvent {
    /// Cycle at which the event occurred.
    pub cycle: u64,
    /// Dynamic sequence number of the instruction involved.
    ///
    /// Sequence numbers are **reused after a squash** (the window stays
    /// contiguous), so a `Squash` for seq *N* may be followed by events
    /// of a *different* dynamic instruction with the same seq; group
    /// lifetimes by `(seq, dispatch cycle)`, not by seq alone.
    pub seq: Seq,
    /// Static instruction index.
    pub pc: usize,
    /// What happened.
    pub kind: TraceKind,
}

/// Pipeline event kinds.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TraceKind {
    /// Fetched and dispatched into the window.
    Dispatch,
    /// Issued to execution.
    Issue,
    /// Result became available.
    Complete,
    /// Retired architecturally.
    Commit,
    /// Squashed (wrong path / memory-order violation); `seq` is the
    /// squashed instruction.
    Squash,
}

/// A bounded event log.
#[derive(Clone, Debug, Default)]
pub struct TraceLog {
    events: Vec<TraceEvent>,
    enabled: bool,
}

/// Cap so a forgotten trace cannot exhaust memory on long runs.
const TRACE_CAP: usize = 1 << 20;

impl TraceLog {
    /// Enables or disables recording (the log is kept either way).
    pub fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
    }

    /// Whether recording is on.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records an event (no-op when disabled or full).
    #[inline]
    pub fn push(&mut self, cycle: u64, seq: Seq, pc: usize, kind: TraceKind) {
        if self.enabled && self.events.len() < TRACE_CAP {
            self.events.push(TraceEvent {
                cycle,
                seq,
                pc,
                kind,
            });
        }
    }

    /// Drains the recorded events.
    pub fn take(&mut self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.events)
    }

    /// Number of recorded events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events were recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_log_records_nothing() {
        let mut log = TraceLog::default();
        log.push(1, 2, 3, TraceKind::Dispatch);
        assert!(log.is_empty());
    }

    #[test]
    fn enabled_log_records_and_drains() {
        let mut log = TraceLog::default();
        log.set_enabled(true);
        log.push(1, 2, 3, TraceKind::Dispatch);
        log.push(2, 2, 3, TraceKind::Issue);
        assert_eq!(log.len(), 2);
        let events = log.take();
        assert_eq!(events[0].kind, TraceKind::Dispatch);
        assert_eq!(events[1].kind, TraceKind::Issue);
        assert!(log.is_empty());
    }
}

//! Optional pipeline event tracing, for debugging and for tests that
//! assert pipeline-order invariants.
//!
//! Tracing is off by default and costs nothing when disabled; when
//! enabled (see `Core::record_trace`), every major pipeline event is
//! recorded into a fixed-capacity ring buffer: once full, the oldest
//! event is dropped (and counted) for each new one, so verify-length
//! runs with tracing left on cannot exhaust memory.

use std::collections::VecDeque;

use recon_isa::snap::{SnapError, SnapReader, SnapWriter};
use recon_secure::Seq;

/// One pipeline event.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TraceEvent {
    /// Cycle at which the event occurred.
    pub cycle: u64,
    /// Dynamic sequence number of the instruction involved.
    ///
    /// Sequence numbers are **reused after a squash** (the window stays
    /// contiguous), so a `Squash` for seq *N* may be followed by events
    /// of a *different* dynamic instruction with the same seq; group
    /// lifetimes by `(seq, dispatch cycle)`, not by seq alone.
    pub seq: Seq,
    /// Static instruction index.
    pub pc: usize,
    /// What happened.
    pub kind: TraceKind,
}

/// Pipeline event kinds.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TraceKind {
    /// Fetched and dispatched into the window.
    Dispatch,
    /// Issued to execution.
    Issue,
    /// Result became available.
    Complete,
    /// Retired architecturally.
    Commit,
    /// Squashed (wrong path / memory-order violation); `seq` is the
    /// squashed instruction.
    Squash,
}

/// Default ring capacity (see [`crate::CoreConfig::trace_capacity`]).
pub const DEFAULT_TRACE_CAPACITY: usize = 1 << 20;

/// A fixed-capacity ring buffer of pipeline events.
#[derive(Clone, Debug)]
pub struct TraceLog {
    events: VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
    enabled: bool,
}

impl Default for TraceLog {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_TRACE_CAPACITY)
    }
}

impl TraceLog {
    /// Creates a log that retains at most `capacity` events (the newest
    /// win). A capacity of 0 records nothing and costs nothing: the hot
    /// path returns before touching the ring or the drop counter.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        TraceLog {
            events: VecDeque::new(),
            capacity,
            dropped: 0,
            enabled: false,
        }
    }

    /// Enables or disables recording (the log is kept either way).
    pub fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
    }

    /// Whether recording is on.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The maximum number of retained events.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events evicted from the ring so far (capacity 0 skips recording
    /// entirely and counts nothing).
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Records an event, evicting the oldest once the ring is full
    /// (no-op when disabled, and free of all bookkeeping — no
    /// allocation, no dropped-counter churn — at capacity 0).
    #[inline]
    pub fn push(&mut self, cycle: u64, seq: Seq, pc: usize, kind: TraceKind) {
        if !self.enabled || self.capacity == 0 {
            return;
        }
        if self.events.len() >= self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(TraceEvent {
            cycle,
            seq,
            pc,
            kind,
        });
    }

    /// Drains the recorded events, oldest first. The dropped counter is
    /// kept (it describes the whole run, not one drain).
    pub fn take(&mut self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.events).into_iter().collect()
    }

    /// Number of retained events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events are retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Serializes the full ring (retained events, capacity, drop count,
    /// enabled flag) so a resumed run reports the same trace and the
    /// same `trace_dropped` statistic as an uninterrupted one.
    pub fn save_snap(&self, w: &mut SnapWriter) {
        w.tag(b"TRCL");
        w.bool(self.enabled);
        w.u64(self.capacity as u64);
        w.u64(self.dropped);
        w.u64(self.events.len() as u64);
        for e in &self.events {
            w.u64(e.cycle);
            w.u64(e.seq);
            w.u64(e.pc as u64);
            w.u8(match e.kind {
                TraceKind::Dispatch => 0,
                TraceKind::Issue => 1,
                TraceKind::Complete => 2,
                TraceKind::Commit => 3,
                TraceKind::Squash => 4,
            });
        }
    }

    /// Reconstructs a trace log from [`TraceLog::save_snap`] bytes.
    ///
    /// # Errors
    ///
    /// Fails on an unknown event kind or a truncated stream.
    pub fn load_snap(r: &mut SnapReader<'_>) -> Result<TraceLog, SnapError> {
        r.expect_tag(b"TRCL")?;
        let enabled = r.bool()?;
        let capacity = usize::try_from(r.u64()?).map_err(|_| SnapError {
            what: "trace capacity exceeds usize".to_string(),
            offset: r.offset(),
        })?;
        let dropped = r.u64()?;
        let count = r.u64()?;
        let mut events = VecDeque::new();
        for _ in 0..count {
            let cycle = r.u64()?;
            let seq = r.u64()?;
            let pc = r.u64()? as usize;
            let kind = match r.u8()? {
                0 => TraceKind::Dispatch,
                1 => TraceKind::Issue,
                2 => TraceKind::Complete,
                3 => TraceKind::Commit,
                4 => TraceKind::Squash,
                other => {
                    return Err(SnapError {
                        what: format!("unknown trace event kind {other}"),
                        offset: r.offset(),
                    })
                }
            };
            events.push_back(TraceEvent {
                cycle,
                seq,
                pc,
                kind,
            });
        }
        Ok(TraceLog {
            events,
            capacity,
            dropped,
            enabled,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_log_records_nothing() {
        let mut log = TraceLog::default();
        log.push(1, 2, 3, TraceKind::Dispatch);
        assert!(log.is_empty());
    }

    #[test]
    fn enabled_log_records_and_drains() {
        let mut log = TraceLog::default();
        log.set_enabled(true);
        log.push(1, 2, 3, TraceKind::Dispatch);
        log.push(2, 2, 3, TraceKind::Issue);
        assert_eq!(log.len(), 2);
        let events = log.take();
        assert_eq!(events[0].kind, TraceKind::Dispatch);
        assert_eq!(events[1].kind, TraceKind::Issue);
        assert!(log.is_empty());
        assert_eq!(log.dropped(), 0);
    }

    #[test]
    fn ring_keeps_newest_and_counts_drops() {
        let mut log = TraceLog::with_capacity(3);
        log.set_enabled(true);
        for cycle in 0..10 {
            log.push(cycle, 0, 0, TraceKind::Dispatch);
        }
        assert_eq!(log.len(), 3);
        assert_eq!(log.dropped(), 7);
        let cycles: Vec<u64> = log.take().iter().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![7, 8, 9], "oldest-first, newest retained");
        assert_eq!(log.dropped(), 7, "drop count survives draining");
    }

    #[test]
    fn zero_capacity_skips_all_bookkeeping() {
        let mut log = TraceLog::with_capacity(0);
        log.set_enabled(true);
        log.push(1, 0, 0, TraceKind::Commit);
        assert!(log.is_empty());
        assert_eq!(log.dropped(), 0, "capacity 0 is a pure fast path");
    }
}

//! Core configuration (the processor half of the paper's Table 2).

/// Memory-dependence handling for loads issuing past unresolved stores.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum MdpMode {
    /// Conservative: a load waits until every older store address is
    /// resolved (§4.5.1 — "ReCon has no effect" on this channel).
    #[default]
    Conservative,
    /// Memory-dependence speculation with a store-set style predictor:
    /// loads may issue past unresolved stores; a violation squashes
    /// (§4.5.2, Table 1).
    Predictor,
}

/// Out-of-order core parameters. Defaults follow Table 2 of the paper.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CoreConfig {
    /// Instructions fetched per cycle (8 in Table 2).
    pub fetch_width: usize,
    /// Instructions issued per cycle (8).
    pub issue_width: usize,
    /// Instructions committed per cycle (8).
    pub commit_width: usize,
    /// Reorder buffer entries (352).
    pub rob_entries: usize,
    /// Instruction queue entries (160).
    pub iq_entries: usize,
    /// Load queue entries (128).
    pub lq_entries: usize,
    /// Store queue entries (72, shared with the store buffer).
    pub sq_entries: usize,
    /// Store buffer entries (72).
    pub sb_entries: usize,
    /// Physical integer registers (the LPT is sized by this by default).
    pub num_pregs: usize,
    /// Extra fetch-redirect penalty in cycles after a branch mispredict.
    pub redirect_penalty: u32,
    /// log2 of branch predictor table entries.
    pub bpred_bits: u32,
    /// Multiply execution latency in cycles.
    pub mul_latency: u32,
    /// Memory-dependence handling.
    pub mdp: MdpMode,
    /// Pipeline trace ring-buffer capacity in events (newest retained;
    /// evictions are counted, see `Core::trace_dropped`).
    pub trace_capacity: usize,
    /// Test hook: reintroduces the historical AMO issue gate that also
    /// waited for an *empty store queue*. A store fetched into the AMO's
    /// shadow can never commit behind it, so that gate deadlocks — the
    /// bug fixed in the `issue_amo` rework. Kept selectable so liveness
    /// tooling (the watchdog, `recon fuzz`) can regression-test stall
    /// detection against a real, historical hang. Never set in
    /// production configurations.
    pub amo_empty_sq_bug: bool,
}

impl Default for CoreConfig {
    fn default() -> Self {
        CoreConfig {
            fetch_width: 8,
            issue_width: 8,
            commit_width: 8,
            rob_entries: 352,
            iq_entries: 160,
            lq_entries: 128,
            sq_entries: 72,
            sb_entries: 72,
            num_pregs: 256,
            redirect_penalty: 10,
            bpred_bits: 12,
            mul_latency: 3,
            mdp: MdpMode::Conservative,
            trace_capacity: crate::trace::DEFAULT_TRACE_CAPACITY,
            amo_empty_sq_bug: false,
        }
    }
}

impl CoreConfig {
    /// The paper's Table 2 configuration.
    #[must_use]
    pub fn paper() -> Self {
        Self::default()
    }

    /// A narrow 2-wide core for tests that want short pipelines.
    #[must_use]
    pub fn tiny() -> Self {
        CoreConfig {
            fetch_width: 2,
            issue_width: 2,
            commit_width: 2,
            rob_entries: 32,
            iq_entries: 16,
            lq_entries: 8,
            sq_entries: 8,
            sb_entries: 8,
            num_pregs: 64,
            redirect_penalty: 4,
            bpred_bits: 8,
            mul_latency: 3,
            mdp: MdpMode::Conservative,
            trace_capacity: 1 << 16,
            amo_empty_sq_bug: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_table2() {
        let c = CoreConfig::default();
        assert_eq!(c.fetch_width, 8);
        assert_eq!(c.issue_width, 8);
        assert_eq!(c.commit_width, 8);
        assert_eq!(c.rob_entries, 352);
        assert_eq!(c.iq_entries, 160);
        assert_eq!(c.lq_entries, 128);
        assert_eq!(c.sq_entries, 72);
    }

    #[test]
    fn tiny_is_smaller() {
        let t = CoreConfig::tiny();
        assert!(t.rob_entries < CoreConfig::default().rob_entries);
        assert!(
            t.num_pregs >= t.rob_entries,
            "tiny core should rarely stall on pregs"
        );
    }
}

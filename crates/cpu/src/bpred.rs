//! Gshare branch direction predictor.
//!
//! Branch *targets* are static in this ISA (encoded in the instruction),
//! so only the direction needs prediction. The predictor is a classic
//! gshare: a global history register XOR-ed with the PC indexes a table
//! of 2-bit saturating counters.

use recon_isa::snap::{SnapError, SnapReader, SnapWriter};

/// A 2-bit saturating counter.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
struct Counter(u8);

impl Counter {
    const WEAK_TAKEN: Counter = Counter(2);

    fn predict(self) -> bool {
        self.0 >= 2
    }

    fn update(&mut self, taken: bool) {
        if taken {
            self.0 = (self.0 + 1).min(3);
        } else {
            self.0 = self.0.saturating_sub(1);
        }
    }
}

/// Gshare predictor with `2^bits` counters.
///
/// ```
/// use recon_cpu::bpred::BranchPredictor;
///
/// let mut bp = BranchPredictor::new(10);
/// // Train a strongly-taken branch at PC 12:
/// for _ in 0..4 {
///     let (pred, token) = bp.predict(12);
///     bp.update(token, true);
///     let _ = pred;
/// }
/// assert!(bp.predict(12).0);
/// ```
#[derive(Clone, Debug)]
pub struct BranchPredictor {
    table: Vec<Counter>,
    history: u64,
    mask: u64,
}

/// Opaque token carrying the state needed to update or repair the
/// predictor after the prediction resolves.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PredToken {
    index: usize,
    history_before: u64,
}

impl BranchPredictor {
    /// Creates a predictor with `2^bits` counters, weakly taken.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or greater than 24.
    #[must_use]
    pub fn new(bits: u32) -> Self {
        assert!((1..=24).contains(&bits), "1..=24 index bits");
        let size = 1usize << bits;
        BranchPredictor {
            table: vec![Counter::WEAK_TAKEN; size],
            history: 0,
            mask: (size - 1) as u64,
        }
    }

    /// Predicts the direction of the branch at instruction index `pc`,
    /// speculatively updating the global history. Returns the prediction
    /// and a token for [`BranchPredictor::update`] /
    /// [`BranchPredictor::repair`].
    pub fn predict(&mut self, pc: usize) -> (bool, PredToken) {
        let index = ((pc as u64) ^ self.history) & self.mask;
        let token = PredToken {
            index: index as usize,
            history_before: self.history,
        };
        let taken = self.table[token.index].predict();
        self.history = (self.history << 1) | u64::from(taken);
        (taken, token)
    }

    /// Commits the outcome of a resolved branch: trains the counter.
    pub fn update(&mut self, token: PredToken, taken: bool) {
        self.table[token.index].update(taken);
    }

    /// Repairs the global history after a squash: restores the history to
    /// its pre-prediction value extended with the *actual* outcome.
    pub fn repair(&mut self, token: PredToken, actual: bool) {
        self.history = (token.history_before << 1) | u64::from(actual);
    }

    /// Serializes the counter table and global history (the index mask
    /// is re-derived from the table size).
    pub fn save_snap(&self, w: &mut SnapWriter) {
        w.tag(b"BPRD");
        w.u32(self.table.len() as u32);
        for c in &self.table {
            w.u8(c.0);
        }
        w.u64(self.history);
    }

    /// Reconstructs a predictor from [`BranchPredictor::save_snap`]
    /// bytes.
    ///
    /// # Errors
    ///
    /// Fails if the table size is not a power of two or the stream is
    /// corrupt.
    pub fn load_snap(r: &mut SnapReader<'_>) -> Result<BranchPredictor, SnapError> {
        r.expect_tag(b"BPRD")?;
        let size = r.u32()? as usize;
        if size == 0 || !size.is_power_of_two() {
            return Err(SnapError {
                what: format!("predictor table size {size} is not a power of two"),
                offset: r.offset(),
            });
        }
        let mut table = Vec::with_capacity(size.min(1 << 24));
        for _ in 0..size {
            table.push(Counter(r.u8()?));
        }
        let history = r.u64()?;
        Ok(BranchPredictor {
            table,
            history,
            mask: (size - 1) as u64,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_saturates() {
        let mut c = Counter(0);
        c.update(false);
        assert_eq!(c.0, 0);
        c.update(true);
        c.update(true);
        c.update(true);
        c.update(true);
        assert_eq!(c.0, 3);
        assert!(c.predict());
    }

    #[test]
    fn learns_always_taken() {
        let mut bp = BranchPredictor::new(8);
        for _ in 0..8 {
            let (_, t) = bp.predict(100);
            bp.update(t, true);
        }
        assert!(bp.predict(100).0);
    }

    #[test]
    fn learns_never_taken() {
        let mut bp = BranchPredictor::new(8);
        for _ in 0..8 {
            let (pred, t) = bp.predict(100);
            bp.update(t, false);
            if pred {
                bp.repair(t, false); // mispredict: fix the history
            }
        }
        assert!(!bp.predict(100).0);
    }

    #[test]
    fn learns_alternating_pattern_with_history() {
        let mut bp = BranchPredictor::new(10);
        let mut correct = 0;
        let mut outcome = false;
        for i in 0..400 {
            outcome = !outcome;
            let (pred, t) = bp.predict(7);
            if i >= 200 && pred == outcome {
                correct += 1;
            }
            bp.update(t, outcome);
            if pred != outcome {
                bp.repair(t, outcome); // mispredict: fix the history
            }
        }
        assert!(
            correct > 190,
            "history should capture alternation: {correct}/200"
        );
    }

    #[test]
    fn repair_restores_history() {
        let mut bp = BranchPredictor::new(8);
        let h0 = bp.history;
        let (pred, t) = bp.predict(5);
        assert_ne!(
            bp.history,
            h0 << 1 | u64::from(!pred),
            "speculative history inserted"
        );
        bp.repair(t, !pred);
        assert_eq!(bp.history, (h0 << 1) | u64::from(!pred));
    }

    #[test]
    #[should_panic(expected = "index bits")]
    fn zero_bits_panics() {
        let _ = BranchPredictor::new(0);
    }
}

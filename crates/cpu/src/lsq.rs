//! Load queue, store queue, and store buffer.
//!
//! ReCon-relevant behaviour (§4.4.2, §4.5):
//!
//! * values forwarded from the SQ or SB are **always concealed** — a
//!   store conceals its output in the SQ/SB, so forwarding can never lift
//!   defenses;
//! * a committed store sits in the store buffer until *performed*; only
//!   then is the word concealed **outside** the core (rMCA / x86-TSO
//!   style store→load relaxation);
//! * without memory-dependence speculation a load waits for all older
//!   store addresses (§4.5.1); with it, violations squash (§4.5.2).

use recon_secure::Seq;
use std::collections::VecDeque;

/// A store-queue entry (in-flight or committed-but-unperformed store).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SqEntry {
    /// The store's sequence number.
    pub seq: Seq,
    /// Effective address, once computed.
    pub addr: Option<u64>,
    /// Store data, once available.
    pub value: Option<u64>,
}

/// Result of a forwarding probe for a load.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Forward {
    /// No older store overlaps: read from the cache hierarchy.
    FromMemory,
    /// An older store to the same word supplies the value (concealed).
    FromStore {
        /// The supplying store's sequence number.
        seq: Seq,
        /// The forwarded value.
        value: u64,
    },
    /// The value is supplied by a committed store still in the store
    /// buffer (concealed).
    FromBuffer {
        /// The forwarded value.
        value: u64,
    },
    /// An older store's address (or same-word data) is not yet known:
    /// the load must wait (conservative mode).
    MustWait,
}

/// The store queue: uncommitted stores, in program order.
#[derive(Clone, Debug, Default)]
pub struct StoreQueue {
    entries: VecDeque<SqEntry>,
    capacity: usize,
}

impl StoreQueue {
    /// Creates a store queue with the given capacity.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        StoreQueue {
            entries: VecDeque::new(),
            capacity,
        }
    }

    /// Whether a store can be dispatched.
    #[must_use]
    pub fn has_space(&self) -> bool {
        self.entries.len() < self.capacity
    }

    /// Occupancy.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the queue is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Dispatches a store.
    ///
    /// # Panics
    ///
    /// Panics when full; check [`StoreQueue::has_space`].
    pub fn push(&mut self, seq: Seq) {
        assert!(self.has_space(), "SQ full");
        debug_assert!(self.entries.back().is_none_or(|e| e.seq < seq));
        self.entries.push_back(SqEntry {
            seq,
            addr: None,
            value: None,
        });
    }

    /// Records the resolved address of a store.
    pub fn set_addr(&mut self, seq: Seq, addr: u64) {
        if let Some(e) = self.entries.iter_mut().find(|e| e.seq == seq) {
            e.addr = Some(addr);
        }
    }

    /// Records the data of a store.
    pub fn set_value(&mut self, seq: Seq, value: u64) {
        if let Some(e) = self.entries.iter_mut().find(|e| e.seq == seq) {
            e.value = Some(value);
        }
    }

    /// Whether every store older than `seq` has a resolved address.
    #[must_use]
    pub fn older_addrs_resolved(&self, seq: Seq) -> bool {
        self.entries
            .iter()
            .take_while(|e| e.seq < seq)
            .all(|e| e.addr.is_some())
    }

    /// Forwarding probe: scans stores older than `load_seq`,
    /// youngest-first, for a same-word match.
    ///
    /// `conservative` selects §4.5.1 behaviour: any unresolved older
    /// store address forces [`Forward::MustWait`]. Non-conservative
    /// (predictor) mode skips unresolved stores optimistically.
    #[must_use]
    pub fn forward(&self, load_seq: Seq, addr: u64, conservative: bool) -> Forward {
        for e in self.entries.iter().rev().skip_while(|e| e.seq >= load_seq) {
            match e.addr {
                None => {
                    if conservative {
                        return Forward::MustWait;
                    }
                    // Predicted no-conflict: skip.
                }
                Some(a) if a == addr => {
                    return match e.value {
                        Some(v) => Forward::FromStore {
                            seq: e.seq,
                            value: v,
                        },
                        None => Forward::MustWait,
                    };
                }
                Some(_) => {}
            }
        }
        Forward::FromMemory
    }

    /// Removes the (oldest) store `seq` at commit, returning its
    /// resolved `(addr, value)` for the store buffer.
    ///
    /// # Panics
    ///
    /// Panics if `seq` is not the oldest entry or is unresolved —
    /// commit is in order and requires a computed address and data.
    pub fn commit(&mut self, seq: Seq) -> (u64, u64) {
        let e = self
            .entries
            .pop_front()
            .expect("committing store not in SQ");
        assert_eq!(e.seq, seq, "stores commit in order");
        (
            e.addr.expect("committed store has address"),
            e.value.expect("has data"),
        )
    }

    /// Drops all stores younger than `seq` (squash).
    pub fn squash_after(&mut self, seq: Seq) {
        while matches!(self.entries.back(), Some(e) if e.seq > seq) {
            self.entries.pop_back();
        }
    }

    /// Iterates entries oldest → youngest.
    pub fn iter(&self) -> impl Iterator<Item = &SqEntry> {
        self.entries.iter()
    }
}

/// The store buffer: committed stores awaiting performance, in order.
#[derive(Clone, Debug, Default)]
pub struct StoreBuffer {
    entries: VecDeque<(u64, u64)>,
    capacity: usize,
}

impl StoreBuffer {
    /// Creates a buffer with the given capacity.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        StoreBuffer {
            entries: VecDeque::new(),
            capacity,
        }
    }

    /// Whether a committed store can enter.
    #[must_use]
    pub fn has_space(&self) -> bool {
        self.entries.len() < self.capacity
    }

    /// Occupancy.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the buffer is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Enqueues a committed store.
    ///
    /// # Panics
    ///
    /// Panics when full; check [`StoreBuffer::has_space`].
    pub fn push(&mut self, addr: u64, value: u64) {
        assert!(self.has_space(), "SB full");
        self.entries.push_back((addr, value));
    }

    /// Dequeues the oldest store for performance.
    pub fn pop(&mut self) -> Option<(u64, u64)> {
        self.entries.pop_front()
    }

    /// Youngest same-word value, if any (forwarding; always concealed).
    #[must_use]
    pub fn forward(&self, addr: u64) -> Option<u64> {
        self.entries
            .iter()
            .rev()
            .find(|&&(a, _)| a == addr)
            .map(|&(_, v)| v)
    }
}

/// The load queue: in-flight loads, for occupancy and violation checks.
#[derive(Clone, Debug, Default)]
pub struct LoadQueue {
    entries: VecDeque<LqEntry>,
    capacity: usize,
}

/// A load-queue entry.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct LqEntry {
    /// The load's sequence number.
    pub seq: Seq,
    /// Effective address once issued.
    pub addr: Option<u64>,
    /// Which older store forwarded the value, if any.
    pub forwarded_from: Option<Seq>,
    /// Whether the load has executed.
    pub done: bool,
}

impl LoadQueue {
    /// Creates a load queue with the given capacity.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        LoadQueue {
            entries: VecDeque::new(),
            capacity,
        }
    }

    /// Whether a load can be dispatched.
    #[must_use]
    pub fn has_space(&self) -> bool {
        self.entries.len() < self.capacity
    }

    /// Occupancy.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the queue is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Dispatches a load.
    ///
    /// # Panics
    ///
    /// Panics when full; check [`LoadQueue::has_space`].
    pub fn push(&mut self, seq: Seq) {
        assert!(self.has_space(), "LQ full");
        self.entries.push_back(LqEntry {
            seq,
            addr: None,
            forwarded_from: None,
            done: false,
        });
    }

    /// Marks a load executed at `addr`, with its forwarding source.
    pub fn complete(&mut self, seq: Seq, addr: u64, forwarded_from: Option<Seq>) {
        if let Some(e) = self.entries.iter_mut().find(|e| e.seq == seq) {
            e.addr = Some(addr);
            e.forwarded_from = forwarded_from;
            e.done = true;
        }
    }

    /// Removes the oldest load (commit).
    pub fn commit(&mut self, seq: Seq) {
        if matches!(self.entries.front(), Some(e) if e.seq == seq) {
            self.entries.pop_front();
        }
    }

    /// Drops all loads younger than `seq` (squash).
    pub fn squash_after(&mut self, seq: Seq) {
        while matches!(self.entries.back(), Some(e) if e.seq > seq) {
            self.entries.pop_back();
        }
    }

    /// Iterates entries oldest → youngest.
    pub fn iter(&self) -> impl Iterator<Item = &LqEntry> {
        self.entries.iter()
    }

    /// Memory-order violation check when store `store_seq` resolves its
    /// address: returns the oldest younger load that already executed on
    /// the same word without forwarding from this store (§4.5.2).
    #[must_use]
    pub fn violation(&self, store_seq: Seq, store_addr: u64) -> Option<Seq> {
        self.entries
            .iter()
            .filter(|e| e.seq > store_seq && e.done)
            .filter(|e| e.addr == Some(store_addr))
            .filter(|e| e.forwarded_from != Some(store_seq))
            .map(|e| e.seq)
            .min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sq_forward_same_word_hit() {
        let mut sq = StoreQueue::new(8);
        sq.push(1);
        sq.set_addr(1, 0x100);
        sq.set_value(1, 42);
        assert_eq!(
            sq.forward(5, 0x100, true),
            Forward::FromStore { seq: 1, value: 42 }
        );
        assert_eq!(sq.forward(5, 0x108, true), Forward::FromMemory);
    }

    #[test]
    fn sq_forward_youngest_matching_store_wins() {
        let mut sq = StoreQueue::new(8);
        sq.push(1);
        sq.set_addr(1, 0x100);
        sq.set_value(1, 1);
        sq.push(2);
        sq.set_addr(2, 0x100);
        sq.set_value(2, 2);
        assert_eq!(
            sq.forward(5, 0x100, true),
            Forward::FromStore { seq: 2, value: 2 }
        );
    }

    #[test]
    fn sq_forward_ignores_younger_stores() {
        let mut sq = StoreQueue::new(8);
        sq.push(7);
        sq.set_addr(7, 0x100);
        sq.set_value(7, 9);
        assert_eq!(sq.forward(5, 0x100, true), Forward::FromMemory);
    }

    #[test]
    fn conservative_waits_on_unresolved_older_store() {
        let mut sq = StoreQueue::new(8);
        sq.push(1); // no address yet
        assert_eq!(sq.forward(5, 0x100, true), Forward::MustWait);
        assert_eq!(
            sq.forward(5, 0x100, false),
            Forward::FromMemory,
            "predictor mode speculates past it"
        );
    }

    #[test]
    fn matching_store_without_data_waits() {
        let mut sq = StoreQueue::new(8);
        sq.push(1);
        sq.set_addr(1, 0x100);
        assert_eq!(sq.forward(5, 0x100, false), Forward::MustWait);
    }

    #[test]
    fn sq_commit_in_order() {
        let mut sq = StoreQueue::new(8);
        sq.push(1);
        sq.set_addr(1, 0x10);
        sq.set_value(1, 5);
        assert_eq!(sq.commit(1), (0x10, 5));
        assert!(sq.is_empty());
    }

    #[test]
    fn sq_squash_drops_younger() {
        let mut sq = StoreQueue::new(8);
        sq.push(1);
        sq.push(5);
        sq.push(9);
        sq.squash_after(5);
        assert_eq!(sq.len(), 2);
        assert!(sq.older_addrs_resolved(0));
    }

    #[test]
    fn older_addrs_resolved_scoped_to_older() {
        let mut sq = StoreQueue::new(8);
        sq.push(1);
        sq.set_addr(1, 0x8);
        sq.push(9); // unresolved, but younger than seq 5
        assert!(sq.older_addrs_resolved(5));
        assert!(!sq.older_addrs_resolved(10));
    }

    #[test]
    fn sb_forwards_youngest() {
        let mut sb = StoreBuffer::new(4);
        sb.push(0x100, 1);
        sb.push(0x100, 2);
        assert_eq!(sb.forward(0x100), Some(2));
        assert_eq!(sb.forward(0x108), None);
        assert_eq!(sb.pop(), Some((0x100, 1)));
    }

    #[test]
    fn lq_violation_detection() {
        let mut lq = LoadQueue::new(8);
        lq.push(10);
        lq.push(12);
        lq.complete(10, 0x100, None); // executed from memory
        lq.complete(12, 0x100, Some(5)); // forwarded from store 5
                                         // Store 5 resolves to 0x100: load 10 read memory and missed the
                                         // forwarding -> violation; load 12 forwarded correctly.
        assert_eq!(lq.violation(5, 0x100), Some(10));
        // A store to a different word bothers no one.
        assert_eq!(lq.violation(5, 0x108), None);
        // A store at seq 11 resolving to the same word catches load 12,
        // which forwarded from the older store 5 instead.
        assert_eq!(lq.violation(11, 0x100), Some(12));
    }

    #[test]
    fn lq_violation_ignores_older_loads() {
        let mut lq = LoadQueue::new(8);
        lq.push(3);
        lq.complete(3, 0x100, None);
        assert_eq!(lq.violation(5, 0x100), None);
    }

    #[test]
    fn lq_commit_and_squash() {
        let mut lq = LoadQueue::new(4);
        lq.push(1);
        lq.push(2);
        lq.push(3);
        lq.commit(1);
        assert_eq!(lq.len(), 2);
        lq.squash_after(2);
        assert_eq!(lq.len(), 1);
    }

    #[test]
    fn capacities_enforced() {
        let mut lq = LoadQueue::new(1);
        lq.push(1);
        assert!(!lq.has_space());
        let mut sb = StoreBuffer::new(1);
        sb.push(0, 0);
        assert!(!sb.has_space());
    }
}

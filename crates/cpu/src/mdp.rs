//! Store-set memory-dependence predictor (Chrysos & Emer, the paper's
//! reference \[15\]), used by [`MdpMode::Predictor`](crate::MdpMode).
//!
//! Loads are predicted independent of in-flight stores until a memory
//! order violation proves otherwise; the violating load and store PCs
//! are then placed in a common *store set*, and future instances of the
//! load wait for the last in-flight store of that set to resolve
//! (§4.5.2: the implicit channels become prediction-based and the
//! predictor is trained only by non-speculative outcomes).

use recon_isa::snap::{SnapError, SnapReader, SnapWriter};
use recon_secure::Seq;

/// Store-set id.
type SsId = u16;

/// The predictor: a PC-indexed store-set id table (SSIT) and a last
/// fetched store table (LFST).
#[derive(Clone, Debug)]
pub struct StoreSets {
    ssit: Vec<Option<SsId>>,
    lfst: Vec<Option<Seq>>,
}

impl Default for StoreSets {
    fn default() -> Self {
        Self::new(1024, 64)
    }
}

impl StoreSets {
    /// Creates a predictor with `ssit_entries` PC slots and `sets`
    /// store sets.
    ///
    /// # Panics
    ///
    /// Panics if either size is zero.
    #[must_use]
    pub fn new(ssit_entries: usize, sets: usize) -> Self {
        assert!(ssit_entries > 0 && sets > 0);
        StoreSets {
            ssit: vec![None; ssit_entries],
            lfst: vec![None; sets],
        }
    }

    fn slot(&self, pc: usize) -> usize {
        pc % self.ssit.len()
    }

    /// The store set assigned to `pc`, if any.
    #[must_use]
    pub fn set_of(&self, pc: usize) -> Option<SsId> {
        self.ssit[self.slot(pc)]
    }

    /// A store at `pc` dispatched with sequence `seq`: it becomes the
    /// last fetched store of its set.
    pub fn store_dispatched(&mut self, pc: usize, seq: Seq) {
        if let Some(set) = self.set_of(pc) {
            let idx = usize::from(set) % self.lfst.len();
            self.lfst[idx] = Some(seq);
        }
    }

    /// A store resolved (its address computed) or was squashed: if it is
    /// still the set's last fetched store, the dependence is satisfied.
    pub fn store_resolved(&mut self, pc: usize, seq: Seq) {
        if let Some(set) = self.set_of(pc) {
            let idx = usize::from(set) % self.lfst.len();
            let e = &mut self.lfst[idx];
            if *e == Some(seq) {
                *e = None;
            }
        }
    }

    /// Should the load at `pc` (sequence `load_seq`) wait? Returns the
    /// store sequence it is predicted to depend on, if that store is
    /// older and still unresolved.
    #[must_use]
    pub fn load_must_wait(&self, pc: usize, load_seq: Seq) -> Option<Seq> {
        let set = self.set_of(pc)?;
        self.lfst[usize::from(set) % self.lfst.len()].filter(|&s| s < load_seq)
    }

    /// Trains on a memory-order violation between `load_pc` and
    /// `store_pc`: both are placed in a common set (the smaller existing
    /// id wins, merging sets over time as in the original proposal).
    pub fn violation(&mut self, load_pc: usize, store_pc: usize) {
        let merged = match (self.set_of(load_pc), self.set_of(store_pc)) {
            (Some(a), Some(b)) => a.min(b),
            (Some(a), None) => a,
            (None, Some(b)) => b,
            (None, None) => (load_pc % self.lfst.len()) as SsId,
        };
        let ls = self.slot(load_pc);
        self.ssit[ls] = Some(merged);
        let ss = self.slot(store_pc);
        self.ssit[ss] = Some(merged);
    }

    /// Squash recovery: forget in-flight stores younger than `first`.
    pub fn squash_from(&mut self, first: Seq) {
        for e in &mut self.lfst {
            if matches!(e, Some(s) if *s >= first) {
                *e = None;
            }
        }
    }

    /// Serializes both tables. LFST entries are serialized verbatim even
    /// though the pipeline is drained at checkpoint time: a stale
    /// last-fetched-store entry is state an uninterrupted run would also
    /// carry, so dropping it would change replay.
    pub fn save_snap(&self, w: &mut SnapWriter) {
        w.tag(b"MDPT");
        w.u32(self.ssit.len() as u32);
        for e in &self.ssit {
            match e {
                Some(id) => {
                    w.bool(true);
                    w.u32(u32::from(*id));
                }
                None => w.bool(false),
            }
        }
        w.u32(self.lfst.len() as u32);
        for e in &self.lfst {
            match e {
                Some(seq) => {
                    w.bool(true);
                    w.u64(*seq);
                }
                None => w.bool(false),
            }
        }
    }

    /// Reconstructs a predictor from [`StoreSets::save_snap`] bytes.
    ///
    /// # Errors
    ///
    /// Propagates decode errors from a truncated or corrupt stream.
    pub fn load_snap(r: &mut SnapReader<'_>) -> Result<StoreSets, SnapError> {
        r.expect_tag(b"MDPT")?;
        let ssit_len = r.u32()? as usize;
        let mut ssit = Vec::with_capacity(ssit_len.min(4096));
        for _ in 0..ssit_len {
            ssit.push(if r.bool()? {
                Some(r.u32()? as SsId)
            } else {
                None
            });
        }
        let lfst_len = r.u32()? as usize;
        let mut lfst = Vec::with_capacity(lfst_len.min(4096));
        for _ in 0..lfst_len {
            lfst.push(if r.bool()? { Some(r.u64()?) } else { None });
        }
        Ok(StoreSets { ssit, lfst })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untrained_predictor_never_blocks() {
        let p = StoreSets::default();
        assert_eq!(p.load_must_wait(100, 50), None);
    }

    #[test]
    fn violation_creates_a_dependence() {
        let mut p = StoreSets::default();
        p.violation(100, 40);
        assert!(p.set_of(100).is_some());
        assert_eq!(p.set_of(100), p.set_of(40));
        p.store_dispatched(40, 7);
        assert_eq!(p.load_must_wait(100, 10), Some(7));
        p.store_resolved(40, 7);
        assert_eq!(p.load_must_wait(100, 10), None);
    }

    #[test]
    fn younger_stores_do_not_block_older_loads() {
        let mut p = StoreSets::default();
        p.violation(100, 40);
        p.store_dispatched(40, 20);
        assert_eq!(p.load_must_wait(100, 10), None, "store is younger");
        assert_eq!(p.load_must_wait(100, 30), Some(20));
    }

    #[test]
    fn sets_merge_on_repeated_violations() {
        let mut p = StoreSets::default();
        p.violation(100, 40);
        p.violation(100, 41);
        assert_eq!(
            p.set_of(40),
            p.set_of(41),
            "both stores share the load's set"
        );
    }

    #[test]
    fn squash_clears_younger_stores() {
        let mut p = StoreSets::default();
        p.violation(100, 40);
        p.store_dispatched(40, 20);
        p.squash_from(15);
        assert_eq!(p.load_must_wait(100, 30), None);
    }

    #[test]
    fn resolution_of_a_superseded_store_keeps_the_newer_one() {
        let mut p = StoreSets::default();
        p.violation(100, 40);
        p.store_dispatched(40, 7);
        p.store_dispatched(40, 9); // a newer dynamic instance
        p.store_resolved(40, 7); // the old one resolving changes nothing
        assert_eq!(p.load_must_wait(100, 30), Some(9));
    }
}

//! The out-of-order core pipeline.
//!
//! A cycle-level model with the structures of the paper's Table 2 core:
//! fetch (branch-predicted, wrong-path execution), rename (physical
//! registers + free list), a reorder buffer, an instruction queue with
//! oldest-first select, a load/store queue with store-buffer forwarding,
//! and in-order commit hosting ReCon's load-pair table.
//!
//! Security schemes hook in at two points:
//!
//! * **issue** — NDA refuses to *read* a guarded operand; STT refuses to
//!   *execute a transmitter* (memory instruction or branch resolution)
//!   with a guarded operand;
//! * **load completion** — a load that completes while speculative
//!   receives a guard on its destination (NDA: its own seq; STT: its
//!   YRoT), **unless ReCon marked the accessed word revealed** (§5.4).
//!
//! Speculation shadows are cast by conditional branches (until resolved)
//! and stores (until their address resolves), matching the paper's
//! evaluated threat model (§6.1).

use std::sync::Arc;

use recon::{LoadPairTable, ReconConfig};
use recon_isa::snap::{SnapError, SnapReader, SnapWriter};
use recon_isa::{AluKind, ArchReg, DataMem, DecodedProgram, Inst, Program, SparseMem};
use recon_mem::MemorySystem;
use recon_secure::{GuardTable, SecureConfig, Seq};

use crate::bpred::BranchPredictor;
use crate::config::{CoreConfig, MdpMode};
use crate::forensics::{CoreStallInfo, HeadForensics, QueueOcc};
use crate::lsq::{Forward, LoadQueue, StoreBuffer, StoreQueue};
use crate::mdp::StoreSets;
use crate::rename::Rename;
use crate::rob::{Rob, RobEntry, Status};
use crate::shadow::ShadowTracker;
use crate::stats::CoreStats;
use crate::trace::{TraceKind, TraceLog};

/// A speculatively observable memory access (for the Table 1 analysis
/// and the `recon-verify` attacker observation model).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Observation {
    /// Cycle the access probed the hierarchy (its timing is visible
    /// from that point).
    pub cycle: u64,
    /// Static instruction index of the load.
    pub pc: usize,
    /// Word address accessed.
    pub addr: u64,
    /// Roundtrip latency the hierarchy reported — the attacker's
    /// primary probe channel (hit vs. miss timing).
    pub latency: u32,
    /// Whether the load was speculative when it accessed the hierarchy.
    pub speculative: bool,
}

/// One out-of-order core.
///
/// Drive it with [`Core::tick`] once per cycle, sharing a
/// [`MemorySystem`] and a functional [`SparseMem`] with the other cores.
#[derive(Debug)]
pub struct Core {
    id: usize,
    cfg: CoreConfig,
    secure: SecureConfig,
    /// Pre-decoded instruction stream: every `Program` instruction's
    /// operands and class flags computed once at construction, so fetch
    /// reads dense records instead of re-running the `Inst` accessor
    /// matches on every slot of every cycle.
    decoded: Arc<DecodedProgram>,

    // Frontend.
    fetch_pc: usize,
    fetch_stalled_until: u64,
    fetch_halted: bool,
    /// Checkpoint drain: while set, fetch dispatches nothing, so the
    /// in-flight window empties as instructions resolve and commit.
    /// Unlike `fetch_stalled_until` this survives squash redirects.
    fetch_paused: bool,

    // Backend structures.
    rename: Rename,
    rob: Rob,
    iq: Vec<Seq>,
    lq: LoadQueue,
    sq: StoreQueue,
    sb: StoreBuffer,
    shadows: ShadowTracker,
    guards: GuardTable,
    bpred: BranchPredictor,
    lpt: LoadPairTable,
    mdp: StoreSets,

    halted: bool,
    /// Remaining committed-instruction budget (`u64::MAX` = unlimited).
    fuel: u64,
    out_of_fuel: bool,
    stats: CoreStats,
    observations: Vec<Observation>,
    record_observations: bool,
    recon_multi_source: bool,
    trace: TraceLog,
}

impl Core {
    /// Creates a core running `program` from its entry point.
    ///
    /// The program is decoded once here; when several cores run the same
    /// code (multithreaded workloads), decode once with
    /// [`DecodedProgram::decode`] and use [`Core::with_decoded`] instead.
    #[must_use]
    pub fn new(
        id: usize,
        program: Arc<Program>,
        cfg: CoreConfig,
        secure: SecureConfig,
        recon_cfg: ReconConfig,
    ) -> Self {
        let entry = program.entry;
        let decoded = Arc::new(DecodedProgram::decode(&program));
        Self::with_decoded(id, decoded, entry, cfg, secure, recon_cfg)
    }

    /// Creates a core running a shared pre-decoded stream from `entry`.
    ///
    /// `entry` overrides the decoded program's own entry point so one
    /// decode can serve every thread of a multithreaded workload (threads
    /// share code but start at different instructions).
    #[must_use]
    pub fn with_decoded(
        id: usize,
        decoded: Arc<DecodedProgram>,
        entry: usize,
        cfg: CoreConfig,
        secure: SecureConfig,
        recon_cfg: ReconConfig,
    ) -> Self {
        let lpt_entries = recon_cfg.lpt_size.resolve(cfg.num_pregs);
        Core {
            id,
            cfg,
            secure,
            decoded,
            fetch_pc: entry,
            fetch_stalled_until: 0,
            fetch_halted: false,
            fetch_paused: false,
            rename: Rename::new(cfg.num_pregs),
            rob: Rob::new(cfg.rob_entries),
            iq: Vec::with_capacity(cfg.iq_entries),
            lq: LoadQueue::new(cfg.lq_entries),
            sq: StoreQueue::new(cfg.sq_entries),
            sb: StoreBuffer::new(cfg.sb_entries),
            shadows: ShadowTracker::new(),
            guards: GuardTable::new(cfg.num_pregs),
            bpred: BranchPredictor::new(cfg.bpred_bits),
            lpt: LoadPairTable::with_entries(lpt_entries),
            mdp: StoreSets::default(),
            halted: false,
            fuel: u64::MAX,
            out_of_fuel: false,
            stats: CoreStats::default(),
            observations: Vec::new(),
            record_observations: false,
            recon_multi_source: recon_cfg.multi_source,
            trace: TraceLog::with_capacity(cfg.trace_capacity),
        }
    }

    /// This core's id (its index in the memory system).
    #[must_use]
    pub fn id(&self) -> usize {
        self.id
    }

    /// The next instruction index fetch will read (the architectural pc
    /// when the pipeline is empty).
    #[must_use]
    pub fn fetch_pc(&self) -> usize {
        self.fetch_pc
    }

    /// Seeds an architectural register before the first cycle (thread
    /// ids, base pointers).
    pub fn seed_reg(&mut self, reg: ArchReg, value: u64) {
        self.rename.seed(reg, value);
    }

    /// Repositions the frontend after a functional fast-forward: fetch
    /// resumes at `pc`, or the core is marked architecturally finished
    /// if the warmup already executed the program's `halt`.
    ///
    /// Must only be called with an empty pipeline (a fresh or drained
    /// core); the architectural registers are expected to have been
    /// written via [`Core::seed_reg`] beforehand.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if instructions are in flight.
    pub fn warm_restart(&mut self, pc: usize, halted: bool) {
        debug_assert!(
            self.pipeline_empty(),
            "fast-forward writeback requires an empty pipeline"
        );
        self.fetch_pc = pc;
        self.fetch_halted = halted;
        self.halted = halted;
    }

    /// Enables recording of [`Observation`]s (off by default; used by the
    /// Table 1 analysis).
    pub fn record_observations(&mut self, on: bool) {
        self.record_observations = on;
    }

    /// Enables pipeline-event tracing (off by default).
    pub fn record_trace(&mut self, on: bool) {
        self.trace.set_enabled(on);
    }

    /// Drains the recorded pipeline trace (oldest retained event first).
    pub fn take_trace(&mut self) -> Vec<crate::trace::TraceEvent> {
        self.trace.take()
    }

    /// Trace events dropped by the ring buffer so far.
    #[must_use]
    pub fn trace_dropped(&self) -> u64 {
        self.trace.dropped()
    }

    /// Caps the number of instructions this core may still commit (its
    /// *fuel*). Once the budget is exhausted the core freezes cleanly at
    /// the next commit attempt: [`Core::tick`] returns `false`,
    /// [`Core::out_of_fuel`] turns `true`, and every statistic
    /// accumulated so far stays readable — the deadline mechanism behind
    /// `recon_sim`'s `SimError::DeadlineExceeded`.
    pub fn set_fuel(&mut self, fuel: u64) {
        self.fuel = fuel;
        self.out_of_fuel = fuel == 0 && !self.is_done();
    }

    /// Whether the core stopped because its commit budget ran out
    /// (see [`Core::set_fuel`]).
    #[must_use]
    pub fn out_of_fuel(&self) -> bool {
        self.out_of_fuel
    }

    /// Drains recorded observations.
    pub fn take_observations(&mut self) -> Vec<Observation> {
        std::mem::take(&mut self.observations)
    }

    /// Whether the program has committed its `halt` and drained all
    /// stores.
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.halted && self.sb.is_empty()
    }

    /// Instructions committed so far — a cheap accessor for the
    /// liveness watchdog's per-cycle forward-progress check (avoids the
    /// full [`Core::stats`] copy on the hot path).
    #[must_use]
    pub fn committed(&self) -> u64 {
        self.stats.committed
    }

    /// Statistics accumulated so far.
    #[must_use]
    pub fn stats(&self) -> CoreStats {
        let mut s = self.stats;
        s.lpt = self.lpt.stats();
        s.trace_dropped = self.trace.dropped();
        s
    }

    /// Reads the committed architectural value of a register (only
    /// meaningful once [`Core::is_done`]).
    #[must_use]
    pub fn arch_read(&self, reg: ArchReg) -> u64 {
        self.rename.read(self.rename.lookup(reg))
    }

    // ------------------------------------------------------------------
    // Stall forensics
    // ------------------------------------------------------------------

    /// Captures a structured snapshot of why this core is (or is not)
    /// making progress: queue occupancies, scheme state, and the
    /// ROB-head instruction's precise wait reason. Read-only; `mem`
    /// supplies MESI/directory/reveal state for the head's address.
    ///
    /// This is the per-core half of the liveness watchdog's
    /// `StallReport` (`recon_sim`).
    #[must_use]
    pub fn stall_info(&self, mem: &MemorySystem) -> CoreStallInfo {
        let frontier = self.shadows.frontier();
        let queue = |name: &str, len: usize, cap: usize| QueueOcc {
            name: name.to_string(),
            len: len as u64,
            cap: cap as u64,
        };
        let head = self.rob.head().map(|e| {
            let status = match e.status {
                Status::Waiting => "waiting-issue".to_string(),
                Status::Executing { done_at } => {
                    format!("executing, done at cycle {done_at}")
                }
                Status::Done => "done".to_string(),
            };
            let mut guarded = Vec::new();
            for p in e.srcs.iter().flatten() {
                if self.guards.is_active(*p as usize, frontier) {
                    guarded.push((*p, self.guards.get(*p as usize).unwrap_or(0)));
                }
            }
            let addr = e.addr.or_else(|| self.predict_head_addr(e));
            let (l1_state, l2_state, dir_state, word_revealed) = match addr {
                Some(a) => (
                    mem.l1_state(self.id, a).map(|s| format!("{s:?}")),
                    mem.l2_state(self.id, a).map(|s| format!("{s:?}")),
                    mem.dir_state(a).map(|s| format!("{s:?}")),
                    Some(mem.probe_revealed(self.id, a)),
                ),
                None => (None, None, None, None),
            };
            let lpt_entry = e
                .inst
                .addr_src()
                .and(e.srcs[0])
                .and_then(|p| self.lpt.peek(p));
            HeadForensics {
                seq: e.seq,
                pc: e.pc as u64,
                inst: e.inst.to_string(),
                status,
                wait: self.classify_wait(e, frontier),
                addr,
                speculative: self.shadows.is_speculative(e.seq),
                delayed_by_scheme: e.was_delayed_by_scheme,
                guarded_operands: guarded,
                l1_state,
                l2_state,
                dir_state,
                word_revealed,
                lpt_entry,
            }
        });
        CoreStallInfo {
            core: self.id as u64,
            committed: self.stats.committed,
            halted: self.halted,
            out_of_fuel: self.out_of_fuel,
            fetch_pc: self.fetch_pc as u64,
            queues: vec![
                queue("rob", self.rob.len(), self.cfg.rob_entries),
                queue("iq", self.iq.len(), self.cfg.iq_entries),
                queue("lq", self.lq.len(), self.cfg.lq_entries),
                queue("sq", self.sq.len(), self.cfg.sq_entries),
                queue("sb", self.sb.len(), self.cfg.sb_entries),
            ],
            shadows: self.shadows.len() as u64,
            guards_active: self.guards.active_count(frontier) as u64,
            head,
        }
    }

    /// Best-effort effective address for an un-issued memory op at the
    /// head: computable once the base operand's value is ready.
    fn predict_head_addr(&self, e: &RobEntry) -> Option<u64> {
        let offset = match e.inst {
            Inst::Load { offset, .. }
            | Inst::Store { offset, .. }
            | Inst::AmoAdd { offset, .. } => offset,
            _ => return None,
        };
        let base = e.srcs[0]?;
        self.rename
            .is_ready(base)
            .then(|| self.rename.read(base).wrapping_add(offset as u64) & !7)
    }

    /// Mirrors the issue-stage checks read-only to state *why* the head
    /// entry has not committed.
    fn classify_wait(&self, e: &RobEntry, frontier: Seq) -> String {
        match e.status {
            Status::Done => {
                if e.inst.is_store()
                    && !matches!(e.inst, Inst::AmoAdd { .. })
                    && !self.sb.has_space()
                {
                    return format!(
                        "store-buffer full at commit ({}/{})",
                        self.sb.len(),
                        self.cfg.sb_entries
                    );
                }
                "ready to commit".to_string()
            }
            Status::Executing { done_at } => {
                format!("in execution, result available at cycle {done_at}")
            }
            Status::Waiting => {
                // A plain store issues its address computation only; the
                // data operand never blocks issue.
                let issue_srcs: &[Option<crate::rename::PReg>] =
                    if matches!(e.inst, Inst::Store { .. }) {
                        &e.srcs[..1]
                    } else {
                        &e.srcs[..]
                    };
                for p in issue_srcs.iter().flatten() {
                    if !self.rename.is_ready(*p) {
                        return format!("operand p{p} value not yet produced");
                    }
                }
                let nda = self.secure.kind.delays_value_broadcast();
                let stt = self.secure.kind.blocks_transmitters() && e.inst.is_transmitter();
                if nda || stt {
                    for p in issue_srcs.iter().flatten() {
                        if self.guards.is_active(*p as usize, frontier) {
                            let root = self.guards.get(*p as usize).unwrap_or(0);
                            return format!(
                                "delayed by scheme {}: operand p{p} guarded (root seq {root})",
                                self.secure.label()
                            );
                        }
                    }
                }
                match e.inst {
                    Inst::AmoAdd { .. } => {
                        if self.rob.head().map(|h| h.seq) != Some(e.seq) {
                            return "amo waiting to reach the ROB head (serializing)".to_string();
                        }
                        if !self.sb.is_empty() {
                            return format!(
                                "amo at head draining the store buffer ({} entries)",
                                self.sb.len()
                            );
                        }
                        if self.cfg.amo_empty_sq_bug && !self.sq.is_empty() {
                            return format!(
                                "amo at head blocked on {} younger store(s) in the SQ \
                                 (amo_empty_sq_bug test hook): the store cannot commit \
                                 behind the amo — deadlock",
                                self.sq.len()
                            );
                        }
                        "amo ready to issue".to_string()
                    }
                    i if i.is_load() => {
                        if self.unissued_amo_older_than(e.seq) {
                            return "load waiting for an older amo to issue \
                                    (amo RMW serializes memory)"
                                .to_string();
                        }
                        if self.cfg.mdp == MdpMode::Conservative {
                            if let Some(s) =
                                self.sq.iter().find(|s| s.seq < e.seq && s.addr.is_none())
                            {
                                return format!(
                                    "load waiting for older store seq {} to resolve its \
                                     address (conservative MDP)",
                                    s.seq
                                );
                            }
                        }
                        "load waiting on memory dependence / forwarding".to_string()
                    }
                    _ => "in the issue queue (transient)".to_string(),
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Invariant audit + soft-error injection
    // ------------------------------------------------------------------

    /// Sweeps every in-core structure for invariant violations.
    ///
    /// Every check here holds by construction during an uncorrupted run
    /// (see [`recon::audit`]): the ROB window is contiguous and bounded,
    /// the side queues (IQ/LQ/SQ) and shadow tracker reference only live
    /// ROB entries, guard roots never point past the sequence counter,
    /// the LPT maps tags to their home slots, and the rename structures
    /// partition the physical registers exactly. A non-empty result
    /// means the core's state was damaged from outside the model.
    #[must_use]
    pub fn audit(&self) -> Vec<recon::AuditViolation> {
        let mut out = Vec::new();
        let site = format!("core{}", self.id);
        let next_seq = self.rob.next_seq();

        // ROB: bounded, seq-contiguous, consistent with the counter.
        if self.rob.len() > self.rob.capacity() {
            out.push(recon::AuditViolation::new(
                "rob-overflow",
                format!("{site}.rob"),
                format!(
                    "{} entries exceed capacity {}",
                    self.rob.len(),
                    self.rob.capacity()
                ),
            ));
        }
        let mut prev: Option<Seq> = None;
        for e in self.rob.iter() {
            if let Some(p) = prev {
                if e.seq != p + 1 {
                    out.push(recon::AuditViolation::new(
                        "rob-seq-contiguous",
                        format!("{site}.rob"),
                        format!("seq {} follows {p}, expected {}", e.seq, p + 1),
                    ));
                }
            }
            prev = Some(e.seq);
        }
        if let Some(young) = prev {
            if young + 1 != next_seq {
                out.push(recon::AuditViolation::new(
                    "rob-next-seq",
                    format!("{site}.rob"),
                    format!("youngest seq {young} but next_seq {next_seq}"),
                ));
            }
        }

        // Side queues: members must be live ROB entries, age-ordered.
        for &seq in &self.iq {
            if self.rob.get(seq).is_none() {
                out.push(recon::AuditViolation::new(
                    "iq-seq-live",
                    format!("{site}.iq"),
                    format!("IQ holds seq {seq} with no live ROB entry"),
                ));
            }
        }
        let mut prev: Option<Seq> = None;
        for e in self.lq.iter() {
            if self.rob.get(e.seq).is_none() {
                out.push(recon::AuditViolation::new(
                    "lq-seq-live",
                    format!("{site}.lq"),
                    format!("LQ holds seq {} with no live ROB entry", e.seq),
                ));
            }
            if let Some(p) = prev {
                if e.seq <= p {
                    out.push(recon::AuditViolation::new(
                        "lq-age-order",
                        format!("{site}.lq"),
                        format!("seq {} not older than successor {p}", e.seq),
                    ));
                }
            }
            prev = Some(e.seq);
        }
        let mut prev: Option<Seq> = None;
        for e in self.sq.iter() {
            if self.rob.get(e.seq).is_none() {
                out.push(recon::AuditViolation::new(
                    "sq-seq-live",
                    format!("{site}.sq"),
                    format!("SQ holds seq {} with no live ROB entry", e.seq),
                ));
            }
            if let Some(p) = prev {
                if e.seq <= p {
                    out.push(recon::AuditViolation::new(
                        "sq-age-order",
                        format!("{site}.sq"),
                        format!("seq {} not older than successor {p}", e.seq),
                    ));
                }
            }
            prev = Some(e.seq);
        }

        // Shadows: every unresolved caster is still in flight.
        for s in self.shadows.iter() {
            if self.rob.get(s).is_none() {
                out.push(recon::AuditViolation::new(
                    "shadow-seq-live",
                    format!("{site}.shadows"),
                    format!("unresolved shadow caster seq {s} not in ROB"),
                ));
            }
        }

        // Guards: roots derive from dispatched loads, so they never
        // exceed the sequence counter; an *active* root is a load that
        // cannot yet have committed (an older shadow is unresolved), so
        // it must occupy a live ROB slot.
        let frontier = self.shadows.frontier();
        for (preg, root) in self.guards.iter() {
            if root >= next_seq {
                out.push(recon::AuditViolation::new(
                    "guard-root-future",
                    format!("{site}.guards"),
                    format!("p{preg} guarded by root {root} >= next_seq {next_seq}"),
                ));
            } else if frontier < root && self.rob.get(root).is_none() {
                out.push(recon::AuditViolation::new(
                    "guard-active-dead-root",
                    format!("{site}.guards"),
                    format!("p{preg}'s active root {root} not in ROB window"),
                ));
            }
        }

        // LPT slot mapping and rename partition.
        self.lpt.audit(&site, self.rename.num_pregs(), &mut out);
        self.rename.audit(
            &site,
            self.rob.iter().filter_map(|e| e.dst.map(|d| d.old)),
            &mut out,
        );
        out
    }

    /// Soft-error injection: flips one bit of a random LPT entry.
    /// Returns a description of the site, or `None` if the table holds
    /// no target.
    pub fn inject_lpt_flip(&mut self, rng: &mut recon_isa::rng::SplitMix64) -> Option<String> {
        self.lpt
            .inject_flip(rng)
            .map(|d| format!("core{}.lpt: {d}", self.id))
    }

    /// Soft-error injection: flips one bit of a live physical-register
    /// value. Returns a description of the site, or `None` if the
    /// chosen register cannot carry a visible fault.
    pub fn inject_reg_flip(&mut self, rng: &mut recon_isa::rng::SplitMix64) -> Option<String> {
        self.rename
            .inject_flip(rng)
            .map(|d| format!("core{}.rename: {d}", self.id))
    }

    // ------------------------------------------------------------------
    // Checkpointing
    // ------------------------------------------------------------------

    /// Suspends (or resumes) fetch so the pipeline drains for a
    /// checkpoint: with nothing new dispatched, branches and stores
    /// resolve, shadows retire, guards deactivate, and the window
    /// empties within a bounded number of cycles.
    pub fn pause_fetch(&mut self, paused: bool) {
        self.fetch_paused = paused;
    }

    /// Whether no speculative state is in flight: ROB, IQ, LSQ, store
    /// buffer, and shadow tracker are all empty. Only in this state can
    /// the core be snapshotted (all remaining state is architectural).
    #[must_use]
    pub fn pipeline_empty(&self) -> bool {
        self.rob.is_empty()
            && self.iq.is_empty()
            && self.lq.is_empty()
            && self.sq.is_empty()
            && self.sb.is_empty()
            && self.shadows.is_empty()
    }

    /// Serializes the core's architectural and persistent-metadata state.
    ///
    /// Must be called with the pipeline drained ([`Core::pipeline_empty`]):
    /// at that boundary the ROB/IQ/LSQ/SB/shadows hold nothing, so no
    /// speculative state exists to capture — only the register file,
    /// predictors, guard table, LPT, statistics, and frontend cursor.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if the pipeline is not drained.
    pub fn save_snap(&self, w: &mut SnapWriter) {
        debug_assert!(
            self.pipeline_empty(),
            "core snapshot requires a drained pipeline"
        );
        w.tag(b"CORE");
        w.u64(self.fetch_pc as u64);
        w.u64(self.fetch_stalled_until);
        w.bool(self.fetch_halted);
        self.rename.save_snap(w);
        w.u64(self.rob.next_seq());
        self.bpred.save_snap(w);
        self.guards.save_snap(w);
        self.lpt.save_snap(w);
        self.mdp.save_snap(w);
        w.bool(self.halted);
        w.u64(self.fuel);
        w.bool(self.out_of_fuel);
        let s = &self.stats;
        for v in [
            s.cycles,
            s.committed,
            s.loads_committed,
            s.stores_committed,
            s.branches_committed,
            s.branch_mispredicts,
            s.memory_violations,
            s.squashed,
            s.guarded_loads,
            s.guarded_loads_committed,
            s.loads_delayed_by_scheme,
            s.scheme_delay_cycles,
            s.revealed_loads_committed,
            s.reveals_requested,
            s.stall_head_load,
            s.stall_head_store,
            s.stall_head_branch,
            s.stall_head_other,
            s.stall_empty,
        ] {
            w.u64(v);
        }
        w.bool(self.record_observations);
        w.u64(self.observations.len() as u64);
        for o in &self.observations {
            w.u64(o.cycle);
            w.u64(o.pc as u64);
            w.u64(o.addr);
            w.u32(o.latency);
            w.bool(o.speculative);
        }
        self.trace.save_snap(w);
    }

    /// Restores state captured by [`Core::save_snap`] into this core.
    ///
    /// The core must be freshly constructed from the *same* configuration
    /// (same program, core config, secure scheme, and ReCon config) —
    /// configuration is deliberately not stored in snapshots; it is
    /// re-derived from the run setup and only the mutable state is
    /// loaded.
    ///
    /// # Errors
    ///
    /// Fails on a truncated or corrupt stream. On error the core is left
    /// partially restored and must be discarded.
    ///
    /// # Panics
    ///
    /// Panics if called on a core with in-flight instructions.
    pub fn load_snap(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        assert!(
            self.pipeline_empty(),
            "restore requires an idle (freshly constructed) core"
        );
        r.expect_tag(b"CORE")?;
        self.fetch_pc = r.u64()? as usize;
        self.fetch_stalled_until = r.u64()?;
        self.fetch_halted = r.bool()?;
        self.rename = Rename::load_snap(r)?;
        let next_seq = r.u64()?;
        self.rob.set_next_seq(next_seq);
        self.bpred = BranchPredictor::load_snap(r)?;
        self.guards = GuardTable::load_snap(r)?;
        self.lpt = LoadPairTable::load_snap(r)?;
        self.mdp = StoreSets::load_snap(r)?;
        self.halted = r.bool()?;
        self.fuel = r.u64()?;
        self.out_of_fuel = r.bool()?;
        let s = &mut self.stats;
        for v in [
            &mut s.cycles,
            &mut s.committed,
            &mut s.loads_committed,
            &mut s.stores_committed,
            &mut s.branches_committed,
            &mut s.branch_mispredicts,
            &mut s.memory_violations,
            &mut s.squashed,
            &mut s.guarded_loads,
            &mut s.guarded_loads_committed,
            &mut s.loads_delayed_by_scheme,
            &mut s.scheme_delay_cycles,
            &mut s.revealed_loads_committed,
            &mut s.reveals_requested,
            &mut s.stall_head_load,
            &mut s.stall_head_store,
            &mut s.stall_head_branch,
            &mut s.stall_head_other,
            &mut s.stall_empty,
        ] {
            *v = r.u64()?;
        }
        self.record_observations = r.bool()?;
        let obs_count = r.u64()?;
        self.observations = Vec::new();
        for _ in 0..obs_count {
            let cycle = r.u64()?;
            let pc = r.u64()? as usize;
            let addr = r.u64()?;
            let latency = r.u32()?;
            let speculative = r.bool()?;
            self.observations.push(Observation {
                cycle,
                pc,
                addr,
                latency,
                speculative,
            });
        }
        self.trace = TraceLog::load_snap(r)?;
        self.fetch_paused = false;
        Ok(())
    }

    /// Advances the core one cycle against the shared memory system and
    /// functional memory. Returns `true` while the core still has work.
    pub fn tick(&mut self, mem: &mut MemorySystem, data: &mut SparseMem, now: u64) -> bool {
        if self.is_done() || self.out_of_fuel {
            return false;
        }
        self.stats.cycles += 1;
        self.complete(mem, now);
        self.commit(mem, now);
        self.drain_store_buffer(mem, data);
        self.supply_store_data();
        self.issue(mem, data, now);
        self.fetch(now);
        !self.is_done()
    }

    // ------------------------------------------------------------------
    // Completion (writeback)
    // ------------------------------------------------------------------

    fn complete(&mut self, mem: &mut MemorySystem, now: u64) {
        loop {
            // Oldest completed-this-cycle entry; re-scan after each, as a
            // branch completion may squash younger entries.
            let Some(seq) = self
                .rob
                .iter()
                .find(|e| matches!(e.status, Status::Executing { done_at } if done_at <= now))
                .map(|e| e.seq)
            else {
                break;
            };
            self.finish_one(seq, mem, now);
        }
    }

    fn finish_one(&mut self, seq: Seq, mem: &mut MemorySystem, now: u64) {
        let frontier = self.shadows.frontier();
        let entry = self.rob.get_mut(seq).expect("completing entry exists");
        entry.status = Status::Done;
        let inst = entry.inst;
        let entry_pc = entry.pc;
        self.trace.push(now, seq, entry_pc, TraceKind::Complete);

        match inst {
            Inst::Load { .. } | Inst::LoadIdx { .. } | Inst::AmoAdd { .. } => {
                let value = entry.value.expect("load computed its value at issue");
                let dst = entry.dst.expect("loads have destinations");
                let revealed = entry.revealed;
                let forwarded_guard = entry.guard_root; // stashed at issue
                let speculative = self.shadows.is_speculative(seq);
                let is_amo = matches!(inst, Inst::AmoAdd { .. });
                // Guard placement (§5.4): a speculative, unrevealed load
                // guards its destination; ReCon's revealed words do not.
                let own_root =
                    (self.secure.kind.is_secure() && speculative && !revealed && !is_amo)
                        .then_some(seq);
                let root = match (own_root, forwarded_guard) {
                    (Some(a), Some(b)) => Some(a.max(b)),
                    (a, b) => a.or(b),
                };
                let entry = self.rob.get_mut(seq).expect("still present");
                entry.guard_root = root;
                match root.filter(|&r| frontier < r) {
                    Some(r) => {
                        self.guards.set(dst.new as usize, r);
                        self.stats.guarded_loads += 1;
                    }
                    None => self.guards.clear(dst.new as usize),
                }
                self.rename.write(dst.new, value);
            }
            Inst::Store { .. } => {
                // Store address resolution: the store shadow lifts and,
                // in predictor mode, violations are checked and train
                // the store-set predictor.
                let addr = entry.addr.expect("store computed its address");
                let store_pc = entry.pc;
                self.shadows.resolve(seq);
                self.sq.set_addr(seq, addr);
                if self.cfg.mdp == MdpMode::Predictor {
                    self.mdp.store_resolved(store_pc, seq);
                    if let Some(victim) = self.lq.violation(seq, addr) {
                        self.stats.memory_violations += 1;
                        let pc = self.rob.get(victim).expect("violating load present").pc;
                        self.mdp.violation(pc, store_pc);
                        self.squash_from(victim, pc, now);
                        return;
                    }
                }
            }
            Inst::Branch { target, .. } => {
                let actual = entry.taken_actual.expect("branch resolved at execute");
                let (predicted, token) = entry.pred.expect("branches are predicted");
                let next_pc = if actual { target } else { entry.pc + 1 };
                self.shadows.resolve(seq);
                self.bpred.update(token, actual);
                if predicted != actual {
                    self.stats.branch_mispredicts += 1;
                    self.bpred.repair(token, actual);
                    self.squash_from(seq + 1, next_pc, now);
                    return;
                }
            }
            _ => {
                // ALU-class: write back and propagate taint (STT).
                if let Some(dst) = entry.dst {
                    let value = entry.value.expect("ALU computed a value");
                    let srcs: Vec<usize> =
                        entry.srcs.iter().flatten().map(|&p| p as usize).collect();
                    self.rename.write(dst.new, value);
                    if self.secure.kind.propagates_taint() {
                        match self.guards.propagate(srcs, None, frontier) {
                            Some(root) => self.guards.set(dst.new as usize, root),
                            None => self.guards.clear(dst.new as usize),
                        }
                        if let Some(e) = self.rob.get_mut(seq) {
                            e.guard_root = self.guards.get(dst.new as usize);
                        }
                    } else {
                        self.guards.clear(dst.new as usize);
                    }
                }
            }
        }
        let _ = mem;
    }

    // ------------------------------------------------------------------
    // Commit
    // ------------------------------------------------------------------

    fn commit(&mut self, mem: &mut MemorySystem, now: u64) {
        let mut committed_any = false;
        for _ in 0..self.cfg.commit_width {
            // Deadline hook: refuse to commit past the fuel budget. The
            // core freezes here (mid-run, partial stats intact) rather
            // than at a cycle boundary so the cap is exact in committed
            // instructions regardless of commit width.
            if self.fuel == 0 && !self.halted {
                self.out_of_fuel = true;
                break;
            }
            let Some(head) = self.rob.head() else {
                if !committed_any {
                    self.stats.stall_empty += 1;
                }
                break;
            };
            if head.status != Status::Done {
                if !committed_any {
                    match head.inst {
                        i if i.is_load() => self.stats.stall_head_load += 1,
                        i if i.is_store() => self.stats.stall_head_store += 1,
                        i if i.is_cond_branch() => self.stats.stall_head_branch += 1,
                        _ => self.stats.stall_head_other += 1,
                    }
                }
                break;
            }
            if head.inst.is_store()
                && !matches!(head.inst, Inst::AmoAdd { .. })
                && !self.sb.has_space()
            {
                if !committed_any {
                    self.stats.stall_head_store += 1;
                }
                break;
            }
            committed_any = true;
            let entry = self.rob.pop_head().expect("head exists");
            let seq = entry.seq;
            self.trace.push(now, seq, entry.pc, TraceKind::Commit);
            self.stats.committed += 1;
            self.fuel = self.fuel.saturating_sub(1);
            self.iq.retain(|&s| s != seq); // Done entries normally left already

            match entry.inst {
                Inst::Load { .. } => {
                    self.stats.loads_committed += 1;
                    if entry.guard_root.is_some() {
                        self.stats.guarded_loads_committed += 1;
                    }
                    if entry.revealed {
                        self.stats.revealed_loads_committed += 1;
                    }
                    if entry.was_delayed_by_scheme {
                        self.stats.loads_delayed_by_scheme += 1;
                    }
                    self.lq.commit(seq);
                    if self.secure.recon {
                        let dst = entry.dst.expect("loads have destinations");
                        let base = entry.srcs[0].expect("loads have a base");
                        let addr = entry.addr.expect("committed load has an address");
                        // Forwarded values are concealed in the SQ/SB
                        // (§4.4.2): a forwarded pair must not reveal.
                        if !entry.forwarded {
                            if let Some(revealed_addr) =
                                self.lpt
                                    .commit_load(dst.new, Some(base), addr, entry.revealed)
                            {
                                self.stats.reveals_requested += 1;
                                mem.reveal(self.id, revealed_addr);
                            }
                        } else {
                            self.lpt.commit_writer(dst.new);
                        }
                    }
                    if let Some(dst) = entry.dst {
                        self.rename.commit(dst);
                    }
                }
                Inst::LoadIdx { .. } => {
                    self.stats.loads_committed += 1;
                    if entry.guard_root.is_some() {
                        self.stats.guarded_loads_committed += 1;
                    }
                    if entry.revealed {
                        self.stats.revealed_loads_committed += 1;
                    }
                    if entry.was_delayed_by_scheme {
                        self.stats.loads_delayed_by_scheme += 1;
                    }
                    self.lq.commit(seq);
                    if self.secure.recon {
                        let dst = entry.dst.expect("loads have destinations");
                        let addr = entry.addr.expect("committed load has an address");
                        if !entry.forwarded {
                            if self.recon_multi_source {
                                // §5.1.1: one LPT lookup per address
                                // operand; a pair can be revealed for each.
                                let srcs = [entry.srcs[0], entry.srcs[1]];
                                for revealed_addr in self
                                    .lpt
                                    .commit_load_multi(dst.new, srcs, addr, entry.revealed)
                                    .into_iter()
                                    .flatten()
                                {
                                    self.stats.reveals_requested += 1;
                                    mem.reveal(self.id, revealed_addr);
                                }
                            } else {
                                // The paper's evaluated configuration:
                                // multi-source loads (like cracked x86
                                // µops) detect no pair, but still install
                                // their own address.
                                if let Some(revealed_addr) =
                                    self.lpt.commit_load(dst.new, None, addr, entry.revealed)
                                {
                                    self.stats.reveals_requested += 1;
                                    mem.reveal(self.id, revealed_addr);
                                }
                            }
                        } else {
                            self.lpt.commit_writer(dst.new);
                        }
                    }
                    if let Some(dst) = entry.dst {
                        self.rename.commit(dst);
                    }
                }
                Inst::Store { .. } => {
                    self.stats.stores_committed += 1;
                    // The data may not have been supplied yet this cycle
                    // (the producer can commit in the same burst); it is
                    // necessarily ready by now, so read it directly.
                    if self.sq.iter().any(|e| e.seq == seq && e.value.is_none()) {
                        let val_preg = entry.srcs[1].expect("store has a data source");
                        debug_assert!(self.rename.is_ready(val_preg));
                        self.sq.set_value(seq, self.rename.read(val_preg));
                    }
                    let (addr, value) = self.sq.commit(seq);
                    self.sb.push(addr, value);
                }
                Inst::AmoAdd { .. } => {
                    self.stats.loads_committed += 1;
                    self.stats.stores_committed += 1;
                    self.lq.commit(seq);
                    if self.secure.recon {
                        if let Some(dst) = entry.dst {
                            self.lpt.commit_writer(dst.new);
                        }
                    }
                    if let Some(dst) = entry.dst {
                        self.rename.commit(dst);
                    }
                }
                Inst::Branch { .. } => {
                    self.stats.branches_committed += 1;
                }
                Inst::Halt => {
                    self.halted = true;
                    return;
                }
                _ => {
                    if let Some(dst) = entry.dst {
                        if self.secure.recon {
                            self.lpt.commit_writer(dst.new);
                        }
                        self.rename.commit(dst);
                    }
                }
            }
        }
    }

    fn drain_store_buffer(&mut self, mem: &mut MemorySystem, data: &mut SparseMem) {
        if let Some((addr, value)) = self.sb.pop() {
            mem.write(self.id, addr);
            data.write(addr, value);
        }
    }

    /// Supplies store data to SQ entries whose value register became
    /// ready (and readable under NDA), enabling store-to-load forwarding
    /// before commit.
    fn supply_store_data(&mut self) {
        let frontier = self.shadows.frontier();
        let pending: Vec<Seq> = self
            .sq
            .iter()
            .filter(|e| e.value.is_none())
            .map(|e| e.seq)
            .collect();
        for seq in pending {
            let Some(entry) = self.rob.get(seq) else {
                continue;
            };
            let Some(val_preg) = entry.srcs[1] else {
                continue;
            };
            if !self.rename.is_ready(val_preg) {
                continue;
            }
            if self.secure.kind.delays_value_broadcast()
                && self.guards.is_active(val_preg as usize, frontier)
            {
                continue; // NDA: the value is not yet visible to anyone
            }
            self.sq.set_value(seq, self.rename.read(val_preg));
        }
    }

    // ------------------------------------------------------------------
    // Issue / execute
    // ------------------------------------------------------------------

    fn issue(&mut self, mem: &mut MemorySystem, data: &mut SparseMem, now: u64) {
        let mut budget = self.cfg.issue_width;
        let mut i = 0;
        while i < self.iq.len() && budget > 0 {
            let seq = self.iq[i];
            match self.try_issue(seq, mem, data, now) {
                IssueResult::Issued => {
                    if self.trace.is_enabled() {
                        if let Some(e) = self.rob.get(seq) {
                            let pc = e.pc;
                            self.trace.push(now, seq, pc, TraceKind::Issue);
                        }
                    }
                    self.iq.remove(i);
                    budget -= 1;
                }
                IssueResult::NotReady => {
                    i += 1;
                }
            }
        }
    }

    fn try_issue(
        &mut self,
        seq: Seq,
        mem: &mut MemorySystem,
        data: &mut SparseMem,
        now: u64,
    ) -> IssueResult {
        let frontier = self.shadows.frontier();
        let Some(entry) = self.rob.get(seq) else {
            // Squashed while queued; drop silently.
            return IssueResult::Issued;
        };
        let inst = entry.inst;
        let srcs = entry.srcs;

        // A plain store issues its *address computation* only: the data
        // operand is decoupled (supplied to the SQ when it arrives) and
        // never blocks issue. STT likewise only treats the store's
        // address as the transmitted operand; tainted store data is
        // handled at forwarding time (§4.5).
        let issue_srcs: &[Option<crate::rename::PReg>] = if matches!(inst, Inst::Store { .. }) {
            &srcs[..1]
        } else {
            &srcs[..]
        };

        // Dataflow readiness.
        for p in issue_srcs.iter().flatten() {
            if !self.rename.is_ready(*p) {
                return IssueResult::NotReady;
            }
        }
        // Scheme checks.
        let nda_blocks = self.secure.kind.delays_value_broadcast();
        let stt_blocks = self.secure.kind.blocks_transmitters() && inst.is_transmitter();
        if nda_blocks || stt_blocks {
            for p in issue_srcs.iter().flatten() {
                if self.guards.is_active(*p as usize, frontier) {
                    self.stats.scheme_delay_cycles += 1;
                    if let Some(e) = self.rob.get_mut(seq) {
                        e.was_delayed_by_scheme = true;
                    }
                    return IssueResult::NotReady;
                }
            }
        }

        match inst {
            Inst::LoadImm { imm, .. } => self.finish_alu(seq, imm, now, 1),
            Inst::Alu { kind, .. } => {
                let a = self.rename.read(srcs[0].expect("alu has src a"));
                let b = self.rename.read(srcs[1].expect("alu has src b"));
                let lat = if kind == AluKind::Mul {
                    self.cfg.mul_latency
                } else {
                    1
                };
                self.finish_alu(seq, kind.apply(a, b), now, lat)
            }
            Inst::AluImm { kind, imm, .. } => {
                let a = self.rename.read(srcs[0].expect("alui has src"));
                let lat = if kind == AluKind::Mul {
                    self.cfg.mul_latency
                } else {
                    1
                };
                self.finish_alu(seq, kind.apply(a, imm), now, lat)
            }
            Inst::Branch { kind, .. } => {
                let a = self.rename.read(srcs[0].expect("branch src a"));
                let b = self.rename.read(srcs[1].expect("branch src b"));
                let taken = kind.taken(a, b);
                let e = self.rob.get_mut(seq).expect("present");
                e.taken_actual = Some(taken);
                e.status = Status::Executing { done_at: now + 1 };
                IssueResult::Issued
            }
            Inst::Load { offset, .. } => {
                self.issue_load(seq, LoadAddr::Offset(offset), mem, data, now)
            }
            Inst::LoadIdx { .. } => self.issue_load(seq, LoadAddr::Indexed, mem, data, now),
            Inst::Store { offset, .. } => {
                // Address computation; data is supplied separately.
                let base = self.rename.read(srcs[0].expect("store base"));
                let addr = base.wrapping_add(offset as u64) & !7;
                let e = self.rob.get_mut(seq).expect("present");
                e.addr = Some(addr);
                e.status = Status::Executing { done_at: now + 1 };
                IssueResult::Issued
            }
            Inst::AmoAdd { offset, .. } => self.issue_amo(seq, offset, mem, data, now),
            Inst::Jump { .. } | Inst::Nop | Inst::Halt => {
                let e = self.rob.get_mut(seq).expect("present");
                e.status = Status::Executing { done_at: now };
                IssueResult::Issued
            }
        }
    }

    fn finish_alu(&mut self, seq: Seq, value: u64, now: u64, latency: u32) -> IssueResult {
        let e = self.rob.get_mut(seq).expect("present");
        e.value = Some(value);
        e.status = Status::Executing {
            done_at: now + u64::from(latency),
        };
        IssueResult::Issued
    }

    fn issue_load(
        &mut self,
        seq: Seq,
        mode: LoadAddr,
        mem: &mut MemorySystem,
        data: &mut SparseMem,
        now: u64,
    ) -> IssueResult {
        let entry = self.rob.get(seq).expect("present");
        let base_preg = entry.srcs[0].expect("load base");
        let addr = match mode {
            LoadAddr::Offset(offset) => {
                self.rename.read(base_preg).wrapping_add(offset as u64) & !7
            }
            LoadAddr::Indexed => {
                let index_preg = entry.srcs[1].expect("indexed load has an index");
                self.rename
                    .read(base_preg)
                    .wrapping_add(self.rename.read(index_preg).wrapping_shl(3))
                    & !7
            }
        };
        let conservative = self.cfg.mdp == MdpMode::Conservative;
        let speculative = self.shadows.is_speculative(seq);

        // An older AMO that has not yet performed its read-modify-write
        // would make this load's memory view stale: AMOs live outside
        // the SQ (forwarding cannot catch the conflict) and execute only
        // at the ROB head, so the load must wait for it to issue.
        if self.unissued_amo_older_than(seq) {
            return IssueResult::NotReady;
        }

        if !conservative {
            // Store-set prediction: wait for the predicted-dependent
            // in-flight store to resolve before issuing.
            let pc = self.rob.get(seq).expect("present").pc;
            if self.mdp.load_must_wait(pc, seq).is_some() {
                return IssueResult::NotReady;
            }
        }
        let fwd = self.sq.forward(seq, addr, conservative);
        let (value, latency, revealed, forwarded, fwd_seq) = match fwd {
            Forward::MustWait => return IssueResult::NotReady,
            Forward::FromStore { seq: s, value } => {
                // Forwarded data is concealed (§4.4.2); taint travels with
                // it under STT via the store's data guard, conservatively
                // approximated by the supplying store's own speculation.
                (value, 1, false, true, Some(s))
            }
            Forward::FromBuffer { value } => (value, 1, false, true, None),
            Forward::FromMemory => match self.sb.forward(addr) {
                Some(v) => (v, 1, false, true, None),
                None => {
                    let out = mem.read(self.id, addr);
                    if self.record_observations {
                        let pc = self.rob.get(seq).expect("present").pc;
                        self.observations.push(Observation {
                            cycle: now,
                            pc,
                            addr,
                            latency: out.latency,
                            speculative,
                        });
                    }
                    (data.read(addr), out.latency, out.revealed, false, None)
                }
            },
        };
        let frontier = self.shadows.frontier();
        // Taint forwarded from an in-flight store's data register (STT).
        let fwd_guard = if self.secure.kind.propagates_taint() {
            fwd_seq
                .and_then(|s| self.rob.get(s))
                .and_then(|store| store.srcs[1])
                .and_then(|val_preg| self.guards.get(val_preg as usize))
                .filter(|&root| frontier < root)
        } else {
            None
        };
        self.lq.complete(seq, addr, fwd_seq);
        let e = self.rob.get_mut(seq).expect("present");
        e.addr = Some(addr);
        e.value = Some(value);
        e.revealed = revealed;
        e.forwarded = forwarded;
        e.guard_root = fwd_guard; // stashed for completion-time merge
        e.status = Status::Executing {
            done_at: now + u64::from(latency),
        };
        IssueResult::Issued
    }

    /// Whether an AMO older than `seq` is still waiting to issue. Its
    /// memory update happens at issue, so younger loads gate on this.
    fn unissued_amo_older_than(&self, seq: Seq) -> bool {
        self.rob
            .iter()
            .take_while(|e| e.seq < seq)
            .any(|e| matches!(e.inst, Inst::AmoAdd { .. }) && matches!(e.status, Status::Waiting))
    }

    fn issue_amo(
        &mut self,
        seq: Seq,
        offset: i64,
        mem: &mut MemorySystem,
        data: &mut SparseMem,
        now: u64,
    ) -> IssueResult {
        // AMOs are serializing: execute only at the ROB head, with every
        // older committed store drained out of the store buffer so the
        // read-modify-write sees up-to-date memory. At the head there is
        // nothing older left to wait on — all SQ entries and shadows
        // belong to *younger* instructions (a store only leaves the SQ
        // when it commits, which it cannot do behind this AMO), so
        // gating on an empty SQ would deadlock any program with a store
        // in the AMO's fetch shadow.
        let at_head = self.rob.head().is_some_and(|h| h.seq == seq);
        if !at_head || !self.sb.is_empty() {
            return IssueResult::NotReady;
        }
        // Historical bug, reintroducible for liveness-tooling tests only
        // (see `CoreConfig::amo_empty_sq_bug`): waiting for an empty SQ
        // here deadlocks when a younger store sits in the AMO's shadow.
        if self.cfg.amo_empty_sq_bug && !self.sq.is_empty() {
            return IssueResult::NotReady;
        }
        let entry = self.rob.get(seq).expect("present");
        let base_preg = entry.srcs[0].expect("amo base");
        let add_preg = entry.srcs[1].expect("amo addend");
        let addr = self.rename.read(base_preg).wrapping_add(offset as u64) & !7;
        let addend = self.rename.read(add_preg);
        let out = mem.rmw(self.id, addr);
        let old = data.read(addr);
        data.write(addr, old.wrapping_add(addend));
        self.lq.complete(seq, addr, None);
        let e = self.rob.get_mut(seq).expect("present");
        e.addr = Some(addr);
        e.value = Some(old);
        e.revealed = false;
        e.status = Status::Executing {
            done_at: now + u64::from(out.latency),
        };
        IssueResult::Issued
    }

    // ------------------------------------------------------------------
    // Fetch / dispatch
    // ------------------------------------------------------------------

    fn fetch(&mut self, now: u64) {
        if self.fetch_paused || now < self.fetch_stalled_until || self.fetch_halted {
            return;
        }
        for _ in 0..self.cfg.fetch_width {
            if self.fetch_halted {
                break;
            }
            let pc = self.fetch_pc;
            let Some(&d) = self.decoded.get(pc) else {
                // Wrong-path fetch ran off the program; stall until a
                // squash redirects.
                break;
            };
            let inst = d.inst;
            // Structural resources, from the pre-decoded class flags.
            if !self.rob.has_space() || self.iq.len() >= self.cfg.iq_entries {
                break;
            }
            if d.is_load && !self.lq.has_space() {
                break;
            }
            if d.is_store && !d.is_amo && !self.sq.has_space() {
                break;
            }
            if d.dst.is_some() && self.rename.free_count() == 0 {
                break;
            }

            // Rename.
            let mut renamed = [None, None];
            for (i, s) in d.srcs.iter().enumerate() {
                renamed[i] = s.map(|r| self.rename.lookup(r));
            }
            let dst = d
                .dst
                .map(|r| self.rename.allocate(r).expect("checked free list"));

            let seq = self.rob.push(pc, inst);
            self.trace.push(now, seq, pc, TraceKind::Dispatch);
            {
                let e = self.rob.get_mut(seq).expect("just pushed");
                e.srcs = renamed;
                e.dst = dst;
            }

            // Frontend control flow + queue allocation.
            match inst {
                Inst::Branch { target, .. } => {
                    let (pred, token) = self.bpred.predict(pc);
                    self.rob.get_mut(seq).expect("present").pred = Some((pred, token));
                    self.shadows.cast(seq);
                    self.fetch_pc = if pred { target } else { pc + 1 };
                    self.iq.push(seq);
                }
                Inst::Jump { target } => {
                    self.fetch_pc = target;
                    self.iq.push(seq);
                }
                Inst::Halt => {
                    self.fetch_halted = true;
                    self.iq.push(seq);
                    self.fetch_pc = pc; // frozen
                }
                Inst::Load { .. } | Inst::LoadIdx { .. } => {
                    self.lq.push(seq);
                    self.iq.push(seq);
                    self.fetch_pc = pc + 1;
                }
                Inst::Store { .. } => {
                    self.sq.push(seq);
                    self.shadows.cast(seq);
                    if self.cfg.mdp == MdpMode::Predictor {
                        self.mdp.store_dispatched(pc, seq);
                    }
                    self.iq.push(seq);
                    self.fetch_pc = pc + 1;
                }
                Inst::AmoAdd { .. } => {
                    self.lq.push(seq);
                    self.iq.push(seq);
                    self.fetch_pc = pc + 1;
                }
                _ => {
                    self.iq.push(seq);
                    self.fetch_pc = pc + 1;
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Squash
    // ------------------------------------------------------------------

    /// Squashes every instruction with `seq >= first`, redirecting fetch
    /// to `new_pc`.
    fn squash_from(&mut self, first: Seq, new_pc: usize, now: u64) {
        let squashed = self.rob.squash_after(first.saturating_sub(1));
        self.stats.squashed += squashed.len() as u64;
        for e in &squashed {
            self.trace.push(now, e.seq, e.pc, TraceKind::Squash);
            // Youngest-first rename undo.
            if let Some(dst) = e.dst {
                self.guards.clear(dst.new as usize);
                self.rename.undo(dst);
            }
        }
        self.iq.retain(|&s| s < first);
        self.lq.squash_after(first.saturating_sub(1));
        self.sq.squash_after(first.saturating_sub(1));
        self.shadows.squash_from(first);
        self.mdp.squash_from(first);
        self.fetch_pc = new_pc;
        self.fetch_halted = false;
        self.fetch_stalled_until = now + u64::from(self.cfg.redirect_penalty);
    }
}

enum IssueResult {
    Issued,
    NotReady,
}

/// Effective-address mode of an issuing load.
enum LoadAddr {
    /// `base + immediate offset`.
    Offset(i64),
    /// `base + (index << 3)` (multi-source).
    Indexed,
}

#[cfg(test)]
mod tests {
    use super::*;
    use recon_isa::reg::names::*;
    use recon_isa::Asm;
    use recon_mem::MemConfig;
    use recon_mem::MemorySystem;

    fn run_program(
        program: Program,
        secure: SecureConfig,
        max_cycles: u64,
    ) -> (Core, MemorySystem, SparseMem) {
        run_program_with(MemConfig::scaled(), program, secure, max_cycles)
    }

    /// A micro-scaled hierarchy: tiny caches so unit-test workloads can
    /// overflow any level within a few dozen lines.
    fn micro_mem() -> MemConfig {
        use recon_mem::CacheGeometry;
        MemConfig {
            l1: CacheGeometry::new(512, 2),
            l2: CacheGeometry::new(1024, 2),
            llc: CacheGeometry::new(4096, 8),
            ..MemConfig::scaled()
        }
    }

    fn run_program_with(
        mem_cfg: MemConfig,
        program: Program,
        secure: SecureConfig,
        max_cycles: u64,
    ) -> (Core, MemorySystem, SparseMem) {
        let recon_cfg = if secure.recon {
            ReconConfig::default()
        } else {
            ReconConfig::disabled()
        };
        let mut mem = MemorySystem::new(1, mem_cfg, recon_cfg);
        let mut data = SparseMem::from_image(&program.image);
        let mut core = Core::new(0, Arc::new(program), CoreConfig::tiny(), secure, recon_cfg);
        for cycle in 0..max_cycles {
            if !core.tick(&mut mem, &mut data, cycle) {
                break;
            }
        }
        assert!(
            core.is_done(),
            "program did not finish in {max_cycles} cycles"
        );
        (core, mem, data)
    }

    use recon_isa::Program;

    fn check_against_golden(program: &Program, secure: SecureConfig) {
        let (_, _, data) = run_program(program.clone(), secure, 200_000);
        let (_, golden_state) = recon_isa::run_collect(program, 1_000_000).unwrap();
        let mut golden_mem = SparseMem::from_image(&program.image);
        recon_isa::run_with(program, &mut golden_mem, 1_000_000, |_| {}).unwrap();
        // Compare every word the golden run touched.
        for (addr, _) in program.image.iter() {
            assert_eq!(data.peek(addr), golden_mem.peek(addr), "word {addr:#x}");
        }
        let _ = golden_state;
    }

    #[test]
    fn straight_line_program_matches_golden() {
        let mut a = Asm::new();
        a.data(0x100, 5);
        a.li(R1, 0x100)
            .load(R2, R1, 0)
            .addi(R3, R2, 10)
            .store(R3, R1, 0)
            .halt();
        let p = a.assemble().unwrap();
        for secure in [
            SecureConfig::unsafe_baseline(),
            SecureConfig::nda(),
            SecureConfig::stt(),
            SecureConfig::stt_recon(),
        ] {
            let (core, _, data) = run_program(p.clone(), secure, 10_000);
            assert_eq!(data.peek(0x100), 15, "{secure}");
            assert_eq!(core.arch_read(R3), 15, "{secure}");
        }
    }

    #[test]
    fn loop_commits_expected_instructions() {
        let mut a = Asm::new();
        a.li(R1, 50).li(R2, 0);
        let top = a.here();
        a.addi(R2, R2, 3);
        a.subi(R1, R1, 1);
        a.bne_to(R1, R0, top);
        a.halt();
        let p = a.assemble().unwrap();
        let (core, _, _) = run_program(p, SecureConfig::unsafe_baseline(), 100_000);
        assert_eq!(core.arch_read(R2), 150);
        assert_eq!(core.stats().committed, 2 + 50 * 3 + 1);
        assert_eq!(core.stats().branches_committed, 50);
    }

    #[test]
    fn pointer_chase_matches_golden_under_all_schemes() {
        // A small cyclic pointer chain exercised in a loop.
        let mut a = Asm::new();
        let n = 8u64;
        for i in 0..n {
            a.data(0x1000 + i * 8, 0x1000 + ((i + 3) % n) * 8);
        }
        a.li(R1, 0x1000).li(R4, 100);
        let top = a.here();
        a.load(R1, R1, 0); // chase
        a.subi(R4, R4, 1);
        a.bne_to(R4, R0, top);
        a.halt();
        let p = a.assemble().unwrap();
        for secure in [
            SecureConfig::unsafe_baseline(),
            SecureConfig::nda(),
            SecureConfig::nda_recon(),
            SecureConfig::stt(),
            SecureConfig::stt_recon(),
        ] {
            let (core, _, _) = run_program(p.clone(), secure, 500_000);
            // 100 chases of +3 mod 8 from slot 0: end at slot (300 % 8).
            let expect = 0x1000 + (300 % n) * 8;
            assert_eq!(core.arch_read(R1), expect, "{secure}");
        }
    }

    #[test]
    fn branchy_program_matches_golden() {
        // Data-dependent branches stress prediction + squash.
        let mut a = Asm::new();
        for i in 0..16u64 {
            a.data(0x2000 + i * 8, (i * 7) % 3);
        }
        a.li(R1, 0x2000).li(R2, 16).li(R3, 0).li(R6, 0);
        let top = a.here();
        a.load(R4, R1, 0);
        let skip = a.new_label();
        a.bne(R4, R0, skip);
        a.addi(R3, R3, 1); // count zeros
        a.bind(skip);
        a.addi(R1, R1, 8);
        a.addi(R6, R6, 1);
        a.bltu_to(R6, R2, top);
        a.halt();
        let p = a.assemble().unwrap();
        for secure in [SecureConfig::unsafe_baseline(), SecureConfig::stt()] {
            let (core, _, _) = run_program(p.clone(), secure, 500_000);
            // (i*7)%3 == 0 for i = 0,3,6,9,12,15 -> 6 zeros.
            assert_eq!(core.arch_read(R3), 6, "{secure}");
        }
    }

    #[test]
    fn store_to_load_forwarding_works() {
        let mut a = Asm::new();
        a.li(R1, 0x3000).li(R2, 77);
        a.store(R2, R1, 0);
        a.load(R3, R1, 0); // must forward from SQ/SB
        a.halt();
        let p = a.assemble().unwrap();
        let (core, _, data) = run_program(p, SecureConfig::unsafe_baseline(), 10_000);
        assert_eq!(core.arch_read(R3), 77);
        assert_eq!(data.peek(0x3000), 77);
    }

    #[test]
    fn schemes_do_not_change_architectural_results() {
        let mut a = Asm::new();
        for i in 0..8u64 {
            a.data(0x4000 + i * 8, 0x4100 + (i % 4) * 8);
            a.data(0x4100 + i * 8, i * i);
        }
        a.li(R1, 0x4000).li(R5, 0).li(R6, 8).li(R7, 0);
        let top = a.here();
        a.load(R2, R1, 0); // load pointer
        a.load(R3, R2, 0); // dereference (load pair!)
        a.add(R5, R5, R3);
        a.store(R5, R1, 0); // overwrite pointer slot (conceals)
        a.addi(R1, R1, 8);
        a.addi(R7, R7, 1);
        a.bltu_to(R7, R6, top);
        a.halt();
        let p = a.assemble().unwrap();
        check_against_golden(&p, SecureConfig::unsafe_baseline());
        check_against_golden(&p, SecureConfig::nda());
        check_against_golden(&p, SecureConfig::nda_recon());
        check_against_golden(&p, SecureConfig::stt());
        check_against_golden(&p, SecureConfig::stt_recon());
    }

    #[test]
    fn secure_schemes_are_slower_on_speculative_pointer_chasing() {
        // The Spectre-gadget shape that drives the paper's overheads: a
        // branch gated on *slowly* loaded data (the condition array
        // overflows the micro LLC, so it always misses), with a fast,
        // cache-resident dependent load pair underneath. The branch stays
        // unresolved while the pair executes, so STT/NDA delay the
        // second load and lose the memory-level parallelism.
        let n = 64u64;
        let mut a = Asm::new();
        for i in 0..n {
            a.data(0x10_0000 + i * 64, 1); // conds: one line each, > LLC
            a.data(0x20_0000 + i * 8, 0x30_0000 + ((i * 17) % n) * 8);
            a.data(0x30_0000 + i * 8, i);
        }
        // Warm the pointer and target arrays (no dereferences).
        a.li(R10, 0x20_0000).li(R6, 0).li(R7, n);
        let warm = a.here();
        a.load(R2, R10, 0);
        a.load(R3, R10, 0x10_0000); // warm targets[i] at ptrs[i]+0x10_0000
        a.addi(R10, R10, 8);
        a.addi(R6, R6, 1);
        a.bltu_to(R6, R7, warm);
        a.li(R10, 0x10_0000).li(R11, 0x20_0000).li(R6, 0).li(R5, 0);
        let top = a.here();
        a.load(R2, R10, 0); // cond load: always misses
        let skip = a.new_label();
        a.beq(R2, R0, skip); // branch on loaded data: resolves late
        a.load(R3, R11, 0); // LD1: pointer load, fast, under shadow
        a.load(R4, R3, 0); //  LD2: dependent dereference (delayed by STT)
        a.add(R5, R5, R4);
        a.bind(skip);
        a.addi(R10, R10, 64);
        a.addi(R11, R11, 8);
        a.addi(R6, R6, 1);
        a.bltu_to(R6, R7, top);
        a.halt();
        let p = a.assemble().unwrap();
        let base = run_program_with(
            micro_mem(),
            p.clone(),
            SecureConfig::unsafe_baseline(),
            2_000_000,
        )
        .0;
        let stt = run_program_with(micro_mem(), p.clone(), SecureConfig::stt(), 2_000_000).0;
        let nda = run_program_with(micro_mem(), p.clone(), SecureConfig::nda(), 2_000_000).0;
        let sum: u64 = (0..n).map(|i| (i * 17) % n).sum();
        assert_eq!(base.arch_read(R5), sum);
        assert_eq!(stt.arch_read(R5), sum);
        assert_eq!(nda.arch_read(R5), sum);
        assert!(
            stt.stats().cycles > base.stats().cycles,
            "STT {} vs base {}",
            stt.stats().cycles,
            base.stats().cycles
        );
        assert!(
            nda.stats().cycles >= stt.stats().cycles,
            "NDA ({}) is at least as strict as STT ({})",
            nda.stats().cycles,
            stt.stats().cycles
        );
        assert!(
            stt.stats().guarded_loads > 0,
            "dependent loads were tainted"
        );
    }

    #[test]
    fn recon_recovers_performance_on_reused_pointers() {
        // Same gadget shape, iterated: the first pass commits the load
        // pairs non-speculatively, revealing the pointer words; later
        // passes find them revealed and lift the defense while the
        // branch condition still misses all the way to memory.
        let n = 32u64;
        let mut a = Asm::new();
        for i in 0..n {
            a.data(0x10_0000 + i * 64, 1); // conds overflow the micro LLC
            a.data(0x20_0000 + i * 8, 0x30_0000 + ((i * 7) % n) * 8);
            a.data(0x30_0000 + i * 8, i);
        }
        a.li(R8, 0).li(R9, 10).li(R5, 0); // outer iterations
        let outer = a.here();
        a.li(R10, 0x10_0000).li(R11, 0x20_0000).li(R6, 0).li(R7, n);
        let top = a.here();
        a.load(R2, R10, 0);
        let skip = a.new_label();
        a.beq(R2, R0, skip);
        a.load(R3, R11, 0); // LD1
        a.load(R4, R3, 0); //  LD2 (pair: reveals LD1's word at commit)
        a.add(R5, R5, R4);
        a.bind(skip);
        a.addi(R10, R10, 64);
        a.addi(R11, R11, 8);
        a.addi(R6, R6, 1);
        a.bltu_to(R6, R7, top);
        a.addi(R8, R8, 1);
        a.bltu_to(R8, R9, outer);
        a.halt();
        let p = a.assemble().unwrap();
        let stt = run_program_with(micro_mem(), p.clone(), SecureConfig::stt(), 5_000_000).0;
        let (sttr, mem_r, _) =
            run_program_with(micro_mem(), p.clone(), SecureConfig::stt_recon(), 5_000_000);
        assert!(
            mem_r.stats().reveals_set > 0,
            "load pairs revealed addresses"
        );
        assert!(
            sttr.stats().revealed_loads_committed > 0,
            "revealed words were reused"
        );
        assert!(
            sttr.stats().guarded_loads < stt.stats().guarded_loads,
            "ReCon reduces tainted loads: {} vs {}",
            sttr.stats().guarded_loads,
            stt.stats().guarded_loads
        );
        assert!(
            sttr.stats().cycles < stt.stats().cycles,
            "STT+ReCon ({}) faster than STT ({})",
            sttr.stats().cycles,
            stt.stats().cycles
        );
    }

    #[test]
    fn amo_serializes_and_updates_memory() {
        let mut a = Asm::new();
        a.data(0x5000, 10);
        a.li(R1, 0x5000).li(R2, 5);
        a.amoadd(R3, R1, 0, R2);
        a.amoadd(R4, R1, 0, R2);
        a.halt();
        let p = a.assemble().unwrap();
        let (core, _, data) = run_program(p, SecureConfig::stt(), 10_000);
        assert_eq!(core.arch_read(R3), 10);
        assert_eq!(core.arch_read(R4), 15);
        assert_eq!(data.peek(0x5000), 20);
    }

    #[test]
    fn younger_load_sees_an_older_amos_write() {
        // The AMO executes only at the ROB head, outside the SQ, so a
        // younger load to the same word cannot rely on forwarding — it
        // must wait for the AMO's read-modify-write instead of reading
        // stale memory early. Found by `recon fuzz` (seed 42, idx 128).
        let mut a = Asm::new();
        a.data(0x5000, 10);
        a.li(R1, 0x5000).li(R2, 5);
        a.amoadd(R3, R1, 0, R2);
        a.load(R4, R1, 0); // same word, fetched into the AMO's shadow
        a.load(R5, R1, 8); // different word, also younger than the AMO
        a.halt();
        let p = a.assemble().unwrap();
        for secure in [
            SecureConfig::unsafe_baseline(),
            SecureConfig::nda(),
            SecureConfig::stt_recon(),
        ] {
            let (core, _, data) = run_program(p.clone(), secure, 10_000);
            assert_eq!(core.arch_read(R3), 10, "amo returns the old value");
            assert_eq!(core.arch_read(R4), 15, "younger load sees the RMW");
            assert_eq!(core.arch_read(R5), 0);
            assert_eq!(data.peek(0x5000), 15);
        }
    }

    #[test]
    fn amo_with_younger_stores_in_flight_does_not_deadlock() {
        // The stores after the AMO are fetched into the SQ while the AMO
        // waits at the ROB head; they can only commit *behind* it, so an
        // AMO that waits for an empty SQ livelocks. Regression for the
        // corpus `memref` hang.
        let mut a = Asm::new();
        a.data(0x5000, 10);
        a.li(R1, 0x5000).li(R2, 5);
        a.amoadd(R3, R1, 0, R2);
        a.li(R4, 0x6000);
        a.store(R3, R4, 0); // younger store, data depends on the AMO
        a.store(R2, R4, 8);
        a.halt();
        let p = a.assemble().unwrap();
        for secure in [
            SecureConfig::unsafe_baseline(),
            SecureConfig::stt(),
            SecureConfig::stt_recon(),
        ] {
            let (core, _, data) = run_program(p.clone(), secure, 10_000);
            assert_eq!(core.arch_read(R3), 10);
            assert_eq!(data.peek(0x5000), 15);
            assert_eq!(data.peek(0x6000), 10);
        }
    }

    #[test]
    fn predictor_mode_detects_violations_and_recovers() {
        // A load that aliases an older store with a slow address: in
        // Predictor mode it speculates past the store, gets squashed on
        // the violation, and still commits the correct value.
        let mut a = Asm::new();
        a.data(0x100, 0x9000); // the store target, loaded slowly (cold)
        a.data(0x9000, 1);
        a.li(R1, 0x100);
        a.load(R2, R1, 0); // store address arrives late (cold miss)
        a.li(R3, 77);
        a.store(R3, R2, 0); // ST 77, [0x9000]
        a.li(R4, 0x9000);
        a.load(R5, R4, 0); // aliases the store: must read 77
        a.halt();
        let p = a.assemble().unwrap();
        let recon_cfg = ReconConfig::disabled();
        let mut mem = MemorySystem::new(1, MemConfig::scaled(), recon_cfg);
        let mut data = SparseMem::from_image(&p.image);
        let cfg = CoreConfig {
            mdp: MdpMode::Predictor,
            ..CoreConfig::tiny()
        };
        let mut core = Core::new(
            0,
            Arc::new(p),
            cfg,
            SecureConfig::unsafe_baseline(),
            recon_cfg,
        );
        for cycle in 0..100_000 {
            if !core.tick(&mut mem, &mut data, cycle) {
                break;
            }
        }
        assert!(core.is_done());
        assert_eq!(
            core.arch_read(R5),
            77,
            "violation squash re-reads the store data"
        );
        assert_eq!(core.stats().memory_violations, 1);
    }

    #[test]
    fn nda_withholds_store_data_until_safe() {
        // Under NDA, a store whose data comes from a speculative load
        // cannot supply its value for forwarding until the load is out
        // of every shadow — but the final memory state is still right.
        let mut a = Asm::new();
        a.data(0x10_0000, 1); // slow cond (cold line)
        a.data(0x200, 5);
        a.li(R1, 0x10_0000);
        a.load(R2, R1, 0); // slow load: branch stays unresolved
        let body = a.new_label();
        let end = a.new_label();
        a.bne(R2, R0, body);
        a.jump(end);
        a.bind(body);
        a.li(R3, 0x200);
        a.load(R4, R3, 0); // speculative load (guarded under NDA)
        a.store(R4, R3, 8); // store of the guarded value
        a.load(R5, R3, 8); // forwarded once the data is supplied
        a.bind(end);
        a.halt();
        let p = a.assemble().unwrap();
        let (core, _, data) = run_program(p, SecureConfig::nda(), 100_000);
        assert_eq!(core.arch_read(R5), 5);
        assert_eq!(data.peek(0x208), 5);
    }

    #[test]
    fn amo_waits_for_older_speculation() {
        // An AMO dispatched under an unresolved branch must not execute
        // until the branch resolves (it is serializing), and the final
        // counter value must be exact.
        let mut a = Asm::new();
        a.data(0x10_0000, 1);
        a.data(0x300, 10);
        a.li(R1, 0x10_0000);
        a.load(R2, R1, 0); // slow cond
        let body = a.new_label();
        let end = a.new_label();
        a.bne(R2, R0, body);
        a.jump(end);
        a.bind(body);
        a.li(R3, 0x300);
        a.li(R4, 5);
        a.amoadd(R5, R3, 0, R4);
        a.bind(end);
        a.halt();
        let p = a.assemble().unwrap();
        let (core, _, data) = run_program(p, SecureConfig::stt(), 100_000);
        assert_eq!(core.arch_read(R5), 10);
        assert_eq!(data.peek(0x300), 15);
    }

    #[test]
    fn multi_source_load_executes_and_pairs_under_recon() {
        // ldx base+index*8 with both operands loaded: with the default
        // (single-source) LPT no pair is revealed; the architectural
        // result is correct either way.
        let mut a = Asm::new();
        a.data(0x100, 0x4000); // base table entry
        a.data(0x108, 2); // index entry
        a.data(0x4010, 99); // target: 0x4000 + 2*8
        a.li(R1, 0x100);
        a.load(R2, R1, 0);
        a.load(R3, R1, 8);
        a.loadidx(R4, R2, R3);
        a.halt();
        let p = a.assemble().unwrap();
        let (core, mem, _) = run_program(p, SecureConfig::stt_recon(), 100_000);
        assert_eq!(core.arch_read(R4), 99);
        // Default configuration: the ldx detects no pair (x86-style
        // cracking), so at most the (LD,LD) pairs of the setup reveal.
        assert_eq!(
            mem.stats().reveals_set,
            0,
            "no pair through the ldx by default"
        );
    }

    #[test]
    fn pipeline_trace_preserves_stage_order() {
        use crate::trace::TraceKind;
        let mut a = Asm::new();
        a.data(0x100, 5);
        a.li(R1, 0x100).load(R2, R1, 0).addi(R3, R2, 1).halt();
        let p = a.assemble().unwrap();
        let recon_cfg = ReconConfig::disabled();
        let mut mem = MemorySystem::new(1, MemConfig::scaled(), recon_cfg);
        let mut data = SparseMem::from_image(&p.image);
        let mut core = Core::new(
            0,
            Arc::new(p),
            CoreConfig::tiny(),
            SecureConfig::unsafe_baseline(),
            recon_cfg,
        );
        core.record_trace(true);
        for cycle in 0..10_000 {
            if !core.tick(&mut mem, &mut data, cycle) {
                break;
            }
        }
        let events = core.take_trace();
        assert!(!events.is_empty());
        // For every committed instruction: dispatch <= issue <= complete
        // <= commit in cycle order.
        for seq in 0..4u64 {
            let at = |kind| {
                events
                    .iter()
                    .find(|e| e.seq == seq && e.kind == kind)
                    .map(|e| e.cycle)
            };
            let d = at(TraceKind::Dispatch).expect("dispatched");
            let c = at(TraceKind::Commit).expect("committed");
            assert!(d <= c, "seq {seq}");
            if let (Some(i), Some(w)) = (at(TraceKind::Issue), at(TraceKind::Complete)) {
                assert!(d <= i && i <= w && w <= c, "seq {seq}");
            }
        }
    }

    #[test]
    fn mispredicted_branch_squashes_wrong_path() {
        // Alternating branch direction defeats initial prediction at
        // least once; wrong-path stores must never reach memory.
        let mut a = Asm::new();
        a.data(0x6000, 0);
        a.li(R1, 0x6000).li(R2, 1).li(R6, 0).li(R7, 9);
        let top = a.here();
        a.andi(R3, R6, 1);
        let even = a.new_label();
        a.beq(R3, R0, even);
        a.store(R2, R1, 0); // odd iterations store 1
        a.bind(even);
        a.addi(R6, R6, 1);
        a.bltu_to(R6, R7, top);
        a.halt();
        let p = a.assemble().unwrap();
        let (core, _, data) = run_program(p, SecureConfig::unsafe_baseline(), 100_000);
        assert_eq!(data.peek(0x6000), 1);
        // 4 odd iterations of 9 store once each.
        assert_eq!(core.stats().stores_committed, 4);
        assert!(core.stats().branch_mispredicts > 0);
        assert!(core.stats().squashed > 0);
    }
}

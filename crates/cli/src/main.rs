//! `recon` — command-line driver for the ReCon reproduction.
//!
//! ```text
//! recon list                         list all benchmark stand-ins
//! recon workloads --list             same table, stable flag spelling
//! recon asm <file> [--dump] [--run SCHEME]  assemble a .asm program,
//!           [--fast-forward N]       optionally run + self-check it
//! recon run <suite> <bench> [scheme] run one benchmark (default: matrix)
//!           [--checkpoint D] [--checkpoint-every CYC] [--audit CYC]
//! recon resume <file.rck>            continue a checkpointed run
//! recon matrix <suite> <bench>       run all five scheme configurations
//! recon suite <suite> [--jobs N]     five-way matrix on a whole suite
//!             [--checkpoint D]       (crash-safe: re-running resumes)
//! recon audit [--seed S] [--faults N] soft-error injection campaign ->
//!             [--audit CYC] [--demo]  BENCH_audit.json detection latencies
//! recon analyze <suite> <bench>      Clueless-style leakage report
//! recon verify [--gadget G] [--scheme S] [--embedded]
//!                                    two-trace security checker
//! recon overhead                     §6.7 storage accounting
//! recon serve [--addr A] [--workers N] [--queue-cap Q] [--handler-cap H]
//!             [--chaos SPEC] [--cache-dir D] [--checkpoint-every CYC]
//!             [--node ID]            HTTP job service (see recon-serve)
//! recon gateway --nodes H:P,...      consistent-hash cluster front door
//! recon bench-serve [--clients C] [--requests R] [--queue-cap Q]
//!                                    loopback load generator -> BENCH_serve.json
//! recon chaos [--seed S] [--clients C] [--requests R] [--faults F]
//!                                    seeded fault storm -> BENCH_chaos.json
//! recon chaos --nodes N              cluster storm: SIGKILL/restart + drain
//!                                    migration -> BENCH_cluster.json
//! ```
//!
//! Suites: `spec2017`, `spec2006`, `parsec`, `corpus`. Schemes: `unsafe`, `nda`,
//! `nda+recon`, `stt`, `stt+recon`. Set `RECON_SCALE=paper` for ×4
//! workloads. `suite` runs its jobs on a worker pool (`--jobs`, or
//! `RECON_JOBS`, default all cores) and writes per-job wall-clock
//! timings to `BENCH_runner.json`; the tables are byte-identical for
//! any worker count.
//!
//! `verify` runs every attack gadget under both secrets for every
//! scheme and diffs the attacker observation traces (SECURE/LEAKS with
//! first divergent observation), checks the §5.2/§5.3 reveal-soundness
//! invariant, and exits non-zero if any verdict deviates from the
//! security claim. `--embedded` widens the matrix with gadgets spliced
//! into corpus host programs at their `;@gadget` markers.

use std::path::PathBuf;
use std::process::ExitCode;

use recon_mem::MemConfig;
use recon_secure::SecureConfig;
use recon_sim::ckpt::{self, CkptContext};
use recon_sim::report::Table;
use recon_sim::{
    jobs_from_env, Budget, Experiment, SimError, System, SystemResult, DEFAULT_WATCHDOG_CYCLES,
};
use recon_workloads::{
    corpus, parsec, spec2006, spec2017, Benchmark, Scale, Suite, ThreadSpec, Workload,
};

fn scale() -> Scale {
    Scale::from_env()
}

fn scale_label() -> &'static str {
    match scale() {
        Scale::Quick => "quick",
        Scale::Paper => "paper",
    }
}

/// Default checkpoint cadence in simulated cycles when `--checkpoint`
/// is given without `--checkpoint-every`.
const DEFAULT_CKPT_EVERY: u64 = 500_000;

/// Checkpoints retained per job while it runs.
const CKPT_KEEP: usize = 3;

/// Suite names the CLI accepts, in display order.
const SUITE_NAMES: [&str; 4] = ["spec2017", "spec2006", "parsec", "corpus"];

fn parse_suite(name: &str) -> Option<(Suite, Vec<Benchmark>)> {
    match name.to_ascii_lowercase().as_str() {
        "spec2017" => Some((Suite::Spec2017, spec2017(scale()))),
        "spec2006" => Some((Suite::Spec2006, spec2006(scale()))),
        "parsec" => Some((Suite::Parsec, parsec(scale()))),
        "corpus" => Some((Suite::Corpus, corpus(scale()))),
        _ => None,
    }
}

/// ` — did you mean '..'?` when `input` is a near-miss of a candidate.
fn hint(input: &str, candidates: impl IntoIterator<Item = &'static str>) -> String {
    recon_asm::suggest(&input.to_ascii_lowercase(), candidates)
        .map_or_else(String::new, |s| format!(" — did you mean '{s}'?"))
}

fn unknown_suite(name: &str) -> String {
    format!(
        "unknown suite '{name}' ({}){}",
        SUITE_NAMES.join("|"),
        hint(name, SUITE_NAMES)
    )
}

/// Valid scheme spellings, for error messages.
const SCHEME_NAMES: &str = SecureConfig::PARSE_NAMES;

fn parse_scheme(name: &str) -> Option<SecureConfig> {
    SecureConfig::parse(name)
}

fn experiment_for(suite: Suite) -> Experiment {
    let mem = if suite == Suite::Parsec {
        MemConfig::scaled_multicore()
    } else {
        MemConfig::scaled()
    };
    Experiment {
        mem,
        ..Experiment::default()
    }
}

fn find_bench(suite_name: &str, bench: &str) -> Result<(Suite, Benchmark), String> {
    let (suite, list) = parse_suite(suite_name).ok_or_else(|| unknown_suite(suite_name))?;
    let names: Vec<&'static str> = list.iter().map(|b| b.name).collect();
    let b = list
        .into_iter()
        .find(|b| b.name.eq_ignore_ascii_case(bench))
        .ok_or_else(|| format!("no benchmark '{bench}' in {suite}{}", hint(bench, names)))?;
    Ok((suite, b))
}

fn cmd_list() -> ExitCode {
    let mut t = Table::new(&["suite", "benchmark", "threads", "static instructions"]);
    for (_, list) in SUITE_NAMES.iter().filter_map(|s| parse_suite(s)) {
        for b in list {
            t.row(&[
                b.suite.to_string(),
                b.name.to_string(),
                b.workload.num_threads().to_string(),
                b.workload.program.len().to_string(),
            ]);
        }
    }
    print!("{}", t.render());
    ExitCode::SUCCESS
}

/// `recon asm <file>`: assemble a text program and report what it
/// contains; `--dump` prints the canonical disassembly, `--run <scheme>`
/// executes it in the detailed simulator and reads back the corpus
/// self-check convention's digest/status words.
fn cmd_asm(file: &str, rest: &[&str]) -> ExitCode {
    let mut dump = false;
    let mut run: Option<SecureConfig> = None;
    let mut ff: Option<u64> = None;
    let mut it = rest.iter();
    while let Some(&flag) = it.next() {
        match flag {
            "--dump" => dump = true,
            "--run" => {
                let Some(&value) = it.next() else {
                    return fail("--run wants a scheme");
                };
                match parse_scheme(value) {
                    Some(s) => run = Some(s),
                    None => return fail(&format!("unknown scheme '{value}' ({SCHEME_NAMES})")),
                }
            }
            "--fast-forward" => {
                let Some(&value) = it.next() else {
                    return fail("--fast-forward wants an instruction count");
                };
                match value.parse::<u64>() {
                    Ok(n) if n >= 1 => ff = Some(n),
                    _ => {
                        return fail(&format!(
                            "--fast-forward wants a positive instruction count, got '{value}'"
                        ))
                    }
                }
            }
            _ => return fail(&format!("unknown asm flag '{flag}'")),
        }
    }
    if ff.is_some() && run.is_none() {
        return fail("--fast-forward needs --run <scheme>");
    }
    let src = match std::fs::read_to_string(file) {
        Ok(s) => s,
        Err(e) => return fail(&format!("cannot read {file}: {e}")),
    };
    let p = match recon_asm::assemble(&src) {
        Ok(p) => p,
        Err(e) => return fail(&format!("{file}: {e}")),
    };
    println!(
        "{file}: {} instructions, {} data words, {} label(s), {} entry point(s)",
        p.program.len(),
        p.program.image.len(),
        p.labels.len(),
        p.entries.len()
    );
    for e in &p.entries {
        let name = p
            .labels
            .iter()
            .find(|&&(_, idx)| idx == e.entry)
            .map_or("?", |(n, _)| n.as_str());
        let seeds: Vec<String> = e.seeds.iter().map(|(r, v)| format!("{r}={v:#x}")).collect();
        println!("  entry {name} (inst {}) {}", e.entry, seeds.join(" "));
    }
    if dump {
        print!("{}", recon_asm::disassemble(&p));
    }
    let Some(secure) = run else {
        return ExitCode::SUCCESS;
    };
    let threads: Vec<ThreadSpec> = p
        .entries
        .iter()
        .map(|e| ThreadSpec {
            entry: e.entry,
            seeds: e.seeds.clone(),
        })
        .collect();
    let workload = Workload {
        program: p.program,
        threads,
    };
    let suite = if workload.num_threads() > 1 {
        Suite::Parsec
    } else {
        Suite::Corpus
    };
    let exp = experiment_for(suite);
    let budget = Budget {
        fast_forward: ff,
        ..Budget::default()
    };
    let mut sys = System::new(&workload, exp.core, exp.mem, secure, exp.recon);
    let r = match sys.run_budgeted(exp.max_cycles, &budget) {
        Ok(r) => r,
        Err(e) => return fail(&format!("run did not complete: {e}")),
    };
    if let Some(ff) = ff {
        println!("(functional fast-forward: {ff} instructions before detailed timing)");
    }
    print_run_result(file, suite, secure, &r);
    // Programs following the corpus self-check convention leave a
    // digest and pass/fail status at well-known addresses.
    let digest = sys.data().peek(recon_asm::corpus::DIGEST_ADDR);
    let status = sys.data().peek(recon_asm::corpus::STATUS_ADDR);
    if status == 0 && digest == 0 {
        println!("  self-check        (none: program wrote no status word)");
        return ExitCode::SUCCESS;
    }
    println!("  self-check digest {digest:#018x}");
    if status == recon_asm::corpus::STATUS_PASS {
        println!("  self-check        pass");
        ExitCode::SUCCESS
    } else {
        fail(&format!("self-check FAILED (status {status:#x})"))
    }
}

/// `recon workloads [--list]`: enumerate every suite and workload with
/// static instruction counts, so nobody has to guess valid names.
fn cmd_workloads(rest: &[&str]) -> ExitCode {
    match rest {
        [] | ["--list"] => cmd_list(),
        _ => fail(&format!("unknown workloads flag(s) {rest:?} (try --list)")),
    }
}

fn print_run_result(name: &str, suite: Suite, secure: SecureConfig, r: &SystemResult) {
    println!("{name} ({suite}) under {secure}:");
    println!("  cycles            {}", r.cycles);
    println!("  committed         {}", r.committed());
    println!("  IPC               {:.3}", r.ipc());
    println!("  tainted loads     {}", r.guarded_loads());
    println!("  reveals set       {}", r.mem.reveals_set);
    println!("  revealed loads    {}", r.mem.revealed_loads);
    println!("  L1 load hit rate  {:.1}%", r.mem.l1_hit_rate() * 100.0);
    println!("  trace dropped     {}", r.trace_dropped());
}

/// Parses `--fast-forward <instructions>` from already-split flag
/// pairs: the functional warmup length applied before detailed timing.
fn ff_from_pairs(pairs: &[(&str, &str)]) -> Result<Option<u64>, String> {
    match pairs.iter().find(|(f, _)| *f == "--fast-forward") {
        None => Ok(None),
        Some((_, v)) => v
            .parse()
            .ok()
            .filter(|&n: &u64| n >= 1)
            .map(Some)
            .ok_or_else(|| format!("--fast-forward wants a positive instruction count, got '{v}'")),
    }
}

/// Parses `--watchdog-cycles <cycles>` from already-split flag pairs:
/// the liveness watchdog window. `0` disables the watchdog entirely;
/// unset keeps the default window (`DEFAULT_WATCHDOG_CYCLES`).
fn wd_from_pairs(pairs: &[(&str, &str)]) -> Result<Option<u64>, String> {
    match pairs.iter().find(|(f, _)| *f == "--watchdog-cycles") {
        None => Ok(None),
        Some((_, v)) => {
            v.parse().ok().map(Some).ok_or_else(|| {
                format!("--watchdog-cycles wants a cycle count (0 = off), got '{v}'")
            })
        }
    }
}

/// Prints the full stall or invariant-audit forensics before the
/// generic failure line, so a deadlocked or corrupted run explains
/// itself (per-core ROB-head + wait reason, or the violated-invariant
/// list) instead of dying with a bare error string.
fn print_stall_forensics(e: &SimError) {
    match e {
        SimError::Stalled { report, .. } => eprintln!("{report}"),
        SimError::InvariantViolated { report, .. } => eprintln!("{report}"),
        _ => {}
    }
}

/// Parses `--audit <cycles>` from already-split flag pairs: the
/// invariant-auditor sweep cadence. Unset leaves the auditor off (runs
/// are bit-identical either way — the sweep is pure observation).
fn audit_from_pairs(pairs: &[(&str, &str)]) -> Result<Option<u64>, String> {
    match pairs.iter().find(|(f, _)| *f == "--audit") {
        None => Ok(None),
        Some((_, v)) => v
            .parse()
            .ok()
            .filter(|&n: &u64| n >= 1)
            .map(Some)
            .ok_or_else(|| format!("--audit wants a positive cycle cadence, got '{v}'")),
    }
}

/// Parses `--checkpoint <dir>` / `--checkpoint-every <cycles>` from
/// already-split flag pairs. `--checkpoint-every` without
/// `--checkpoint` is an error (it would silently do nothing).
fn ckpt_from_pairs(pairs: &[(&str, &str)]) -> Result<Option<CkptContext>, String> {
    let dir = pairs
        .iter()
        .find(|(f, _)| *f == "--checkpoint")
        .map(|(_, v)| PathBuf::from(*v));
    let every =
        match pairs.iter().find(|(f, _)| *f == "--checkpoint-every") {
            None => DEFAULT_CKPT_EVERY,
            Some((_, v)) => v.parse().ok().filter(|&n: &u64| n >= 1).ok_or_else(|| {
                format!("--checkpoint-every wants a positive cycle count, got '{v}'")
            })?,
        };
    match dir {
        Some(dir) => Ok(Some(CkptContext {
            dir,
            cadence: every,
            keep: CKPT_KEEP,
        })),
        None if pairs.iter().any(|(f, _)| *f == "--checkpoint-every") => {
            Err("--checkpoint-every needs --checkpoint <dir>".to_string())
        }
        None => Ok(None),
    }
}

/// The meta records stored in a `recon run` checkpoint: enough to
/// rebuild the exact system on `recon resume`.
fn run_meta(
    suite: Suite,
    bench: &str,
    secure: SecureConfig,
    cadence: u64,
    ff: Option<u64>,
    audit: Option<u64>,
) -> Vec<(String, String)> {
    let mut meta = vec![
        ("kind".to_string(), "run".to_string()),
        ("suite".to_string(), suite.to_string().to_ascii_lowercase()),
        ("bench".to_string(), bench.to_string()),
        ("scheme".to_string(), secure.to_string()),
        ("scale".to_string(), scale_label().to_string()),
        ("cadence".to_string(), cadence.to_string()),
    ];
    if let Some(ff) = ff {
        meta.push(("fast_forward".to_string(), ff.to_string()));
    }
    if let Some(audit) = audit {
        meta.push(("audit".to_string(), audit.to_string()));
    }
    meta
}

fn run_digest(
    suite: Suite,
    bench: &str,
    secure: SecureConfig,
    cadence: u64,
    ff: Option<u64>,
    audit: Option<u64>,
) -> u64 {
    let suite = suite.to_string().to_ascii_lowercase();
    let scheme = secure.to_string();
    let cadence = cadence.to_string();
    let mut parts = vec![
        "run",
        suite.as_str(),
        bench,
        scheme.as_str(),
        scale_label(),
        cadence.as_str(),
    ];
    // The warmup length changes every result, so warmed runs get their
    // own checkpoint/result records; unwarmed digests stay unchanged.
    let ff = ff.map(|n| n.to_string());
    if let Some(ff) = ff.as_deref() {
        parts.push(ff);
    }
    // Audited runs likewise get their own records: an audit cadence can
    // turn a completed run into an invariant-violation record, and the
    // two must never share a digest.
    let audit = audit.map(|n| format!("audit{n}"));
    if let Some(audit) = audit.as_deref() {
        parts.push(audit);
    }
    ckpt::config_digest(&parts)
}

/// Runs one configured job under a checkpoint context and reports what
/// the persistence layer did alongside the results.
#[allow(clippy::too_many_arguments)]
fn run_checkpointed(
    exp: &Experiment,
    suite: Suite,
    b: &Benchmark,
    secure: SecureConfig,
    ctx: &CkptContext,
    ff: Option<u64>,
    wd: Option<u64>,
    audit: Option<u64>,
) -> ExitCode {
    let digest = run_digest(suite, b.name, secure, ctx.cadence, ff, audit);
    let meta = run_meta(suite, b.name, secure, ctx.cadence, ff, audit);
    let budget = Budget {
        fast_forward: ff,
        watchdog_cycles: wd,
        audit_every_cycles: audit,
        ..Budget::default()
    };
    let (r, info) =
        ckpt::run_with_checkpoints(exp, &b.workload, secure, &budget, ctx, &meta, digest);
    if info.dropped_corrupt > 0 {
        println!(
            "dropped {} corrupt/stale checkpoint file(s)",
            info.dropped_corrupt
        );
    }
    if info.result_cached {
        println!("result record found — returning the completed run");
    } else if info.stall_cached {
        println!("failure record found — replaying the recorded diagnosis");
    } else if let Some(cycle) = info.resumed_from_cycle {
        println!("resumed from checkpoint at cycle {cycle}");
    }
    match r {
        Ok(r) => {
            print_run_result(b.name, suite, secure, &r);
            if !info.result_cached {
                println!(
                    "  checkpoints       {} written, {} GC'd (cadence {})",
                    info.checkpoints_written, info.gc_deleted, ctx.cadence
                );
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            print_stall_forensics(&e);
            if let Some(p) = &info.last_checkpoint {
                println!("resumable checkpoint left at {}", p.display());
            }
            fail(&format!("run did not complete: {e}"))
        }
    }
}

fn cmd_run(suite_name: &str, bench: &str, scheme: &str, rest: &[&str]) -> ExitCode {
    let (suite, b) = match find_bench(suite_name, bench) {
        Ok(x) => x,
        Err(e) => return fail(&e),
    };
    let Some(secure) = parse_scheme(scheme) else {
        return fail(&format!("unknown scheme '{scheme}' ({SCHEME_NAMES})"));
    };
    let pairs = match parse_flag_pairs(rest) {
        Ok(p) => p,
        Err(e) => return fail(&e),
    };
    let (ctx, ff, wd, audit) = match ckpt_from_pairs(&pairs).and_then(|c| {
        Ok((
            c,
            ff_from_pairs(&pairs)?,
            wd_from_pairs(&pairs)?,
            audit_from_pairs(&pairs)?,
        ))
    }) {
        Ok(x) => x,
        Err(e) => return fail(&e),
    };
    let exp = experiment_for(suite);
    match ctx {
        Some(ctx) => run_checkpointed(&exp, suite, &b, secure, &ctx, ff, wd, audit),
        None => {
            let budget = Budget {
                fast_forward: ff,
                watchdog_cycles: wd,
                audit_every_cycles: audit,
                ..Budget::default()
            };
            let r = match exp.try_run(&b.workload, secure, &budget) {
                Ok(r) => r,
                Err(e) => {
                    print_stall_forensics(&e);
                    return fail(&format!("run did not complete: {e}"));
                }
            };
            if let Some(ff) = ff {
                println!("(functional fast-forward: {ff} instructions before detailed timing)");
            }
            print_run_result(b.name, suite, secure, &r);
            ExitCode::SUCCESS
        }
    }
}

/// Resumes a run from a checkpoint file written by
/// `recon run --checkpoint`: rebuilds the system from the checkpoint's
/// meta records, restores the newest valid checkpoint of that job in
/// the file's directory, and continues to completion (checkpointing
/// onward at the recorded cadence).
fn cmd_resume(file: &str) -> ExitCode {
    let bytes = match std::fs::read(file) {
        Ok(b) => b,
        Err(e) => return fail(&format!("cannot read {file}: {e}")),
    };
    let ck = match ckpt::Checkpoint::decode(&bytes) {
        Ok(c) => c,
        Err(e) => return fail(&format!("{file} is not a valid checkpoint: {e}")),
    };
    if ck.meta("kind") != Some("run") {
        return fail(&format!(
            "{file} was not written by 'recon run --checkpoint' (kind={}); \
             resume it with the command that produced it",
            ck.meta("kind").unwrap_or("missing")
        ));
    }
    let (Some(suite_name), Some(bench), Some(scheme), Some(scale_want), Some(cadence)) = (
        ck.meta("suite"),
        ck.meta("bench"),
        ck.meta("scheme"),
        ck.meta("scale"),
        ck.meta("cadence").and_then(|c| c.parse::<u64>().ok()),
    ) else {
        return fail(&format!("{file} is missing resume metadata"));
    };
    if scale_want != scale_label() {
        return fail(&format!(
            "checkpoint was taken at RECON_SCALE={scale_want}, current scale is {}; \
             re-run with RECON_SCALE={scale_want}",
            scale_label()
        ));
    }
    let (suite, b) = match find_bench(suite_name, bench) {
        Ok(x) => x,
        Err(e) => return fail(&e),
    };
    let Some(secure) = parse_scheme(scheme) else {
        return fail(&format!("checkpoint names unknown scheme '{scheme}'"));
    };
    // The warmup length rides in the meta so the resume recomputes the
    // same digest; the warmup itself is never re-applied (the restored
    // system is past cycle 0).
    let ff = ck.meta("fast_forward").and_then(|v| v.parse::<u64>().ok());
    // The audit cadence also rides in the meta: the resumed tail keeps
    // sweeping (and the digest keeps matching the original run's).
    let audit = ck.meta("audit").and_then(|v| v.parse::<u64>().ok());
    let dir = PathBuf::from(file)
        .parent()
        .map_or_else(|| PathBuf::from("."), std::path::Path::to_path_buf);
    let ctx = CkptContext {
        dir,
        cadence,
        keep: CKPT_KEEP,
    };
    run_checkpointed(
        &experiment_for(suite),
        suite,
        &b,
        secure,
        &ctx,
        ff,
        None,
        audit,
    )
}

fn cmd_matrix(suite_name: &str, bench: &str, jobs: usize) -> ExitCode {
    let (suite, b) = match find_bench(suite_name, bench) {
        Ok(x) => x,
        Err(e) => return fail(&e),
    };
    let exp = experiment_for(suite);
    let benches = [b];
    let (mut matrices, _) = exp.run_matrices(&benches, jobs);
    let m = matrices.remove(0);
    let b = &benches[0];
    let mut t = Table::new(&["scheme", "cycles", "IPC", "normalized", "tainted loads"]);
    for (name, r) in [
        ("unsafe", &m.baseline),
        ("NDA", &m.nda),
        ("NDA+ReCon", &m.nda_recon),
        ("STT", &m.stt),
        ("STT+ReCon", &m.stt_recon),
    ] {
        t.row(&[
            name.into(),
            r.cycles.to_string(),
            format!("{:.3}", r.ipc()),
            format!("{:.3}", m.normalized_ipc(r)),
            r.guarded_loads().to_string(),
        ]);
    }
    println!("{} ({suite}):", b.name);
    print!("{}", t.render());
    ExitCode::SUCCESS
}

fn cmd_suite(suite_name: &str, jobs: usize, rest: &[&str]) -> ExitCode {
    let Some((suite, benchmarks)) = parse_suite(suite_name) else {
        return fail(&format!(
            "unknown suite '{suite_name}' (spec2017|spec2006|parsec)"
        ));
    };
    let pairs = match parse_flag_pairs(rest) {
        Ok(p) => p,
        Err(e) => return fail(&e),
    };
    let (ctx, ff, wd, audit) = match ckpt_from_pairs(&pairs).and_then(|c| {
        Ok((
            c,
            ff_from_pairs(&pairs)?,
            wd_from_pairs(&pairs)?,
            audit_from_pairs(&pairs)?,
        ))
    }) {
        Ok(x) => x,
        Err(e) => return fail(&e),
    };
    let budget = Budget {
        fast_forward: ff,
        watchdog_cycles: wd,
        audit_every_cycles: audit,
        ..Budget::default()
    };
    let exp = experiment_for(suite);
    let (matrices, batch) = match &ctx {
        None => exp.run_matrices_budgeted(&benchmarks, jobs, &budget),
        Some(ctx) => {
            // The tag namespaces this suite's jobs in the checkpoint
            // dir; scale is folded in so quick/paper runs never share
            // records.
            let tag = format!(
                "suite:{}:{}",
                suite.to_string().to_ascii_lowercase(),
                scale_label()
            );
            exp.run_matrices_checkpointed_budgeted(&benchmarks, jobs, &budget, ctx, &tag)
        }
    };
    let mut t = Table::new(&[
        "benchmark",
        "unsafe IPC",
        "NDA",
        "NDA+ReCon",
        "STT",
        "STT+ReCon",
    ]);
    let (mut on, mut onr, mut os, mut osr) = (vec![], vec![], vec![], vec![]);
    for m in &matrices {
        let nda = m.normalized_ipc(&m.nda);
        let ndar = m.normalized_ipc(&m.nda_recon);
        let stt = m.normalized_ipc(&m.stt);
        let sttr = m.normalized_ipc(&m.stt_recon);
        on.push((1.0 - nda).max(0.0));
        onr.push((1.0 - ndar).max(0.0));
        os.push((1.0 - stt).max(0.0));
        osr.push((1.0 - sttr).max(0.0));
        t.row(&[
            m.name.into(),
            format!("{:.3}", m.baseline.ipc()),
            format!("{nda:.3}"),
            format!("{ndar:.3}"),
            format!("{stt:.3}"),
            format!("{sttr:.3}"),
        ]);
    }
    println!("{suite} (normalized IPC, five-way matrix):");
    print!("{}", t.render());
    println!();
    println!(
        "mean overhead: NDA {:.1}% -> NDA+ReCon {:.1}%  |  STT {:.1}% -> STT+ReCon {:.1}%",
        recon_sim::mean(&on) * 100.0,
        recon_sim::mean(&onr) * 100.0,
        recon_sim::mean(&os) * 100.0,
        recon_sim::mean(&osr) * 100.0,
    );
    println!(
        "{} jobs on {} workers: wall {:.2}s, serial-sum {:.2}s, est. speedup {:.2}x",
        batch.job_count(),
        batch.jobs,
        batch.wall_seconds,
        batch.serial_seconds(),
        batch.speedup(),
    );
    if let Some(ff) = ff {
        println!("(each job fast-forwarded {ff} instructions functionally before detailed timing)");
    }
    let mut jt = Table::new(&["benchmark", "scheme", "seconds", "instructions", "MIPS"]);
    for t in &batch.timings {
        jt.row(&[
            t.bench.into(),
            t.config.label(),
            format!("{:.3}", t.seconds),
            t.instructions.to_string(),
            format!("{:.2}", t.mips()),
        ]);
    }
    println!("per-job throughput:");
    print!("{}", jt.render());
    let dropped: u64 = matrices
        .iter()
        .map(|m| {
            [&m.baseline, &m.nda, &m.nda_recon, &m.stt, &m.stt_recon]
                .iter()
                .map(|r| r.trace_dropped())
                .sum::<u64>()
        })
        .sum();
    println!("trace events dropped: {dropped}");
    if let Some(s) = &batch.ckpt {
        println!(
            "checkpoints: {} jobs from result cache, {} resumed mid-run, {} written, {} GC'd, {} corrupt dropped",
            s.cached, s.resumed, s.written, s.gc_deleted, s.dropped_corrupt
        );
    }
    let failures = batch.failures();
    if !failures.is_empty() {
        println!(
            "{} job(s) FAILED (benchmark omitted from tables):",
            failures.len()
        );
        for (bench, config, msg) in &failures {
            println!("  {bench} under {config}: {msg}");
        }
    }
    match batch.write_json("BENCH_runner.json") {
        Ok(()) => println!("per-job timings written to BENCH_runner.json"),
        Err(e) => eprintln!("warning: could not write BENCH_runner.json: {e}"),
    }
    ExitCode::SUCCESS
}

/// `recon fuzz`: seeded differential torture campaign. Generates
/// random-but-valid programs, runs each through the five oracles
/// (functional equality, scheme invariance, snapshot identity,
/// watchdog-clean termination, invariant-audit cleanliness), shrinks
/// any failure to a minimal `.asm` repro, and exits non-zero if
/// anything failed.
fn cmd_fuzz(rest: &[&str], jobs: usize) -> ExitCode {
    let mut cfg = recon_fuzz::FuzzConfig {
        jobs,
        ..recon_fuzz::FuzzConfig::default()
    };
    let mut json_path: Option<PathBuf> = None;
    let mut it = rest.iter();
    while let Some(&flag) = it.next() {
        match flag {
            "--quick" => {
                cfg.quick = true;
                continue;
            }
            // Test hook: reintroduce the historical AMO issue gate so
            // the watchdog/shrinker pipeline can be demonstrated
            // end-to-end against a known deadlock.
            "--inject-amo-bug" => {
                cfg.oracle.core.amo_empty_sq_bug = true;
                continue;
            }
            _ => {}
        }
        let Some(&value) = it.next() else {
            return fail(&format!("{flag} wants a value"));
        };
        match flag {
            "--seed" => match value.parse() {
                Ok(n) => cfg.seed = n,
                Err(_) => return fail(&format!("--seed wants an integer, got '{value}'")),
            },
            "--count" => match value.parse::<usize>().ok().filter(|&n| n >= 1) {
                Some(n) => cfg.count = n,
                None => return fail(&format!("--count wants a positive integer, got '{value}'")),
            },
            "--watchdog-cycles" => match value.parse::<u64>().ok().filter(|&n| n >= 1) {
                // The stall oracle is the point of the exercise, so the
                // window must stay finite here (no 0 = off).
                Some(n) => cfg.oracle.watchdog_cycles = n,
                None => {
                    return fail(&format!(
                        "--watchdog-cycles wants a positive cycle count, got '{value}'"
                    ))
                }
            },
            "--out-dir" => cfg.out_dir = Some(PathBuf::from(value)),
            "--json" => json_path = Some(PathBuf::from(value)),
            _ => return fail(&format!("unknown fuzz flag '{flag}'")),
        }
    }
    println!(
        "fuzzing: seed {}, {} program(s), {} oracle(s){}",
        cfg.seed,
        cfg.count,
        if cfg.quick { 4 } else { 5 },
        if cfg.quick {
            " (quick: snapshot oracle off)"
        } else {
            ""
        }
    );
    let report = recon_fuzz::run_fuzz(&cfg);
    for f in &report.failures {
        println!(
            "FAILURE program {} [{}]: shrunk {} -> {} instructions{}",
            f.index,
            f.kind,
            f.original_len,
            f.shrunk_len,
            if f.shrink_timed_out {
                " (shrink deadline hit; repro may not be minimal)"
            } else {
                ""
            }
        );
        for line in f.detail.lines() {
            println!("  {line}");
        }
        match &f.repro_path {
            Some(p) => println!("  repro written to {}", p.display()),
            None => println!("  (pass --out-dir to write an .asm repro)"),
        }
    }
    println!(
        "{} program(s) in {:.2}s ({:.1}/s), {} failure(s)",
        report.count,
        report.elapsed_secs,
        report.programs_per_sec,
        report.failures.len()
    );
    if let Some(path) = &json_path {
        match std::fs::write(path, report.to_json()) {
            Ok(()) => println!("report written to {}", path.display()),
            Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
        }
    }
    if report.failures.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// `recon audit`: the silent-corruption defense campaign. Injects
/// seeded soft errors (SplitMix64 bit-flips) into reveal masks, MESI
/// directory state, LPT entries, regfile values, and checkpoint bytes
/// mid-run, with the invariant auditor sweeping at a configurable
/// cadence, and proves every unmasked fault is detected — by the
/// auditor, an architectural-digest mismatch, checkpoint rejection,
/// the watchdog, or a contained crash. A silent corruption or a
/// false positive on the fault-free control runs fails the command.
fn cmd_audit(rest: &[&str]) -> ExitCode {
    let mut cfg = recon_sim::CampaignConfig::default();
    let mut out = "BENCH_audit.json".to_string();
    let mut demo = false;
    let mut it = rest.iter();
    while let Some(&flag) = it.next() {
        match flag {
            "--quick" => {
                cfg.faults = 25;
                continue;
            }
            // One fault per site: the smallest campaign that still
            // demonstrates an injected fault being caught (CI smoke).
            "--demo" => {
                demo = true;
                cfg.faults = recon_sim::FaultSite::ALL.len();
                continue;
            }
            _ => {}
        }
        let Some(&value) = it.next() else {
            return fail(&format!("{flag} wants a value"));
        };
        match flag {
            "--seed" => match value.parse() {
                Ok(n) => cfg.seed = n,
                Err(_) => return fail(&format!("--seed wants an integer, got '{value}'")),
            },
            "--faults" => match value.parse::<usize>().ok().filter(|&n| n >= 1) {
                Some(n) => cfg.faults = n,
                None => return fail(&format!("--faults wants a positive integer, got '{value}'")),
            },
            "--audit" => match value.parse::<u64>().ok().filter(|&n| n >= 1) {
                Some(n) => cfg.audit_every = n,
                None => {
                    return fail(&format!(
                        "--audit wants a positive cycle cadence, got '{value}'"
                    ))
                }
            },
            "--out" => out = value.to_string(),
            _ => return fail(&format!("unknown audit flag '{flag}'")),
        }
    }
    println!(
        "audit campaign: seed {}, {} fault(s) across {} site(s), sweep every {} cycles",
        cfg.seed,
        cfg.faults,
        recon_sim::FaultSite::ALL.len(),
        cfg.audit_every
    );
    let report = recon_sim::run_campaign(&cfg);
    let mut t = Table::new(&[
        "site", "injected", "audit", "digest", "ckpt", "stall", "crash", "masked", "silent",
        "mean lat", "max lat",
    ]);
    for (site, s) in &report.sites {
        t.row(&[
            site.name().into(),
            s.injected.to_string(),
            s.detected_audit.to_string(),
            s.detected_digest.to_string(),
            s.detected_ckpt_reject.to_string(),
            s.detected_stall.to_string(),
            s.detected_crash.to_string(),
            s.masked.to_string(),
            s.silent.to_string(),
            format!("{:.0}", s.latency_mean()),
            s.latency_max.to_string(),
        ]);
    }
    print!("{}", t.render());
    println!(
        "injected {}: {} detected, {} masked (digest matches fault-free), {} silent | \
         {} no-target skip(s), {} false positive(s)",
        report.injected(),
        report.detected(),
        report.masked(),
        report.silent(),
        report.no_target,
        report.false_positives
    );
    if !demo {
        match std::fs::write(&out, report.to_json()) {
            Ok(()) => println!("report written to {out}"),
            Err(e) => eprintln!("warning: could not write {out}: {e}"),
        }
    }
    if report.false_positives > 0 {
        return fail(&format!(
            "{} fault-free run(s) tripped the auditor (false positives)",
            report.false_positives
        ));
    }
    if report.silent() > 0 {
        return fail(&format!(
            "{} fault(s) corrupted the architectural result undetected",
            report.silent()
        ));
    }
    if demo && report.detected() == 0 {
        return fail("demo campaign detected none of its injected faults");
    }
    println!("silent-corruption defense holds: every unmasked fault detected, 0 false positives");
    ExitCode::SUCCESS
}

fn cmd_analyze(suite_name: &str, bench: &str) -> ExitCode {
    let (_, b) = match find_bench(suite_name, bench) {
        Ok(x) => x,
        Err(e) => return fail(&e),
    };
    if b.workload.num_threads() != 1 {
        return fail("leakage analysis runs on single-thread benchmarks");
    }
    match recon_dift::analyze_program(&b.workload.program, 200_000_000) {
        Ok(r) => {
            println!("{}:", b.name);
            println!("  instructions analyzed  {}", r.instructions);
            println!("  touched words          {}", r.touched_words);
            println!(
                "  DIFT leakage           {} ({:.1}%)",
                r.dift_leaked,
                r.dift_fraction() * 100.0
            );
            println!(
                "  load-pair leakage      {} ({:.1}%)",
                r.pair_leaked,
                r.pair_fraction() * 100.0
            );
            println!("  pair coverage of DIFT  {:.1}%", r.coverage() * 100.0);
            ExitCode::SUCCESS
        }
        Err(e) => fail(&format!("analysis failed: {e}")),
    }
}

/// Parses `verify`'s flags (`--gadget G`, `--scheme S`, any order) and
/// runs the two-trace checker; non-zero exit on any violated
/// expectation so CI can gate on it.
fn cmd_verify(args: &[&str], jobs: usize) -> ExitCode {
    let mut gadget: Option<&str> = None;
    let mut scheme: Option<SecureConfig> = None;
    let mut ff: Option<u64> = None;
    let mut embedded = false;
    let mut it = args.iter();
    while let Some(&flag) = it.next() {
        if flag == "--embedded" {
            embedded = true;
            continue;
        }
        let Some(&value) = it.next() else {
            return fail(&format!("{flag} wants a value"));
        };
        match flag {
            "--gadget" => {
                if recon_verify::gadget::find(value).is_none() {
                    let names: Vec<_> = recon_verify::gadget::all_with_embedded()
                        .iter()
                        .map(|g| g.name)
                        .collect();
                    return fail(&format!("unknown gadget '{value}' ({})", names.join("|")));
                }
                gadget = Some(value);
            }
            "--scheme" => match parse_scheme(value) {
                Some(s) => scheme = Some(s),
                None => {
                    return fail(&format!("unknown scheme '{value}' ({SCHEME_NAMES})"));
                }
            },
            "--fast-forward" => match value.parse::<u64>() {
                Ok(n) if n >= 1 => ff = Some(n),
                _ => {
                    return fail(&format!(
                        "--fast-forward wants a positive instruction count, got '{value}'"
                    ))
                }
            },
            _ => return fail(&format!("unknown verify flag '{flag}'")),
        }
    }

    let budget = Budget {
        fast_forward: ff,
        ..Budget::default()
    };
    if let Some(n) = ff {
        println!(
            "(functional fast-forward: {n} instructions before each soundness \
             run; gadget cells always run fully detailed — warmup would skip \
             the leaks they exist to catch)"
        );
    }
    let report = recon_verify::run_matrix_budgeted_with(gadget, scheme, jobs, &budget, embedded);
    let mut t = Table::new(&[
        "gadget",
        "scheme",
        "verdict",
        "expected",
        "first divergence",
    ]);
    for cell in &report.cells {
        let r = &cell.result;
        t.row(&[
            r.gadget.into(),
            r.scheme.label(),
            r.verdict.to_string(),
            cell.expected.to_string(),
            match (&r.divergence, r.seq_equal) {
                (Some(d), true) => d.to_string(),
                (Some(_), false) => "(leaks architecturally; not speculative)".into(),
                (None, _) => "-".into(),
            },
        ]);
    }
    print!("{}", t.render());
    for l in &report.lifts {
        println!(
            "already-leaked cost: {} delayed {} tainted {} cycles {}  vs  {} delayed {} tainted {} cycles {}  [{}]",
            l.base.label(),
            l.delayed_base,
            l.guarded_base,
            l.cycles_base,
            l.with_recon.label(),
            l.delayed_recon,
            l.guarded_recon,
            l.cycles_recon,
            if l.pass() { "ok" } else { "FAIL" },
        );
    }
    let mut sound_ok = true;
    if gadget.is_none() && scheme.is_none() {
        for run in recon_verify::soundness_sweep_budgeted(jobs, &budget) {
            let ok = run.violations.is_empty();
            sound_ok &= ok;
            println!(
                "reveal soundness: {} ({}) under {}: {}",
                run.name,
                run.suite,
                run.scheme.label(),
                if ok {
                    "ok".to_string()
                } else {
                    format!("{} violations", run.violations.len())
                },
            );
        }
    }
    let unexpected = report.unexpected();
    for u in &unexpected {
        eprintln!("UNEXPECTED: {u}");
    }
    if unexpected.is_empty() && sound_ok {
        println!(
            "security claim holds: {} cells as expected",
            report.cells.len()
        );
        ExitCode::SUCCESS
    } else {
        fail(&format!("{} violated expectations", unexpected.len()))
    }
}

fn cmd_overhead() -> ExitCode {
    use recon::overhead::{lpt_bytes, lpt_tagged_bytes, mask_overhead_fraction};
    println!("LPT (180 pregs): {} B", lpt_bytes(180));
    println!("LPT (224 pregs): {} B", lpt_bytes(224));
    println!("LPT/2 tagged (90): {} B", lpt_tagged_bytes(90));
    let paper = MemConfig::paper();
    let total = paper.l1.capacity_bytes() + paper.l2.capacity_bytes() + paper.llc.capacity_bytes();
    println!(
        "mask overhead: {:.2}% of cache storage",
        mask_overhead_fraction(total) * 100.0
    );
    ExitCode::SUCCESS
}

/// Parses `--flag value` pairs into lookups for `serve`/`bench-serve`.
fn parse_flag_pairs<'a>(args: &[&'a str]) -> Result<Vec<(&'a str, &'a str)>, String> {
    let mut pairs = Vec::new();
    let mut it = args.iter();
    while let Some(&flag) = it.next() {
        let Some(&value) = it.next() else {
            return Err(format!("{flag} wants a value"));
        };
        pairs.push((flag, value));
    }
    Ok(pairs)
}

fn flag_usize(pairs: &[(&str, &str)], flag: &str, default: usize) -> Result<usize, String> {
    match pairs.iter().find(|(f, _)| *f == flag) {
        None => Ok(default),
        Some((_, v)) => v
            .parse()
            .ok()
            .filter(|&n: &usize| n >= 1)
            .ok_or_else(|| format!("{flag} wants a positive integer, got '{v}'")),
    }
}

fn cmd_serve(args: &[&str], jobs: usize) -> ExitCode {
    let pairs = match parse_flag_pairs(args) {
        Ok(p) => p,
        Err(e) => return fail(&e),
    };
    let mut config = recon_serve::ServeConfig {
        workers: jobs,
        ..recon_serve::ServeConfig::default()
    };
    for (flag, value) in &pairs {
        match *flag {
            "--addr" => config.addr = (*value).to_string(),
            "--workers" => match flag_usize(&pairs, "--workers", config.workers) {
                Ok(n) => config.workers = n,
                Err(e) => return fail(&e),
            },
            "--queue-cap" => match flag_usize(&pairs, "--queue-cap", config.queue_cap) {
                Ok(n) => config.queue_cap = n,
                Err(e) => return fail(&e),
            },
            "--handler-cap" => match flag_usize(&pairs, "--handler-cap", config.handler_cap) {
                Ok(n) => config.handler_cap = n,
                Err(e) => return fail(&e),
            },
            "--chaos" => config.chaos = Some((*value).to_string()),
            "--node" => config.node_id = Some((*value).to_string()),
            "--cache-dir" => config.cache_dir = Some(std::path::PathBuf::from(*value)),
            "--checkpoint-every" => match value.parse::<u64>() {
                Ok(n) if n >= 1 => config.checkpoint_every_cycles = n,
                _ => {
                    return fail(&format!(
                        "--checkpoint-every wants a positive cycle count, got '{value}'"
                    ))
                }
            },
            _ => return fail(&format!("unknown serve flag '{flag}'")),
        }
    }
    let server = match recon_serve::Server::start(&config) {
        Ok(s) => s,
        Err(e) => return fail(&format!("could not bind {}: {e}", config.addr)),
    };
    println!(
        "recon-serve listening on http://{} ({} workers, queue capacity {})",
        server.addr(),
        config.workers,
        config.queue_cap
    );
    if let Some(spec) = &config.chaos {
        println!("  chaos plane armed: {spec}");
    }
    if let Some(dir) = &config.cache_dir {
        println!("  crash-safe cache at {}", dir.display());
        println!(
            "  run-job checkpoints every {} cycles (killed jobs resume on restart)",
            config.checkpoint_every_cycles
        );
    }
    if let Some(id) = &config.node_id {
        println!("  cluster node id: {id} (metric samples carry node=\"{id}\")");
    }
    println!("  POST /jobs       submit run|matrix|analyze|verify jobs");
    println!("  POST /jobs/batch submit up to 64 specs in one request");
    println!("  POST /cache      accept a replicated result payload");
    println!("  POST /migrate    accept a shipped RCK1 checkpoint and resume it");
    println!("  POST /drain      cancel work and ship checkpoints to a peer");
    println!("  GET  /metrics    Prometheus text format");
    println!("  GET  /healthz    liveness");
    println!("  POST /shutdown   graceful drain (or {{\"mode\":\"abort\"}})");
    server.wait();
    println!("recon-serve: drained and stopped");
    ExitCode::SUCCESS
}

fn cmd_gateway(args: &[&str]) -> ExitCode {
    let pairs = match parse_flag_pairs(args) {
        Ok(p) => p,
        Err(e) => return fail(&e),
    };
    let mut config = recon_cluster::GatewayConfig::default();
    for (flag, value) in &pairs {
        match *flag {
            "--addr" => config.addr = (*value).to_string(),
            "--nodes" => {
                config.nodes = value
                    .split(',')
                    .map(str::trim)
                    .filter(|s| !s.is_empty())
                    .map(str::to_string)
                    .collect();
            }
            "--vnodes" => match flag_usize(&pairs, "--vnodes", config.vnodes) {
                Ok(n) => config.vnodes = n,
                Err(e) => return fail(&e),
            },
            "--handler-cap" => match flag_usize(&pairs, "--handler-cap", config.handler_cap) {
                Ok(n) => config.handler_cap = n,
                Err(e) => return fail(&e),
            },
            "--no-replicate" => match *value {
                "true" => config.replicate = false,
                "false" => {}
                _ => return fail(&format!("--no-replicate wants true|false, got '{value}'")),
            },
            _ => return fail(&format!("unknown gateway flag '{flag}'")),
        }
    }
    let gateway = match recon_cluster::Gateway::start(&config) {
        Ok(g) => g,
        Err(e) => return fail(&format!("could not start gateway: {e}")),
    };
    println!(
        "recon-gateway listening on http://{} over {} node(s), {} vnodes each",
        gateway.addr(),
        config.nodes.len(),
        config.vnodes
    );
    for node in &config.nodes {
        println!("  node {node}");
    }
    println!("  POST /jobs       route a job to its digest's primary node");
    println!("  POST /jobs/batch fan a batch across the ring");
    println!("  GET  /cluster    ring membership and per-node health");
    println!("  GET  /metrics    gateway + per-node routing counters");
    println!("  GET  /healthz    liveness");
    println!("  POST /shutdown   stop the gateway (nodes keep running)");
    gateway.wait();
    println!("recon-gateway: stopped");
    ExitCode::SUCCESS
}

/// `recon chaos --nodes N`: the cluster storm — real node processes,
/// SIGKILL + restart, drain-driven checkpoint migration, and the
/// admission-throughput comparison, written to `BENCH_cluster.json`.
fn cmd_chaos_cluster(pairs: &[(&str, &str)]) -> ExitCode {
    let node_exe = match std::env::current_exe() {
        Ok(p) => p,
        Err(e) => return fail(&format!("cannot locate the recon binary: {e}")),
    };
    let mut config = recon_cluster::ClusterStormConfig {
        node_exe,
        ..recon_cluster::ClusterStormConfig::default()
    };
    for (flag, value) in pairs {
        let parsed = match *flag {
            "--seed" => value
                .parse::<u64>()
                .map(|n| config.seed = n)
                .map_err(|_| format!("--seed wants an integer, got '{value}'")),
            "--nodes" => flag_usize(pairs, flag, config.nodes).map(|n| config.nodes = n),
            "--clients" => flag_usize(pairs, flag, config.clients).map(|n| config.clients = n),
            "--requests" => flag_usize(pairs, flag, config.requests).map(|n| config.requests = n),
            "--throughput-requests" => flag_usize(pairs, flag, config.throughput_requests)
                .map(|n| config.throughput_requests = n),
            "--out" => {
                config.out = Some((*value).to_string());
                Ok(())
            }
            "--min-speedup" => match value.parse::<f64>() {
                Ok(x) if x > 0.0 => {
                    config.min_speedup = Some(x);
                    Ok(())
                }
                _ => Err(format!(
                    "--min-speedup wants a positive number, got '{value}'"
                )),
            },
            _ => return fail(&format!("unknown cluster chaos flag '{flag}'")),
        };
        if let Err(e) = parsed {
            return fail(&e);
        }
    }
    let report = match recon_cluster::run_cluster_storm(&config) {
        Ok(r) => r,
        Err(e) => return fail(&format!("cluster storm failed: {e}")),
    };
    println!(
        "cluster chaos: seed {} | {} nodes | {} clients x {} requests",
        report.seed, report.nodes, report.clients, report.requests_per_client
    );
    println!(
        "  ok {}  deadline {}  mismatches {}  lost {}  retries {}",
        report.ok, report.deadline, report.mismatches, report.lost, report.retries
    );
    println!(
        "  kills {}  restarts {}  orphan resumed after restart: {}",
        report.kills, report.restarts, report.kill_orphan_resumed
    );
    println!(
        "  migration: {} checkpoint(s) shipped, successor accepted {}, resumed {}, byte-identical: {}",
        report.migrated,
        report.successor_migrations_in,
        report.successor_resumes,
        report.migrated_byte_identical
    );
    println!(
        "  gateway: {} transport reroutes, {} off-primary serves, {} replications",
        report.reroutes, report.gateway_reroutes, report.replications
    );
    for p in &report.throughput {
        println!(
            "  throughput @{} node(s): {} jobs in {:.2}s = {:.1} req/s",
            p.nodes, p.jobs, p.wall_seconds, p.rps
        );
    }
    println!(
        "  aggregate speedup at {} nodes: {:.2}x  wall {:.2}s",
        report.nodes, report.speedup, report.wall_seconds
    );
    if let Some(path) = &config.out {
        println!("report written to {path}");
    }
    if !report.pass() {
        return fail(
            "cluster storm failed: responses lost/mismatched or no provable cross-node resume",
        );
    }
    if let Some(min) = config.min_speedup {
        if report.speedup < min {
            return fail(&format!(
                "aggregate speedup {:.2}x below the required {min}x",
                report.speedup
            ));
        }
        println!("speedup >= {min}x: ok");
    }
    println!(
        "cluster storm: 0 lost, 0 mismatched — a killed node rerouted and a drained node's \
         checkpoint resumed on its ring successor byte-identically"
    );
    ExitCode::SUCCESS
}

fn cmd_bench_serve(args: &[&str], jobs: usize) -> ExitCode {
    let pairs = match parse_flag_pairs(args) {
        Ok(p) => p,
        Err(e) => return fail(&e),
    };
    let mut config = recon_serve::BenchServeConfig {
        workers: jobs,
        ..recon_serve::BenchServeConfig::default()
    };
    for (flag, value) in &pairs {
        let parsed = match *flag {
            "--clients" => flag_usize(&pairs, flag, config.clients).map(|n| config.clients = n),
            "--requests" => flag_usize(&pairs, flag, config.requests).map(|n| config.requests = n),
            "--queue-cap" => {
                flag_usize(&pairs, flag, config.queue_cap).map(|n| config.queue_cap = n)
            }
            "--workers" => flag_usize(&pairs, flag, config.workers).map(|n| config.workers = n),
            "--out" => {
                config.out = (*value).to_string();
                Ok(())
            }
            _ => return fail(&format!("unknown bench-serve flag '{flag}'")),
        };
        if let Err(e) = parsed {
            return fail(&e);
        }
    }
    let report = match recon_serve::run_bench_serve(&config) {
        Ok(r) => r,
        Err(e) => return fail(&format!("bench-serve failed: {e}")),
    };
    println!(
        "bench-serve: {} clients x {} requests (queue capacity {})",
        report.clients, report.requests_per_client, report.queue_cap
    );
    println!(
        "  ok {}  deadline {}  backpressure(429) {}  mismatches {}  lost {}",
        report.ok, report.deadline, report.backpressure_429, report.mismatches, report.lost
    );
    println!(
        "  cache {} hits / {} misses",
        report.cache_hits, report.cache_misses
    );
    println!(
        "  wall {:.2}s  throughput {:.1} req/s  p50 {:.2}ms  p95 {:.2}ms  p99 {:.2}ms",
        report.wall_seconds, report.throughput_rps, report.p50_ms, report.p95_ms, report.p99_ms
    );
    println!("report written to {}", config.out);
    if report.lost > 0 || report.mismatches > 0 {
        return fail("responses were lost or differed from direct execution");
    }
    ExitCode::SUCCESS
}

fn cmd_chaos(args: &[&str], jobs: usize) -> ExitCode {
    let pairs = match parse_flag_pairs(args) {
        Ok(p) => p,
        Err(e) => return fail(&e),
    };
    // `--nodes N` switches to the cluster storm: real node processes
    // behind a gateway instead of synthetic faults inside one process.
    if pairs.iter().any(|(f, _)| *f == "--nodes") {
        return cmd_chaos_cluster(&pairs);
    }
    let mut config = recon_serve::ChaosStormConfig {
        workers: jobs,
        ..recon_serve::ChaosStormConfig::default()
    };
    for (flag, value) in &pairs {
        let parsed = match *flag {
            "--seed" => match value.parse::<u64>() {
                Ok(n) => {
                    config.seed = n;
                    Ok(())
                }
                Err(_) => Err(format!("--seed wants an integer, got '{value}'")),
            },
            "--clients" => flag_usize(&pairs, flag, config.clients).map(|n| config.clients = n),
            "--requests" => flag_usize(&pairs, flag, config.requests).map(|n| config.requests = n),
            "--workers" => flag_usize(&pairs, flag, config.workers).map(|n| config.workers = n),
            "--faults" => {
                config.faults = (*value).to_string();
                Ok(())
            }
            "--out" => {
                config.out = Some((*value).to_string());
                Ok(())
            }
            _ => return fail(&format!("unknown chaos flag '{flag}'")),
        };
        if let Err(e) = parsed {
            return fail(&e);
        }
    }
    let report = match recon_serve::run_chaos_storm(&config) {
        Ok(r) => r,
        Err(e) => return fail(&format!("chaos storm failed: {e}")),
    };
    println!(
        "chaos: seed {} | {} clients x {} requests | faults {}",
        report.seed, report.clients, report.requests_per_client, report.faults
    );
    println!(
        "  ok {}  deadline {}  mismatches {}  lost {}  retries {}  reconnects {}",
        report.ok,
        report.deadline,
        report.mismatches,
        report.lost,
        report.retries,
        report.reconnects
    );
    let injected: Vec<String> = report
        .injected
        .iter()
        .map(|(site, n)| format!("{site} {n}"))
        .collect();
    println!(
        "  injected {} ({})",
        report.injected_total,
        injected.join(", ")
    );
    println!(
        "  worker restarts {}  singleflight joins {}  cache {} hits / {} misses  wall {:.2}s",
        report.worker_restarts,
        report.singleflight_joined,
        report.cache_hits,
        report.cache_misses,
        report.wall_seconds
    );
    if let Some(path) = &config.out {
        println!("report written to {path}");
    }
    if !report.pass() {
        return fail("chaos storm lost or corrupted responses");
    }
    println!("chaos storm: 0 lost, 0 mismatched — service healed every injected fault");
    ExitCode::SUCCESS
}

/// Parses `bench-speed`'s flags (`--quick` is valueless; the rest are
/// pairs) and runs the MIPS scoreboard: functional vs detailed
/// throughput per scheme, the fast-forward end-to-end speedup, and the
/// per-optimization microbenchmarks, written to `BENCH_speed.json`.
fn cmd_bench_speed(args: &[&str]) -> ExitCode {
    let mut quick = false;
    let mut out = "BENCH_speed.json".to_string();
    let mut bench = "mcf".to_string();
    let mut min_functional: Option<f64> = None;
    let mut it = args.iter();
    while let Some(&flag) = it.next() {
        match flag {
            "--quick" => quick = true,
            "--out" | "--bench" | "--min-functional-speedup" => {
                let Some(&value) = it.next() else {
                    return fail(&format!("{flag} wants a value"));
                };
                match flag {
                    "--out" => out = value.to_string(),
                    "--bench" => bench = value.to_string(),
                    _ => match value.parse::<f64>() {
                        Ok(x) if x > 0.0 => min_functional = Some(x),
                        _ => {
                            return fail(&format!(
                                "--min-functional-speedup wants a positive number, got '{value}'"
                            ))
                        }
                    },
                }
            }
            _ => return fail(&format!("unknown bench-speed flag '{flag}'")),
        }
    }
    let report = recon_sim::SpeedReport::measure(Suite::Spec2017, &bench, quick);
    println!(
        "bench-speed: {} ({} scale){}",
        report.bench,
        report.scale,
        if quick { ", quick repeats" } else { "" }
    );
    println!(
        "  functional: {} instructions in {:.3}s = {:.2} MIPS",
        report.functional_instructions,
        report.functional_seconds,
        report.functional_mips()
    );
    println!(
        "  fast-forward warmup: {} instructions (detailed tail: {})",
        report.fast_forward,
        report.functional_instructions - report.fast_forward
    );
    let mut t = Table::new(&[
        "scheme",
        "detailed MIPS",
        "detailed s",
        "warm s",
        "speedup",
        "identical",
    ]);
    for s in &report.schemes {
        t.row(&[
            s.scheme.label(),
            format!("{:.2}", s.detailed_mips()),
            format!("{:.3}", s.detailed_seconds),
            format!("{:.3}", s.warm_seconds),
            format!("{:.2}x", s.speedup),
            if s.identical {
                "ok".into()
            } else {
                "FAIL".into()
            },
        ]);
    }
    print!("{}", t.render());
    println!(
        "audit sweep (every {} cycles, STT+ReCon): {} sweeps cost {:.4}s on a {:.3}s run = {:.2}% host overhead [{}]",
        report.audit.audit_every,
        report.audit.sweeps,
        report.audit.sweep_seconds,
        report.audit.run_seconds,
        report.audit.overhead_fraction() * 100.0,
        if report.audit.identical { "identical" } else { "DIVERGED" },
    );
    println!("optimization isolation (baseline vs fast path):");
    for m in &report.micro {
        println!(
            "  {:<6} {:.2} -> {:.2} Mops/s ({:.2}x)  [{} vs {}]",
            m.name,
            m.baseline_mops,
            m.optimized_mops,
            m.speedup(),
            m.baseline,
            m.optimized,
        );
    }
    println!(
        "functional over fastest detailed: {:.2}x | end-to-end warm speedup (worst scheme): {:.2}x",
        report.functional_over_detailed(),
        report.end_to_end_speedup(),
    );
    match report.write_json(&out) {
        Ok(()) => println!("scoreboard written to {out}"),
        Err(e) => eprintln!("warning: could not write {out}: {e}"),
    }
    if !report.all_identical() {
        return fail("a warm run's detailed region diverged from its snapshot/restore replica");
    }
    if !report.audit.identical {
        return fail("the audit sweep perturbed the simulated run — it must be pure observation");
    }
    if let Some(min) = min_functional {
        let got = report.functional_over_detailed();
        if got < min {
            return fail(&format!(
                "functional mode is only {got:.2}x the fastest detailed scheme (required {min}x)"
            ));
        }
        println!("functional >= {min}x detailed: ok");
    }
    ExitCode::SUCCESS
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("error: {msg}");
    ExitCode::FAILURE
}

fn usage() -> ExitCode {
    eprintln!("usage: recon <command>");
    eprintln!("  list                               list all benchmark stand-ins");
    eprintln!("  workloads [--list]                 enumerate suites/workloads with");
    eprintln!("                                     static instruction counts");
    eprintln!("  asm <file> [--dump] [--run SCHEME] assemble a .asm program; --dump prints");
    eprintln!("      [--fast-forward N]             canonical disassembly, --run executes");
    eprintln!("                                     it and reads the self-check words");
    eprintln!("  run <suite> <bench> <scheme>       run one configuration");
    eprintln!("      [--checkpoint D] [--checkpoint-every CYC]");
    eprintln!("                                     periodic crash-safe checkpoints into D");
    eprintln!("      [--fast-forward N]             functional warmup: N instructions before");
    eprintln!("                                     detailed timing");
    eprintln!("      [--watchdog-cycles N]          liveness watchdog window (default {DEFAULT_WATCHDOG_CYCLES};");
    eprintln!("                                     0 = off); stalls print full forensics");
    eprintln!("      [--audit CYC]                  sweep the invariant auditor every CYC");
    eprintln!("                                     cycles; violations print forensics");
    eprintln!("  resume <file.rck>                  continue a checkpointed run");
    eprintln!("  matrix <suite> <bench> [--jobs N]  run all five configurations");
    eprintln!("  suite <suite> [--jobs N]           five-way matrix on every benchmark,");
    eprintln!("                                     timings to BENCH_runner.json");
    eprintln!("      [--checkpoint D] [--checkpoint-every CYC]");
    eprintln!("                                     crash-safe suite: finished jobs are");
    eprintln!("                                     cached, killed jobs resume");
    eprintln!("      [--fast-forward N]             functional warmup per job");
    eprintln!("      [--watchdog-cycles N]          liveness watchdog window per job (0 = off)");
    eprintln!("      [--audit CYC]                  invariant-audit sweep cadence per job");
    eprintln!("  fuzz [--seed S] [--count N] [--quick] [--jobs N]");
    eprintln!("       [--out-dir D] [--json P] [--watchdog-cycles N]");
    eprintln!("                                     seeded differential torture: random");
    eprintln!("                                     programs x five oracles, failures");
    eprintln!("                                     shrunk to minimal .asm repros");
    eprintln!("  audit [--seed S] [--faults N] [--audit CYC] [--out P] [--quick] [--demo]");
    eprintln!("                                     seeded soft-error injection campaign:");
    eprintln!("                                     every unmasked fault must be detected");
    eprintln!("                                     -> BENCH_audit.json (--demo: CI smoke)");
    eprintln!("  analyze <suite> <bench>            leakage (DIFT vs load pairs)");
    eprintln!("  verify [--gadget G] [--scheme S]   two-trace security checker");
    eprintln!("         [--fast-forward N]          (gadget x scheme verdict matrix;");
    eprintln!("                                     warmup applies to soundness runs only)");
    eprintln!("         [--embedded]                include gadgets spliced into corpus");
    eprintln!("                                     host programs (quicksort, memref)");
    eprintln!("  overhead                           §6.7 storage accounting");
    eprintln!("  serve [--addr A] [--workers N] [--queue-cap Q] [--handler-cap H]");
    eprintln!("        [--chaos SPEC] [--cache-dir D] [--checkpoint-every CYC] [--node ID]");
    eprintln!("                                     HTTP job service (--node labels metrics");
    eprintln!("                                     and marks a cluster worker)");
    eprintln!("  gateway --nodes H:P,H:P,... [--addr A] [--vnodes V] [--handler-cap H]");
    eprintln!("                                     consistent-hash front door over N nodes");
    eprintln!("  bench-serve [--clients C] [--requests R] [--queue-cap Q] [--out P]");
    eprintln!("                                     loopback load test -> BENCH_serve.json");
    eprintln!("  chaos [--seed S] [--clients C] [--requests R] [--faults F] [--out P]");
    eprintln!("                                     seeded fault storm -> BENCH_chaos.json");
    eprintln!("  chaos --nodes N [--seed S] [--clients C] [--requests R] [--min-speedup X]");
    eprintln!("                                     cluster storm: SIGKILL + restart, drain");
    eprintln!("                                     migration -> BENCH_cluster.json");
    eprintln!("  bench-speed [--quick] [--bench B] [--out P] [--min-functional-speedup X]");
    eprintln!("                                     MIPS scoreboard -> BENCH_speed.json");
    eprintln!("suites: spec2017 spec2006 parsec corpus");
    eprintln!("schemes: unsafe nda nda+recon stt stt+recon");
    eprintln!("--jobs defaults to RECON_JOBS or all cores");
    ExitCode::FAILURE
}

/// Strips a trailing `--jobs N` from the argument list, returning the
/// remaining arguments and the worker count (default: `RECON_JOBS` or
/// the host parallelism).
fn split_jobs<'a>(args: &'a [&'a str]) -> Result<(&'a [&'a str], usize), String> {
    if args.len() >= 2 && args[args.len() - 2] == "--jobs" {
        let n = args[args.len() - 1];
        let jobs: usize = n
            .parse()
            .ok()
            .filter(|&j| j >= 1)
            .ok_or_else(|| format!("--jobs wants a positive integer, got '{n}'"))?;
        Ok((&args[..args.len() - 2], jobs))
    } else {
        jobs_from_env().map(|jobs| (args, jobs))
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let strs: Vec<&str> = args.iter().map(String::as_str).collect();
    let (strs, jobs) = match split_jobs(&strs) {
        Ok(x) => x,
        Err(e) => return fail(&e),
    };
    match strs {
        ["list"] => cmd_list(),
        ["workloads", rest @ ..] => cmd_workloads(rest),
        ["asm", file, rest @ ..] => cmd_asm(file, rest),
        ["run", suite, bench, scheme, rest @ ..] => cmd_run(suite, bench, scheme, rest),
        ["run", suite, bench] => cmd_matrix(suite, bench, jobs),
        ["matrix", suite, bench] => cmd_matrix(suite, bench, jobs),
        ["resume", file] => cmd_resume(file),
        ["suite", suite, rest @ ..] => cmd_suite(suite, jobs, rest),
        ["fuzz", rest @ ..] => cmd_fuzz(rest, jobs),
        ["audit", rest @ ..] => cmd_audit(rest),
        ["analyze", suite, bench] => cmd_analyze(suite, bench),
        ["verify", rest @ ..] => cmd_verify(rest, jobs),
        ["overhead"] => cmd_overhead(),
        ["serve", rest @ ..] => cmd_serve(rest, jobs),
        ["gateway", rest @ ..] => cmd_gateway(rest),
        ["bench-serve", rest @ ..] => cmd_bench_serve(rest, jobs),
        ["bench-speed", rest @ ..] => cmd_bench_speed(rest),
        ["chaos", rest @ ..] => cmd_chaos(rest, jobs),
        _ => usage(),
    }
}

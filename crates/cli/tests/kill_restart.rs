//! The crash-safety acceptance tests: `kill -9` a populated `recon
//! serve --cache-dir`, corrupt the persisted tail like a torn write
//! would, restart, and require the recovered entries to be served as
//! cache hits with the corrupt tail dropped and counted — and `kill -9`
//! a server *mid-job*, restart, and require the orphaned job to resume
//! from its checkpoint and serve bytes identical to an uninterrupted
//! run.

use std::io::{BufRead as _, BufReader, Write as _};
use std::net::SocketAddr;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use recon_serve::client;
use recon_serve::job::{self, CkptPlan, JobSpec};
use recon_serve::json::parse;

const SPEC: &str = r#"{"kind":"verify","gadget":"spectre-v1","scheme":"stt+recon"}"#;

/// Spawns `recon serve` on an ephemeral port and parses the bound
/// address from its startup banner.
fn spawn_serve(dir: &std::path::Path, extra: &[&str]) -> (Child, SocketAddr) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_recon"))
        .args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--cache-dir",
            dir.to_str().expect("utf-8 temp path"),
        ])
        .args(extra)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn recon serve");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut lines = BufReader::new(stdout).lines();
    let addr = loop {
        let line = lines
            .next()
            .expect("serve exited before announcing its address")
            .expect("read stdout");
        if let Some(rest) = line.split("listening on http://").nth(1) {
            break rest
                .split_whitespace()
                .next()
                .expect("address after scheme")
                .parse()
                .expect("parse bound address");
        }
    };
    // Keep draining stdout so the child never blocks on a full pipe.
    std::thread::spawn(move || for _ in lines {});
    (child, addr)
}

fn scrape(metrics: &str, name: &str) -> u64 {
    metrics
        .lines()
        .find(|l| l.starts_with(name) && l.as_bytes().get(name.len()) == Some(&b' '))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(u64::MAX)
}

#[test]
fn kill_dash_nine_then_restart_recovers_the_cache() {
    let dir = std::env::temp_dir().join(format!("recon-kill-restart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create cache dir");

    // Populate, then kill -9 — no drain, no flush beyond the per-insert
    // append, exactly the crash the persistence layer is built for.
    let (mut child, addr) = spawn_serve(&dir, &[]);
    let miss = client::submit_job(addr, SPEC).expect("populate the cache");
    assert_eq!(miss.status, 200);
    assert_eq!(miss.header("x-recon-cache"), Some("miss"));
    let body_before = miss.body;
    child.kill().expect("SIGKILL the server");
    let _ = child.wait();

    // A torn tail on top: a record that stops mid-payload.
    {
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .create(true)
            .open(dir.join("cache.log"))
            .expect("append torn bytes");
        f.write_all(&0x3143_4352u32.to_le_bytes()).unwrap();
        f.write_all(&0xFEED_FACEu64.to_le_bytes()).unwrap();
        f.write_all(&128u32.to_le_bytes()).unwrap();
        f.write_all(b"partial payload then nothing").unwrap();
    }

    // Restart on the same directory: the executed job is a hit with
    // identical bytes, the torn record is dropped and counted.
    let (mut child, addr) = spawn_serve(&dir, &[]);
    let hit = client::submit_job(addr, SPEC).expect("post-crash submission");
    assert_eq!(hit.status, 200);
    assert_eq!(
        hit.header("x-recon-cache"),
        Some("hit"),
        "the crash must not lose the persisted result"
    );
    assert_eq!(hit.body, body_before, "recovered bytes must be identical");

    let metrics = client::request(addr, "GET", "/metrics", None)
        .expect("metrics")
        .body;
    assert!(
        scrape(&metrics, "recon_cache_recovered_total") >= 1,
        "{metrics}"
    );
    assert_eq!(
        scrape(&metrics, "recon_cache_dropped_records_total"),
        1,
        "{metrics}"
    );

    client::request(addr, "POST", "/shutdown", None).expect("shutdown");
    wait_exit(&mut child);

    let _ = std::fs::remove_dir_all(&dir);
}

/// Waits for the server process to exit on its own after a shutdown;
/// kills it (and fails) if it hangs.
fn wait_exit(child: &mut Child) {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        match child.try_wait().expect("try_wait") {
            Some(_) => break,
            None if Instant::now() > deadline => {
                child.kill().expect("kill hung server");
                let _ = child.wait();
                panic!("server did not exit after POST /shutdown");
            }
            None => std::thread::sleep(Duration::from_millis(50)),
        }
    }
}

/// `kill -9` the server while a `run` job is mid-simulation, restart,
/// and require the orphaned job to be resumed from its last checkpoint
/// — with the served bytes identical to an uninterrupted execution.
#[test]
fn sigkill_mid_job_resumes_from_checkpoint_with_identical_bytes() {
    const RUN_SPEC: &str =
        r#"{"kind":"run","suite":"spec2017","bench":"xalancbmk","scheme":"stt+recon"}"#;
    const CADENCE: u64 = 2_000;

    let dir = std::env::temp_dir().join(format!("recon-kill-midjob-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create cache dir");

    // The reference bytes: a direct, uninterrupted execution at the
    // same checkpoint cadence (drain timing is part of the run config).
    let spec = JobSpec::from_json(&parse(RUN_SPEC).expect("spec parses")).expect("spec validates");
    let plan = CkptPlan {
        dir: None,
        cadence: CADENCE,
        keep: 2,
    };
    let expected = job::execute_ckpt(&spec, None, Some(&plan))
        .0
        .expect("direct run completes")
        .payload;

    // Submit, wait for the first checkpoint file to land, then SIGKILL
    // mid-simulation. The client connection dies with the server.
    let (mut child, addr) = spawn_serve(&dir, &["--checkpoint-every", "2000"]);
    let submit = std::thread::spawn(move || {
        let _ = client::submit_job(addr, RUN_SPEC);
    });
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let has_ckpt = std::fs::read_dir(&dir).is_ok_and(|rd| {
            rd.filter_map(Result::ok)
                .any(|e| e.path().extension().is_some_and(|x| x == "rck"))
        });
        if has_ckpt {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "no checkpoint appeared within the deadline"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
    child.kill().expect("SIGKILL the server mid-job");
    let _ = child.wait();
    let _ = submit.join();

    // Restart on the same directory: the orphan is re-enqueued from the
    // spec embedded in its checkpoint and resumed, and a resubmission
    // must serve the exact bytes of the uninterrupted run.
    let (mut child, addr) = spawn_serve(&dir, &["--checkpoint-every", "2000"]);
    let r = client::submit_job(addr, RUN_SPEC).expect("post-restart submission");
    assert_eq!(r.status, 200);
    assert_eq!(
        r.body, expected,
        "resumed result must be byte-identical to the uninterrupted run"
    );

    let metrics = client::request(addr, "GET", "/metrics", None)
        .expect("metrics")
        .body;
    assert!(
        scrape(&metrics, "recon_checkpoints_resumed_total") >= 1,
        "the orphaned job must resume from its checkpoint, not restart:\n{metrics}"
    );
    assert!(
        scrape(&metrics, "recon_checkpoints_written_total") >= 1,
        "{metrics}"
    );

    client::request(addr, "POST", "/shutdown", None).expect("shutdown");
    wait_exit(&mut child);

    let _ = std::fs::remove_dir_all(&dir);
}

//! Offline cluster smoke: a seeded mini-storm over real `recon serve`
//! child processes — one SIGKILL + restart, one drain-driven checkpoint
//! migration — gated on 0 lost / 0 mismatched / byte-identical. This is
//! the test CI's `cluster-smoke` job runs.

use std::path::PathBuf;

use recon_cluster::{run_cluster_storm, ClusterStormConfig};

#[test]
fn mini_storm_survives_a_kill_and_proves_a_cross_node_resume() {
    let config = ClusterStormConfig {
        seed: 11,
        nodes: 3,
        clients: 2,
        requests: 3,
        node_workers: 1,
        throughput_requests: 8,
        watch_fuel: 6_000_000,
        node_exe: PathBuf::from(env!("CARGO_BIN_EXE_recon")),
        out: None,
        min_speedup: None,
    };
    let report = run_cluster_storm(&config).expect("cluster storm runs");

    assert_eq!(report.lost, 0, "no request may go unanswered: {report:?}");
    assert_eq!(report.mismatches, 0, "no response may differ: {report:?}");
    assert_eq!(report.kills, 1, "{report:?}");
    assert_eq!(report.restarts, 1, "{report:?}");
    assert!(
        report.migrated >= 1,
        "drain must ship a checkpoint: {report:?}"
    );
    assert!(
        report.successor_migrations_in >= 1 && report.successor_resumes >= 1,
        "the ring successor must accept and resume the migrated checkpoint: {report:?}"
    );
    assert!(
        report.migrated_byte_identical,
        "the cross-node resume must be byte-identical: {report:?}"
    );
    assert!(report.pass(), "{report:?}");
    // Both throughput samples answered everything (their client loops
    // assert 0 lost / 0 mismatched internally).
    assert_eq!(report.throughput.len(), 2);
}

//! Data memory abstraction and a sparse word-granular implementation.

use std::collections::HashMap;

use crate::program::MemImage;

/// Word-granular data memory as seen by the functional semantics.
///
/// All accesses are aligned 8-byte words. Uninitialized words read as 0.
pub trait DataMem {
    /// Reads the word at the (aligned) address.
    fn read(&mut self, addr: u64) -> u64;
    /// Writes the word at the (aligned) address.
    fn write(&mut self, addr: u64, value: u64);
}

/// Sparse hash-map-backed memory. Uninitialized words read as zero.
///
/// ```
/// use recon_isa::{DataMem, SparseMem};
///
/// let mut m = SparseMem::new();
/// assert_eq!(m.read(0x1000), 0);
/// m.write(0x1000, 99);
/// assert_eq!(m.read(0x1000), 99);
/// ```
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct SparseMem {
    words: HashMap<u64, u64>,
}

impl SparseMem {
    /// Creates an empty (all-zero) memory.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a memory pre-loaded from a program image.
    #[must_use]
    pub fn from_image(image: &MemImage) -> Self {
        SparseMem { words: image.iter().collect() }
    }

    /// Number of words ever written (or loaded from the image).
    #[must_use]
    pub fn touched_words(&self) -> usize {
        self.words.len()
    }

    /// Reads without requiring `&mut self` (the trait takes `&mut` so
    /// that timing models can update internal state on reads).
    #[must_use]
    pub fn peek(&self, addr: u64) -> u64 {
        debug_assert_eq!(addr % 8, 0, "misaligned read at {addr:#x}");
        self.words.get(&addr).copied().unwrap_or(0)
    }
}

impl DataMem for SparseMem {
    fn read(&mut self, addr: u64) -> u64 {
        self.peek(addr)
    }

    fn write(&mut self, addr: u64, value: u64) {
        debug_assert_eq!(addr % 8, 0, "misaligned write at {addr:#x}");
        self.words.insert(addr, value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uninitialized_reads_zero() {
        let mut m = SparseMem::new();
        assert_eq!(m.read(0x0), 0);
        assert_eq!(m.read(0xFFF8), 0);
    }

    #[test]
    fn write_then_read() {
        let mut m = SparseMem::new();
        m.write(0x8, 1234);
        assert_eq!(m.read(0x8), 1234);
        assert_eq!(m.peek(0x8), 1234);
        assert_eq!(m.touched_words(), 1);
    }

    #[test]
    fn from_image_preloads() {
        let img: MemImage = [(0x10, 7)].into_iter().collect();
        let mut m = SparseMem::from_image(&img);
        assert_eq!(m.read(0x10), 7);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "misaligned")]
    fn misaligned_write_panics_in_debug() {
        let mut m = SparseMem::new();
        m.write(0x3, 1);
    }
}

//! Data memory abstraction and a paged flat-store implementation.

use crate::hash::FxHashMap;
use crate::program::MemImage;
use crate::snap::{SnapError, SnapReader, SnapWriter};

/// Word-granular data memory as seen by the functional semantics.
///
/// All accesses are aligned 8-byte words. Uninitialized words read as 0.
pub trait DataMem {
    /// Reads the word at the (aligned) address.
    fn read(&mut self, addr: u64) -> u64;
    /// Writes the word at the (aligned) address.
    fn write(&mut self, addr: u64, value: u64);
}

/// Page granularity: 4 KiB = 512 words. Large enough to amortize the
/// page lookup over hundreds of neighbouring accesses, small enough
/// that sparse workload images stay sparse.
const PAGE_SHIFT: u32 = 12;
/// Words per page.
const PAGE_WORDS: usize = 1 << (PAGE_SHIFT - 3);
/// Word-index mask within a page.
const WORD_MASK: u64 = PAGE_WORDS as u64 - 1;

/// One zero-initialized page of backing store.
type Page = [u64; PAGE_WORDS];

/// Sparse paged memory. Uninitialized words read as zero.
///
/// This sits on the simulator's hottest path — every functional load and
/// store of every core, every cycle — so it is a flat array walk, not a
/// per-word hash lookup: addresses map to 4 KiB pages held in an
/// [`FxHashMap`] (allocated on first write), and
/// the word index within the page is a shift-and-mask. Compared to the
/// previous word-granular SipHash map this is one cheap hash per *page*
/// reference instead of one expensive hash per *word* reference, plus
/// cache-friendly locality for neighbouring words.
///
/// On top of the paged map sits a **single-entry last-page cache**: the
/// most recently accessed page is held out of the map in a dedicated
/// slot, so the sequential and loop-local access patterns that dominate
/// every workload skip the hash probe entirely and go straight to an
/// index into the hot page. A miss swaps the hot page back into the map
/// and promotes the new one — two map operations, amortized over the
/// hundreds of subsequent same-page hits.
///
/// ```
/// use recon_isa::{DataMem, SparseMem};
///
/// let mut m = SparseMem::new();
/// assert_eq!(m.read(0x1000), 0);
/// m.write(0x1000, 99);
/// assert_eq!(m.read(0x1000), 99);
/// ```
#[derive(Clone, Debug, Default)]
pub struct SparseMem {
    pages: FxHashMap<u64, Box<Page>>,
    /// Page index of the hot slot (meaningful only while `hot` is
    /// `Some`). Invariant: the hot page is never also in `pages`.
    hot_page: u64,
    hot: Option<Box<Page>>,
}

impl PartialEq for SparseMem {
    /// Logical equality over resident pages: where the hot slot points
    /// is an access-pattern artifact, not state.
    fn eq(&self, other: &Self) -> bool {
        self.resident_pages() == other.resident_pages()
            && self
                .iter_pages()
                .all(|(idx, page)| other.page_ref(idx) == Some(page))
    }
}

impl Eq for SparseMem {}

#[inline]
fn page_of(addr: u64) -> u64 {
    addr >> PAGE_SHIFT
}

#[inline]
fn word_in_page(addr: u64) -> usize {
    ((addr >> 3) & WORD_MASK) as usize
}

impl SparseMem {
    /// Creates an empty (all-zero) memory.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a memory pre-loaded from a program image.
    #[must_use]
    pub fn from_image(image: &MemImage) -> Self {
        let mut m = SparseMem::new();
        for (addr, value) in image.iter() {
            m.write(addr, value);
        }
        m
    }

    /// Number of resident backing pages (4 KiB each).
    #[must_use]
    pub fn resident_pages(&self) -> usize {
        self.pages.len() + usize::from(self.hot.is_some())
    }

    /// Number of words with backing store allocated (an upper bound on
    /// the words ever written: writes allocate whole pages).
    #[must_use]
    pub fn resident_words(&self) -> usize {
        self.resident_pages() * PAGE_WORDS
    }

    /// The resident page at `idx`, checking the hot slot first.
    #[inline]
    fn page_ref(&self, idx: u64) -> Option<&Page> {
        if self.hot_page == idx {
            if let Some(hot) = &self.hot {
                return Some(hot);
            }
        }
        self.pages.get(&idx).map(|p| &**p)
    }

    /// All resident pages, in map order plus the hot slot.
    fn iter_pages(&self) -> impl Iterator<Item = (u64, &Page)> {
        self.pages
            .iter()
            .map(|(idx, p)| (*idx, &**p))
            .chain(self.hot.as_deref().map(|p| (self.hot_page, p)))
    }

    /// Moves `idx` into the hot slot, flushing the previous occupant
    /// back into the map. Returns `false` when the page is not resident
    /// (the hot slot is left untouched).
    fn promote(&mut self, idx: u64) -> bool {
        let Some(page) = self.pages.remove(&idx) else {
            return false;
        };
        if let Some(old) = self.hot.replace(page) {
            self.pages.insert(self.hot_page, old);
        }
        self.hot_page = idx;
        true
    }

    /// Serializes resident pages in ascending page order (canonical
    /// bytes: the same contents always encode identically, regardless
    /// of hash-map iteration order or which page is hot).
    pub fn save_snap(&self, w: &mut SnapWriter) {
        w.tag(b"SMEM");
        let mut indices: Vec<u64> = self.pages.keys().copied().collect();
        if self.hot.is_some() {
            indices.push(self.hot_page);
        }
        indices.sort_unstable();
        w.u64(indices.len() as u64);
        for idx in indices {
            w.u64(idx);
            let page = self.page_ref(idx).expect("resident page");
            for word in page.iter() {
                w.u64(*word);
            }
        }
    }

    /// Reconstructs a memory from [`SparseMem::save_snap`] bytes.
    ///
    /// # Errors
    ///
    /// Propagates decode errors from a truncated or corrupt stream.
    pub fn load_snap(r: &mut SnapReader<'_>) -> Result<SparseMem, SnapError> {
        r.expect_tag(b"SMEM")?;
        let count = r.u64()? as usize;
        let mut pages = FxHashMap::default();
        for _ in 0..count {
            let idx = r.u64()?;
            let mut page = Box::new([0u64; PAGE_WORDS]);
            for word in page.iter_mut() {
                *word = r.u64()?;
            }
            pages.insert(idx, page);
        }
        Ok(SparseMem {
            pages,
            hot_page: 0,
            hot: None,
        })
    }

    /// Reads without requiring `&mut self` (the trait takes `&mut` so
    /// that timing models can update internal state on reads). Shared
    /// access cannot rotate the hot slot, so repeated off-hot peeks pay
    /// the map probe; the `&mut` paths promote.
    #[must_use]
    #[inline]
    pub fn peek(&self, addr: u64) -> u64 {
        debug_assert_eq!(addr % 8, 0, "misaligned read at {addr:#x}");
        match self.page_ref(page_of(addr)) {
            Some(page) => page[word_in_page(addr)],
            None => 0,
        }
    }
}

impl DataMem for SparseMem {
    #[inline]
    fn read(&mut self, addr: u64) -> u64 {
        debug_assert_eq!(addr % 8, 0, "misaligned read at {addr:#x}");
        let idx = page_of(addr);
        if self.hot_page == idx {
            if let Some(hot) = &self.hot {
                return hot[word_in_page(addr)];
            }
        }
        if self.promote(idx) {
            self.hot.as_ref().expect("just promoted")[word_in_page(addr)]
        } else {
            0
        }
    }

    #[inline]
    fn write(&mut self, addr: u64, value: u64) {
        debug_assert_eq!(addr % 8, 0, "misaligned write at {addr:#x}");
        let idx = page_of(addr);
        if self.hot_page == idx {
            if let Some(hot) = &mut self.hot {
                hot[word_in_page(addr)] = value;
                return;
            }
        }
        if !self.promote(idx) {
            // First touch: allocate straight into the hot slot.
            if let Some(old) = self.hot.replace(Box::new([0u64; PAGE_WORDS])) {
                self.pages.insert(self.hot_page, old);
            }
            self.hot_page = idx;
        }
        self.hot.as_mut().expect("hot page resident")[word_in_page(addr)] = value;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uninitialized_reads_zero() {
        let mut m = SparseMem::new();
        assert_eq!(m.read(0x0), 0);
        assert_eq!(m.read(0xFFF8), 0);
        assert_eq!(m.resident_pages(), 0, "reads allocate nothing");
    }

    #[test]
    fn write_then_read() {
        let mut m = SparseMem::new();
        m.write(0x8, 1234);
        assert_eq!(m.read(0x8), 1234);
        assert_eq!(m.peek(0x8), 1234);
        assert_eq!(m.resident_pages(), 1);
        assert_eq!(m.resident_words(), PAGE_WORDS);
    }

    #[test]
    fn from_image_preloads() {
        let img: MemImage = [(0x10, 7)].into_iter().collect();
        let mut m = SparseMem::from_image(&img);
        assert_eq!(m.read(0x10), 7);
    }

    #[test]
    fn page_boundaries_are_independent_words() {
        let mut m = SparseMem::new();
        // Last word of page 0, first word of page 1.
        m.write(0x0FF8, 1);
        m.write(0x1000, 2);
        assert_eq!(m.read(0x0FF8), 1);
        assert_eq!(m.read(0x1000), 2);
        assert_eq!(m.resident_pages(), 2);
        // Untouched neighbours on both pages stay zero.
        assert_eq!(m.read(0x0FF0), 0);
        assert_eq!(m.read(0x1008), 0);
    }

    #[test]
    fn distant_addresses_do_not_alias() {
        let mut m = SparseMem::new();
        // Same word-in-page index, different pages.
        m.write(0x0008, 10);
        m.write(0x0010_0008, 20);
        m.write(0xFFFF_FFFF_FFFF_F008, 30);
        assert_eq!(m.read(0x0008), 10);
        assert_eq!(m.read(0x0010_0008), 20);
        assert_eq!(m.read(0xFFFF_FFFF_FFFF_F008), 30);
    }

    #[test]
    fn snapshot_round_trip_is_canonical() {
        let mut m = SparseMem::new();
        m.write(0x8, 1);
        m.write(0x1000, 2);
        m.write(0xFFFF_FFFF_FFFF_F008, 3);
        let mut w = crate::snap::SnapWriter::new();
        m.save_snap(&mut w);
        let bytes = w.into_bytes();
        let mut r = crate::snap::SnapReader::new(&bytes);
        let restored = SparseMem::load_snap(&mut r).unwrap();
        assert!(r.is_exhausted());
        assert_eq!(restored, m);
        // Canonical bytes: a clone (fresh hash-map iteration order)
        // serializes identically.
        let mut w2 = crate::snap::SnapWriter::new();
        restored.save_snap(&mut w2);
        assert_eq!(w2.into_bytes(), bytes);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "misaligned")]
    fn misaligned_write_panics_in_debug() {
        let mut m = SparseMem::new();
        m.write(0x3, 1);
    }

    #[test]
    fn hot_slot_rotation_preserves_contents() {
        // Ping-pong across pages: every access rotates the hot slot,
        // and nothing is lost or aliased in the swaps.
        let mut m = SparseMem::new();
        m.write(0x0000, 1); // page 0 becomes hot
        m.write(0x1000, 2); // page 1 evicts it
        m.write(0x2000, 3); // page 2 evicts page 1
        for _ in 0..4 {
            assert_eq!(m.read(0x0000), 1);
            assert_eq!(m.read(0x1000), 2);
            assert_eq!(m.read(0x2000), 3);
        }
        assert_eq!(m.resident_pages(), 3);
    }

    #[test]
    fn equality_ignores_which_page_is_hot() {
        let mut a = SparseMem::new();
        a.write(0x0000, 7);
        a.write(0x1000, 8);
        let mut b = a.clone();
        // Leave different pages hot in each.
        a.read(0x0000);
        b.read(0x1000);
        assert_eq!(a, b);
        assert_eq!(b, a);
        b.write(0x1000, 9);
        assert_ne!(a, b);
    }

    #[test]
    fn snapshot_is_canonical_regardless_of_hot_page() {
        let mut m = SparseMem::new();
        m.write(0x8, 1);
        m.write(0x1000, 2);
        let snap_of = |mem: &SparseMem| {
            let mut w = crate::snap::SnapWriter::new();
            mem.save_snap(&mut w);
            w.into_bytes()
        };
        let first = snap_of(&m);
        m.read(0x8); // rotate the hot slot
        assert_eq!(snap_of(&m), first);
        m.read(0x1000);
        assert_eq!(snap_of(&m), first);
    }

    #[test]
    fn peek_sees_the_hot_page() {
        let mut m = SparseMem::new();
        m.write(0x2000, 5); // page is in the hot slot, not the map
        assert_eq!(m.peek(0x2000), 5);
        m.write(0x3000, 6); // 0x2000 flushed back to the map
        assert_eq!(m.peek(0x2000), 5);
        assert_eq!(m.peek(0x3000), 6);
    }
}

//! # recon-isa
//!
//! The minimal load/store RISC ISA shared by every component of the ReCon
//! reproduction: the out-of-order core (`recon-cpu`), the DIFT leakage
//! tool (`recon-dift`), and the workload generators (`recon-workloads`).
//!
//! The ISA is deliberately small but covers everything the paper's
//! mechanism needs:
//!
//! * loads with a *single* address source register plus immediate offset —
//!   the direct-dependence shape ReCon's load-pair table detects;
//! * aligned 8-byte stores (which conceal the word they write);
//! * ALU ops, conditional branches (control speculation), and an atomic
//!   fetch-add for multithreaded workloads.
//!
//! ## Quick example
//!
//! ```
//! use recon_isa::{Asm, run_collect, reg::names::*};
//!
//! // A pointer dereference: mem[0x100] holds a pointer to 0x200.
//! let mut a = Asm::new();
//! a.data(0x100, 0x200).data(0x200, 7);
//! a.li(R1, 0x100)
//!  .load(R2, R1, 0)   // LD1: loads the pointer
//!  .load(R3, R2, 0)   // LD2: dereferences it  -> a ReCon load pair
//!  .halt();
//! let program = a.assemble()?;
//! let (trace, state) = run_collect(&program, 1_000)?;
//! assert_eq!(state.read(R3), 7);
//! assert_eq!(trace.len(), 4);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod asm;
pub mod decoded;
pub mod exec;
pub mod hash;
pub mod inst;
pub mod mem;
pub mod program;
pub mod reg;
pub mod rng;
pub mod snap;

pub use asm::{Asm, AsmError, Label};
pub use decoded::{run_decoded, DecodedInst, DecodedProgram};
pub use exec::{
    run_collect, run_with, run_with_status, ArchState, ExecError, MemEffect, StepRecord,
};
pub use inst::{AluKind, BranchKind, Inst};
pub use mem::{DataMem, SparseMem};
pub use program::{MemImage, Program, ProgramError};
pub use reg::{ArchReg, NUM_ARCH_REGS};
pub use snap::{SnapError, SnapReader, SnapWriter};

//! Functional (architectural) semantics: the golden model.
//!
//! The out-of-order core, the DIFT tool, and the tests all execute the
//! same [`step`] semantics; the core only adds *timing* on top. A key
//! property-test invariant of the reproduction is that every security
//! scheme produces the identical architectural result as this model.

use crate::inst::Inst;
use crate::mem::DataMem;
use crate::program::Program;
use crate::reg::{ArchReg, NUM_ARCH_REGS};

/// Architectural register file + program counter.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ArchState {
    regs: [u64; NUM_ARCH_REGS],
    /// Current instruction index.
    pub pc: usize,
    /// Set once a `halt` has executed.
    pub halted: bool,
}

impl ArchState {
    /// Fresh state: all registers zero, `pc` at the program entry.
    #[must_use]
    pub fn at_entry(program: &Program) -> Self {
        Self::at_pc(program.entry)
    }

    /// Fresh state: all registers zero, starting at an arbitrary `pc`
    /// (e.g. a secondary thread's entry point).
    #[must_use]
    pub fn at_pc(pc: usize) -> Self {
        ArchState {
            regs: [0; NUM_ARCH_REGS],
            pc,
            halted: false,
        }
    }

    /// Reads a register (`r0` always reads 0).
    #[must_use]
    pub fn read(&self, r: ArchReg) -> u64 {
        self.regs[r.index()]
    }

    /// Writes a register (writes to `r0` are discarded).
    pub fn write(&mut self, r: ArchReg, value: u64) {
        if !r.is_zero() {
            self.regs[r.index()] = value;
        }
    }
}

impl Default for ArchState {
    fn default() -> Self {
        ArchState {
            regs: [0; NUM_ARCH_REGS],
            pc: 0,
            halted: false,
        }
    }
}

/// Memory side effect of one executed instruction.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MemEffect {
    /// No memory access.
    None,
    /// A load: address and value read.
    Load {
        /// Effective (aligned) address.
        addr: u64,
        /// Value read.
        value: u64,
    },
    /// A store: address and value written.
    Store {
        /// Effective (aligned) address.
        addr: u64,
        /// Value written.
        value: u64,
    },
    /// An atomic read-modify-write: address, value read, value written.
    Amo {
        /// Effective (aligned) address.
        addr: u64,
        /// Old value (returned in the destination register).
        read: u64,
        /// New value written back.
        written: u64,
    },
}

impl MemEffect {
    /// The address touched, if any.
    #[must_use]
    pub fn addr(&self) -> Option<u64> {
        match *self {
            MemEffect::None => None,
            MemEffect::Load { addr, .. }
            | MemEffect::Store { addr, .. }
            | MemEffect::Amo { addr, .. } => Some(addr),
        }
    }
}

/// Record of one architecturally executed (committed) instruction.
///
/// A sequence of `StepRecord`s is the *trace* consumed by the DIFT
/// leakage tool ([`recon-dift`](https://docs.rs)-style analyses).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct StepRecord {
    /// Static instruction index executed.
    pub index: usize,
    /// The instruction itself.
    pub inst: Inst,
    /// Memory effect, if any.
    pub mem: MemEffect,
    /// For conditional branches: whether the branch was taken.
    pub taken: Option<bool>,
    /// Destination register and the value written, if any.
    pub wrote: Option<(ArchReg, u64)>,
    /// Index of the next instruction.
    pub next_pc: usize,
}

/// Execution errors: these indicate a malformed program, not a
/// recoverable condition.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ExecError {
    /// `pc` fell outside the program (no `halt` reached).
    PcOutOfRange {
        /// The offending program counter.
        pc: usize,
    },
    /// A load/store computed a non-8-byte-aligned address.
    Misaligned {
        /// Instruction index.
        at: usize,
        /// The misaligned effective address.
        addr: u64,
    },
}

impl core::fmt::Display for ExecError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match *self {
            ExecError::PcOutOfRange { pc } => write!(f, "pc {pc} out of range"),
            ExecError::Misaligned { at, addr } => {
                write!(f, "instruction {at}: misaligned address {addr:#x}")
            }
        }
    }
}

impl std::error::Error for ExecError {}

fn effective_addr(base: u64, offset: i64, at: usize) -> Result<u64, ExecError> {
    let addr = base.wrapping_add(offset as u64);
    if !addr.is_multiple_of(8) {
        return Err(ExecError::Misaligned { at, addr });
    }
    Ok(addr)
}

/// Executes exactly one instruction, updating `state` and `mem`.
///
/// # Errors
///
/// Returns [`ExecError`] on out-of-range `pc` or misaligned access.
/// Stepping a halted state returns a `Halt` record without effect.
pub fn step<M: DataMem>(
    program: &Program,
    state: &mut ArchState,
    mem: &mut M,
) -> Result<StepRecord, ExecError> {
    let pc = state.pc;
    let Some(&inst) = program.code.get(pc) else {
        return Err(ExecError::PcOutOfRange { pc });
    };
    let mut record = StepRecord {
        index: pc,
        inst,
        mem: MemEffect::None,
        taken: None,
        wrote: None,
        next_pc: pc + 1,
    };
    match inst {
        Inst::LoadImm { dst, imm } => {
            state.write(dst, imm);
            record.wrote = Some((dst, imm));
        }
        Inst::Alu { kind, dst, a, b } => {
            let v = kind.apply(state.read(a), state.read(b));
            state.write(dst, v);
            record.wrote = Some((dst, v));
        }
        Inst::AluImm { kind, dst, a, imm } => {
            let v = kind.apply(state.read(a), imm);
            state.write(dst, v);
            record.wrote = Some((dst, v));
        }
        Inst::Load { dst, base, offset } => {
            let addr = effective_addr(state.read(base), offset, pc)?;
            let v = mem.read(addr);
            state.write(dst, v);
            record.mem = MemEffect::Load { addr, value: v };
            record.wrote = Some((dst, v));
        }
        Inst::LoadIdx { dst, base, index } => {
            let offset = state.read(index).wrapping_shl(3) as i64;
            let addr = effective_addr(state.read(base), offset, pc)?;
            let v = mem.read(addr);
            state.write(dst, v);
            record.mem = MemEffect::Load { addr, value: v };
            record.wrote = Some((dst, v));
        }
        Inst::Store { val, base, offset } => {
            let addr = effective_addr(state.read(base), offset, pc)?;
            let v = state.read(val);
            mem.write(addr, v);
            record.mem = MemEffect::Store { addr, value: v };
        }
        Inst::AmoAdd {
            dst,
            base,
            offset,
            add,
        } => {
            let addr = effective_addr(state.read(base), offset, pc)?;
            let old = mem.read(addr);
            let new = old.wrapping_add(state.read(add));
            mem.write(addr, new);
            state.write(dst, old);
            record.mem = MemEffect::Amo {
                addr,
                read: old,
                written: new,
            };
            record.wrote = Some((dst, old));
        }
        Inst::Branch { kind, a, b, target } => {
            let taken = kind.taken(state.read(a), state.read(b));
            record.taken = Some(taken);
            if taken {
                record.next_pc = target;
            }
        }
        Inst::Jump { target } => {
            record.next_pc = target;
        }
        Inst::Nop => {}
        Inst::Halt => {
            state.halted = true;
            record.next_pc = pc;
        }
    }
    state.pc = record.next_pc;
    Ok(record)
}

/// Runs a program to completion (or `max_steps`), collecting the trace.
///
/// Returns the trace and the final architectural state. The program's
/// memory image seeds a fresh [`SparseMem`](crate::SparseMem).
///
/// # Errors
///
/// Propagates any [`ExecError`] from [`step`].
pub fn run_collect(
    program: &Program,
    max_steps: usize,
) -> Result<(Vec<StepRecord>, ArchState), ExecError> {
    let mut mem = crate::SparseMem::from_image(&program.image);
    let mut state = ArchState::at_entry(program);
    let mut trace = Vec::new();
    for _ in 0..max_steps {
        if state.halted {
            break;
        }
        trace.push(step(program, &mut state, &mut mem)?);
    }
    Ok((trace, state))
}

/// Runs a program, invoking `f` for each committed instruction, without
/// materializing the trace (for long workloads).
///
/// Returns the number of instructions executed.
///
/// # Errors
///
/// Propagates any [`ExecError`] from [`step`].
pub fn run_with<M: DataMem>(
    program: &Program,
    mem: &mut M,
    max_steps: usize,
    f: impl FnMut(&StepRecord),
) -> Result<u64, ExecError> {
    run_with_status(program, mem, max_steps, f).map(|(n, _)| n)
}

/// As [`run_with`], but also reports whether the program actually
/// halted — `false` means the step budget expired first, which callers
/// with deadlines (`recon serve` analyze jobs) surface as a partial
/// result instead of silently passing it off as complete.
///
/// # Errors
///
/// Propagates any [`ExecError`] from [`step`].
pub fn run_with_status<M: DataMem>(
    program: &Program,
    mem: &mut M,
    max_steps: usize,
    mut f: impl FnMut(&StepRecord),
) -> Result<(u64, bool), ExecError> {
    let mut state = ArchState::at_entry(program);
    let mut n = 0;
    for _ in 0..max_steps {
        if state.halted {
            break;
        }
        let r = step(program, &mut state, mem)?;
        f(&r);
        n += 1;
    }
    Ok((n, state.halted))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Asm;
    use crate::reg::names::*;

    #[test]
    fn straight_line_arithmetic() {
        let mut a = Asm::new();
        a.li(R1, 6).li(R2, 7).mul(R3, R1, R2).halt();
        let p = a.assemble().unwrap();
        let (trace, state) = run_collect(&p, 100).unwrap();
        assert_eq!(state.read(R3), 42);
        assert_eq!(trace.len(), 4);
        assert_eq!(trace[2].wrote, Some((R3, 42)));
    }

    #[test]
    fn zero_register_is_immutable() {
        let mut a = Asm::new();
        a.li(R0, 99).addi(R1, R0, 1).halt();
        let p = a.assemble().unwrap();
        let (_, state) = run_collect(&p, 100).unwrap();
        assert_eq!(state.read(R0), 0);
        assert_eq!(state.read(R1), 1);
    }

    #[test]
    fn load_store_round_trip() {
        let mut a = Asm::new();
        a.data(0x100, 0x2A);
        a.li(R1, 0x100)
            .load(R2, R1, 0)
            .store(R2, R1, 8)
            .load(R3, R1, 8)
            .halt();
        let p = a.assemble().unwrap();
        let (trace, state) = run_collect(&p, 100).unwrap();
        assert_eq!(state.read(R3), 0x2A);
        assert_eq!(
            trace[1].mem,
            MemEffect::Load {
                addr: 0x100,
                value: 0x2A
            }
        );
        assert_eq!(
            trace[2].mem,
            MemEffect::Store {
                addr: 0x108,
                value: 0x2A
            }
        );
    }

    #[test]
    fn pointer_dereference_chain() {
        // mem[0x100] = 0x200 (a pointer); mem[0x200] = 77 (the value).
        let mut a = Asm::new();
        a.data(0x100, 0x200).data(0x200, 77);
        a.li(R1, 0x100).load(R2, R1, 0).load(R3, R2, 0).halt();
        let p = a.assemble().unwrap();
        let (_, state) = run_collect(&p, 100).unwrap();
        assert_eq!(state.read(R3), 77);
    }

    #[test]
    fn loop_executes_expected_iterations() {
        let mut a = Asm::new();
        a.li(R1, 5).li(R2, 0);
        let top = a.here();
        a.addi(R2, R2, 1);
        a.subi(R1, R1, 1);
        a.bne_to(R1, R0, top);
        a.halt();
        let p = a.assemble().unwrap();
        let (trace, state) = run_collect(&p, 1000).unwrap();
        assert_eq!(state.read(R2), 5);
        // 2 init + 5 iterations * 3 + halt
        assert_eq!(trace.len(), 2 + 15 + 1);
        let last_branch = trace.iter().rev().find(|r| r.taken.is_some()).unwrap();
        assert_eq!(last_branch.taken, Some(false));
    }

    #[test]
    fn amoadd_returns_old_and_adds() {
        let mut a = Asm::new();
        a.data(0x80, 10);
        a.li(R1, 0x80)
            .li(R2, 5)
            .amoadd(R3, R1, 0, R2)
            .load(R4, R1, 0)
            .halt();
        let p = a.assemble().unwrap();
        let (trace, state) = run_collect(&p, 100).unwrap();
        assert_eq!(state.read(R3), 10);
        assert_eq!(state.read(R4), 15);
        assert_eq!(
            trace[2].mem,
            MemEffect::Amo {
                addr: 0x80,
                read: 10,
                written: 15
            }
        );
    }

    #[test]
    fn loadidx_scales_the_index() {
        let mut a = Asm::new();
        a.data(0x100, 11).data(0x110, 22);
        a.li(R1, 0x100).li(R2, 2).loadidx(R3, R1, R2).halt();
        let p = a.assemble().unwrap();
        let (_, state) = run_collect(&p, 100).unwrap();
        assert_eq!(state.read(R3), 22, "reads mem[0x100 + 2*8]");
    }

    #[test]
    fn misaligned_access_is_an_error() {
        let mut a = Asm::new();
        a.li(R1, 0x101).load(R2, R1, 0).halt();
        let p = a.assemble().unwrap();
        let err = run_collect(&p, 100).unwrap_err();
        assert_eq!(err, ExecError::Misaligned { at: 1, addr: 0x101 });
    }

    #[test]
    fn negative_offset_addressing() {
        let mut a = Asm::new();
        a.data(0xF8, 3);
        a.li(R1, 0x100).load(R2, R1, -8).halt();
        let p = a.assemble().unwrap();
        let (_, state) = run_collect(&p, 10).unwrap();
        assert_eq!(state.read(R2), 3);
    }

    #[test]
    fn halt_freezes_state() {
        let mut a = Asm::new();
        a.halt();
        let p = a.assemble().unwrap();
        let mut mem = crate::SparseMem::new();
        let mut st = ArchState::at_entry(&p);
        let r = step(&p, &mut st, &mut mem).unwrap();
        assert!(st.halted);
        assert_eq!(r.next_pc, 0);
    }

    #[test]
    fn run_with_counts_instructions() {
        let mut a = Asm::new();
        a.li(R1, 2);
        let top = a.here();
        a.subi(R1, R1, 1);
        a.bne_to(R1, R0, top);
        a.halt();
        let p = a.assemble().unwrap();
        let mut mem = crate::SparseMem::from_image(&p.image);
        let mut loads = 0;
        let n = run_with(&p, &mut mem, 1000, |r| {
            if r.inst.is_load() {
                loads += 1;
            }
        })
        .unwrap();
        assert_eq!(n, 1 + 4 + 1);
        assert_eq!(loads, 0);
    }

    #[test]
    fn pc_out_of_range_reported() {
        // A jump past the end cannot assemble; construct manually.
        let p = Program::new(vec![Inst::Nop]);
        let mut mem = crate::SparseMem::new();
        let mut st = ArchState::at_entry(&p);
        step(&p, &mut st, &mut mem).unwrap();
        let err = step(&p, &mut st, &mut mem).unwrap_err();
        assert_eq!(err, ExecError::PcOutOfRange { pc: 1 });
    }
}

//! Instruction encoding: opcodes and their operands.

use core::fmt;

use crate::reg::ArchReg;

/// Arithmetic / logic operation kinds for [`Inst::Alu`] and [`Inst::AluImm`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AluKind {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication (longer execution latency).
    Mul,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Logical shift left (by `b & 63`).
    Shl,
    /// Logical shift right (by `b & 63`).
    Shr,
    /// Set-less-than (unsigned): `1` if `a < b` else `0`.
    Sltu,
}

impl AluKind {
    /// All ALU kinds, for exhaustive tests and random program generation.
    pub const ALL: [AluKind; 9] = [
        AluKind::Add,
        AluKind::Sub,
        AluKind::Mul,
        AluKind::And,
        AluKind::Or,
        AluKind::Xor,
        AluKind::Shl,
        AluKind::Shr,
        AluKind::Sltu,
    ];

    /// Applies the operation to two 64-bit values.
    #[must_use]
    pub fn apply(self, a: u64, b: u64) -> u64 {
        match self {
            AluKind::Add => a.wrapping_add(b),
            AluKind::Sub => a.wrapping_sub(b),
            AluKind::Mul => a.wrapping_mul(b),
            AluKind::And => a & b,
            AluKind::Or => a | b,
            AluKind::Xor => a ^ b,
            AluKind::Shl => a.wrapping_shl((b & 63) as u32),
            AluKind::Shr => a.wrapping_shr((b & 63) as u32),
            AluKind::Sltu => u64::from(a < b),
        }
    }
}

impl fmt::Display for AluKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AluKind::Add => "add",
            AluKind::Sub => "sub",
            AluKind::Mul => "mul",
            AluKind::And => "and",
            AluKind::Or => "or",
            AluKind::Xor => "xor",
            AluKind::Shl => "shl",
            AluKind::Shr => "shr",
            AluKind::Sltu => "sltu",
        };
        f.write_str(s)
    }
}

/// Comparison kinds for conditional branches.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum BranchKind {
    /// Branch if equal.
    Eq,
    /// Branch if not equal.
    Ne,
    /// Branch if unsigned less-than.
    Ltu,
    /// Branch if unsigned greater-or-equal.
    Geu,
}

impl BranchKind {
    /// All branch kinds.
    pub const ALL: [BranchKind; 4] = [
        BranchKind::Eq,
        BranchKind::Ne,
        BranchKind::Ltu,
        BranchKind::Geu,
    ];

    /// Evaluates the branch condition.
    #[must_use]
    pub fn taken(self, a: u64, b: u64) -> bool {
        match self {
            BranchKind::Eq => a == b,
            BranchKind::Ne => a != b,
            BranchKind::Ltu => a < b,
            BranchKind::Geu => a >= b,
        }
    }
}

impl fmt::Display for BranchKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BranchKind::Eq => "beq",
            BranchKind::Ne => "bne",
            BranchKind::Ltu => "bltu",
            BranchKind::Geu => "bgeu",
        };
        f.write_str(s)
    }
}

/// A single instruction of the minimal RISC ISA used throughout the
/// reproduction.
///
/// Design notes relevant to the paper:
///
/// * [`Inst::Load`] has exactly one address source register plus an
///   immediate offset — the single-direct-dependence shape ReCon's
///   load-pair table detects (§4.3/§5.1 of the paper). Offsets do not
///   break a load pair.
/// * [`Inst::Store`] writes an aligned 8-byte word; a committed store
///   *conceals* the word it writes.
/// * [`Inst::AmoAdd`] is a sequentially-consistent atomic fetch-add used
///   by the PARSEC-style multithreaded workloads for locks and barriers.
///   Cores treat it as non-speculative and serializing.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Inst {
    /// `dst = imm`
    LoadImm {
        /// Destination register.
        dst: ArchReg,
        /// Immediate value.
        imm: u64,
    },
    /// `dst = a <op> b`
    Alu {
        /// Operation kind.
        kind: AluKind,
        /// Destination register.
        dst: ArchReg,
        /// First source register.
        a: ArchReg,
        /// Second source register.
        b: ArchReg,
    },
    /// `dst = a <op> imm`
    AluImm {
        /// Operation kind.
        kind: AluKind,
        /// Destination register.
        dst: ArchReg,
        /// Source register.
        a: ArchReg,
        /// Immediate operand.
        imm: u64,
    },
    /// `dst = mem[base + offset]` (aligned 8-byte word).
    Load {
        /// Destination register.
        dst: ArchReg,
        /// Base address register — the single source whose producing load
        /// can form a ReCon load pair with this one.
        base: ArchReg,
        /// Byte offset added to the base (must keep the address 8-byte
        /// aligned).
        offset: i64,
    },
    /// `dst = mem[base + (index << 3)]` — a **multi-source** load in the
    /// style of x86 base+index addressing (§5.1.1 of the paper). Both
    /// `base` and `index` are direct address sources, so a load pair can
    /// be detected for *each* operand when multi-source LPT lookups are
    /// enabled (the paper's future-work extension).
    LoadIdx {
        /// Destination register.
        dst: ArchReg,
        /// Base address register.
        base: ArchReg,
        /// Word index register (scaled by 8).
        index: ArchReg,
    },
    /// `mem[base + offset] = val` (aligned 8-byte word).
    Store {
        /// Register holding the value to store.
        val: ArchReg,
        /// Base address register.
        base: ArchReg,
        /// Byte offset added to the base.
        offset: i64,
    },
    /// Conditional branch: `if a <cmp> b goto target`.
    Branch {
        /// Comparison kind.
        kind: BranchKind,
        /// First comparison source.
        a: ArchReg,
        /// Second comparison source.
        b: ArchReg,
        /// Target instruction index (filled in by the assembler).
        target: usize,
    },
    /// Unconditional jump to an instruction index.
    Jump {
        /// Target instruction index.
        target: usize,
    },
    /// Atomic fetch-add: `dst = mem[base + offset]; mem[...] += add`.
    AmoAdd {
        /// Destination register receiving the old memory value.
        dst: ArchReg,
        /// Base address register.
        base: ArchReg,
        /// Byte offset.
        offset: i64,
        /// Register holding the addend.
        add: ArchReg,
    },
    /// No operation.
    Nop,
    /// Stops the hardware thread.
    Halt,
}

impl Inst {
    /// The destination register written by this instruction, if any.
    ///
    /// Writes to `r0` are architectural no-ops but are still reported
    /// here; renaming discards them.
    #[must_use]
    pub fn dst(&self) -> Option<ArchReg> {
        match *self {
            Inst::LoadImm { dst, .. }
            | Inst::Alu { dst, .. }
            | Inst::AluImm { dst, .. }
            | Inst::Load { dst, .. }
            | Inst::LoadIdx { dst, .. }
            | Inst::AmoAdd { dst, .. } => Some(dst),
            _ => None,
        }
    }

    /// Source registers read by this instruction (0, 1, or 2).
    #[must_use]
    pub fn srcs(&self) -> [Option<ArchReg>; 2] {
        match *self {
            Inst::LoadImm { .. } | Inst::Jump { .. } | Inst::Nop | Inst::Halt => [None, None],
            Inst::Alu { a, b, .. } => [Some(a), Some(b)],
            Inst::AluImm { a, .. } => [Some(a), None],
            Inst::Load { base, .. } => [Some(base), None],
            Inst::LoadIdx { base, index, .. } => [Some(base), Some(index)],
            Inst::Store { val, base, .. } => [Some(base), Some(val)],
            Inst::Branch { a, b, .. } => [Some(a), Some(b)],
            Inst::AmoAdd { base, add, .. } => [Some(base), Some(add)],
        }
    }

    /// The register whose value forms the *address* of a memory access
    /// (the base register of a load/store/amo), if any. Multi-source
    /// loads report their base here; see [`Inst::addr_srcs`] for both.
    ///
    /// This is the dependence edge that ReCon's load-pair table inspects:
    /// a load whose [`Inst::addr_src`] was produced by an older load forms
    /// a direct-dependence load pair.
    #[must_use]
    pub fn addr_src(&self) -> Option<ArchReg> {
        match *self {
            Inst::Load { base, .. }
            | Inst::LoadIdx { base, .. }
            | Inst::Store { base, .. }
            | Inst::AmoAdd { base, .. } => Some(base),
            _ => None,
        }
    }

    /// All registers whose values form the address of a memory access —
    /// up to two for multi-source loads (§5.1.1).
    #[must_use]
    pub fn addr_srcs(&self) -> [Option<ArchReg>; 2] {
        match *self {
            Inst::LoadIdx { base, index, .. } => [Some(base), Some(index)],
            other => [other.addr_src(), None],
        }
    }

    /// Whether this instruction reads memory.
    #[must_use]
    pub fn is_load(&self) -> bool {
        matches!(
            self,
            Inst::Load { .. } | Inst::LoadIdx { .. } | Inst::AmoAdd { .. }
        )
    }

    /// Whether this instruction writes memory.
    #[must_use]
    pub fn is_store(&self) -> bool {
        matches!(self, Inst::Store { .. } | Inst::AmoAdd { .. })
    }

    /// Whether this instruction is a control-flow instruction.
    #[must_use]
    pub fn is_control(&self) -> bool {
        matches!(self, Inst::Branch { .. } | Inst::Jump { .. } | Inst::Halt)
    }

    /// Whether this is a conditional branch (predicted by the branch
    /// predictor and casting a control shadow until resolved).
    #[must_use]
    pub fn is_cond_branch(&self) -> bool {
        matches!(self, Inst::Branch { .. })
    }

    /// Whether the instruction is a *transmitter* in the STT sense: an
    /// instruction whose operands become visible through a side channel
    /// when it executes. In this model (as in the paper's evaluation),
    /// transmitters are memory instructions (address-forming) and
    /// resolving branches.
    #[must_use]
    pub fn is_transmitter(&self) -> bool {
        self.is_load() || self.is_store() || self.is_cond_branch()
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Inst::LoadImm { dst, imm } => write!(f, "li {dst}, {imm:#x}"),
            Inst::Alu { kind, dst, a, b } => write!(f, "{kind} {dst}, {a}, {b}"),
            Inst::AluImm { kind, dst, a, imm } => write!(f, "{kind}i {dst}, {a}, {imm:#x}"),
            Inst::Load { dst, base, offset } => write!(f, "ld {dst}, [{base}{offset:+#x}]"),
            Inst::LoadIdx { dst, base, index } => write!(f, "ldx {dst}, [{base}+{index}*8]"),
            Inst::Store { val, base, offset } => write!(f, "st {val}, [{base}{offset:+#x}]"),
            Inst::Branch { kind, a, b, target } => write!(f, "{kind} {a}, {b}, @{target}"),
            Inst::Jump { target } => write!(f, "j @{target}"),
            Inst::AmoAdd {
                dst,
                base,
                offset,
                add,
            } => {
                write!(f, "amoadd {dst}, [{base}{offset:+#x}], {add}")
            }
            Inst::Nop => f.write_str("nop"),
            Inst::Halt => f.write_str("halt"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::names::*;

    #[test]
    fn alu_apply_semantics() {
        assert_eq!(AluKind::Add.apply(3, 4), 7);
        assert_eq!(AluKind::Add.apply(u64::MAX, 1), 0);
        assert_eq!(AluKind::Sub.apply(3, 4), u64::MAX);
        assert_eq!(AluKind::Mul.apply(1 << 32, 1 << 32), 0);
        assert_eq!(AluKind::And.apply(0b1100, 0b1010), 0b1000);
        assert_eq!(AluKind::Or.apply(0b1100, 0b1010), 0b1110);
        assert_eq!(AluKind::Xor.apply(0b1100, 0b1010), 0b0110);
        assert_eq!(AluKind::Shl.apply(1, 63), 1 << 63);
        assert_eq!(AluKind::Shl.apply(1, 64), 1, "shift amount wraps at 64");
        assert_eq!(AluKind::Shr.apply(1 << 63, 63), 1);
        assert_eq!(AluKind::Sltu.apply(1, 2), 1);
        assert_eq!(AluKind::Sltu.apply(2, 2), 0);
    }

    #[test]
    fn branch_conditions() {
        assert!(BranchKind::Eq.taken(5, 5));
        assert!(!BranchKind::Eq.taken(5, 6));
        assert!(BranchKind::Ne.taken(5, 6));
        assert!(BranchKind::Ltu.taken(5, 6));
        assert!(!BranchKind::Ltu.taken(6, 6));
        assert!(BranchKind::Geu.taken(6, 6));
        assert!(!BranchKind::Geu.taken(5, 6));
    }

    #[test]
    fn operand_accessors_for_load() {
        let ld = Inst::Load {
            dst: R2,
            base: R1,
            offset: 8,
        };
        assert_eq!(ld.dst(), Some(R2));
        assert_eq!(ld.srcs(), [Some(R1), None]);
        assert_eq!(ld.addr_src(), Some(R1));
        assert!(ld.is_load() && !ld.is_store() && ld.is_transmitter());
    }

    #[test]
    fn operand_accessors_for_store() {
        let st = Inst::Store {
            val: R3,
            base: R4,
            offset: -8,
        };
        assert_eq!(st.dst(), None);
        assert_eq!(st.addr_src(), Some(R4));
        assert!(st.is_store() && !st.is_load() && st.is_transmitter());
    }

    #[test]
    fn amoadd_is_load_and_store() {
        let amo = Inst::AmoAdd {
            dst: R1,
            base: R2,
            offset: 0,
            add: R3,
        };
        assert!(amo.is_load() && amo.is_store());
        assert_eq!(amo.dst(), Some(R1));
        assert_eq!(amo.addr_src(), Some(R2));
    }

    #[test]
    fn control_classification() {
        let br = Inst::Branch {
            kind: BranchKind::Eq,
            a: R1,
            b: R0,
            target: 0,
        };
        assert!(br.is_control() && br.is_cond_branch() && br.is_transmitter());
        assert!(Inst::Jump { target: 3 }.is_control());
        assert!(Inst::Halt.is_control());
        assert!(!Inst::Nop.is_control());
        assert!(!Inst::Jump { target: 3 }.is_cond_branch());
    }

    #[test]
    fn loadidx_reports_both_address_sources() {
        let ldx = Inst::LoadIdx {
            dst: R3,
            base: R1,
            index: R2,
        };
        assert_eq!(ldx.dst(), Some(R3));
        assert_eq!(ldx.srcs(), [Some(R1), Some(R2)]);
        assert_eq!(ldx.addr_src(), Some(R1));
        assert_eq!(ldx.addr_srcs(), [Some(R1), Some(R2)]);
        assert!(ldx.is_load() && ldx.is_transmitter() && !ldx.is_store());
        assert_eq!(ldx.to_string(), "ldx r3, [r1+r2*8]");
    }

    #[test]
    fn single_source_loads_report_one_address_source() {
        let ld = Inst::Load {
            dst: R2,
            base: R1,
            offset: 0,
        };
        assert_eq!(ld.addr_srcs(), [Some(R1), None]);
    }

    #[test]
    fn alu_is_not_transmitter() {
        let alu = Inst::Alu {
            kind: AluKind::Add,
            dst: R1,
            a: R2,
            b: R3,
        };
        assert!(!alu.is_transmitter());
        assert_eq!(alu.srcs(), [Some(R2), Some(R3)]);
    }

    #[test]
    fn display_round_trips_meaning() {
        let ld = Inst::Load {
            dst: R2,
            base: R1,
            offset: 16,
        };
        assert_eq!(ld.to_string(), "ld r2, [r1+0x10]");
        assert_eq!(Inst::Nop.to_string(), "nop");
    }
}

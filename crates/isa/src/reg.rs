//! Architectural registers.

use core::fmt;

/// Number of architectural integer registers.
///
/// Register 0 ([`ArchReg::ZERO`]) is hard-wired to zero, as in most RISC
/// ISAs; writes to it are discarded.
pub const NUM_ARCH_REGS: usize = 32;

/// An architectural integer register, `r0`..`r31`.
///
/// `r0` is hard-wired to zero. The remaining registers are general
/// purpose. The type is a thin validated index:
///
/// ```
/// use recon_isa::ArchReg;
///
/// let r = ArchReg::new(5);
/// assert_eq!(r.index(), 5);
/// assert_eq!(r.to_string(), "r5");
/// assert!(ArchReg::try_new(99).is_none());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct ArchReg(u8);

impl ArchReg {
    /// The zero register, `r0`: always reads as zero, writes are ignored.
    pub const ZERO: ArchReg = ArchReg(0);

    /// Creates a register from its index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= NUM_ARCH_REGS`.
    #[must_use]
    pub fn new(index: usize) -> Self {
        Self::try_new(index)
            .unwrap_or_else(|| panic!("register index {index} out of range 0..{NUM_ARCH_REGS}"))
    }

    /// Creates a register from its index, or `None` if out of range.
    #[must_use]
    pub fn try_new(index: usize) -> Option<Self> {
        (index < NUM_ARCH_REGS).then_some(ArchReg(index as u8))
    }

    /// The register's index, `0..NUM_ARCH_REGS`.
    #[must_use]
    pub fn index(self) -> usize {
        usize::from(self.0)
    }

    /// Whether this is the hard-wired zero register.
    #[must_use]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Iterator over all architectural registers, `r0` first.
    pub fn all() -> impl Iterator<Item = ArchReg> {
        (0..NUM_ARCH_REGS).map(|i| ArchReg(i as u8))
    }
}

impl fmt::Display for ArchReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Convenience constants `R0`..`R31` for writing programs by hand.
pub mod names {
    use super::ArchReg;

    macro_rules! defregs {
        ($($name:ident = $idx:expr;)*) => {
            $(
                #[doc = concat!("Architectural register ", stringify!($name), ".")]
                pub const $name: ArchReg = ArchReg($idx);
            )*
        };
    }

    defregs! {
        R0 = 0; R1 = 1; R2 = 2; R3 = 3; R4 = 4; R5 = 5; R6 = 6; R7 = 7;
        R8 = 8; R9 = 9; R10 = 10; R11 = 11; R12 = 12; R13 = 13; R14 = 14;
        R15 = 15; R16 = 16; R17 = 17; R18 = 18; R19 = 19; R20 = 20;
        R21 = 21; R22 = 22; R23 = 23; R24 = 24; R25 = 25; R26 = 26;
        R27 = 27; R28 = 28; R29 = 29; R30 = 30; R31 = 31;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_register_identity() {
        assert!(ArchReg::ZERO.is_zero());
        assert_eq!(ArchReg::ZERO.index(), 0);
        assert!(!ArchReg::new(1).is_zero());
    }

    #[test]
    fn try_new_bounds() {
        assert!(ArchReg::try_new(0).is_some());
        assert!(ArchReg::try_new(NUM_ARCH_REGS - 1).is_some());
        assert!(ArchReg::try_new(NUM_ARCH_REGS).is_none());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn new_panics_out_of_range() {
        let _ = ArchReg::new(NUM_ARCH_REGS);
    }

    #[test]
    fn all_yields_every_register_once() {
        let regs: Vec<_> = ArchReg::all().collect();
        assert_eq!(regs.len(), NUM_ARCH_REGS);
        assert_eq!(regs[0], ArchReg::ZERO);
        assert_eq!(regs[31], ArchReg::new(31));
    }

    #[test]
    fn display_format() {
        assert_eq!(ArchReg::new(17).to_string(), "r17");
    }

    #[test]
    fn names_match_indices() {
        use names::*;
        assert_eq!(R0, ArchReg::ZERO);
        assert_eq!(R31.index(), 31);
        assert_eq!(R13.index(), 13);
    }
}

//! A fast, non-cryptographic hasher for hot-path integer-keyed maps.
//!
//! `std`'s default `HashMap` hasher (SipHash-1-3) is DoS-resistant but
//! costs tens of cycles per lookup — far too much for structures probed
//! on every simulated memory access (the functional memory's page table,
//! the coherence directory). This module provides an FxHash-style
//! multiply-and-rotate hasher (the rustc algorithm): a couple of cycles
//! per `u64` key, deterministic across runs, and safe here because every
//! key is a simulator-internal address, not attacker-controlled input.
//!
//! ```
//! use recon_isa::hash::FxHashMap;
//!
//! let mut m: FxHashMap<u64, u64> = FxHashMap::default();
//! m.insert(0x1000, 7);
//! assert_eq!(m[&0x1000], 7);
//! ```

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed by the Fx multiply-rotate hasher.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// `BuildHasher` producing [`FxHasher`]s (zero-sized, `Default`).
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// Multiplicative constant from the rustc/Firefox Fx hash: a random odd
/// 64-bit number with good avalanche under `rotate ^ mul`.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The Fx hash state: `hash = (hash.rotl(5) ^ word) * SEED` per word.
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        // Multiplicative hashing concentrates entropy in the *high*
        // bits, but the table derives its bucket index from the *low*
        // bits — which for the simulator's stride-64/stride-8 address
        // keys would otherwise be constant zero. Rotate the well-mixed
        // top bits down (the rustc-hash 2.x finalization).
        self.hash.rotate_left(26)
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut rest = bytes;
        while rest.len() >= 8 {
            let (chunk, tail) = rest.split_at(8);
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
            rest = tail;
        }
        if !rest.is_empty() {
            let mut word = 0u64;
            for (i, &b) in rest.iter().enumerate() {
                word |= u64::from(b) << (8 * i);
            }
            self.add_to_hash(word);
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(u64::from(n));
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_to_hash(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hash_u64(v: u64) -> u64 {
        let mut h = FxHasher::default();
        h.write_u64(v);
        h.finish()
    }

    #[test]
    fn deterministic_and_discriminating() {
        assert_eq!(hash_u64(0x1000), hash_u64(0x1000));
        assert_ne!(hash_u64(0x1000), hash_u64(0x1008));
        // Nearby line addresses (the common key pattern) must not
        // collide in the low bits that size small tables.
        let mut low: Vec<u64> = (0..64u64).map(|i| hash_u64(i * 64) & 0x3F).collect();
        low.sort_unstable();
        low.dedup();
        assert!(low.len() > 32, "low bits spread nearby keys");
    }

    #[test]
    fn byte_stream_matches_word_width() {
        // Hashing 8 bytes via write() equals one write_u64.
        let mut a = FxHasher::default();
        a.write(&0xDEAD_BEEF_0123u64.to_le_bytes());
        let mut b = FxHasher::default();
        b.write_u64(0xDEAD_BEEF_0123);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn map_works() {
        let mut m: FxHashMap<u64, u64> = FxHashMap::default();
        for i in 0..1000u64 {
            m.insert(i * 8, i);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m.get(&(999 * 8)), Some(&999));
        assert_eq!(m.get(&7), None);
    }
}

//! In-tree deterministic pseudo-random number generation.
//!
//! The workload generators need a small, seedable, *deterministic*
//! stream of pseudo-random numbers — nothing cryptographic. This module
//! provides [`SplitMix64`] (Steele, Lea & Flood's `splitmix64`, the
//! stream used to seed most modern PRNGs) behind a minimal [`Rng`]
//! trait, so the workspace builds with zero external dependencies.
//!
//! ```
//! use recon_isa::rng::{Rng, SplitMix64};
//!
//! let mut a = SplitMix64::new(7);
//! let mut b = SplitMix64::new(7);
//! assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
//! assert!(a.below(10) < 10);
//! ```

/// A minimal random-number-generator interface.
///
/// Only [`Rng::next_u64`] is required; everything else is derived.
pub trait Rng {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly distributed bits (the high half of
    /// [`Rng::next_u64`], which mixes best in splitmix-style
    /// generators).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform value in `0..n` via Lemire's multiply-shift reduction
    /// (deterministic, no modulo bias to speak of at these ranges).
    ///
    /// # Panics
    ///
    /// Panics if `n` is 0.
    fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is meaningless");
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }

    /// A uniform `usize` in `0..n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is 0.
    fn below_usize(&mut self, n: usize) -> usize {
        self.below(n as u64) as usize
    }
}

/// The `splitmix64` generator: one 64-bit word of state, full period,
/// passes BigCrush. Deterministic per seed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator seeded with `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }
}

impl Rng for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = SplitMix64::new(42);
            (0..16).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SplitMix64::new(42);
            (0..16).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c = SplitMix64::new(43).next_u64();
        assert_ne!(a[0], c);
    }

    #[test]
    fn known_splitmix_vector() {
        // Reference values of splitmix64 seeded with 0.
        let mut r = SplitMix64::new(0);
        assert_eq!(r.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(r.next_u64(), 0x6E78_9E6A_A1B9_65F4);
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut r = SplitMix64::new(1);
        let mut seen = [false; 8];
        for _ in 0..256 {
            let v = r.below(8);
            assert!(v < 8);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues hit in 256 draws");
    }

    #[test]
    #[should_panic(expected = "meaningless")]
    fn below_zero_panics() {
        let _ = SplitMix64::new(1).below(0);
    }

    #[test]
    fn next_u32_uses_high_bits() {
        let mut a = SplitMix64::new(9);
        let mut b = SplitMix64::new(9);
        assert_eq!(a.next_u32(), (b.next_u64() >> 32) as u32);
    }
}

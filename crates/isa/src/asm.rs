//! A small assembler DSL for building [`Program`]s with forward labels.
//!
//! ```
//! use recon_isa::{Asm, reg::names::*};
//!
//! let mut a = Asm::new();
//! let done = a.new_label();
//! a.li(R1, 10);
//! let top = a.here();
//! a.beq(R1, R0, done);
//! a.subi(R1, R1, 1);
//! a.jump_to(top);
//! a.bind(done);
//! a.halt();
//! let program = a.assemble().unwrap();
//! assert_eq!(program.len(), 5);
//! ```

use crate::inst::{AluKind, BranchKind, Inst};
use crate::program::{MemImage, Program, ProgramError};
use crate::reg::ArchReg;

/// A forward-referenceable code label handed out by [`Asm::new_label`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Label(usize);

/// Errors from [`Asm::assemble`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum AsmError {
    /// A label was used as a branch target but never [`Asm::bind`]-ed.
    UnboundLabel {
        /// Allocation index of the label (order of `new_label` calls).
        index: usize,
        /// Human-readable name, if the label was made with [`Asm::named_label`].
        name: Option<String>,
    },
    /// The assembled program failed [`Program::validate`].
    Invalid(ProgramError),
}

impl core::fmt::Display for AsmError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            AsmError::UnboundLabel {
                index,
                name: Some(name),
            } => write!(f, "label '{name}' (L{index}) used but never bound"),
            AsmError::UnboundLabel { index, name: None } => {
                write!(f, "label L{index} used but never bound")
            }
            AsmError::Invalid(e) => write!(f, "assembled program invalid: {e}"),
        }
    }
}

impl std::error::Error for AsmError {}

impl From<ProgramError> for AsmError {
    fn from(e: ProgramError) -> Self {
        AsmError::Invalid(e)
    }
}

/// Either an already-known instruction index or a label to patch later.
#[derive(Clone, Copy, Debug)]
enum Target {
    Index(usize),
    Label(Label),
}

/// Program builder with label support and a memory-image builder.
#[derive(Debug, Default)]
pub struct Asm {
    code: Vec<Inst>,
    /// For each instruction, the pending label target, if it used one.
    patches: Vec<(usize, Label)>,
    bound: Vec<Option<usize>>,
    /// Parallel to `bound`: an optional human-readable name per label.
    names: Vec<Option<String>>,
    image: MemImage,
}

impl Asm {
    /// Creates an empty assembler.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates a fresh, unbound label.
    pub fn new_label(&mut self) -> Label {
        self.bound.push(None);
        self.names.push(None);
        Label(self.bound.len() - 1)
    }

    /// Allocates a fresh, unbound label carrying a human-readable name.
    ///
    /// The name appears in [`AsmError::UnboundLabel`] diagnostics and in the
    /// panic message of a double [`Asm::bind`], which makes errors in
    /// corpus-sized programs actionable.
    pub fn named_label(&mut self, name: impl Into<String>) -> Label {
        self.bound.push(None);
        self.names.push(Some(name.into()));
        Label(self.bound.len() - 1)
    }

    /// The name given to `label` at allocation, if any.
    #[must_use]
    pub fn label_name(&self, label: Label) -> Option<&str> {
        self.names[label.0].as_deref()
    }

    /// Binds `label` to the *next* instruction emitted.
    ///
    /// # Panics
    ///
    /// Panics if the label is already bound.
    pub fn bind(&mut self, label: Label) {
        let slot = &mut self.bound[label.0];
        assert!(
            slot.is_none(),
            "label {} bound twice",
            match &self.names[label.0] {
                Some(name) => format!("'{name}' (L{})", label.0),
                None => format!("L{}", label.0),
            }
        );
        *slot = Some(self.code.len());
    }

    /// The index of the next instruction to be emitted — usable as a
    /// backward branch target without a label.
    #[must_use]
    pub fn here(&self) -> usize {
        self.code.len()
    }

    /// Number of instructions emitted so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.code.len()
    }

    /// Whether no instructions have been emitted.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.code.is_empty()
    }

    /// Defines an initial-memory word (8-byte aligned address).
    pub fn data(&mut self, addr: u64, value: u64) -> &mut Self {
        self.image.set(addr, value);
        self
    }

    fn push(&mut self, inst: Inst) -> &mut Self {
        self.code.push(inst);
        self
    }

    fn push_branch(&mut self, kind: BranchKind, a: ArchReg, b: ArchReg, t: Target) -> &mut Self {
        let at = self.code.len();
        let target = match t {
            Target::Index(i) => i,
            Target::Label(l) => {
                self.patches.push((at, l));
                usize::MAX // patched in assemble()
            }
        };
        self.push(Inst::Branch { kind, a, b, target })
    }

    // ---- instruction emitters -------------------------------------------

    /// `dst = imm`
    pub fn li(&mut self, dst: ArchReg, imm: u64) -> &mut Self {
        self.push(Inst::LoadImm { dst, imm })
    }

    /// `dst = a + b`
    pub fn add(&mut self, dst: ArchReg, a: ArchReg, b: ArchReg) -> &mut Self {
        self.push(Inst::Alu {
            kind: AluKind::Add,
            dst,
            a,
            b,
        })
    }

    /// `dst = a - b`
    pub fn sub(&mut self, dst: ArchReg, a: ArchReg, b: ArchReg) -> &mut Self {
        self.push(Inst::Alu {
            kind: AluKind::Sub,
            dst,
            a,
            b,
        })
    }

    /// `dst = a * b`
    pub fn mul(&mut self, dst: ArchReg, a: ArchReg, b: ArchReg) -> &mut Self {
        self.push(Inst::Alu {
            kind: AluKind::Mul,
            dst,
            a,
            b,
        })
    }

    /// `dst = a & b`
    pub fn and(&mut self, dst: ArchReg, a: ArchReg, b: ArchReg) -> &mut Self {
        self.push(Inst::Alu {
            kind: AluKind::And,
            dst,
            a,
            b,
        })
    }

    /// `dst = a | b`
    pub fn or(&mut self, dst: ArchReg, a: ArchReg, b: ArchReg) -> &mut Self {
        self.push(Inst::Alu {
            kind: AluKind::Or,
            dst,
            a,
            b,
        })
    }

    /// `dst = a ^ b`
    pub fn xor(&mut self, dst: ArchReg, a: ArchReg, b: ArchReg) -> &mut Self {
        self.push(Inst::Alu {
            kind: AluKind::Xor,
            dst,
            a,
            b,
        })
    }

    /// Generic register-register ALU operation.
    pub fn alu(&mut self, kind: AluKind, dst: ArchReg, a: ArchReg, b: ArchReg) -> &mut Self {
        self.push(Inst::Alu { kind, dst, a, b })
    }

    /// `dst = a + imm`
    pub fn addi(&mut self, dst: ArchReg, a: ArchReg, imm: u64) -> &mut Self {
        self.push(Inst::AluImm {
            kind: AluKind::Add,
            dst,
            a,
            imm,
        })
    }

    /// `dst = a - imm`
    pub fn subi(&mut self, dst: ArchReg, a: ArchReg, imm: u64) -> &mut Self {
        self.push(Inst::AluImm {
            kind: AluKind::Sub,
            dst,
            a,
            imm,
        })
    }

    /// `dst = a * imm`
    pub fn muli(&mut self, dst: ArchReg, a: ArchReg, imm: u64) -> &mut Self {
        self.push(Inst::AluImm {
            kind: AluKind::Mul,
            dst,
            a,
            imm,
        })
    }

    /// `dst = a & imm`
    pub fn andi(&mut self, dst: ArchReg, a: ArchReg, imm: u64) -> &mut Self {
        self.push(Inst::AluImm {
            kind: AluKind::And,
            dst,
            a,
            imm,
        })
    }

    /// `dst = a << imm`
    pub fn shli(&mut self, dst: ArchReg, a: ArchReg, imm: u64) -> &mut Self {
        self.push(Inst::AluImm {
            kind: AluKind::Shl,
            dst,
            a,
            imm,
        })
    }

    /// `dst = a >> imm`
    pub fn shri(&mut self, dst: ArchReg, a: ArchReg, imm: u64) -> &mut Self {
        self.push(Inst::AluImm {
            kind: AluKind::Shr,
            dst,
            a,
            imm,
        })
    }

    /// Generic register-immediate ALU operation.
    pub fn alui(&mut self, kind: AluKind, dst: ArchReg, a: ArchReg, imm: u64) -> &mut Self {
        self.push(Inst::AluImm { kind, dst, a, imm })
    }

    /// `dst = mem[base + offset]`
    pub fn load(&mut self, dst: ArchReg, base: ArchReg, offset: i64) -> &mut Self {
        self.push(Inst::Load { dst, base, offset })
    }

    /// `mem[base + offset] = val`
    pub fn store(&mut self, val: ArchReg, base: ArchReg, offset: i64) -> &mut Self {
        self.push(Inst::Store { val, base, offset })
    }

    /// `dst = mem[base + index*8]` — a multi-source (base+index) load.
    pub fn loadidx(&mut self, dst: ArchReg, base: ArchReg, index: ArchReg) -> &mut Self {
        self.push(Inst::LoadIdx { dst, base, index })
    }

    /// Atomic fetch-add.
    pub fn amoadd(&mut self, dst: ArchReg, base: ArchReg, offset: i64, add: ArchReg) -> &mut Self {
        self.push(Inst::AmoAdd {
            dst,
            base,
            offset,
            add,
        })
    }

    /// `if a == b goto label`
    pub fn beq(&mut self, a: ArchReg, b: ArchReg, label: Label) -> &mut Self {
        self.push_branch(BranchKind::Eq, a, b, Target::Label(label))
    }

    /// `if a != b goto label`
    pub fn bne(&mut self, a: ArchReg, b: ArchReg, label: Label) -> &mut Self {
        self.push_branch(BranchKind::Ne, a, b, Target::Label(label))
    }

    /// `if a < b goto label` (unsigned)
    pub fn bltu(&mut self, a: ArchReg, b: ArchReg, label: Label) -> &mut Self {
        self.push_branch(BranchKind::Ltu, a, b, Target::Label(label))
    }

    /// `if a >= b goto label` (unsigned)
    pub fn bgeu(&mut self, a: ArchReg, b: ArchReg, label: Label) -> &mut Self {
        self.push_branch(BranchKind::Geu, a, b, Target::Label(label))
    }

    /// `if a != b goto index` — backward branch to a [`Asm::here`] mark.
    pub fn bne_to(&mut self, a: ArchReg, b: ArchReg, index: usize) -> &mut Self {
        self.push_branch(BranchKind::Ne, a, b, Target::Index(index))
    }

    /// `if a < b goto index` (unsigned) — backward branch.
    pub fn bltu_to(&mut self, a: ArchReg, b: ArchReg, index: usize) -> &mut Self {
        self.push_branch(BranchKind::Ltu, a, b, Target::Index(index))
    }

    /// Unconditional jump to a label.
    pub fn jump(&mut self, label: Label) -> &mut Self {
        let at = self.code.len();
        self.patches.push((at, label));
        self.push(Inst::Jump { target: usize::MAX })
    }

    /// Unconditional jump to a known index (e.g. from [`Asm::here`]).
    pub fn jump_to(&mut self, index: usize) -> &mut Self {
        self.push(Inst::Jump { target: index })
    }

    /// Emits a `nop`.
    pub fn nop(&mut self) -> &mut Self {
        self.push(Inst::Nop)
    }

    /// Emits a `halt`.
    pub fn halt(&mut self) -> &mut Self {
        self.push(Inst::Halt)
    }

    /// Resolves labels and validates the result.
    ///
    /// # Errors
    ///
    /// Returns [`AsmError::UnboundLabel`] if a used label was never bound,
    /// or [`AsmError::Invalid`] if the program fails validation.
    pub fn assemble(mut self) -> Result<Program, AsmError> {
        for &(at, label) in &self.patches {
            let Some(index) = self.bound[label.0] else {
                return Err(AsmError::UnboundLabel {
                    index: label.0,
                    name: self.names[label.0].clone(),
                });
            };
            match &mut self.code[at] {
                Inst::Branch { target, .. } | Inst::Jump { target } => *target = index,
                other => unreachable!("patch points at non-branch {other}"),
            }
        }
        let program = Program {
            code: self.code,
            entry: 0,
            image: self.image,
        };
        program.validate()?;
        Ok(program)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::names::*;

    #[test]
    fn forward_label_is_patched() {
        let mut a = Asm::new();
        let end = a.new_label();
        a.beq(R0, R0, end);
        a.nop();
        a.bind(end);
        a.halt();
        let p = a.assemble().unwrap();
        assert_eq!(
            p.code[0],
            Inst::Branch {
                kind: BranchKind::Eq,
                a: R0,
                b: R0,
                target: 2
            }
        );
    }

    #[test]
    fn backward_branch_via_here() {
        let mut a = Asm::new();
        let top = a.here();
        a.subi(R1, R1, 1);
        a.bne_to(R1, R0, top);
        a.halt();
        let p = a.assemble().unwrap();
        assert_eq!(
            p.code[1],
            Inst::Branch {
                kind: BranchKind::Ne,
                a: R1,
                b: R0,
                target: 0
            }
        );
    }

    #[test]
    fn unbound_label_is_an_error() {
        let mut a = Asm::new();
        let l = a.new_label();
        a.jump(l);
        a.halt();
        assert_eq!(
            a.assemble().unwrap_err(),
            AsmError::UnboundLabel {
                index: 0,
                name: None
            }
        );
    }

    #[test]
    fn unbound_named_label_reports_its_name() {
        let mut a = Asm::new();
        let l = a.named_label("epilogue");
        assert_eq!(a.label_name(l), Some("epilogue"));
        a.jump(l);
        a.halt();
        let err = a.assemble().unwrap_err();
        assert_eq!(
            err,
            AsmError::UnboundLabel {
                index: 0,
                name: Some("epilogue".into())
            }
        );
        assert_eq!(
            err.to_string(),
            "label 'epilogue' (L0) used but never bound"
        );
    }

    #[test]
    #[should_panic(expected = "'loop_top' (L0) bound twice")]
    fn double_bind_panic_names_the_label() {
        let mut a = Asm::new();
        let l = a.named_label("loop_top");
        a.bind(l);
        a.nop();
        a.bind(l);
    }

    #[test]
    fn missing_halt_is_an_error() {
        let mut a = Asm::new();
        a.nop();
        assert!(matches!(
            a.assemble().unwrap_err(),
            AsmError::Invalid(ProgramError::MissingHalt)
        ));
    }

    #[test]
    #[should_panic(expected = "bound twice")]
    fn double_bind_panics() {
        let mut a = Asm::new();
        let l = a.new_label();
        a.bind(l);
        a.nop();
        a.bind(l);
    }

    #[test]
    fn data_populates_image() {
        let mut a = Asm::new();
        a.data(0x100, 5).data(0x108, 6);
        a.halt();
        let p = a.assemble().unwrap();
        assert_eq!(p.image.get(0x100), Some(5));
        assert_eq!(p.image.get(0x108), Some(6));
    }

    #[test]
    fn emitters_chain() {
        let mut a = Asm::new();
        a.li(R1, 1)
            .addi(R2, R1, 2)
            .load(R3, R2, 0)
            .store(R3, R2, 8)
            .halt();
        let p = a.assemble().unwrap();
        assert_eq!(p.len(), 5);
    }
}

//! Programs: instruction sequences plus an initial memory image.

use std::collections::BTreeMap;

use crate::inst::Inst;

/// Errors produced by [`Program::validate`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ProgramError {
    /// A branch or jump targets an instruction index outside the program.
    TargetOutOfRange {
        /// Index of the offending instruction.
        at: usize,
        /// The out-of-range target.
        target: usize,
    },
    /// The program contains no `halt`, so execution could run forever.
    MissingHalt,
    /// A memory image word is not 8-byte aligned.
    MisalignedImage {
        /// The offending address.
        addr: u64,
    },
}

impl core::fmt::Display for ProgramError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match *self {
            ProgramError::TargetOutOfRange { at, target } => {
                write!(f, "instruction {at} targets out-of-range index {target}")
            }
            ProgramError::MissingHalt => f.write_str("program has no halt instruction"),
            ProgramError::MisalignedImage { addr } => {
                write!(f, "memory image address {addr:#x} is not 8-byte aligned")
            }
        }
    }
}

impl std::error::Error for ProgramError {}

/// An initial memory image: sparse map of aligned 8-byte words.
///
/// ```
/// use recon_isa::MemImage;
///
/// let mut img = MemImage::new();
/// img.set(0x100, 42);
/// assert_eq!(img.get(0x100), Some(42));
/// assert_eq!(img.get(0x108), None);
/// ```
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct MemImage {
    words: BTreeMap<u64, u64>,
}

impl MemImage {
    /// Creates an empty image.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the word at `addr` (must be 8-byte aligned; validated by
    /// [`Program::validate`], asserted here in debug builds).
    pub fn set(&mut self, addr: u64, value: u64) {
        debug_assert_eq!(addr % 8, 0, "image word at {addr:#x} must be aligned");
        self.words.insert(addr, value);
    }

    /// The word at `addr`, if the image defines one.
    #[must_use]
    pub fn get(&self, addr: u64) -> Option<u64> {
        self.words.get(&addr).copied()
    }

    /// Number of words defined by the image.
    #[must_use]
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Whether the image defines no words.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Iterates over `(address, value)` pairs in address order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.words.iter().map(|(&a, &v)| (a, v))
    }
}

impl Extend<(u64, u64)> for MemImage {
    fn extend<T: IntoIterator<Item = (u64, u64)>>(&mut self, iter: T) {
        for (a, v) in iter {
            self.set(a, v);
        }
    }
}

impl FromIterator<(u64, u64)> for MemImage {
    fn from_iter<T: IntoIterator<Item = (u64, u64)>>(iter: T) -> Self {
        let mut img = Self::new();
        img.extend(iter);
        img
    }
}

/// A complete program: code, entry point, and initial memory image.
///
/// Instruction addresses are instruction *indices* (there is no byte-level
/// code layout; instruction fetch is modeled per-instruction).
#[derive(Clone, PartialEq, Debug, Default)]
pub struct Program {
    /// The instruction sequence.
    pub code: Vec<Inst>,
    /// Index of the first instruction to execute.
    pub entry: usize,
    /// Initial contents of data memory.
    pub image: MemImage,
}

impl Program {
    /// Creates a program with entry point 0 and an empty image.
    #[must_use]
    pub fn new(code: Vec<Inst>) -> Self {
        Program {
            code,
            entry: 0,
            image: MemImage::new(),
        }
    }

    /// Number of static instructions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.code.len()
    }

    /// Whether the program has no instructions.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.code.is_empty()
    }

    /// Checks structural well-formedness: all branch targets in range,
    /// at least one `halt`, image addresses aligned.
    ///
    /// # Errors
    ///
    /// Returns the first [`ProgramError`] found.
    pub fn validate(&self) -> Result<(), ProgramError> {
        for (at, inst) in self.code.iter().enumerate() {
            let target = match *inst {
                Inst::Branch { target, .. } | Inst::Jump { target } => Some(target),
                _ => None,
            };
            if let Some(target) = target {
                if target >= self.code.len() {
                    return Err(ProgramError::TargetOutOfRange { at, target });
                }
            }
        }
        if !self.code.iter().any(|i| matches!(i, Inst::Halt)) {
            return Err(ProgramError::MissingHalt);
        }
        if let Some((addr, _)) = self.image.iter().find(|&(a, _)| a % 8 != 0) {
            return Err(ProgramError::MisalignedImage { addr });
        }
        Ok(())
    }

    /// Renders the program as readable assembly, one instruction per line,
    /// prefixed with its index.
    #[must_use]
    pub fn disassemble(&self) -> String {
        use core::fmt::Write as _;
        let mut out = String::new();
        for (i, inst) in self.code.iter().enumerate() {
            let _ = writeln!(out, "{i:4}: {inst}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::BranchKind;
    use crate::reg::names::*;

    fn halted(mut code: Vec<Inst>) -> Program {
        code.push(Inst::Halt);
        Program::new(code)
    }

    #[test]
    fn image_set_get() {
        let mut img = MemImage::new();
        assert!(img.is_empty());
        img.set(0x40, 7);
        img.set(0x40, 9);
        assert_eq!(img.get(0x40), Some(9));
        assert_eq!(img.len(), 1);
    }

    #[test]
    fn image_from_iterator() {
        let img: MemImage = [(0x0, 1), (0x8, 2)].into_iter().collect();
        assert_eq!(img.get(0x8), Some(2));
        let pairs: Vec<_> = img.iter().collect();
        assert_eq!(pairs, vec![(0x0, 1), (0x8, 2)]);
    }

    #[test]
    fn validate_accepts_well_formed() {
        let p = halted(vec![
            Inst::LoadImm { dst: R1, imm: 0 },
            Inst::Branch {
                kind: BranchKind::Eq,
                a: R1,
                b: R0,
                target: 2,
            },
        ]);
        assert_eq!(p.validate(), Ok(()));
    }

    #[test]
    fn validate_rejects_out_of_range_target() {
        let p = halted(vec![Inst::Jump { target: 99 }]);
        assert_eq!(
            p.validate(),
            Err(ProgramError::TargetOutOfRange { at: 0, target: 99 })
        );
    }

    #[test]
    fn validate_rejects_missing_halt() {
        let p = Program::new(vec![Inst::Nop]);
        assert_eq!(p.validate(), Err(ProgramError::MissingHalt));
    }

    #[test]
    fn validate_rejects_misaligned_image() {
        let mut p = halted(vec![]);
        p.image.words.insert(0x3, 1); // bypass the debug assert in set()
        assert_eq!(
            p.validate(),
            Err(ProgramError::MisalignedImage { addr: 0x3 })
        );
    }

    #[test]
    fn disassemble_lists_every_instruction() {
        let p = halted(vec![Inst::Nop]);
        let text = p.disassemble();
        assert!(text.contains("0: nop"));
        assert!(text.contains("1: halt"));
    }

    #[test]
    fn error_display_is_informative() {
        let e = ProgramError::TargetOutOfRange { at: 4, target: 10 };
        assert!(e.to_string().contains("instruction 4"));
    }
}

//! Pre-decoded instruction streams and the fast functional engine.
//!
//! Decoding in this ISA is cheap but not free: the out-of-order core
//! used to call [`Inst::dst`], [`Inst::srcs`], [`Inst::is_load`], … on
//! every fetch of every cycle, re-matching the same enum four to six
//! times per instruction. [`DecodedProgram`] performs that
//! classification exactly once per static instruction and stores the
//! results in a dense `Vec<DecodedInst>`, so fetch becomes one indexed
//! read of a flat record.
//!
//! The same stream feeds [`run_decoded`], the *fast functional engine*:
//! a straight-line interpreter over architectural state (register file
//! plus [`DataMem`]) with no ROB, rename, predictor, or
//! cache model — the execution mode `recon run --fast-forward` uses to
//! skip warmup instructions at two orders of magnitude above detailed
//! simulation speed. Its semantics are, instruction for instruction,
//! those of [`exec::step`](crate::exec::step); the equivalence is
//! enforced by tests here and at the system level.

use crate::exec::{ArchState, ExecError};
use crate::inst::Inst;
use crate::mem::DataMem;
use crate::program::Program;
use crate::reg::ArchReg;

/// One statically decoded instruction: the raw [`Inst`] plus every
/// classification the pipeline front-end needs, computed once.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct DecodedInst {
    /// The instruction itself (for execute/commit-side matching).
    pub inst: Inst,
    /// Destination register, if any ([`Inst::dst`]).
    pub dst: Option<ArchReg>,
    /// Source registers ([`Inst::srcs`]).
    pub srcs: [Option<ArchReg>; 2],
    /// Reads memory ([`Inst::is_load`]): loads and atomics.
    pub is_load: bool,
    /// Writes memory ([`Inst::is_store`]): stores and atomics.
    pub is_store: bool,
    /// Is an atomic fetch-add (both load and store, serializing).
    pub is_amo: bool,
    /// Is a conditional branch ([`Inst::is_cond_branch`]).
    pub is_cond_branch: bool,
    /// Is a control-flow instruction ([`Inst::is_control`]).
    pub is_control: bool,
    /// Is an STT transmitter ([`Inst::is_transmitter`]).
    pub is_transmitter: bool,
}

impl DecodedInst {
    /// Decodes one instruction.
    #[must_use]
    pub fn decode(inst: Inst) -> Self {
        DecodedInst {
            inst,
            dst: inst.dst(),
            srcs: inst.srcs(),
            is_load: inst.is_load(),
            is_store: inst.is_store(),
            is_amo: matches!(inst, Inst::AmoAdd { .. }),
            is_cond_branch: inst.is_cond_branch(),
            is_control: inst.is_control(),
            is_transmitter: inst.is_transmitter(),
        }
    }
}

/// A whole program decoded into a dense stream, indexed by instruction
/// address. Built once per [`Program`] and shared by every consumer
/// (typically behind an `Arc`): the out-of-order front-end fetches from
/// it, and the fast functional engine interprets it directly.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DecodedProgram {
    insts: Vec<DecodedInst>,
    /// Entry point copied from the program.
    pub entry: usize,
}

impl DecodedProgram {
    /// Decodes every instruction of `program`.
    #[must_use]
    pub fn decode(program: &Program) -> Self {
        DecodedProgram {
            insts: program
                .code
                .iter()
                .map(|&i| DecodedInst::decode(i))
                .collect(),
            entry: program.entry,
        }
    }

    /// The decoded instruction at `pc`, or `None` past the end.
    #[must_use]
    #[inline]
    pub fn get(&self, pc: usize) -> Option<&DecodedInst> {
        self.insts.get(pc)
    }

    /// Number of static instructions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether the program has no instructions.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }
}

/// Runs up to `max_steps` instructions of `decoded` functionally,
/// starting from (and updating) an existing [`ArchState`] — the
/// resumable fast-forward engine.
///
/// Unlike [`run_with`](crate::run_with) this takes the caller's state
/// instead of starting at the entry point, builds no per-step records,
/// and touches nothing but the register file and `mem`. Returns the
/// number of instructions executed; execution stops early when the
/// program halts (including a halt *before* the first step).
///
/// # Errors
///
/// Returns [`ExecError`] on an out-of-range `pc` or a misaligned
/// address — identical conditions to [`exec::step`](crate::exec::step).
pub fn run_decoded<M: DataMem>(
    decoded: &DecodedProgram,
    state: &mut ArchState,
    mem: &mut M,
    max_steps: u64,
) -> Result<u64, ExecError> {
    let mut n = 0u64;
    while n < max_steps && !state.halted {
        let pc = state.pc;
        let Some(d) = decoded.insts.get(pc) else {
            return Err(ExecError::PcOutOfRange { pc });
        };
        let mut next_pc = pc + 1;
        match d.inst {
            Inst::LoadImm { dst, imm } => state.write(dst, imm),
            Inst::Alu { kind, dst, a, b } => {
                let v = kind.apply(state.read(a), state.read(b));
                state.write(dst, v);
            }
            Inst::AluImm { kind, dst, a, imm } => {
                let v = kind.apply(state.read(a), imm);
                state.write(dst, v);
            }
            Inst::Load { dst, base, offset } => {
                let addr = aligned(state.read(base), offset, pc)?;
                let v = mem.read(addr);
                state.write(dst, v);
            }
            Inst::LoadIdx { dst, base, index } => {
                let offset = state.read(index).wrapping_shl(3) as i64;
                let addr = aligned(state.read(base), offset, pc)?;
                let v = mem.read(addr);
                state.write(dst, v);
            }
            Inst::Store { val, base, offset } => {
                let addr = aligned(state.read(base), offset, pc)?;
                mem.write(addr, state.read(val));
            }
            Inst::AmoAdd {
                dst,
                base,
                offset,
                add,
            } => {
                let addr = aligned(state.read(base), offset, pc)?;
                let old = mem.read(addr);
                mem.write(addr, old.wrapping_add(state.read(add)));
                state.write(dst, old);
            }
            Inst::Branch { kind, a, b, target } => {
                if kind.taken(state.read(a), state.read(b)) {
                    next_pc = target;
                }
            }
            Inst::Jump { target } => next_pc = target,
            Inst::Nop => {}
            Inst::Halt => {
                state.halted = true;
                next_pc = pc;
            }
        }
        state.pc = next_pc;
        n += 1;
    }
    Ok(n)
}

#[inline]
fn aligned(base: u64, offset: i64, at: usize) -> Result<u64, ExecError> {
    let addr = base.wrapping_add(offset as u64);
    if !addr.is_multiple_of(8) {
        return Err(ExecError::Misaligned { at, addr });
    }
    Ok(addr)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Asm;
    use crate::exec::{run_collect, step};
    use crate::inst::AluKind;
    use crate::reg::names::*;
    use crate::reg::NUM_ARCH_REGS;
    use crate::rng::{Rng as _, SplitMix64};
    use crate::SparseMem;

    fn pointer_loop_program() -> Program {
        let mut a = Asm::new();
        a.data(0x100, 0x200).data(0x200, 0x300).data(0x300, 0x100);
        a.data(0x108, 1).data(0x208, 2).data(0x308, 3);
        a.li(R1, 0x100).li(R2, 0).li(R3, 30);
        let top = a.here();
        a.load(R1, R1, 0); // pointer chase
        a.load(R4, R1, 8); // payload
        a.add(R2, R2, R4);
        a.subi(R3, R3, 1);
        a.bne_to(R3, R0, top);
        a.store(R2, R1, 16);
        a.amoadd(R5, R1, 24, R2);
        a.halt();
        a.assemble().unwrap()
    }

    #[test]
    fn decoded_fields_match_accessors() {
        let p = pointer_loop_program();
        let d = DecodedProgram::decode(&p);
        assert_eq!(d.len(), p.code.len());
        assert_eq!(d.entry, p.entry);
        for (i, inst) in p.code.iter().enumerate() {
            let dec = d.get(i).unwrap();
            assert_eq!(dec.inst, *inst);
            assert_eq!(dec.dst, inst.dst());
            assert_eq!(dec.srcs, inst.srcs());
            assert_eq!(dec.is_load, inst.is_load());
            assert_eq!(dec.is_store, inst.is_store());
            assert_eq!(dec.is_amo, matches!(inst, Inst::AmoAdd { .. }));
            assert_eq!(dec.is_cond_branch, inst.is_cond_branch());
            assert_eq!(dec.is_control, inst.is_control());
            assert_eq!(dec.is_transmitter, inst.is_transmitter());
        }
        assert!(d.get(p.code.len()).is_none());
    }

    #[test]
    fn fast_engine_matches_step_semantics_exactly() {
        let p = pointer_loop_program();
        let d = DecodedProgram::decode(&p);

        // Reference: the per-step golden model.
        let mut ref_mem = SparseMem::from_image(&p.image);
        let mut ref_state = ArchState::at_entry(&p);
        let mut steps = 0u64;
        while !ref_state.halted {
            step(&p, &mut ref_state, &mut ref_mem).unwrap();
            steps += 1;
        }

        // Fast engine, run to completion.
        let mut mem = SparseMem::from_image(&p.image);
        let mut state = ArchState::at_entry(&p);
        let n = run_decoded(&d, &mut state, &mut mem, u64::MAX).unwrap();
        assert_eq!(n, steps);
        assert_eq!(state, ref_state);
        assert_eq!(mem, ref_mem);
    }

    #[test]
    fn fast_engine_resumes_mid_program() {
        let p = pointer_loop_program();
        let d = DecodedProgram::decode(&p);
        let (_, whole) = run_collect(&p, 10_000).unwrap();

        // Split the run at an arbitrary point: the state threads through.
        let mut mem = SparseMem::from_image(&p.image);
        let mut state = ArchState::at_entry(&p);
        let a = run_decoded(&d, &mut state, &mut mem, 37).unwrap();
        assert_eq!(a, 37);
        assert!(!state.halted);
        let b = run_decoded(&d, &mut state, &mut mem, u64::MAX).unwrap();
        assert!(state.halted);
        assert_eq!(state, whole);
        assert!(a + b > 37);
    }

    #[test]
    fn fast_engine_stops_on_halted_state_without_stepping() {
        let mut a = Asm::new();
        a.halt();
        let p = a.assemble().unwrap();
        let d = DecodedProgram::decode(&p);
        let mut mem = SparseMem::new();
        let mut state = ArchState::at_entry(&p);
        assert_eq!(run_decoded(&d, &mut state, &mut mem, 10).unwrap(), 1);
        assert!(state.halted);
        assert_eq!(state.pc, 0, "halt freezes the pc");
        assert_eq!(run_decoded(&d, &mut state, &mut mem, 10).unwrap(), 0);
    }

    #[test]
    fn fast_engine_reports_the_same_errors() {
        let p = Program::new(vec![Inst::Nop]);
        let d = DecodedProgram::decode(&p);
        let mut mem = SparseMem::new();
        let mut state = ArchState::at_entry(&p);
        assert_eq!(
            run_decoded(&d, &mut state, &mut mem, 10).unwrap_err(),
            ExecError::PcOutOfRange { pc: 1 }
        );

        let mut a = Asm::new();
        a.li(R1, 0x101).load(R2, R1, 0).halt();
        let p = a.assemble().unwrap();
        let d = DecodedProgram::decode(&p);
        let mut state = ArchState::at_entry(&p);
        assert_eq!(
            run_decoded(&d, &mut state, &mut mem, 10).unwrap_err(),
            ExecError::Misaligned { at: 1, addr: 0x101 }
        );
    }

    #[test]
    fn fast_engine_matches_golden_model_on_randomized_programs() {
        // Exercise every opcode against run_collect over a spread of
        // seeds (deterministic: the generator is seeded).
        for seed in 0..8u64 {
            let mut rng = SplitMix64::new(0x5eed ^ seed);
            let mut a = Asm::new();
            for i in 0..64u64 {
                a.data(0x1000 + i * 8, rng.next_u64());
            }
            a.li(R1, 0x1000).li(R2, 8).li(R3, 0);
            for _ in 0..40 {
                match rng.next_u64() % 6 {
                    0 => {
                        a.andi(R4, R4, 0x1f8).load(R5, R1, 0);
                    }
                    1 => {
                        a.andi(R4, R4, 63).loadidx(R5, R1, R4);
                    }
                    2 => {
                        a.store(R5, R1, 8);
                    }
                    3 => {
                        a.add(R4, R4, R2).xor(R5, R5, R4);
                    }
                    4 => {
                        a.amoadd(R6, R1, 16, R2);
                    }
                    _ => {
                        a.alu(AluKind::Sltu, R6, R4, R5).addi(R3, R3, 1);
                    }
                }
            }
            a.halt();
            let p = a.assemble().unwrap();
            let (_, want) = run_collect(&p, 100_000).unwrap();
            let d = DecodedProgram::decode(&p);
            let mut mem = SparseMem::from_image(&p.image);
            let mut state = ArchState::at_entry(&p);
            run_decoded(&d, &mut state, &mut mem, u64::MAX).unwrap();
            assert_eq!(state, want, "seed {seed}");
            let mut ref_mem = SparseMem::from_image(&p.image);
            let mut ref_state = ArchState::at_entry(&p);
            while !ref_state.halted {
                step(&p, &mut ref_state, &mut ref_mem).unwrap();
            }
            assert_eq!(mem, ref_mem, "seed {seed}");
        }
    }

    #[test]
    fn all_register_values_thread_through_resume() {
        // A state with every register populated resumes bit-exactly.
        let mut a = Asm::new();
        for r in 1..NUM_ARCH_REGS {
            a.li(ArchReg::new(r), (r as u64) << 32 | 0xabcd);
        }
        a.halt();
        let p = a.assemble().unwrap();
        let d = DecodedProgram::decode(&p);
        let mut mem = SparseMem::new();
        let mut state = ArchState::at_entry(&p);
        run_decoded(&d, &mut state, &mut mem, u64::MAX).unwrap();
        for r in 1..NUM_ARCH_REGS {
            assert_eq!(state.read(ArchReg::new(r)), (r as u64) << 32 | 0xabcd);
        }
    }
}

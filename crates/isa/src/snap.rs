//! Snapshot serialization primitives shared by every crate that
//! contributes state to a checkpoint.
//!
//! A snapshot is a flat byte stream of little-endian scalars and
//! length-prefixed blobs, written by [`SnapWriter`] and read back by
//! [`SnapReader`]. The encoding is deliberately boring: no varints, no
//! alignment padding, no self-description. Determinism is the whole
//! point — the same state must always produce the same bytes, so every
//! `save_snap` implementation is required to emit collections in a
//! canonical (sorted) order.
//!
//! Section tags (`tag`/`expect_tag`) are 4-byte markers sprinkled
//! between major components. They carry no data; they exist so that a
//! reader that has drifted out of sync fails *immediately* with a
//! named section instead of silently misinterpreting downstream bytes.

use std::fmt;

/// Error produced when a snapshot byte stream cannot be decoded.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SnapError {
    /// What the reader was trying to decode.
    pub what: String,
    /// Byte offset at which decoding failed.
    pub offset: usize,
}

impl fmt::Display for SnapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "snapshot decode error at byte {}: {}",
            self.offset, self.what
        )
    }
}

impl std::error::Error for SnapError {}

/// Serializes state into a deterministic flat byte stream.
#[derive(Debug, Default)]
pub struct SnapWriter {
    buf: Vec<u8>,
}

impl SnapWriter {
    /// A fresh, empty writer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes the writer, returning the serialized bytes.
    #[must_use]
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The bytes written so far, without consuming the writer — used by
    /// writers that seal sections with a checksum over what they just
    /// emitted.
    #[must_use]
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }

    /// Writes one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a little-endian u32.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian u64.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a bool as one byte (0 or 1).
    pub fn bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Writes a length-prefixed byte blob.
    pub fn bytes(&mut self, b: &[u8]) {
        self.u32(b.len() as u32);
        self.buf.extend_from_slice(b);
    }

    /// Writes a 4-byte section marker (see module docs).
    pub fn tag(&mut self, t: &[u8; 4]) {
        self.buf.extend_from_slice(t);
    }
}

/// Decodes a byte stream produced by [`SnapWriter`].
#[derive(Debug)]
pub struct SnapReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SnapReader<'a> {
    /// A reader positioned at the start of `buf`.
    #[must_use]
    pub fn new(buf: &'a [u8]) -> Self {
        SnapReader { buf, pos: 0 }
    }

    /// Current byte offset.
    #[must_use]
    pub fn offset(&self) -> usize {
        self.pos
    }

    /// Whether every byte has been consumed.
    #[must_use]
    pub fn is_exhausted(&self) -> bool {
        self.pos == self.buf.len()
    }

    fn err(&self, what: impl Into<String>) -> SnapError {
        SnapError {
            what: what.into(),
            offset: self.pos,
        }
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], SnapError> {
        if self.buf.len() - self.pos < n {
            return Err(self.err(format!(
                "unexpected end of snapshot reading {what} ({n} bytes wanted, {} left)",
                self.buf.len() - self.pos
            )));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, SnapError> {
        Ok(self.take(1, "u8")?[0])
    }

    /// Reads a little-endian u32.
    pub fn u32(&mut self) -> Result<u32, SnapError> {
        let b = self.take(4, "u32")?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian u64.
    pub fn u64(&mut self) -> Result<u64, SnapError> {
        let b = self.take(8, "u64")?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads a bool; any byte other than 0/1 is an error.
    pub fn bool(&mut self) -> Result<bool, SnapError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(self.err(format!("invalid bool byte {other:#x}"))),
        }
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, SnapError> {
        let len = self.u32()? as usize;
        let b = self.take(len, "string body")?;
        String::from_utf8(b.to_vec()).map_err(|_| self.err("string is not valid UTF-8"))
    }

    /// Reads a length-prefixed byte blob.
    pub fn bytes(&mut self) -> Result<Vec<u8>, SnapError> {
        let len = self.u32()? as usize;
        Ok(self.take(len, "byte blob")?.to_vec())
    }

    /// Consumes a 4-byte section marker, failing loudly on mismatch.
    ///
    /// # Errors
    ///
    /// Names both the expected and the found tag, so a desynchronized
    /// stream is diagnosed at the section boundary where it happened.
    pub fn expect_tag(&mut self, t: &[u8; 4]) -> Result<(), SnapError> {
        let found = self.take(4, "section tag")?;
        if found != t {
            return Err(self.err(format!(
                "section tag mismatch: expected {:?}, found {:?}",
                String::from_utf8_lossy(t),
                String::from_utf8_lossy(found)
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_scalars() {
        let mut w = SnapWriter::new();
        w.tag(b"TEST");
        w.u8(7);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX);
        w.bool(true);
        w.bool(false);
        w.str("hello");
        w.bytes(&[1, 2, 3]);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        r.expect_tag(b"TEST").unwrap();
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX);
        assert!(r.bool().unwrap());
        assert!(!r.bool().unwrap());
        assert_eq!(r.str().unwrap(), "hello");
        assert_eq!(r.bytes().unwrap(), vec![1, 2, 3]);
        assert!(r.is_exhausted());
    }

    #[test]
    fn truncated_stream_errors() {
        let mut w = SnapWriter::new();
        w.u64(1);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes[..5]);
        let e = r.u64().unwrap_err();
        assert!(e.to_string().contains("unexpected end"), "{e}");
    }

    #[test]
    fn tag_mismatch_names_both_tags() {
        let mut w = SnapWriter::new();
        w.tag(b"AAAA");
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        let e = r.expect_tag(b"BBBB").unwrap_err();
        assert!(e.to_string().contains("AAAA"), "{e}");
        assert!(e.to_string().contains("BBBB"), "{e}");
    }

    #[test]
    fn bad_bool_errors() {
        let mut r = SnapReader::new(&[2]);
        assert!(r.bool().is_err());
    }

    #[test]
    fn string_length_beyond_buffer_errors() {
        let mut w = SnapWriter::new();
        w.u32(1_000_000);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        assert!(r.str().is_err());
    }
}

//! Gateway integration: digest routing, replication to the ring
//! replica, failover past a dead node, and batch fan-out — against
//! live in-process `recon-serve` nodes.

use std::net::TcpListener;
use std::time::Duration;

use recon_cluster::{Gateway, GatewayConfig, HashRing, DEFAULT_VNODES};
use recon_serve::client::{request, Connection};
use recon_serve::job::JobSpec;
use recon_serve::json::parse;
use recon_serve::server::{ServeConfig, Server};

fn start_node() -> Server {
    Server::start(&ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 1,
        queue_cap: 32,
        handler_cap: 16,
        read_timeout: Duration::from_secs(30),
        write_timeout: Duration::from_secs(30),
        ..ServeConfig::default()
    })
    .expect("node starts")
}

fn start_gateway(names: Vec<String>) -> Gateway {
    Gateway::start(&GatewayConfig {
        addr: "127.0.0.1:0".to_string(),
        nodes: names,
        ..GatewayConfig::default()
    })
    .expect("gateway starts")
}

/// Fast 200 jobs with unique digests: `analyze` is functional-only, so
/// a whole batch executes in milliseconds.
fn analyze_spec(uniq: u64) -> (String, u64) {
    let json = format!(
        r#"{{"kind":"analyze","suite":"spec2017","bench":"mcf","fuel":{}}}"#,
        100_000_000 + uniq
    );
    let v = parse(&json).expect("spec parses");
    let digest = JobSpec::from_json(&v).expect("spec validates").digest();
    (json, digest)
}

#[test]
fn jobs_route_by_digest_and_replicate_to_the_ring_replica() {
    let nodes: Vec<Server> = (0..3).map(|_| start_node()).collect();
    let names: Vec<String> = nodes.iter().map(|n| n.addr().to_string()).collect();
    let ring = HashRing::new(&names, DEFAULT_VNODES);
    let gateway = start_gateway(names.clone());

    let mut conn = Connection::with_timeout(gateway.addr(), Duration::from_secs(30));
    let mut served_nodes = std::collections::HashSet::new();
    for uniq in 0..12u64 {
        let (json, digest) = analyze_spec(uniq);
        let resp = conn
            .request("POST", "/jobs", Some(&json))
            .expect("gateway answers");
        assert_eq!(resp.status, 200, "body: {}", resp.body);

        // The answering node is the digest's ring primary (everyone is
        // healthy), and the gateway says which node answered.
        let served = resp
            .header("x-recon-node")
            .expect("X-Recon-Node")
            .to_string();
        assert_eq!(
            served,
            ring.primary(digest).unwrap(),
            "healthy cluster must route to the primary"
        );
        served_nodes.insert(served);

        // The 200 result was replicated to the ring replica's cache
        // before the response was sent, so the failover target can
        // answer this digest from cache without recomputing.
        let replica = ring.replica(digest).unwrap();
        let ri = names.iter().position(|n| n == replica).unwrap();
        let cached = nodes[ri].shared().cache.get(digest).expect("replicated");
        assert_eq!(cached.as_str(), resp.body);
        assert!(nodes[ri].shared().metrics.replications_in.get() >= 1);
    }
    // 12 digests over 3 nodes with 64 vnodes each: the spread must
    // touch more than one node or the ring isn't doing anything.
    assert!(
        served_nodes.len() >= 2,
        "routing collapsed onto {served_nodes:?}"
    );
    assert_eq!(gateway.shared().metrics.replications.get(), 12);
    assert_eq!(gateway.shared().metrics.gateway_reroutes.get(), 0);

    let _ = request(gateway.addr(), "POST", "/shutdown", None);
    gateway.wait();
    for n in &nodes {
        let _ = request(n.addr(), "POST", "/shutdown", None);
    }
}

#[test]
fn failover_walks_the_ring_past_a_dead_node() {
    let live: Vec<Server> = (0..2).map(|_| start_node()).collect();
    // A ring member that is not listening: reserve a port and drop it.
    let dead = TcpListener::bind("127.0.0.1:0")
        .unwrap()
        .local_addr()
        .unwrap()
        .to_string();
    let mut names: Vec<String> = live.iter().map(|n| n.addr().to_string()).collect();
    names.push(dead.clone());
    let ring = HashRing::new(&names, DEFAULT_VNODES);
    let gateway = start_gateway(names);

    // A spec whose primary is the dead node: the gateway must serve it
    // from a ring successor anyway.
    let (json, digest) = (0..10_000u64)
        .map(analyze_spec)
        .find(|(_, d)| ring.primary(*d).unwrap() == dead)
        .expect("some digest lands on the dead node");
    let mut conn = Connection::with_timeout(gateway.addr(), Duration::from_secs(30));
    let resp = conn
        .request("POST", "/jobs", Some(&json))
        .expect("gateway answers");
    assert_eq!(resp.status, 200, "body: {}", resp.body);
    let served = resp.header("x-recon-node").expect("X-Recon-Node");
    assert_ne!(served, dead, "a dead node cannot answer");
    assert_eq!(
        served,
        ring.route(digest)[1],
        "failover must land on the next distinct ring node"
    );
    assert!(
        gateway.shared().metrics.gateway_reroutes.get() >= 1,
        "an off-primary serve is a reroute"
    );

    // The dead node is (or becomes) marked down, visible on /cluster,
    // and the reroute counter is exported on /metrics.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        let cluster = conn.request("GET", "/cluster", None).expect("cluster");
        let v = parse(&cluster.body).expect("cluster json");
        let down = v.get("nodes").and_then(|n| n.as_array()).is_some_and(|ns| {
            ns.iter().any(|n| {
                n.get("node").and_then(|x| x.as_str()) == Some(dead.as_str())
                    && n.get("up").and_then(|x| x.as_bool()) == Some(false)
            })
        });
        if down {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "dead node never marked down: {}",
            cluster.body
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    let metrics = conn.request("GET", "/metrics", None).expect("metrics");
    assert!(
        metrics.body.contains("recon_client_reroutes_total"),
        "the client reroute counter must be exported"
    );
    assert!(metrics
        .body
        .contains(&format!("recon_node_up{{node=\"{dead}\"}} 0")));

    let _ = request(gateway.addr(), "POST", "/shutdown", None);
    gateway.wait();
    for n in &live {
        let _ = request(n.addr(), "POST", "/shutdown", None);
    }
}

#[test]
fn batches_fan_out_and_report_per_job_nodes() {
    let nodes: Vec<Server> = (0..3).map(|_| start_node()).collect();
    let names: Vec<String> = nodes.iter().map(|n| n.addr().to_string()).collect();
    let gateway = start_gateway(names);

    let (a, _) = analyze_spec(90_000);
    let (b, _) = analyze_spec(90_001);
    let batch = format!(r#"{{"jobs":[{a},{{"kind":"nope"}},{b}]}}"#);
    let mut conn = Connection::with_timeout(gateway.addr(), Duration::from_secs(30));
    let resp = conn
        .request("POST", "/jobs/batch", Some(&batch))
        .expect("gateway answers");
    assert_eq!(resp.status, 200, "body: {}", resp.body);
    let v = parse(&resp.body).expect("batch result json");
    let results = v
        .get("results")
        .and_then(|r| r.as_array())
        .expect("results");
    assert_eq!(results.len(), 3);
    assert_eq!(
        results[0].get("status").and_then(|s| s.as_f64()),
        Some(200.0)
    );
    assert_eq!(
        results[1].get("status").and_then(|s| s.as_f64()),
        Some(400.0)
    );
    assert_eq!(
        results[2].get("status").and_then(|s| s.as_f64()),
        Some(200.0)
    );
    for i in [0usize, 2] {
        assert!(
            results[i].get("node").and_then(|n| n.as_str()).is_some(),
            "valid jobs must say which node answered: {}",
            resp.body
        );
    }

    let _ = request(gateway.addr(), "POST", "/shutdown", None);
    gateway.wait();
    for n in &nodes {
        let _ = request(n.addr(), "POST", "/shutdown", None);
    }
}

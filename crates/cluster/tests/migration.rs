//! Checkpoint migration end-to-end: a draining node cancels a running
//! job, ships its newest RCK1 checkpoint to a peer's `POST /migrate`,
//! and the peer resumes mid-run to a byte-identical result.

use std::path::PathBuf;
use std::time::{Duration, Instant};

use recon_serve::client::{request, Connection};
use recon_serve::job::{self, CkptPlan, JobSpec};
use recon_serve::json::parse;
use recon_serve::server::{ServeConfig, Server};

const CADENCE: u64 = 2_000;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("recon-migration-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn start_node(dir: PathBuf) -> Server {
    Server::start(&ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 1,
        queue_cap: 8,
        handler_cap: 8,
        read_timeout: Duration::from_secs(60),
        write_timeout: Duration::from_secs(60),
        cache_dir: Some(dir),
        checkpoint_every_cycles: CADENCE,
        ..ServeConfig::default()
    })
    .expect("node starts")
}

#[test]
fn drained_node_ships_its_checkpoint_and_the_peer_resumes_byte_identically() {
    let dir_a = scratch("a");
    let dir_b = scratch("b");
    let node_a = start_node(dir_a.clone());
    let node_b = start_node(dir_b.clone());

    // A long run: plenty of cycles left when the drain cancels it.
    let json =
        r#"{"kind":"run","suite":"spec2017","bench":"mcf","scheme":"stt+recon","fuel":20000000}"#
            .to_string();
    let spec = JobSpec::from_json(&parse(&json).unwrap()).unwrap();
    let digest = spec.digest();
    // The ground truth: an uninterrupted execution at the same
    // checkpoint cadence (drains perturb stats identically whether or
    // not bytes hit disk, and wherever the run is resumed).
    let plan = CkptPlan {
        dir: None,
        cadence: CADENCE,
        keep: 2,
    };
    let expected = job::execute_ckpt(&spec, None, Some(&plan))
        .0
        .expect("direct run completes")
        .payload;

    // Run it on A; wait for the first on-disk checkpoint.
    let submit = {
        let json = json.clone();
        let addr = node_a.addr();
        std::thread::spawn(move || {
            let mut conn = Connection::with_timeout(addr, Duration::from_secs(60));
            let _ = conn.request("POST", "/jobs", Some(&json));
        })
    };
    let prefix = format!("{digest:016x}-");
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let found = std::fs::read_dir(&dir_a).is_ok_and(|entries| {
            entries.flatten().any(|e| {
                let name = e.file_name();
                let name = name.to_string_lossy();
                name.starts_with(&prefix) && name.ends_with(".rck")
            })
        });
        if found {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "job never wrote a checkpoint on A"
        );
        std::thread::sleep(Duration::from_millis(2));
    }

    // Drain A into B: cancel the run, ship its newest checkpoint.
    let body = format!("{{\"to\":\"{}\"}}", node_b.addr());
    let resp = request(node_a.addr(), "POST", "/drain", Some(&body)).expect("drain answers");
    assert_eq!(resp.status, 200, "body: {}", resp.body);
    let v = parse(&resp.body).expect("drain json");
    assert_eq!(v.get("status").and_then(|s| s.as_str()), Some("drained"));
    let migrated = v.get("migrated").and_then(|m| m.as_f64()).unwrap_or(0.0) as u64;
    assert!(
        migrated >= 1,
        "the cancelled run must migrate: {}",
        resp.body
    );
    assert!(node_b.shared().metrics.migrations_in.get() >= 1);
    let _ = submit.join();

    // B resumes the migrated checkpoint mid-run; a resubmission joins
    // that execution (or its cached result) and the payload is
    // byte-identical to the uninterrupted run.
    let mut conn = Connection::with_timeout(node_b.addr(), Duration::from_secs(60));
    let resp = conn
        .request("POST", "/jobs", Some(&json))
        .expect("B answers");
    assert_eq!(resp.status, 200, "body: {}", resp.body);
    assert_eq!(
        resp.body, expected,
        "cross-node resume diverged from the uninterrupted run"
    );
    assert!(
        node_b.shared().metrics.checkpoints_resumed.get() >= 1,
        "B must resume from the shipped checkpoint, not start over"
    );

    let _ = request(node_b.addr(), "POST", "/shutdown", None);
    let _ = std::fs::remove_dir_all(&dir_a);
    let _ = std::fs::remove_dir_all(&dir_b);
}

//! `recon chaos --nodes N`: the cluster chaos storm.
//!
//! Unlike the single-node storm (which injects synthetic faults inside
//! one process), this storm kills *real processes*. It spawns N
//! `recon serve` worker nodes as children, fronts them with an
//! in-process [`Gateway`], and then:
//!
//! 1. **Kill phase** — client threads drive unique-digest jobs through
//!    the gateway while the storm SIGKILLs the primary of a watched
//!    long-running job mid-execution (after its first RCK1 checkpoint
//!    lands on disk) and restarts it on the same port and cache
//!    directory. The gateway must reroute every in-flight job to a
//!    ring successor and the restarted node must resume its orphaned
//!    job from the checkpoint. Claim: **0 lost, 0 mismatched** — every
//!    response byte-identical to a direct single-node execution.
//! 2. **Drain phase** — a second long job runs on a different node,
//!    which is then told to drain to its ring successor
//!    (`POST /drain {"to": ...}`). The draining node cancels the job,
//!    ships its newest checkpoint to the successor's `POST /migrate`,
//!    and exits. The storm resubmits the job through the gateway
//!    (which fails over to — precisely — the successor) and proves the
//!    **cross-node resume**: the successor's `recon_migrations_in_total`
//!    and `recon_checkpoints_resumed_total` both advance, and the final
//!    payload is byte-identical to an uninterrupted run. The
//!    choreography picks the drained job's digest so that neither its
//!    primary nor its successor is the kill victim; the metric deltas
//!    are unambiguous.
//! 3. **Throughput phase** — fresh single-worker nodes serve a burst
//!    of tiny unique-digest jobs at node counts 1 and N, with the
//!    chaos plane injecting a deterministic 1..=40ms worker sleep per
//!    job: a model of an I/O-bound service, where *worker occupancy*
//!    (not CPU) is the scarce resource and therefore the thing the
//!    ring shards. The same client pool drives both samples, queues
//!    are deep enough to never reject (no retry noise), and the
//!    aggregate requests-per-second per node count lands in
//!    `BENCH_cluster.json`. (CPU-bound jobs cannot scale past the
//!    physical core count on a one-core host; see EXPERIMENTS.md.)

use std::io::{self, Write as _};
use std::net::{SocketAddr, TcpListener};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use recon_serve::client::{self, submit_with_retry, Connection, RetryPolicy};
use recon_serve::job::{self, CkptPlan, JobError, JobSpec};
use recon_serve::json::parse;

use crate::gateway::{Gateway, GatewayConfig};
use crate::ring::{HashRing, DEFAULT_VNODES};

/// Checkpoint cadence for storm jobs, in simulated cycles. Matches the
/// single-node storm: small enough that watched jobs cross a checkpoint
/// boundary almost immediately, so the kill and drain windows are wide.
const STORM_CKPT_EVERY: u64 = 5_000;

/// Cluster storm configuration (the `recon chaos --nodes N` flags).
#[derive(Clone, Debug)]
pub struct ClusterStormConfig {
    /// Seed for client retry jitter and the job mix.
    pub seed: u64,
    /// Worker nodes (at least 2 — migration needs a successor).
    pub nodes: usize,
    /// Concurrent client threads in the kill phase.
    pub clients: usize,
    /// Requests per client in the kill phase.
    pub requests: usize,
    /// Worker threads per node.
    pub node_workers: usize,
    /// Jobs per client in the throughput phase.
    pub throughput_requests: usize,
    /// Fuel for the kill- and drain-watched jobs. Long enough that the
    /// job is mid-run when its first checkpoint lands (the kill/drain
    /// trigger); the smoke test shrinks it to keep CI fast.
    pub watch_fuel: u64,
    /// The `recon` binary to spawn nodes from.
    pub node_exe: PathBuf,
    /// Report path (`None` skips the file).
    pub out: Option<String>,
    /// Minimum N-node over 1-node throughput gain to require (`None`
    /// reports without gating).
    pub min_speedup: Option<f64>,
}

impl Default for ClusterStormConfig {
    fn default() -> Self {
        ClusterStormConfig {
            seed: 42,
            nodes: 3,
            clients: 3,
            requests: 4,
            node_workers: 1,
            throughput_requests: 40,
            watch_fuel: 40_000_000,
            node_exe: PathBuf::from("recon"),
            out: Some("BENCH_cluster.json".to_string()),
            min_speedup: None,
        }
    }
}

/// One node-count sample from the throughput phase.
#[derive(Clone, Debug)]
pub struct ThroughputPoint {
    /// Nodes behind the gateway.
    pub nodes: usize,
    /// Jobs served.
    pub jobs: u64,
    /// Wall-clock seconds.
    pub wall_seconds: f64,
    /// Aggregate requests per second.
    pub rps: f64,
}

/// Aggregated results of one cluster storm.
#[derive(Clone, Debug, Default)]
pub struct ClusterStormReport {
    /// The seed used.
    pub seed: u64,
    /// Worker nodes in the kill/drain phases.
    pub nodes: usize,
    /// Client threads in the kill phase.
    pub clients: usize,
    /// Requests per client in the kill phase.
    pub requests_per_client: usize,
    /// Final `200` responses byte-identical to direct execution.
    pub ok: u64,
    /// Final `408` responses byte-identical to the expected partials.
    pub deadline: u64,
    /// Responses whose bytes differed (must be 0).
    pub mismatches: u64,
    /// Requests with no valid final response (must be 0).
    pub lost: u64,
    /// Extra client attempts beyond the first.
    pub retries: u64,
    /// Nodes SIGKILLed mid-job.
    pub kills: u64,
    /// Killed nodes restarted on the same port and cache directory.
    pub restarts: u64,
    /// The restarted node resumed its orphaned job from a checkpoint.
    pub kill_orphan_resumed: bool,
    /// Checkpoints the drained node shipped to its ring successor.
    pub migrated: u64,
    /// Successor's `recon_migrations_in_total` delta over the drain.
    pub successor_migrations_in: u64,
    /// Successor's `recon_checkpoints_resumed_total` delta.
    pub successor_resumes: u64,
    /// The migrated job finished on the successor with bytes identical
    /// to an uninterrupted single-node run.
    pub migrated_byte_identical: bool,
    /// Transport-level gateway failovers (`recon_client_reroutes_total`).
    pub reroutes: u64,
    /// Jobs answered off-primary (`recon_gateway_reroutes_total`).
    pub gateway_reroutes: u64,
    /// Results replicated to ring replicas by the gateway.
    pub replications: u64,
    /// Throughput samples (node count 1 and N).
    pub throughput: Vec<ThroughputPoint>,
    /// N-node over 1-node aggregate throughput.
    pub speedup: f64,
    /// Wall-clock for the whole storm, in seconds.
    pub wall_seconds: f64,
}

impl ClusterStormReport {
    /// Whether the storm met the cluster claim: nothing lost, nothing
    /// mismatched, and at least one job provably resumed on a
    /// *different* node from a migrated RCK1 checkpoint with
    /// byte-identical output.
    #[must_use]
    pub fn pass(&self) -> bool {
        self.lost == 0
            && self.mismatches == 0
            && self.migrated >= 1
            && self.successor_migrations_in >= 1
            && self.successor_resumes >= 1
            && self.migrated_byte_identical
    }

    /// Renders the report as the `BENCH_cluster.json` document.
    #[must_use]
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(s, "{{");
        let _ = writeln!(s, "  \"seed\": {},", self.seed);
        let _ = writeln!(s, "  \"nodes\": {},", self.nodes);
        let _ = writeln!(s, "  \"clients\": {},", self.clients);
        let _ = writeln!(
            s,
            "  \"requests_per_client\": {},",
            self.requests_per_client
        );
        let _ = writeln!(s, "  \"ok\": {},", self.ok);
        let _ = writeln!(s, "  \"deadline\": {},", self.deadline);
        let _ = writeln!(s, "  \"mismatches\": {},", self.mismatches);
        let _ = writeln!(s, "  \"lost\": {},", self.lost);
        let _ = writeln!(s, "  \"retries\": {},", self.retries);
        let _ = writeln!(s, "  \"kills\": {},", self.kills);
        let _ = writeln!(s, "  \"restarts\": {},", self.restarts);
        let _ = writeln!(
            s,
            "  \"kill_orphan_resumed\": {},",
            self.kill_orphan_resumed
        );
        let _ = writeln!(s, "  \"migrated\": {},", self.migrated);
        let _ = writeln!(
            s,
            "  \"successor_migrations_in\": {},",
            self.successor_migrations_in
        );
        let _ = writeln!(s, "  \"successor_resumes\": {},", self.successor_resumes);
        let _ = writeln!(
            s,
            "  \"migrated_byte_identical\": {},",
            self.migrated_byte_identical
        );
        let _ = writeln!(s, "  \"reroutes\": {},", self.reroutes);
        let _ = writeln!(s, "  \"gateway_reroutes\": {},", self.gateway_reroutes);
        let _ = writeln!(s, "  \"replications\": {},", self.replications);
        let _ = writeln!(s, "  \"throughput\": [");
        for (i, p) in self.throughput.iter().enumerate() {
            let comma = if i + 1 < self.throughput.len() {
                ","
            } else {
                ""
            };
            let _ = writeln!(
                s,
                "    {{\"nodes\": {}, \"jobs\": {}, \"wall_seconds\": {:.6}, \"rps\": {:.2}}}{comma}",
                p.nodes, p.jobs, p.wall_seconds, p.rps
            );
        }
        let _ = writeln!(s, "  ],");
        let _ = writeln!(s, "  \"speedup\": {:.3},", self.speedup);
        let _ = writeln!(s, "  \"pass\": {},", self.pass());
        let _ = writeln!(s, "  \"wall_seconds\": {:.6}", self.wall_seconds);
        let _ = writeln!(s, "}}");
        s
    }

    /// Writes [`Self::to_json`] to `path`.
    ///
    /// # Errors
    ///
    /// File I/O errors.
    pub fn write_json(&self, path: &str) -> io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.to_json().as_bytes())
    }
}

/// One spawned worker node.
struct NodeProc {
    name: String,
    addr: SocketAddr,
    dir: Option<PathBuf>,
    child: Child,
}

impl NodeProc {
    fn kill(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Reserves a free loopback port by binding and dropping a listener.
/// A tiny race against other processes remains; [`spawn_node`] retries.
fn free_port() -> io::Result<u16> {
    Ok(TcpListener::bind("127.0.0.1:0")?.local_addr()?.port())
}

fn spawn_child(
    exe: &std::path::Path,
    port: u16,
    dir: Option<&PathBuf>,
    workers: usize,
    queue_cap: usize,
    chaos: Option<&str>,
) -> io::Result<Child> {
    let mut cmd = Command::new(exe);
    cmd.arg("serve")
        .arg("--addr")
        .arg(format!("127.0.0.1:{port}"))
        .arg("--workers")
        .arg(workers.to_string())
        .arg("--queue-cap")
        .arg(queue_cap.to_string())
        .arg("--handler-cap")
        .arg("32")
        .arg("--node")
        .arg(format!("127.0.0.1:{port}"))
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::null());
    if let Some(dir) = dir {
        cmd.arg("--cache-dir")
            .arg(dir)
            .arg("--checkpoint-every")
            .arg(STORM_CKPT_EVERY.to_string());
    }
    if let Some(spec) = chaos {
        cmd.arg("--chaos").arg(spec);
    }
    cmd.spawn()
}

/// Spawns a node and waits until `/healthz` answers. `port` pins the
/// address (required when restarting a killed node); `None` picks a
/// fresh free port per attempt.
fn spawn_node(
    exe: &std::path::Path,
    port: Option<u16>,
    dir: Option<PathBuf>,
    workers: usize,
    queue_cap: usize,
    chaos: Option<&str>,
) -> io::Result<NodeProc> {
    let mut last = None;
    for _ in 0..10 {
        let p = match port {
            Some(p) => p,
            None => free_port()?,
        };
        let mut child = spawn_child(exe, p, dir.as_ref(), workers, queue_cap, chaos)?;
        let addr = SocketAddr::from(([127, 0, 0, 1], p));
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            if Connection::with_timeout(addr, Duration::from_millis(250))
                .request("GET", "/healthz", None)
                .map(|r| r.status == 200)
                .unwrap_or(false)
            {
                return Ok(NodeProc {
                    name: format!("127.0.0.1:{p}"),
                    addr,
                    dir,
                    child,
                });
            }
            // A lost port race makes the child exit immediately; retry
            // the spawn (same port when pinned — the loser frees it).
            if let Ok(Some(status)) = child.try_wait() {
                last = Some(io::Error::other(format!(
                    "node exited at startup: {status}"
                )));
                break;
            }
            if Instant::now() > deadline {
                let _ = child.kill();
                let _ = child.wait();
                last = Some(io::Error::other("node did not become healthy in 10s"));
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    Err(last.unwrap_or_else(|| io::Error::other("node spawn failed")))
}

/// Sums every sample of `name` in a node's `/metrics` output,
/// tolerating `{node="..."}` labels.
fn scrape(addr: SocketAddr, name: &str) -> u64 {
    let Ok(r) = client::request(addr, "GET", "/metrics", None) else {
        return 0;
    };
    let mut total = 0u64;
    for line in r.body.lines() {
        let rest = match line.strip_prefix(name) {
            Some(rest) => rest,
            None => continue,
        };
        let value = match rest.as_bytes().first() {
            Some(b' ') => rest.trim(),
            Some(b'{') => match rest.split_once("} ") {
                Some((_, v)) => v.trim(),
                None => continue,
            },
            _ => continue,
        };
        if let Ok(v) = value.parse::<f64>() {
            total += v as u64;
        }
    }
    total
}

/// Polls a node until its inflight gauge drains to zero (background
/// orphan recovery finished), so later metric deltas are unambiguous.
fn wait_idle(addr: SocketAddr, deadline: Duration) {
    let end = Instant::now() + deadline;
    while Instant::now() < end {
        if scrape(addr, "recon_jobs_inflight") == 0 {
            return;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Prints a timestamped storm progress line. `cargo test` captures
/// stdout, so tests stay quiet unless they fail; the CLI shows the
/// phase-by-phase timeline live.
fn progress(start: Instant, msg: &str) {
    println!(
        "cluster storm [{:6.1}s] {msg}",
        start.elapsed().as_secs_f64()
    );
}

/// Whether `dir` holds an RCK1 checkpoint for `digest`.
fn has_checkpoint(dir: &std::path::Path, digest: u64) -> bool {
    let prefix = format!("{digest:016x}-");
    std::fs::read_dir(dir).is_ok_and(|entries| {
        entries.flatten().any(|e| {
            let name = e.file_name();
            let name = name.to_string_lossy();
            name.starts_with(&prefix) && name.ends_with(".rck")
        })
    })
}

/// One request in a client's kill-phase slice.
#[derive(Clone, Debug)]
struct Expected {
    json: String,
    digest: u64,
    status: u16,
    body: String,
}

/// Builds an `Expected` by executing the spec directly with the storm's
/// checkpoint cadence (no disk) — exactly how a node computes it.
fn expect(json: String, plan: Option<&CkptPlan>) -> Expected {
    let v = parse(&json).expect("storm spec parses");
    let spec = JobSpec::from_json(&v).expect("storm spec validates");
    let digest = spec.digest();
    match job::execute_ckpt(&spec, None, plan).0 {
        Ok(out) => Expected {
            json,
            digest,
            status: 200,
            body: out.payload,
        },
        Err(JobError::DeadlineExceeded { payload, .. }) => Expected {
            json,
            digest,
            status: 408,
            body: payload,
        },
        Err(e) => panic!("storm spec failed directly: {e:?}"),
    }
}

/// The cadence-only plan matching a node's persisted execution: the
/// checkpoint drains perturb stats identically whether or not the
/// bytes hit disk, so these expected payloads are valid for fresh,
/// locally-resumed, and cross-node-resumed executions alike.
fn storm_plan() -> CkptPlan {
    CkptPlan {
        dir: None,
        cadence: STORM_CKPT_EVERY,
        keep: 2,
    }
}

/// The kill-phase job mix: unique digests via unique fuel, same shapes
/// as the single-node storm but smaller (real processes, one core).
/// `run_fuel` scales the long-run jobs with the watched-job fuel so a
/// small smoke storm stays small end to end.
fn build_slice(client_id: usize, requests: usize, run_fuel: u64) -> Vec<Expected> {
    let schemes = ["unsafe", "nda", "nda+recon", "stt", "stt+recon"];
    let plan = storm_plan();
    (0..requests)
        .map(|r| {
            let uniq = (client_id * requests + r) as u64;
            let json = match r % 3 {
                0 => format!(
                    r#"{{"kind":"run","suite":"spec2017","bench":"mcf","scheme":"{}","fuel":{}}}"#,
                    schemes[(client_id + r) % schemes.len()],
                    run_fuel + uniq
                ),
                1 => format!(
                    r#"{{"kind":"analyze","suite":"spec2017","bench":"mcf","fuel":{}}}"#,
                    100_000_000 + uniq
                ),
                _ => format!(
                    r#"{{"kind":"run","suite":"spec2017","bench":"xalancbmk","scheme":"stt","fuel":{}}}"#,
                    1000 + uniq
                ),
            };
            expect(json, Some(&plan))
        })
        .collect()
}

#[derive(Default)]
struct ClientTally {
    ok: u64,
    deadline: u64,
    mismatches: u64,
    lost: u64,
    retries: u64,
}

/// Drives one slice through the gateway. The policy is generous: a
/// node kill mid-job costs a gateway-side failover, not a client-side
/// failure, but the client still rides out relayed backpressure.
fn client_loop(
    gateway: SocketAddr,
    slice: &[Expected],
    seed: u64,
    client_id: usize,
) -> ClientTally {
    let mut t = ClientTally::default();
    let mut conn = Connection::with_timeout(gateway, Duration::from_secs(120));
    let policy = RetryPolicy {
        max_attempts: 60,
        base_delay: Duration::from_millis(2),
        max_delay: Duration::from_millis(200),
        retry_after_cap: Duration::from_millis(200),
        seed: seed ^ (client_id as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        // The gateway stays up for the whole storm; refused would be a
        // harness bug, so surface it as `lost` immediately.
        fail_fast_refused: true,
    };
    let mut sleep = |d: Duration| std::thread::sleep(d);
    for expected in slice {
        match submit_with_retry(
            &mut conn,
            &expected.json,
            expected.digest,
            &policy,
            &mut sleep,
        ) {
            Ok(r) => {
                t.retries += u64::from(r.attempts - 1);
                if r.response.status == expected.status && r.response.body == expected.body {
                    if r.response.status == 200 {
                        t.ok += 1;
                    } else {
                        t.deadline += 1;
                    }
                } else if r.response.status == expected.status {
                    t.mismatches += 1;
                } else {
                    t.lost += 1;
                }
            }
            Err(_) => {
                t.retries += u64::from(policy.max_attempts - 1);
                t.lost += 1;
            }
        }
    }
    t
}

/// A unique scratch directory for one node's checkpoints and cache.
fn scratch_dir(seed: u64, tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "recon-cluster-{}-{seed}-{tag}-{n}",
        std::process::id()
    ))
}

/// Finds a long-run spec whose ring route satisfies `want` (searching
/// over a fuel tail leaves the workload identical-shaped but moves the
/// digest around the ring).
fn find_spec_with_route(
    ring: &HashRing,
    base_fuel: u64,
    want: impl Fn(&[&str]) -> bool,
) -> (String, u64) {
    for t in 0..10_000u64 {
        let json = format!(
            r#"{{"kind":"run","suite":"spec2017","bench":"mcf","scheme":"stt+recon","fuel":{}}}"#,
            base_fuel + t
        );
        let v = parse(&json).expect("probe spec parses");
        let spec = JobSpec::from_json(&v).expect("probe spec validates");
        let digest = spec.digest();
        if want(&ring.route(digest)) {
            return (json, digest);
        }
    }
    unreachable!("no digest with the wanted route in 10k probes");
}

/// Runs the cluster storm and (optionally) writes `BENCH_cluster.json`.
///
/// # Errors
///
/// I/O errors spawning nodes, binding the gateway, or writing the
/// report.
///
/// # Panics
///
/// Panics if a storm spec fails when executed directly, or if the
/// choreography cannot find suitable digests (bugs in the storm, not
/// the service).
pub fn run_cluster_storm(config: &ClusterStormConfig) -> io::Result<ClusterStormReport> {
    let n = config.nodes.max(2);
    let clients = config.clients.max(1);
    let requests = config.requests.max(1);
    let start = Instant::now();

    let mut report = ClusterStormReport {
        seed: config.seed,
        nodes: n,
        clients,
        requests_per_client: requests,
        ..ClusterStormReport::default()
    };

    // Precompute all expected bytes before any process starts.
    let run_fuel = (config.watch_fuel / 4).max(1_000_000);
    let slices: Vec<Arc<Vec<Expected>>> = (0..clients)
        .map(|c| Arc::new(build_slice(c, requests, run_fuel)))
        .collect();
    progress(start, "expected payloads precomputed");

    // ---- Spawn the worker fleet. --------------------------------------
    let queue_cap = clients * requests + 8;
    let mut fleet: Vec<NodeProc> = Vec::with_capacity(n);
    for i in 0..n {
        let dir = scratch_dir(config.seed, &format!("node{i}"));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir)?;
        fleet.push(spawn_node(
            &config.node_exe,
            None,
            Some(dir),
            config.node_workers.max(1),
            queue_cap,
            None,
        )?);
    }
    let names: Vec<String> = fleet.iter().map(|p| p.name.clone()).collect();
    let ring = HashRing::new(&names, DEFAULT_VNODES);

    let gateway = Gateway::start(&GatewayConfig {
        addr: "127.0.0.1:0".to_string(),
        nodes: names.clone(),
        handler_cap: clients + 8,
        // Long jobs stall the *node* read (node_timeout), not the
        // client-facing keep-alive read — leaving the latter at its 5s
        // default keeps gateway teardown prompt.
        node_timeout: Duration::from_secs(120),
        ..GatewayConfig::default()
    })?;
    let gw_addr = gateway.addr();
    let by_name =
        |fleet: &[NodeProc], name: &str| fleet.iter().position(|p| p.name == name).expect("fleet");

    // ---- Choreography digests. ----------------------------------------
    // Kill job: any long run; its primary is the victim.
    let (kill_json, kill_digest) = find_spec_with_route(&ring, config.watch_fuel, |_| true);
    let victim = ring.route(kill_digest)[0].to_string();
    // Drain job: neither its primary nor its successor may be the kill
    // victim, so the successor's metric deltas can only come from the
    // migration (needs n >= 3; with n == 2 the successor is the
    // restarted victim, whose orphan recovery we wait out instead).
    let (drain_json, drain_digest) =
        find_spec_with_route(&ring, config.watch_fuel + 1_000_000, |route| {
            if n >= 3 {
                route[0] != victim && route[1] != victim
            } else {
                route[0] != victim
            }
        });
    let plan = storm_plan();
    let kill_expected = expect(kill_json.clone(), Some(&plan));
    let drain_expected = expect(drain_json.clone(), Some(&plan));
    progress(start, "fleet up, choreography digests chosen");

    // ---- Kill phase. --------------------------------------------------
    let client_handles: Vec<_> = slices
        .iter()
        .enumerate()
        .map(|(c, slice)| {
            let slice = Arc::clone(slice);
            let seed = config.seed;
            std::thread::spawn(move || client_loop(gw_addr, &slice, seed, c))
        })
        .collect();
    let kill_handle = {
        let expected = kill_expected.clone();
        let seed = config.seed;
        std::thread::spawn(move || {
            client_loop(gw_addr, std::slice::from_ref(&expected), seed, usize::MAX)
        })
    };

    // Wait for the victim's first checkpoint of the watched job, then
    // SIGKILL it mid-run and restart it on the same port and directory.
    let vi = by_name(&fleet, &victim);
    let victim_dir = fleet[vi].dir.clone().expect("kill nodes have dirs");
    let victim_port = fleet[vi].addr.port();
    let kill_deadline = Instant::now() + Duration::from_secs(60);
    while !has_checkpoint(&victim_dir, kill_digest) && Instant::now() < kill_deadline {
        std::thread::sleep(Duration::from_millis(1));
    }
    fleet[vi].kill();
    progress(start, "victim SIGKILLed mid-run");
    report.kills = 1;
    fleet[vi] = spawn_node(
        &config.node_exe,
        Some(victim_port),
        Some(victim_dir),
        config.node_workers.max(1),
        queue_cap,
        None,
    )?;
    report.restarts = 1;

    for h in client_handles {
        let t = h.join().expect("client thread");
        report.ok += t.ok;
        report.deadline += t.deadline;
        report.mismatches += t.mismatches;
        report.lost += t.lost;
        report.retries += t.retries;
    }
    let kt = kill_handle.join().expect("kill-watch thread");
    report.ok += kt.ok;
    report.mismatches += kt.mismatches;
    report.lost += kt.lost;
    report.retries += kt.retries;
    progress(start, "kill-phase clients drained");

    // Let the restarted victim finish recovering its orphaned job so
    // the drain-phase metric deltas cannot be confused with it.
    wait_idle(fleet[vi].addr, Duration::from_secs(120));
    report.kill_orphan_resumed = scrape(fleet[vi].addr, "recon_checkpoints_resumed_total") >= 1;
    progress(start, "restarted victim idle (orphan recovery done)");

    // ---- Drain phase: checkpoint migration to the ring successor. -----
    let primary = ring.route(drain_digest)[0].to_string();
    let successor = ring.route(drain_digest)[1].to_string();
    let (pi, si) = (by_name(&fleet, &primary), by_name(&fleet, &successor));
    let succ_addr = fleet[si].addr;
    let pre_migrations = scrape(succ_addr, "recon_migrations_in_total");
    let pre_resumes = scrape(succ_addr, "recon_checkpoints_resumed_total");

    // Submit the watched job straight to the primary (one attempt, no
    // healing: the drain is *supposed* to cancel it).
    let drain_submit = {
        let json = drain_json.clone();
        let addr = fleet[pi].addr;
        std::thread::spawn(move || {
            let mut conn = Connection::with_timeout(addr, Duration::from_secs(120));
            let _ = conn.request("POST", "/jobs", Some(&json));
        })
    };
    let primary_dir = fleet[pi].dir.clone().expect("drain nodes have dirs");
    let drain_deadline = Instant::now() + Duration::from_secs(60);
    while !has_checkpoint(&primary_dir, drain_digest) && Instant::now() < drain_deadline {
        std::thread::sleep(Duration::from_millis(1));
    }
    let drain_body = format!("{{\"to\":\"{}\"}}", fleet[si].name);
    let drain_resp = client::request(fleet[pi].addr, "POST", "/drain", Some(&drain_body))?;
    if drain_resp.status == 200 {
        if let Ok(v) = parse(&drain_resp.body) {
            report.migrated = v
                .get("migrated")
                .and_then(recon_serve::json::Json::as_f64)
                .map_or(0, |f| f as u64);
        }
    }
    let _ = drain_submit.join();
    progress(start, "drain accepted, checkpoint shipped");
    // The drained node exits on its own once its server drains.
    let _ = fleet[pi].child.wait();
    progress(start, "drained node exited");

    // Wait until the gateway notices the primary is gone, then resubmit
    // through it: failover lands exactly on the successor, which joins
    // the migrated job's resumed execution (or its cached result).
    let down_deadline = Instant::now() + Duration::from_secs(10);
    while Instant::now() < down_deadline {
        if !gateway.shared().nodes[gateway
            .shared()
            .ring
            .nodes()
            .iter()
            .position(|x| *x == primary)
            .expect("ring member")]
        .is_up()
        {
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    let mut conn = Connection::with_timeout(gw_addr, Duration::from_secs(120));
    let policy = RetryPolicy {
        max_attempts: 60,
        base_delay: Duration::from_millis(2),
        max_delay: Duration::from_millis(200),
        retry_after_cap: Duration::from_millis(200),
        seed: config.seed,
        fail_fast_refused: true,
    };
    let mut sleep = |d: Duration| std::thread::sleep(d);
    match submit_with_retry(&mut conn, &drain_json, drain_digest, &policy, &mut sleep) {
        Ok(r) if r.response.status == 200 => {
            report.migrated_byte_identical = r.response.body == drain_expected.body;
            if !report.migrated_byte_identical {
                report.mismatches += 1;
            }
        }
        _ => report.lost += 1,
    }
    progress(start, "resubmission answered from the successor");
    wait_idle(succ_addr, Duration::from_secs(60));
    report.successor_migrations_in =
        scrape(succ_addr, "recon_migrations_in_total").saturating_sub(pre_migrations);
    report.successor_resumes =
        scrape(succ_addr, "recon_checkpoints_resumed_total").saturating_sub(pre_resumes);

    report.reroutes = gateway.shared().metrics.client_reroutes.get();
    report.gateway_reroutes = gateway.shared().metrics.gateway_reroutes.get();
    report.replications = gateway.shared().metrics.replications.get();

    // Our keep-alive connection parks a gateway handler in its read
    // loop; close it first so `wait()` below joins promptly.
    drop(conn);
    let _ = client::request(gw_addr, "POST", "/shutdown", None);
    gateway.wait();
    for node in &mut fleet {
        node.kill();
        if let Some(dir) = &node.dir {
            let _ = std::fs::remove_dir_all(dir);
        }
    }

    progress(start, "storm fleet torn down; measuring throughput");

    // ---- Throughput phase. --------------------------------------------
    for &count in &[1usize, n] {
        let point = throughput_phase(config, count)?;
        progress(
            start,
            &format!(
                "throughput @{count} node(s): {} jobs in {:.2}s",
                point.jobs, point.wall_seconds
            ),
        );
        report.throughput.push(point);
    }
    report.speedup = match (report.throughput.first(), report.throughput.last()) {
        (Some(one), Some(many)) if one.rps > 0.0 => many.rps / one.rps,
        _ => 0.0,
    };

    report.wall_seconds = start.elapsed().as_secs_f64();
    if let Some(path) = &config.out {
        report.write_json(path)?;
    }
    Ok(report)
}

/// Measures service-time-bound aggregate throughput at one node count:
/// single-worker nodes with chaos-injected worker latency and tiny
/// fuel-starved jobs, so the bottleneck is worker occupancy — the
/// resource the ring shards — not CPU.
fn throughput_phase(config: &ClusterStormConfig, count: usize) -> io::Result<ThroughputPoint> {
    // Offered concurrency must be able to saturate the *largest* fleet
    // measured, and must be identical at every node count — otherwise
    // the sweep compares client pools, not fleets.
    let clients = 8 * config.nodes.max(2);
    let per_client = config.throughput_requests.max(1);

    // Unique digests via unique fuel; each expected body is a direct
    // plan-free execution (these nodes have no cache directory, so they
    // execute plan-free too). ~1k instructions each: negligible setup.
    let slices: Vec<Arc<Vec<Expected>>> = (0..clients)
        .map(|c| {
            Arc::new(
                (0..per_client)
                    .map(|r| {
                        // Unique digests via the fuel's low bits only:
                        // every job stays fuel-starved (~1k cycles), so
                        // the phase measures admission, not simulation.
                        let uniq = (c * per_client + r) as u64;
                        expect(
                            format!(
                                r#"{{"kind":"run","suite":"spec2017","bench":"xalancbmk","scheme":"stt","fuel":{}}}"#,
                                1000 + uniq
                            ),
                            None,
                        )
                    })
                    .collect(),
            )
        })
        .collect();

    // Worker-latency injection via the chaos plane: each job occupies
    // its node's single worker for a deterministic 1..=40ms sleep
    // (near-zero CPU), modeling an I/O-bound service. Worker-seconds
    // are then the scarce resource the ring shards — the regime where
    // adding nodes helps even on a single-core host. The queue is deep
    // enough to never reject, so the measurement has no retry noise,
    // and latency injection never alters payload bytes, so the
    // 0-lost/0-mismatched gates still hold.
    let chaos = format!("{},latency=1000,max-latency-ms=40", config.seed);
    let queue_cap = clients * per_client + 8;
    let mut fleet: Vec<NodeProc> = Vec::with_capacity(count);
    for _ in 0..count {
        fleet.push(spawn_node(
            &config.node_exe,
            None,
            None,
            1,
            queue_cap,
            Some(&chaos),
        )?);
    }
    let names: Vec<String> = fleet.iter().map(|p| p.name.clone()).collect();
    let gateway = Gateway::start(&GatewayConfig {
        addr: "127.0.0.1:0".to_string(),
        nodes: names,
        handler_cap: clients + 4,
        // Backpressure patience tuned small: the jobs are sub-millisecond,
        // so honoring a full second of Retry-After would measure the
        // hint, not the service.
        retry: RetryPolicy {
            max_attempts: 400,
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(20),
            retry_after_cap: Duration::from_millis(20),
            seed: config.seed,
            fail_fast_refused: true,
        },
        ..GatewayConfig::default()
    })?;
    let gw_addr = gateway.addr();

    let start = Instant::now();
    let handles: Vec<_> = slices
        .iter()
        .enumerate()
        .map(|(c, slice)| {
            let slice = Arc::clone(slice);
            let seed = config.seed;
            std::thread::spawn(move || client_loop(gw_addr, &slice, seed, c))
        })
        .collect();
    let mut ok = 0u64;
    for h in handles {
        let t = h.join().expect("throughput client");
        assert_eq!(t.lost, 0, "throughput phase lost a request");
        assert_eq!(t.mismatches, 0, "throughput phase mismatched a response");
        ok += t.ok + t.deadline;
    }
    let wall = start.elapsed().as_secs_f64();

    let rejected: u64 = fleet
        .iter()
        .map(|p| scrape(p.addr, "recon_jobs_rejected_total"))
        .sum();
    println!(
        "cluster storm [throughput] {count} node(s): {ok} jobs, {rejected} admission rejections"
    );

    let _ = client::request(gw_addr, "POST", "/shutdown", None);
    gateway.wait();
    for node in &mut fleet {
        node.kill();
    }

    Ok(ThroughputPoint {
        nodes: count,
        jobs: ok,
        wall_seconds: wall,
        rps: if wall > 0.0 { ok as f64 / wall } else { 0.0 },
    })
}

//! The consistent-hash ring that assigns job digests to nodes.
//!
//! Each node contributes `vnodes` *virtual* points to a shared 64-bit
//! hash circle (FxHash over the node name and the point index), and a
//! key is owned by the first point clockwise from the key's own hash.
//! Virtual points smooth ownership: with 64 points per node the shares
//! stay within a few percent of `1/N`, and when a node joins or leaves
//! only the keys adjacent to its points move — about `1/N` of them, and
//! provably bounded here by `2/N` in the tests — while every other
//! key's assignment is untouched. That stability is what makes cache
//! replication and checkpoint migration cheap: membership changes
//! relocate a sliver of the digest space, not all of it.
//!
//! The ring is a pure function of the *sorted* member list and the
//! vnode count — insertion order, restarts, and which process computes
//! it never change an assignment. The gateway and the cluster storm
//! both build it from the same node list and therefore agree on every
//! placement without talking to each other.

use std::hash::Hasher as _;

use recon_isa::hash::FxHasher;

/// A consistent-hash ring over named nodes.
#[derive(Clone, Debug)]
pub struct HashRing {
    /// Member names, sorted and deduplicated.
    nodes: Vec<String>,
    /// Virtual points per node.
    vnodes: usize,
    /// `(point hash, index into nodes)`, sorted by hash.
    points: Vec<(u64, usize)>,
}

/// Default virtual points per node.
pub const DEFAULT_VNODES: usize = 64;

/// splitmix64 finalizer. FxHash is multiplicative with no final
/// avalanche: similar inputs (node names differing in a few digits,
/// consecutive vnode indices, digests of near-identical specs) produce
/// outputs sharing their high bits, which is exactly what a sorted
/// ring keys on. Without this mix, one node of a three-node ring can
/// own ~90% of the circle.
fn mix(x: u64) -> u64 {
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn point_hash(node: &str, vnode: usize) -> u64 {
    let mut h = FxHasher::default();
    h.write(node.as_bytes());
    h.write_u64(vnode as u64);
    mix(h.finish())
}

impl HashRing {
    /// Builds the ring. Node names are sorted and deduplicated first,
    /// so any permutation of the same member set yields an identical
    /// ring.
    #[must_use]
    pub fn new(nodes: &[String], vnodes: usize) -> HashRing {
        let mut sorted: Vec<String> = nodes.to_vec();
        sorted.sort();
        sorted.dedup();
        let vnodes = vnodes.max(1);
        let mut points = Vec::with_capacity(sorted.len() * vnodes);
        for (i, node) in sorted.iter().enumerate() {
            for v in 0..vnodes {
                points.push((point_hash(node, v), i));
            }
        }
        // Ties (astronomically unlikely) break by node index so the
        // ring is still a pure function of the member set.
        points.sort_unstable();
        HashRing {
            nodes: sorted,
            vnodes,
            points,
        }
    }

    /// The sorted member names.
    #[must_use]
    pub fn nodes(&self) -> &[String] {
        &self.nodes
    }

    /// Virtual points per node.
    #[must_use]
    pub fn vnodes(&self) -> usize {
        self.vnodes
    }

    /// Index into `points` of the first point at or clockwise of
    /// `key`. The key gets the same avalanche mix as the points: job
    /// digests are FxHash too, so a batch of near-identical specs
    /// would otherwise cluster onto one arc.
    fn first_point(&self, key: u64) -> Option<usize> {
        if self.points.is_empty() {
            return None;
        }
        let key = mix(key);
        let i = self.points.partition_point(|&(h, _)| h < key);
        Some(if i == self.points.len() { 0 } else { i })
    }

    /// The node that owns `key` (the digest's primary).
    #[must_use]
    pub fn primary(&self, key: u64) -> Option<&str> {
        let start = self.first_point(key)?;
        Some(&self.nodes[self.points[start].1])
    }

    /// The first *distinct* node clockwise of the primary — where the
    /// gateway replicates `key`'s result, and where a draining primary
    /// ships `key`'s checkpoint. `None` when the ring has fewer than
    /// two nodes.
    #[must_use]
    pub fn replica(&self, key: u64) -> Option<&str> {
        let order = self.route(key);
        order.get(1).copied()
    }

    /// Every distinct node in ring order starting at `key`'s primary:
    /// the gateway's failover sequence. Walking clockwise from the
    /// owning point visits nodes in an order that is deterministic per
    /// key but varies across keys, so failover load from a dead node
    /// spreads over the survivors instead of piling onto one.
    #[must_use]
    pub fn route(&self, key: u64) -> Vec<&str> {
        let Some(start) = self.first_point(key) else {
            return Vec::new();
        };
        let mut order: Vec<&str> = Vec::with_capacity(self.nodes.len());
        for step in 0..self.points.len() {
            let (_, node) = self.points[(start + step) % self.points.len()];
            let name = self.nodes[node].as_str();
            if !order.contains(&name) {
                order.push(name);
                if order.len() == self.nodes.len() {
                    break;
                }
            }
        }
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("10.0.0.{i}:7090")).collect()
    }

    #[test]
    fn ring_is_deterministic_across_restarts_and_orderings() {
        let a = HashRing::new(&names(5), DEFAULT_VNODES);
        let mut reversed = names(5);
        reversed.reverse();
        let b = HashRing::new(&reversed, DEFAULT_VNODES);
        for key in 0..10_000u64 {
            let k = key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            assert_eq!(a.primary(k), b.primary(k), "key {k:#x}");
            assert_eq!(a.route(k), b.route(k), "key {k:#x}");
        }
    }

    #[test]
    fn ownership_is_balanced_by_virtual_nodes() {
        let ring = HashRing::new(&names(4), DEFAULT_VNODES);
        let mut counts = std::collections::HashMap::new();
        let keys = 40_000u64;
        for key in 0..keys {
            let k = key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            *counts
                .entry(ring.primary(k).unwrap().to_string())
                .or_insert(0u64) += 1;
        }
        let ideal = keys / 4;
        for (node, count) in counts {
            assert!(
                count > ideal / 2 && count < ideal * 2,
                "{node} owns {count} of {keys} (ideal {ideal})"
            );
        }
    }

    #[test]
    fn join_moves_at_most_two_over_n_of_the_keys() {
        let before = HashRing::new(&names(4), DEFAULT_VNODES);
        let after = HashRing::new(&names(5), DEFAULT_VNODES);
        let keys = 20_000u64;
        let moved = (0..keys)
            .map(|key| key.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .filter(|&k| before.primary(k) != after.primary(k))
            .count() as u64;
        // One joining node should claim ~1/5 of the keys; 2/N is the
        // contract the replication and migration volume is sized by.
        let bound = 2 * keys / 5;
        assert!(
            moved <= bound,
            "{moved} of {keys} keys moved (bound {bound})"
        );
        assert!(moved > 0, "a join must claim some keys");
    }

    #[test]
    fn leave_moves_at_most_two_over_n_of_the_keys() {
        let before = HashRing::new(&names(5), DEFAULT_VNODES);
        let after = HashRing::new(&names(5)[..4], DEFAULT_VNODES);
        let keys = 20_000u64;
        let moved = (0..keys)
            .map(|key| key.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .filter(|&k| before.primary(k) != after.primary(k))
            .count() as u64;
        let bound = 2 * keys / 5;
        assert!(
            moved <= bound,
            "{moved} of {keys} keys moved (bound {bound})"
        );
        // Keys owned by survivors never move on a leave.
        for key in 0..keys {
            let k = key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let p = before.primary(k).unwrap();
            if p != names(5)[4] {
                assert_eq!(after.primary(k), Some(p), "survivor key {k:#x} moved");
            }
        }
    }

    #[test]
    fn replica_never_lands_on_the_primary() {
        for n in 2..6 {
            let ring = HashRing::new(&names(n), DEFAULT_VNODES);
            for key in 0..5_000u64 {
                let k = key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
                let primary = ring.primary(k).unwrap();
                let replica = ring.replica(k).unwrap();
                assert_ne!(primary, replica, "key {k:#x} with {n} nodes");
            }
        }
    }

    #[test]
    fn route_visits_every_node_exactly_once() {
        let ring = HashRing::new(&names(5), DEFAULT_VNODES);
        for key in [0u64, 1, u64::MAX, 0xDEAD_BEEF] {
            let order = ring.route(key);
            assert_eq!(order.len(), 5);
            let mut sorted: Vec<&str> = order.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 5, "duplicates in {order:?}");
            assert_eq!(order[0], ring.primary(key).unwrap());
            assert_eq!(order[1], ring.replica(key).unwrap());
        }
    }

    #[test]
    fn degenerate_rings() {
        let empty = HashRing::new(&[], DEFAULT_VNODES);
        assert_eq!(empty.primary(7), None);
        assert!(empty.route(7).is_empty());
        let one = HashRing::new(&names(1), DEFAULT_VNODES);
        assert_eq!(one.primary(7).unwrap(), names(1)[0]);
        assert_eq!(one.replica(7), None);
        let dup = HashRing::new(&[names(1)[0].clone(), names(1)[0].clone()], 8);
        assert_eq!(dup.nodes().len(), 1);
    }
}

//! Distributed `recon-serve`: a consistent-hash cluster with
//! checkpoint-based job migration.
//!
//! Three pieces turn a set of independent `recon serve` nodes into one
//! logical service:
//!
//! * [`ring`] — the consistent-hash ring. Job digests (canonical
//!   [`recon_serve::job::JobSpec`] digests, the same key the cache and
//!   single-flight dedup already use) map to a primary node and a
//!   deterministic failover sequence; membership changes move `O(1/N)`
//!   of the digest space.
//! * [`gateway`] — the HTTP front door. `POST /jobs` and
//!   `POST /jobs/batch` are validated at the edge, routed to the
//!   digest's primary over pooled keep-alive connections, rerouted on
//!   transport failure (connection refused fails fast in the client —
//!   a down node costs one syscall, not a retry schedule), and `200`
//!   results are replicated to the ring replica's cache so the
//!   failover target can answer without recomputing.
//! * [`storm`] — the cluster chaos storm behind `recon chaos
//!   --nodes N`. It spawns real node processes, SIGKILLs and restarts
//!   them mid-job, drives a checkpoint migration from a draining node
//!   to its ring successor, and asserts 0 lost / 0 mismatched /
//!   byte-identical against single-node expected output, publishing
//!   `BENCH_cluster.json`.
//!
//! Migration itself lives on the nodes (`POST /drain` ships the newest
//! RCK1 checkpoint per unfinished job to the ring successor's
//! `POST /migrate`, which validates the embedded spec against the
//! checkpoint digest and resumes mid-run); this crate decides *where*
//! checkpoints go and proves the resumed output byte-identical.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod gateway;
pub mod ring;
pub mod storm;

pub use gateway::{Gateway, GatewayConfig, GatewayMetrics, GwShared, NodeState};
pub use ring::{HashRing, DEFAULT_VNODES};
pub use storm::{run_cluster_storm, ClusterStormConfig, ClusterStormReport};

//! The cluster gateway: one HTTP front door over N `recon serve`
//! worker nodes.
//!
//! The gateway owns a [`HashRing`] keyed by the canonical job digest.
//! A `POST /jobs` submission is validated *at the edge* (same error
//! shape as a node), hashed, and proxied to the digest's primary node
//! over a pooled keep-alive connection with the self-healing retry
//! client. Failure handling distinguishes the two ways a node can say
//! no:
//!
//! * **Node down** — connection refused (fail-fast in the client) or
//!   exhausted transport retries. The gateway marks the node down,
//!   counts `recon_client_reroutes_total`, and walks the ring to the
//!   next distinct node. A background health checker probes `/healthz`
//!   and flips nodes back up when they return.
//! * **Node busy** — the node answered `429`/`503` after the per-node
//!   retry budget. That response (with its `Retry-After` hint) is
//!   relayed to the client untouched; rerouting backpressure would
//!   defeat the digest→node affinity that makes caching and
//!   single-flight dedup work.
//!
//! Successful `200` results are **replicated** to the digest's ring
//! replica (`POST /cache`), so when a primary dies its successor — the
//! exact node failover routes to — can answer repeated submissions from
//! cache without re-executing. Together with checkpoint migration
//! (`POST /migrate`, driven by a draining node, see
//! [`crate::storm`]), the replica is always the warmest place a job
//! can land after its primary disappears.

use std::io::{self, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use recon_serve::client::{self, submit_with_retry, Connection, Retried, RetryPolicy};
use recon_serve::http::{read_request, render_response, Request};
use recon_serve::job::JobSpec;
use recon_serve::json::{escape, parse, Json};
use recon_serve::metrics::Counter;
use recon_serve::queue::{lock_ignore_poison, BoundedQueue};
use recon_serve::server::MAX_BATCH;

use crate::ring::{HashRing, DEFAULT_VNODES};

/// Idle pooled connections kept per node.
const POOL_CAP: usize = 32;

/// Gateway configuration (the `recon gateway` flags).
#[derive(Clone, Debug)]
pub struct GatewayConfig {
    /// Listen address (port 0 binds an ephemeral port).
    pub addr: String,
    /// Worker node addresses (`host:port`); these strings are also the
    /// ring member names and the `node` label values.
    pub nodes: Vec<String>,
    /// Virtual points per node on the hash ring.
    pub vnodes: usize,
    /// Connection-handler threads.
    pub handler_cap: usize,
    /// Client-facing per-connection read timeout.
    pub read_timeout: Duration,
    /// Client-facing per-connection write timeout.
    pub write_timeout: Duration,
    /// Per-I/O timeout on gateway→node connections. Must cover the
    /// longest job a node can serve.
    pub node_timeout: Duration,
    /// Health-probe period.
    pub health_interval: Duration,
    /// Replicate `200` results to the ring replica.
    pub replicate: bool,
    /// Per-node submission policy (transport retries + bounded
    /// backpressure patience; `fail_fast_refused` should stay `true` so
    /// dead nodes reroute immediately).
    pub retry: RetryPolicy,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        GatewayConfig {
            addr: "127.0.0.1:7190".to_string(),
            nodes: Vec::new(),
            vnodes: DEFAULT_VNODES,
            handler_cap: 32,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            node_timeout: Duration::from_secs(60),
            health_interval: Duration::from_millis(200),
            replicate: true,
            retry: RetryPolicy {
                max_attempts: 6,
                base_delay: Duration::from_millis(2),
                max_delay: Duration::from_millis(100),
                retry_after_cap: Duration::from_millis(50),
                seed: 0,
                fail_fast_refused: true,
            },
        }
    }
}

/// Gateway-level counters (`GET /metrics` on the gateway).
#[derive(Default, Debug)]
pub struct GatewayMetrics {
    /// `POST /jobs` submissions accepted for routing.
    pub jobs: Counter,
    /// `POST /jobs/batch` submissions.
    pub batches: Counter,
    /// Transport-level failovers: a node was unreachable (refused
    /// fail-fast or exhausted transport retries) and the job moved to
    /// the next ring candidate.
    pub client_reroutes: Counter,
    /// Jobs answered by a node other than the digest's primary (for
    /// any reason: down-skip or transport failover).
    pub gateway_reroutes: Counter,
    /// Submissions that exhausted every ring candidate.
    pub no_node: Counter,
    /// Results successfully replicated to the ring replica.
    pub replications: Counter,
    /// Replication attempts that failed (best-effort; never blocks the
    /// client response).
    pub replication_failures: Counter,
}

/// Per-node live state.
#[derive(Debug)]
pub struct NodeState {
    /// Ring member name (the configured `host:port` string).
    pub name: String,
    /// Resolved address.
    pub addr: SocketAddr,
    /// Last known health (flipped by probes and by routing failures).
    up: AtomicBool,
    /// Jobs answered by this node through the gateway.
    pub routed: Counter,
    pool: Mutex<Vec<Connection>>,
}

impl NodeState {
    /// Last known health.
    #[must_use]
    pub fn is_up(&self) -> bool {
        self.up.load(Ordering::Relaxed)
    }
}

/// State shared by the accept loop, handlers, and the health checker.
#[derive(Debug)]
pub struct GwShared {
    /// The consistent-hash ring (member names == node names below).
    pub ring: HashRing,
    /// Per-node state, indexed in [`HashRing::nodes`] order.
    pub nodes: Vec<NodeState>,
    /// Gateway counters.
    pub metrics: GatewayMetrics,
    retry: RetryPolicy,
    node_timeout: Duration,
    replicate: bool,
    shutting_down: AtomicBool,
}

impl GwShared {
    fn node_index(&self, name: &str) -> usize {
        self.ring
            .nodes()
            .binary_search_by(|n| n.as_str().cmp(name))
            .expect("route() only yields ring members")
    }
}

/// A running gateway.
#[derive(Debug)]
pub struct Gateway {
    addr: SocketAddr,
    shared: Arc<GwShared>,
    accept: Option<JoinHandle<()>>,
    handlers: Vec<JoinHandle<()>>,
    health: Option<JoinHandle<()>>,
}

impl Gateway {
    /// Resolves the node list, builds the ring, binds the listener, and
    /// starts the handler pool plus the health checker.
    ///
    /// # Errors
    ///
    /// `InvalidInput` for an empty or unresolvable node list; bind
    /// errors.
    pub fn start(config: &GatewayConfig) -> io::Result<Gateway> {
        if config.nodes.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "gateway needs at least one node (--nodes host:port,host:port,...)",
            ));
        }
        let ring = HashRing::new(&config.nodes, config.vnodes);
        let mut nodes = Vec::with_capacity(ring.nodes().len());
        for name in ring.nodes() {
            let addr = name
                .to_socket_addrs()
                .ok()
                .and_then(|mut a| a.next())
                .ok_or_else(|| {
                    io::Error::new(
                        io::ErrorKind::InvalidInput,
                        format!("unresolvable node '{name}'"),
                    )
                })?;
            nodes.push(NodeState {
                name: name.clone(),
                addr,
                up: AtomicBool::new(true),
                routed: Counter::default(),
                pool: Mutex::new(Vec::new()),
            });
        }
        let shared = Arc::new(GwShared {
            ring,
            nodes,
            metrics: GatewayMetrics::default(),
            retry: config.retry.clone(),
            node_timeout: config.node_timeout,
            replicate: config.replicate,
            shutting_down: AtomicBool::new(false),
        });

        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;

        let conns = Arc::new(BoundedQueue::new(config.handler_cap.max(1)));
        let handlers = (0..config.handler_cap.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                let conns = Arc::clone(&conns);
                let timeouts = (config.read_timeout, config.write_timeout);
                std::thread::Builder::new()
                    .name(format!("recon-gw-conn-{i}"))
                    .spawn(move || {
                        while let Some(stream) = conns.pop() {
                            let _ = handle_connection(stream, &shared, timeouts);
                        }
                    })
                    .expect("spawn gateway handler")
            })
            .collect();

        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("recon-gw-accept".to_string())
                .spawn(move || accept_loop(&listener, &shared, &conns))
                .expect("spawn gateway accept loop")
        };

        let health = {
            let shared = Arc::clone(&shared);
            let interval = config.health_interval.max(Duration::from_millis(10));
            std::thread::Builder::new()
                .name("recon-gw-health".to_string())
                .spawn(move || health_loop(&shared, interval))
                .expect("spawn health checker")
        };

        Ok(Gateway {
            addr,
            shared,
            accept: Some(accept),
            handlers,
            health: Some(health),
        })
    }

    /// The actual bound address (useful with port 0).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Shared state, for in-process inspection in tests.
    #[must_use]
    pub fn shared(&self) -> &GwShared {
        &self.shared
    }

    /// Blocks until `POST /shutdown` stops the gateway, then joins all
    /// threads.
    pub fn wait(mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        for h in self.handlers.drain(..) {
            let _ = h.join();
        }
        if let Some(h) = self.health.take() {
            let _ = h.join();
        }
    }
}

fn accept_loop(
    listener: &TcpListener,
    shared: &Arc<GwShared>,
    conns: &Arc<BoundedQueue<TcpStream>>,
) {
    for stream in listener.incoming() {
        if shared.shutting_down.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        if let Err((mut stream, _)) = conns.try_push_or_return(stream) {
            let _ = stream.write_all(&render_response(
                503,
                &[("Retry-After", "1".to_string())],
                "application/json",
                b"{\"error\":\"overloaded\",\"message\":\"gateway backlog full; retry later\"}",
                true,
            ));
        }
    }
    conns.close();
}

/// Probes every node's `/healthz` and updates its `up` flag. Routing
/// also updates the flags (down on transport failure, up on success),
/// so the probe is what notices a *restarted* node while no traffic is
/// flowing toward it.
fn health_loop(shared: &Arc<GwShared>, interval: Duration) {
    while !shared.shutting_down.load(Ordering::SeqCst) {
        for node in &shared.nodes {
            let healthy = Connection::with_timeout(node.addr, Duration::from_millis(500))
                .request("GET", "/healthz", None)
                .map(|r| r.status == 200)
                .unwrap_or(false);
            node.up.store(healthy, Ordering::Relaxed);
        }
        std::thread::sleep(interval);
    }
}

fn handle_connection(
    stream: TcpStream,
    shared: &Arc<GwShared>,
    (read_timeout, write_timeout): (Duration, Duration),
) -> io::Result<()> {
    stream.set_read_timeout(Some(read_timeout.max(Duration::from_millis(1))))?;
    stream.set_write_timeout(Some(write_timeout.max(Duration::from_millis(1))))?;
    stream.set_nodelay(true)?;
    let self_addr = stream.local_addr().ok();
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    loop {
        let req = match read_request(&mut reader) {
            Ok(Some(req)) => req,
            Ok(None) => return Ok(()),
            Err(_) => {
                let _ = send(
                    &mut writer,
                    400,
                    &[],
                    "{\"error\":\"malformed_request\",\"message\":\"unparseable HTTP request\"}"
                        .as_bytes(),
                    true,
                );
                return Ok(());
            }
        };
        let close = req.wants_close() || shared.shutting_down.load(Ordering::SeqCst);
        let closed = route(&req, &mut writer, shared, self_addr, close)?;
        if close || closed {
            return Ok(());
        }
    }
}

/// Writes a response; returns whether the connection closes.
fn send(
    writer: &mut impl Write,
    status: u16,
    extra_headers: &[(&str, String)],
    body: &[u8],
    close: bool,
) -> io::Result<bool> {
    writer.write_all(&render_response(
        status,
        extra_headers,
        "application/json",
        body,
        close,
    ))?;
    writer.flush()?;
    Ok(close)
}

fn route(
    req: &Request,
    writer: &mut impl Write,
    shared: &Arc<GwShared>,
    self_addr: Option<SocketAddr>,
    close: bool,
) -> io::Result<bool> {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => send(writer, 200, &[], b"{\"status\":\"ok\"}", close),
        ("GET", "/metrics") => {
            let body = render_metrics(shared);
            writer.write_all(&render_response(
                200,
                &[],
                "text/plain; version=0.0.4",
                body.as_bytes(),
                close,
            ))?;
            writer.flush()?;
            Ok(close)
        }
        ("GET", "/cluster") => {
            let body = render_cluster(shared);
            send(writer, 200, &[], body.as_bytes(), close)
        }
        ("POST", "/jobs") => handle_job(req, writer, shared, close),
        ("POST", "/jobs/batch") => handle_batch(req, writer, shared, close),
        ("POST", "/shutdown") => {
            send(writer, 200, &[], b"{\"status\":\"shutting_down\"}", true)?;
            shared.shutting_down.store(true, Ordering::SeqCst);
            if let Some(addr) = self_addr {
                let _ = TcpStream::connect(addr);
            }
            Ok(true)
        }
        ("GET" | "POST", _) => send(
            writer,
            404,
            &[],
            format!(
                "{{\"error\":\"not_found\",\"message\":\"{}\"}}",
                escape(&req.path)
            )
            .as_bytes(),
            close,
        ),
        _ => send(
            writer,
            405,
            &[],
            format!(
                "{{\"error\":\"method_not_allowed\",\"message\":\"{}\"}}",
                escape(&req.method)
            )
            .as_bytes(),
            close,
        ),
    }
}

fn render_metrics(shared: &Arc<GwShared>) -> String {
    use std::fmt::Write as _;
    let m = &shared.metrics;
    let mut out = String::with_capacity(1024);
    let mut counter = |name: &str, help: &str, value: u64| {
        let _ = writeln!(out, "# HELP {name} {help}");
        let _ = writeln!(out, "# TYPE {name} counter");
        let _ = writeln!(out, "{name} {value}");
    };
    counter(
        "recon_gateway_jobs_total",
        "Job submissions accepted for routing.",
        m.jobs.get(),
    );
    counter(
        "recon_gateway_batches_total",
        "Batch submissions accepted for routing.",
        m.batches.get(),
    );
    counter(
        "recon_client_reroutes_total",
        "Transport-level failovers to the next ring candidate (node down).",
        m.client_reroutes.get(),
    );
    counter(
        "recon_gateway_reroutes_total",
        "Jobs answered by a node other than the digest's primary.",
        m.gateway_reroutes.get(),
    );
    counter(
        "recon_gateway_no_node_total",
        "Submissions that exhausted every ring candidate.",
        m.no_node.get(),
    );
    counter(
        "recon_gateway_replications_total",
        "Results replicated to the ring replica.",
        m.replications.get(),
    );
    counter(
        "recon_gateway_replication_failures_total",
        "Failed best-effort replications.",
        m.replication_failures.get(),
    );
    let _ = writeln!(out, "# HELP recon_node_up Last known node health.");
    let _ = writeln!(out, "# TYPE recon_node_up gauge");
    for node in &shared.nodes {
        let _ = writeln!(
            out,
            "recon_node_up{{node=\"{}\"}} {}",
            node.name,
            u64::from(node.is_up())
        );
    }
    let _ = writeln!(
        out,
        "# HELP recon_gateway_routed_total Jobs answered per node."
    );
    let _ = writeln!(out, "# TYPE recon_gateway_routed_total counter");
    for node in &shared.nodes {
        let _ = writeln!(
            out,
            "recon_gateway_routed_total{{node=\"{}\"}} {}",
            node.name,
            node.routed.get()
        );
    }
    out
}

fn render_cluster(shared: &Arc<GwShared>) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(256);
    let _ = write!(
        out,
        "{{\"vnodes\":{},\"replicate\":{},\"nodes\":[",
        shared.ring.vnodes(),
        shared.replicate
    );
    for (i, node) in shared.nodes.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"node\":\"{}\",\"up\":{},\"routed\":{}}}",
            escape(&node.name),
            node.is_up(),
            node.routed.get()
        );
    }
    out.push_str("]}");
    out
}

/// One proxied submission: the digest's failover sequence is walked
/// until a node *answers* (any HTTP status — backpressure is an answer)
/// or every candidate proves unreachable.
fn proxy_job(shared: &Arc<GwShared>, digest: u64, json: &str) -> Option<(usize, Retried)> {
    let order = shared.ring.route(digest);
    let total = order.len();
    for (i, name) in order.iter().enumerate() {
        let idx = shared.node_index(name);
        let node = &shared.nodes[idx];
        // Skip nodes the health checker has marked down — unless this
        // is the last candidate, which is always worth one real try.
        if !node.is_up() && i + 1 < total {
            continue;
        }
        match node_submit(shared, node, digest, json) {
            Ok(retried) => {
                node.up.store(true, Ordering::Relaxed);
                node.routed.inc();
                if i > 0 {
                    shared.metrics.gateway_reroutes.inc();
                }
                return Some((idx, retried));
            }
            Err(_) => {
                // Unreachable (refused fail-fast, or transport retries
                // exhausted): mark down and walk on.
                node.up.store(false, Ordering::Relaxed);
                if i + 1 < total {
                    shared.metrics.client_reroutes.inc();
                }
            }
        }
    }
    shared.metrics.no_node.inc();
    None
}

fn node_submit(
    shared: &Arc<GwShared>,
    node: &NodeState,
    digest: u64,
    json: &str,
) -> io::Result<Retried> {
    let mut conn = lock_ignore_poison(&node.pool)
        .pop()
        .unwrap_or_else(|| Connection::with_timeout(node.addr, shared.node_timeout));
    let result = submit_with_retry(&mut conn, json, digest, &shared.retry, &mut |d| {
        std::thread::sleep(d)
    });
    if result.is_ok() {
        let mut pool = lock_ignore_poison(&node.pool);
        if pool.len() < POOL_CAP {
            pool.push(conn);
        }
    }
    result
}

/// Best-effort replication of a `200` payload to the digest's ring
/// replica. Failures are counted, never surfaced: the authoritative
/// result has already been computed and will be returned regardless.
fn replicate(shared: &Arc<GwShared>, digest: u64, served_idx: usize, payload: &str) {
    if !shared.replicate {
        return;
    }
    let Some(replica) = shared.ring.replica(digest) else {
        return;
    };
    let idx = shared.node_index(replica);
    if idx == served_idx {
        return;
    }
    let body = format!(
        "{{\"digest\":\"{digest:016x}\",\"payload\":\"{}\"}}",
        escape(payload)
    );
    match client::request(shared.nodes[idx].addr, "POST", "/cache", Some(&body)) {
        Ok(r) if r.status == 200 => shared.metrics.replications.inc(),
        _ => shared.metrics.replication_failures.inc(),
    }
}

/// The headers a node response carries that the client should see,
/// plus the gateway's own `X-Recon-Node` (which node answered — the
/// observable a migration test needs to prove a cross-node resume).
fn forward_headers(retried: &Retried, node_name: &str) -> Vec<(&'static str, String)> {
    let mut headers: Vec<(&'static str, String)> = Vec::with_capacity(3);
    if let Some(v) = retried.response.header("x-recon-cache") {
        headers.push(("X-Recon-Cache", v.to_string()));
    }
    if let Some(v) = retried.response.header("x-recon-checkpoint") {
        headers.push(("X-Recon-Checkpoint", v.to_string()));
    }
    if let Some(v) = retried.response.header("retry-after") {
        headers.push(("Retry-After", v.to_string()));
    }
    headers.push(("X-Recon-Node", node_name.to_string()));
    headers
}

fn handle_job(
    req: &Request,
    writer: &mut impl Write,
    shared: &Arc<GwShared>,
    close: bool,
) -> io::Result<bool> {
    let bad = |writer: &mut _, msg: &str| {
        send(
            writer,
            400,
            &[],
            format!(
                "{{\"error\":\"invalid_job\",\"message\":\"{}\"}}",
                escape(msg)
            )
            .as_bytes(),
            close,
        )
    };
    let Some(body) = req.body_str() else {
        return bad(writer, "body is not UTF-8");
    };
    let parsed = match parse(body) {
        Ok(v) => v,
        Err(e) => return bad(writer, &e),
    };
    let spec = match JobSpec::from_json(&parsed) {
        Ok(s) => s,
        Err(e) => return bad(writer, &e),
    };
    let digest = spec.digest();
    shared.metrics.jobs.inc();

    match proxy_job(shared, digest, body) {
        Some((idx, retried)) => {
            if retried.response.status == 200 {
                replicate(shared, digest, idx, &retried.response.body);
            }
            let name = shared.nodes[idx].name.clone();
            let headers = forward_headers(&retried, &name);
            send(
                writer,
                retried.response.status,
                &headers,
                retried.response.body.as_bytes(),
                close,
            )
        }
        None => send(
            writer,
            503,
            &[("Retry-After", "1".to_string())],
            b"{\"error\":\"no_node\",\"message\":\"every ring candidate is unreachable\"}",
            close,
        ),
    }
}

fn handle_batch(
    req: &Request,
    writer: &mut impl Write,
    shared: &Arc<GwShared>,
    close: bool,
) -> io::Result<bool> {
    let bad = |writer: &mut _, msg: &str| {
        send(
            writer,
            400,
            &[],
            format!(
                "{{\"error\":\"invalid_batch\",\"message\":\"{}\"}}",
                escape(msg)
            )
            .as_bytes(),
            close,
        )
    };
    let Some(body) = req.body_str() else {
        return bad(writer, "body is not UTF-8");
    };
    let parsed = match parse(body) {
        Ok(v) => v,
        Err(e) => return bad(writer, &e),
    };
    let Some(jobs) = parsed.get("jobs").and_then(Json::as_array) else {
        return bad(writer, "batch must be {\"jobs\":[<spec>, ...]}");
    };
    if jobs.is_empty() {
        return bad(writer, "batch is empty");
    }
    if jobs.len() > MAX_BATCH {
        return bad(
            writer,
            &format!("batch of {} exceeds the cap of {MAX_BATCH}", jobs.len()),
        );
    }
    shared.metrics.batches.inc();
    shared.metrics.jobs.add(jobs.len() as u64);

    // Validate at the edge, then fan the valid specs out concurrently —
    // each rides its own digest's failover sequence independently.
    enum Slot {
        Invalid(String),
        Valid(String, u64),
    }
    let slots: Vec<Slot> = jobs
        .iter()
        .map(|v| match JobSpec::from_json(v) {
            Err(e) => Slot::Invalid(e),
            Ok(spec) => Slot::Valid(spec.to_json(), spec.digest()),
        })
        .collect();
    let mut results: Vec<Option<(usize, Retried)>> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = slots
            .iter()
            .map(|slot| match slot {
                Slot::Invalid(_) => None,
                Slot::Valid(json, digest) => {
                    let shared = Arc::clone(shared);
                    let (json, digest) = (json.clone(), *digest);
                    Some(scope.spawn(move || proxy_job(&shared, digest, &json)))
                }
            })
            .collect();
        results = handles
            .into_iter()
            .map(|h| h.and_then(|h| h.join().unwrap_or(None)))
            .collect();
    });

    let mut out = String::with_capacity(256 * slots.len());
    out.push_str("{\"results\":[");
    for (i, (slot, result)) in slots.iter().zip(results).enumerate() {
        if i > 0 {
            out.push(',');
        }
        use std::fmt::Write as _;
        match (slot, result) {
            (Slot::Invalid(e), _) => {
                let _ = write!(
                    out,
                    "{{\"status\":400,\"body\":{{\"error\":\"invalid_job\",\"message\":\"{}\"}}}}",
                    escape(e)
                );
            }
            (Slot::Valid(..), Some((idx, retried))) => {
                let digest = match slot {
                    Slot::Valid(_, d) => *d,
                    Slot::Invalid(_) => unreachable!(),
                };
                if retried.response.status == 200 {
                    replicate(shared, digest, idx, &retried.response.body);
                }
                let _ = write!(out, "{{\"status\":{},", retried.response.status);
                if let Some(c) = retried.response.header("x-recon-cache") {
                    let _ = write!(out, "\"cache\":\"{c}\",");
                }
                let _ = write!(
                    out,
                    "\"node\":\"{}\",\"body\":{}}}",
                    escape(&shared.nodes[idx].name),
                    retried.response.body
                );
            }
            (Slot::Valid(..), None) => {
                out.push_str(
                    "{\"status\":503,\"body\":{\"error\":\"no_node\",\"message\":\"every ring candidate is unreachable\"}}",
                );
            }
        }
    }
    out.push_str("]}");
    send(writer, 200, &[], out.as_bytes(), close)
}

//! A blocking loopback HTTP client for the bench harness, the CI smoke
//! job, and tests.
//!
//! Speaks the same one-exchange-per-connection dialect the server does:
//! connect, send one request, read one response, done.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use crate::http::MAX_BODY;

/// One parsed HTTP response.
#[derive(Clone, Debug)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Headers in arrival order, names lowercased.
    pub headers: Vec<(String, String)>,
    /// The body as UTF-8 (the service only produces UTF-8).
    pub body: String,
}

impl Response {
    /// The first header with the given (case-insensitive) name.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        let want = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == want)
            .map(|(_, v)| v.as_str())
    }
}

/// Sends one request and reads the response.
///
/// # Errors
///
/// Connection/stream I/O errors, or `InvalidData` for malformed
/// response framing.
pub fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> io::Result<Response> {
    let stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(60)))?;
    stream.set_write_timeout(Some(Duration::from_secs(60)))?;
    let mut writer = stream.try_clone()?;
    let payload = body.unwrap_or("");
    write!(
        writer,
        "{method} {path} HTTP/1.1\r\nHost: recon\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{payload}",
        payload.len()
    )?;
    writer.flush()?;

    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    let status = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("malformed status line: {status_line:?}"),
            )
        })?;

    let mut headers = Vec::new();
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed mid-headers",
            ));
        }
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
        }
    }

    let content_length = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .and_then(|(_, v)| v.parse::<usize>().ok())
        .unwrap_or(0);
    if content_length > MAX_BODY {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "response body too large",
        ));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    let body = String::from_utf8(body)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 response body"))?;
    Ok(Response {
        status,
        headers,
        body,
    })
}

/// Submits a job (`POST /jobs`) from its JSON text.
///
/// # Errors
///
/// As [`request`].
pub fn submit_job(addr: SocketAddr, json: &str) -> io::Result<Response> {
    request(addr, "POST", "/jobs", Some(json))
}

//! A blocking loopback HTTP client for the bench harness, the chaos
//! storm, the CI smoke job, and tests.
//!
//! Two layers:
//!
//! * [`request`] / [`submit_job`] — the original one-exchange dialect:
//!   connect, send one request with `Connection: close`, read one
//!   response, done.
//! * [`Connection`] + [`RetryPolicy`] + [`submit_with_retry`] — the
//!   self-healing layer: keep-alive connections that transparently
//!   reconnect on failure, and bounded retries with exponential backoff
//!   and deterministic jitter that honor `Retry-After`. Retrying a job
//!   submission is safe because jobs are content-addressed: the server
//!   dedups re-submissions against its cache and in-flight table, so a
//!   retried job is never double-executed or answered with someone
//!   else's bytes.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use recon_isa::rng::{Rng, SplitMix64};

use crate::http::MAX_BODY;

/// One parsed HTTP response.
#[derive(Clone, Debug)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Headers in arrival order, names lowercased.
    pub headers: Vec<(String, String)>,
    /// The body as UTF-8 (the service only produces UTF-8).
    pub body: String,
}

impl Response {
    /// The first header with the given (case-insensitive) name.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        let want = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == want)
            .map(|(_, v)| v.as_str())
    }
}

/// Reads one response from `reader`. Shared by the one-shot and
/// keep-alive paths; returns `InvalidData` for malformed framing, which
/// the retry layer treats as a transport fault.
fn read_response(reader: &mut impl BufRead) -> io::Result<Response> {
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    let status = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("malformed status line: {status_line:?}"),
            )
        })?;

    let mut headers = Vec::new();
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed mid-headers",
            ));
        }
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
        }
    }

    let content_length = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .and_then(|(_, v)| v.parse::<usize>().ok())
        .unwrap_or(0);
    if content_length > MAX_BODY {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "response body too large",
        ));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    let body = String::from_utf8(body)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 response body"))?;
    Ok(Response {
        status,
        headers,
        body,
    })
}

/// Sends one request over a fresh connection and reads the response
/// (`Connection: close` semantics).
///
/// # Errors
///
/// Connection/stream I/O errors, or `InvalidData` for malformed
/// response framing.
pub fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> io::Result<Response> {
    let stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(60)))?;
    stream.set_write_timeout(Some(Duration::from_secs(60)))?;
    let mut writer = stream.try_clone()?;
    let payload = body.unwrap_or("");
    write!(
        writer,
        "{method} {path} HTTP/1.1\r\nHost: recon\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{payload}",
        payload.len()
    )?;
    writer.flush()?;
    read_response(&mut BufReader::new(stream))
}

/// Submits a job (`POST /jobs`) from its JSON text.
///
/// # Errors
///
/// As [`request`].
pub fn submit_job(addr: SocketAddr, json: &str) -> io::Result<Response> {
    request(addr, "POST", "/jobs", Some(json))
}

/// As [`request`], but with an arbitrary binary body and explicit
/// content type — used to ship raw RCK1 checkpoint bytes to a node's
/// `POST /migrate` endpoint, where UTF-8 framing would corrupt the
/// payload.
///
/// # Errors
///
/// As [`request`].
pub fn request_bytes(
    addr: SocketAddr,
    method: &str,
    path: &str,
    content_type: &str,
    body: &[u8],
) -> io::Result<Response> {
    let stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(60)))?;
    stream.set_write_timeout(Some(Duration::from_secs(60)))?;
    let mut writer = stream.try_clone()?;
    write!(
        writer,
        "{method} {path} HTTP/1.1\r\nHost: recon\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )?;
    writer.write_all(body)?;
    writer.flush()?;
    read_response(&mut BufReader::new(stream))
}

/// A keep-alive connection that reconnects on failure.
///
/// The connection is established lazily, reused across requests, and
/// dropped on any transport or framing error so the next request dials
/// fresh — the caller never has to manage connection state.
#[derive(Debug)]
pub struct Connection {
    addr: SocketAddr,
    stream: Option<BufReader<TcpStream>>,
    timeout: Duration,
    connects: u64,
}

impl Connection {
    /// Creates a (not-yet-dialed) connection to `addr`.
    #[must_use]
    pub fn new(addr: SocketAddr) -> Self {
        Connection::with_timeout(addr, Duration::from_secs(60))
    }

    /// As [`new`](Self::new), with an explicit per-I/O timeout.
    #[must_use]
    pub fn with_timeout(addr: SocketAddr, timeout: Duration) -> Self {
        Connection {
            addr,
            stream: None,
            timeout,
            connects: 0,
        }
    }

    /// TCP connections dialed so far (1 for a healthy session; each
    /// reconnect after a failure adds 1).
    #[must_use]
    pub fn connects(&self) -> u64 {
        self.connects
    }

    fn ensure(&mut self) -> io::Result<&mut BufReader<TcpStream>> {
        if self.stream.is_none() {
            let stream = TcpStream::connect(self.addr)?;
            stream.set_read_timeout(Some(self.timeout))?;
            stream.set_write_timeout(Some(self.timeout))?;
            stream.set_nodelay(true)?;
            self.connects += 1;
            self.stream = Some(BufReader::new(stream));
        }
        Ok(self.stream.as_mut().expect("just ensured"))
    }

    /// Sends one request over the persistent connection and reads the
    /// response. On any error the cached connection is dropped, so the
    /// next call reconnects from scratch.
    ///
    /// # Errors
    ///
    /// Connection/stream I/O errors, or `InvalidData` for malformed
    /// response framing (e.g. the server's bytes were corrupted in
    /// flight).
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> io::Result<Response> {
        let result = self.request_inner(method, path, body);
        if result.is_err() {
            self.stream = None;
        }
        result
    }

    fn request_inner(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> io::Result<Response> {
        let reader = self.ensure()?;
        let payload = body.unwrap_or("");
        {
            let stream = reader.get_mut();
            write!(
                stream,
                "{method} {path} HTTP/1.1\r\nHost: recon\r\nContent-Length: {}\r\nConnection: keep-alive\r\n\r\n{payload}",
                payload.len()
            )?;
            stream.flush()?;
        }
        let response = read_response(reader)?;
        if response
            .header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
        {
            self.stream = None;
        }
        Ok(response)
    }
}

/// Bounded-retry parameters: exponential backoff with deterministic
/// jitter, honoring `Retry-After` (capped so second-granularity server
/// hints don't stall millisecond-scale harnesses).
#[derive(Clone, Debug)]
pub struct RetryPolicy {
    /// Total attempts before giving up (minimum 1).
    pub max_attempts: u32,
    /// Backoff before retry `n` starts at `base_delay << n`.
    pub base_delay: Duration,
    /// Upper bound on any single backoff sleep.
    pub max_delay: Duration,
    /// Upper bound applied to server `Retry-After` hints.
    pub retry_after_cap: Duration,
    /// Seed for the deterministic jitter stream.
    pub seed: u64,
    /// Fail immediately on `ConnectionRefused` instead of retrying.
    ///
    /// Refused means "nothing is listening" — the node is down, not
    /// busy — and retrying against a dead socket only delays whoever
    /// could reroute the job to a live node. Set to `false` for
    /// single-server harnesses that want to ride out a restart.
    pub fail_fast_refused: bool,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 8,
            base_delay: Duration::from_millis(5),
            max_delay: Duration::from_millis(500),
            retry_after_cap: Duration::from_millis(500),
            seed: 0,
            fail_fast_refused: true,
        }
    }
}

impl RetryPolicy {
    /// The backoff before retry attempt `attempt` (0-based: the sleep
    /// after the first failure is `backoff(0, ..)`) for request `key`.
    ///
    /// Deterministic: a fixed `(seed, key, attempt)` always yields the
    /// same duration. The jitter is drawn uniformly from the upper half
    /// of the exponential window (`[cap/2, cap]`), the standard
    /// "equal jitter" scheme — enough spread to break retry herds,
    /// never so little backoff that the server is hammered.
    #[must_use]
    pub fn backoff(&self, attempt: u32, key: u64) -> Duration {
        let shift = attempt.min(20);
        let cap = self
            .base_delay
            .saturating_mul(1u32 << shift.min(31))
            .min(self.max_delay);
        let cap_micros = u64::try_from(cap.as_micros()).unwrap_or(u64::MAX);
        let half = cap_micros / 2;
        let mut rng = SplitMix64::new(
            self.seed
                ^ key.rotate_left(23)
                ^ u64::from(attempt).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        let jitter = if half == 0 {
            0
        } else {
            rng.next_u64() % (half + 1)
        };
        Duration::from_micros(half + jitter)
    }

    /// The sleep to apply for a `Retry-After: <seconds>` hint.
    #[must_use]
    pub fn retry_after(&self, header: &str) -> Duration {
        let hinted = header
            .trim()
            .parse::<u64>()
            .map_or(self.retry_after_cap, Duration::from_secs);
        hinted.min(self.retry_after_cap)
    }
}

/// The outcome of a retried submission.
#[derive(Clone, Debug)]
pub struct Retried {
    /// The final response. Usually non-retriable; when every attempt
    /// drew backpressure this is the last `429`/`503` (with its
    /// `Retry-After` hint intact) so the caller can relay it instead of
    /// inventing an error — the node was *busy*, not down.
    pub response: Response,
    /// Attempts consumed, including the successful one.
    pub attempts: u32,
}

/// Submits a job over `conn`, retrying transport faults (connection
/// drops, truncated or garbage responses) and backpressure (`429`,
/// `503`) with the policy's backoff schedule. `key` should be a stable
/// identifier for the job (the spec digest) so jitter is deterministic
/// per job; `sleep` is injectable so tests can capture the schedule
/// instead of waiting it out.
///
/// "Node down" and "node busy" are kept distinct: `ConnectionRefused`
/// returns immediately when [`RetryPolicy::fail_fast_refused`] is set
/// (so a gateway can reroute instead of burning backoff against a dead
/// socket), while exhausted backpressure returns the final `429`/`503`
/// response as `Ok` — a busy node answered, and its `Retry-After` hint
/// belongs to the caller.
///
/// # Errors
///
/// `ConnectionRefused` immediately under fail-fast, otherwise the last
/// transport error once `max_attempts` is exhausted.
pub fn submit_with_retry(
    conn: &mut Connection,
    json: &str,
    key: u64,
    policy: &RetryPolicy,
    sleep: &mut dyn FnMut(Duration),
) -> io::Result<Retried> {
    let max_attempts = policy.max_attempts.max(1);
    let mut last_err: Option<io::Error> = None;
    for attempt in 0..max_attempts {
        match conn.request("POST", "/jobs", Some(json)) {
            Ok(response) if response.status == 429 || response.status == 503 => {
                if attempt + 1 < max_attempts {
                    let delay = response
                        .header("retry-after")
                        .map_or_else(|| policy.backoff(attempt, key), |h| policy.retry_after(h));
                    sleep(delay);
                } else {
                    return Ok(Retried {
                        response,
                        attempts: attempt + 1,
                    });
                }
            }
            Ok(response) => {
                return Ok(Retried {
                    response,
                    attempts: attempt + 1,
                })
            }
            Err(e) if policy.fail_fast_refused && e.kind() == io::ErrorKind::ConnectionRefused => {
                return Err(e);
            }
            Err(e) => {
                last_err = Some(e);
                if attempt + 1 < max_attempts {
                    sleep(policy.backoff(attempt, key));
                }
            }
        }
    }
    Err(last_err.unwrap_or_else(|| io::Error::other("no attempts made")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_schedule_is_deterministic() {
        let policy = RetryPolicy {
            seed: 42,
            ..RetryPolicy::default()
        };
        let a: Vec<Duration> = (0..6).map(|n| policy.backoff(n, 7)).collect();
        let b: Vec<Duration> = (0..6).map(|n| policy.backoff(n, 7)).collect();
        assert_eq!(a, b, "same (seed, key, attempt) ⇒ same schedule");
        let c: Vec<Duration> = (0..6).map(|n| policy.backoff(n, 8)).collect();
        assert_ne!(a, c, "different keys jitter differently");
    }

    #[test]
    fn backoff_grows_exponentially_then_caps() {
        let policy = RetryPolicy {
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(100),
            seed: 1,
            ..RetryPolicy::default()
        };
        for n in 0..10 {
            let d = policy.backoff(n, 0);
            let cap = Duration::from_millis(10)
                .saturating_mul(1 << n.min(31))
                .min(Duration::from_millis(100));
            assert!(
                d >= cap / 2 && d <= cap,
                "attempt {n}: {d:?} not in [{:?}, {cap:?}]",
                cap / 2
            );
        }
        // Past the cap the window stops growing.
        assert!(policy.backoff(30, 0) <= Duration::from_millis(100));
    }

    #[test]
    fn retry_after_is_honored_but_capped() {
        let policy = RetryPolicy {
            retry_after_cap: Duration::from_millis(50),
            ..RetryPolicy::default()
        };
        assert_eq!(policy.retry_after("0"), Duration::from_secs(0));
        assert_eq!(policy.retry_after("1"), Duration::from_millis(50));
        assert_eq!(policy.retry_after("garbage"), Duration::from_millis(50));
    }

    #[test]
    fn retries_follow_the_backoff_schedule_with_injected_clock() {
        // A server that always answers 429 without Retry-After: the
        // client must sleep exactly the deterministic backoff schedule.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            // One persistent connection, three 429s.
            let (stream, _) = listener.accept().unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            for _ in 0..3 {
                let req = crate::http::read_request(&mut reader).unwrap().unwrap();
                assert_eq!(req.method, "POST");
                let mut w = &stream;
                w.write_all(&crate::http::render_response(
                    429,
                    &[],
                    "application/json",
                    b"{\"error\":\"queue full\"}",
                    false,
                ))
                .unwrap();
                w.flush().unwrap();
            }
        });

        let policy = RetryPolicy {
            max_attempts: 3,
            seed: 99,
            ..RetryPolicy::default()
        };
        let mut conn = Connection::new(addr);
        let mut slept: Vec<Duration> = Vec::new();
        let out = submit_with_retry(&mut conn, "{\"kind\":\"run\"}", 1234, &policy, &mut |d| {
            slept.push(d)
        })
        .unwrap();
        // Exhausted backpressure hands back the final 429 — the node
        // was busy, not down.
        assert_eq!(out.response.status, 429);
        assert_eq!(out.attempts, 3);
        server.join().unwrap();

        // Two sleeps (no sleep after the final attempt), matching the
        // policy's schedule exactly.
        assert_eq!(
            slept,
            vec![policy.backoff(0, 1234), policy.backoff(1, 1234)]
        );
        // All three exchanges rode one keep-alive connection.
        assert_eq!(conn.connects(), 1);
    }

    #[test]
    fn connection_refused_fails_fast_by_default() {
        // Bind then immediately drop a listener: the port is known-dead,
        // so connects are refused rather than timing out.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        drop(listener);

        let mut conn = Connection::new(addr);
        let mut slept: Vec<Duration> = Vec::new();
        let err = submit_with_retry(&mut conn, "{}", 7, &RetryPolicy::default(), &mut |d| {
            slept.push(d)
        })
        .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::ConnectionRefused);
        assert!(
            slept.is_empty(),
            "a dead node must not consume backoff: {slept:?}"
        );
    }

    #[test]
    fn connection_refused_is_retried_when_fail_fast_is_off() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        drop(listener);

        let policy = RetryPolicy {
            max_attempts: 3,
            fail_fast_refused: false,
            ..RetryPolicy::default()
        };
        let mut conn = Connection::new(addr);
        let mut slept: Vec<Duration> = Vec::new();
        let err =
            submit_with_retry(&mut conn, "{}", 7, &policy, &mut |d| slept.push(d)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::ConnectionRefused);
        assert_eq!(slept.len(), 2, "legacy behavior: backoff between attempts");
    }

    #[test]
    fn connection_reconnects_after_server_drop() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            // First connection: read the request, then slam the door.
            let (stream, _) = listener.accept().unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let _ = crate::http::read_request(&mut reader);
            drop(stream);
            // Second connection: answer properly.
            let (stream, _) = listener.accept().unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let _ = crate::http::read_request(&mut reader).unwrap().unwrap();
            let mut w = &stream;
            w.write_all(&crate::http::render_response(
                200,
                &[],
                "application/json",
                b"{\"ok\":true}",
                false,
            ))
            .unwrap();
        });

        let mut conn = Connection::new(addr);
        let policy = RetryPolicy {
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(2),
            ..RetryPolicy::default()
        };
        let out = submit_with_retry(&mut conn, "{}", 0, &policy, &mut |_| {}).unwrap();
        assert_eq!(out.response.status, 200);
        assert_eq!(out.attempts, 2, "one failed attempt, one success");
        assert_eq!(conn.connects(), 2, "reconnected after the drop");
        server.join().unwrap();
    }
}

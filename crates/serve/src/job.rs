//! Service workloads: parsing, content-addressing, and execution.
//!
//! Every entry point the CLI exposes one-shot — `run`, `matrix`,
//! `analyze`, and `verify` cells — is available as a *job*: a validated
//! [`JobSpec`] parsed from a JSON submission, identified by the FxHash
//! digest of its canonical form (the result-cache key), and executed
//! under a [`Budget`] so deadlines and cancellation reach all the way
//! into the core's commit loop.
//!
//! Execution is a pure function of the spec: [`execute`] renders a
//! deterministic JSON payload, so the served bytes are identical to a
//! direct in-process run of the same job — the property the loopback
//! bench asserts response-by-response.

use std::hash::Hasher;
use std::path::PathBuf;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;

use recon_isa::hash::FxHasher;
use recon_mem::MemConfig;
use recon_secure::SecureConfig;
use recon_sim::ckpt::{self, CkptContext, CkptRunInfo};
use recon_sim::{Budget, DeadlineReason, Experiment, SimError, System, SystemResult};
use recon_workloads::{find, Benchmark, Scale, Suite};

use crate::json::{escape, Json};

/// How a job execution should checkpoint.
///
/// With `dir: Some(..)`, `run` jobs persist crash-safe checkpoints
/// there (resumable after a server kill). With `dir: None` the run
/// still *drains and snapshots* at the cadence — same timing, no disk —
/// which is how an expected-payload computation stays byte-identical to
/// a persisted execution of the same spec.
#[derive(Clone, Debug)]
pub struct CkptPlan {
    /// Checkpoint directory; `None` for cadence-only (no persistence).
    pub dir: Option<PathBuf>,
    /// Checkpoint cadence in simulated cycles.
    pub cadence: u64,
    /// Checkpoints retained per job digest while it runs.
    pub keep: usize,
}

/// The workload kinds the service accepts.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum JobKind {
    /// One benchmark under one scheme (the `recon run` path).
    Run,
    /// One benchmark under all five scheme configurations.
    Matrix,
    /// Clueless-style leakage analysis (the `recon analyze` path).
    Analyze,
    /// One two-trace verifier matrix cell (the `recon verify` path).
    Verify,
    /// Assemble submitted `recon-asm` source text and run it under one
    /// scheme (the `recon asm --run` path).
    Asm,
}

impl JobKind {
    /// All kinds, in metric/label order.
    pub const ALL: [JobKind; 5] = [
        JobKind::Run,
        JobKind::Matrix,
        JobKind::Analyze,
        JobKind::Verify,
        JobKind::Asm,
    ];

    /// Stable label (metric dimension and JSON `kind` value).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            JobKind::Run => "run",
            JobKind::Matrix => "matrix",
            JobKind::Analyze => "analyze",
            JobKind::Verify => "verify",
            JobKind::Asm => "asm",
        }
    }

    /// Index into per-kind metric arrays.
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            JobKind::Run => 0,
            JobKind::Matrix => 1,
            JobKind::Analyze => 2,
            JobKind::Verify => 3,
            JobKind::Asm => 4,
        }
    }

    fn from_str(s: &str) -> Option<Self> {
        match s {
            "run" => Some(JobKind::Run),
            "matrix" => Some(JobKind::Matrix),
            "analyze" => Some(JobKind::Analyze),
            "verify" => Some(JobKind::Verify),
            "asm" => Some(JobKind::Asm),
            _ => None,
        }
    }
}

/// A validated job submission.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct JobSpec {
    /// What to execute.
    pub kind: JobKind,
    /// Suite name (`run`/`matrix`/`analyze`), lowercased.
    pub suite: Option<String>,
    /// Benchmark name (`run`/`matrix`/`analyze`).
    pub bench: Option<String>,
    /// Scheme (`run`/`verify`).
    pub scheme: Option<SecureConfig>,
    /// Gadget name (`verify`).
    pub gadget: Option<String>,
    /// Per-core committed-instruction deadline (`run`/`matrix`).
    pub fuel: Option<u64>,
    /// Cycle deadline override (`run`/`matrix`).
    pub max_cycles: Option<u64>,
    /// Liveness-watchdog window override in cycles (`run`/`matrix`/
    /// `verify`/`asm`); unset keeps the simulator's default window.
    pub watchdog_cycles: Option<u64>,
    /// Functional warmup: fast-forward this many instructions per core
    /// before detailed timing (`run`/`matrix`/`verify`). Changes every
    /// result, so it is folded into the content-addressed digest.
    pub fast_forward: Option<u64>,
    /// Invariant-auditor sweep cadence in cycles (`run`/`matrix`/
    /// `verify`/`asm`); unset leaves the auditor off. A violation maps
    /// to HTTP 500 with the forensic report in the payload.
    pub audit_every_cycles: Option<u64>,
    /// Enable pipeline tracing for the run (`run` only) — exercises the
    /// trace ring and reports its drop count.
    pub trace: bool,
    /// Assembly source text (`asm` only), case-preserved. The canonical
    /// form folds in its FxHash rather than the full text, so the digest
    /// stays short while still keying on every byte of the program.
    pub source: Option<String>,
}

/// Why a job could not produce a result.
#[derive(Clone, Debug)]
pub enum JobError {
    /// The submission was malformed or named unknown entities (HTTP 400).
    Invalid(String),
    /// A deadline fired mid-simulation (HTTP 408). The payload is a
    /// complete JSON object carrying the partial statistics.
    DeadlineExceeded {
        /// Which budget fired.
        reason: DeadlineReason,
        /// JSON object with the partial stats, ready to serve.
        payload: String,
        /// File name of the newest checkpoint the run left behind (a
        /// resumable ref, served as the `X-Recon-Checkpoint` header —
        /// kept out of the body so deadline payloads stay byte-stable
        /// across retries that resume from different checkpoints).
        checkpoint: Option<String>,
    },
    /// The liveness watchdog declared the simulation deadlocked
    /// (HTTP 500). The payload carries the full forensic stall report
    /// alongside the partial statistics.
    Stalled {
        /// JSON object with the diagnostic, ready to serve.
        payload: String,
    },
    /// An invariant-audit sweep found the simulator state inconsistent
    /// (HTTP 500). The payload carries the violated-invariant report
    /// alongside the partial statistics.
    AuditViolated {
        /// JSON object with the diagnostic, ready to serve.
        payload: String,
    },
    /// The job was cancelled by an aborting shutdown (HTTP 503).
    Cancelled,
    /// The job panicked or hit an internal error (HTTP 500).
    Failed(String),
}

/// A successful job execution.
#[derive(Clone, Debug)]
pub struct JobOutput {
    /// The deterministic JSON payload to serve (and cache).
    pub payload: String,
    /// Pipeline-trace events the run's ring buffers dropped (0 unless
    /// the spec enabled tracing) — exported via `/metrics`.
    pub trace_dropped: u64,
    /// Instructions the job simulated (committed for timing runs,
    /// functional steps for analysis) — feeds the server-wide MIPS
    /// gauge on `/metrics`.
    pub instructions: u64,
}

/// Suite names accepted over the wire, in display order.
pub const SUITE_NAMES: [&str; 4] = ["spec2017", "spec2006", "parsec", "corpus"];

fn parse_suite(name: &str) -> Option<Suite> {
    match name {
        "spec2017" => Some(Suite::Spec2017),
        "spec2006" => Some(Suite::Spec2006),
        "parsec" => Some(Suite::Parsec),
        "corpus" => Some(Suite::Corpus),
        _ => None,
    }
}

/// ` — did you mean '..'?` when `input` is a near-miss of a candidate.
fn hint(input: &str, candidates: impl IntoIterator<Item = &'static str>) -> String {
    recon_asm::suggest(input, candidates)
        .map_or_else(String::new, |s| format!(" — did you mean '{s}'?"))
}

/// The keys a submission may carry, for the unknown-key check.
const KNOWN_KEYS: [&str; 12] = [
    "kind",
    "suite",
    "bench",
    "scheme",
    "gadget",
    "fuel",
    "max_cycles",
    "watchdog_cycles",
    "fast_forward",
    "audit_every_cycles",
    "trace",
    "source",
];

impl JobSpec {
    /// Validates a parsed JSON submission into a spec.
    ///
    /// # Errors
    ///
    /// A human-readable message naming the offending field and the
    /// accepted values — unknown suites/benchmarks/schemes/gadgets and
    /// unknown keys are rejected here, before anything is enqueued.
    pub fn from_json(v: &Json) -> Result<JobSpec, String> {
        let Json::Obj(_) = v else {
            return Err("job submission must be a JSON object".into());
        };
        for key in v.keys() {
            if !KNOWN_KEYS.contains(&key) {
                return Err(format!(
                    "unknown field '{key}' (accepted: {})",
                    KNOWN_KEYS.join(", ")
                ));
            }
        }
        let kind_str = v
            .get("kind")
            .and_then(Json::as_str)
            .ok_or("missing 'kind' (run|matrix|analyze|verify|asm)")?;
        let kind = JobKind::from_str(kind_str)
            .ok_or_else(|| format!("unknown kind '{kind_str}' (run|matrix|analyze|verify|asm)"))?;

        let str_field = |name: &str| -> Result<Option<String>, String> {
            match v.get(name) {
                None | Some(Json::Null) => Ok(None),
                Some(Json::Str(s)) => Ok(Some(s.to_ascii_lowercase())),
                Some(_) => Err(format!("'{name}' must be a string")),
            }
        };
        let num_field = |name: &str| -> Result<Option<u64>, String> {
            match v.get(name) {
                None | Some(Json::Null) => Ok(None),
                Some(n) => n
                    .as_u64()
                    .filter(|&x| x >= 1)
                    .map(Some)
                    .ok_or_else(|| format!("'{name}' must be a positive integer")),
            }
        };

        let suite = str_field("suite")?;
        let bench = str_field("bench")?;
        let gadget = str_field("gadget")?;
        let scheme = match v.get("scheme") {
            None | Some(Json::Null) => None,
            Some(s) => {
                let name = s.as_str().ok_or("'scheme' must be a string")?;
                Some(SecureConfig::parse(name).ok_or_else(|| {
                    format!("unknown scheme '{name}' ({})", SecureConfig::PARSE_NAMES)
                })?)
            }
        };
        let fuel = num_field("fuel")?;
        let max_cycles = num_field("max_cycles")?;
        let watchdog_cycles = num_field("watchdog_cycles")?;
        let fast_forward = num_field("fast_forward")?;
        let audit_every_cycles = num_field("audit_every_cycles")?;
        let trace = match v.get("trace") {
            None | Some(Json::Null) => false,
            Some(b) => b.as_bool().ok_or("'trace' must be a boolean")?,
        };
        // Unlike suite/bench names, assembly source is case-sensitive.
        let source = match v.get("source") {
            None | Some(Json::Null) => None,
            Some(Json::Str(s)) => Some(s.clone()),
            Some(_) => return Err("'source' must be a string".into()),
        };

        let spec = JobSpec {
            kind,
            suite,
            bench,
            scheme,
            gadget,
            fuel,
            max_cycles,
            watchdog_cycles,
            fast_forward,
            audit_every_cycles,
            trace,
            source,
        };
        spec.validate()?;
        Ok(spec)
    }

    fn validate(&self) -> Result<(), String> {
        let needs_bench = matches!(self.kind, JobKind::Run | JobKind::Matrix | JobKind::Analyze);
        if needs_bench {
            let suite_name = self
                .suite
                .as_deref()
                .ok_or_else(|| format!("missing 'suite' ({})", SUITE_NAMES.join("|")))?;
            let suite = parse_suite(suite_name).ok_or_else(|| {
                format!(
                    "unknown suite '{suite_name}' ({}){}",
                    SUITE_NAMES.join("|"),
                    hint(suite_name, SUITE_NAMES)
                )
            })?;
            let bench = self.bench.as_deref().ok_or("missing 'bench'")?;
            if !suite_names(suite).contains(&bench) {
                return Err(format!(
                    "no benchmark '{bench}' in {suite}{}",
                    hint(bench, suite_names(suite).iter().copied())
                ));
            }
            if self.gadget.is_some() {
                return Err(format!(
                    "'gadget' is not accepted for kind '{}'",
                    self.kind.label()
                ));
            }
            if self.source.is_some() {
                return Err("'source' is only accepted for kind 'asm'".into());
            }
        }
        match self.kind {
            JobKind::Run => {
                if self.scheme.is_none() {
                    return Err(format!("missing 'scheme' ({})", SecureConfig::PARSE_NAMES));
                }
            }
            JobKind::Matrix => {
                if self.scheme.is_some() {
                    return Err(
                        "'scheme' is not accepted for kind 'matrix' (it runs all five)".into(),
                    );
                }
                if self.trace {
                    return Err("'trace' is only accepted for kind 'run'".into());
                }
            }
            JobKind::Analyze => {
                if self.scheme.is_some()
                    || self.max_cycles.is_some()
                    || self.watchdog_cycles.is_some()
                    || self.fast_forward.is_some()
                    || self.audit_every_cycles.is_some()
                    || self.trace
                {
                    return Err(
                        "'analyze' accepts 'suite', 'bench', and 'fuel' (it is scheme-independent and already functional, so 'max_cycles'/'watchdog_cycles'/'fast_forward'/'audit_every_cycles'/'trace' do not apply)"
                            .into(),
                    );
                }
            }
            JobKind::Verify => {
                let gadget = self
                    .gadget
                    .as_deref()
                    .ok_or_else(|| format!("missing 'gadget' ({})", gadget_names().join("|")))?;
                if recon_verify::gadget::find(gadget).is_none() {
                    return Err(format!(
                        "unknown gadget '{gadget}' ({})",
                        gadget_names().join("|")
                    ));
                }
                if self.scheme.is_none() {
                    return Err(format!("missing 'scheme' ({})", SecureConfig::PARSE_NAMES));
                }
                if self.suite.is_some() || self.bench.is_some() || self.source.is_some() {
                    return Err(
                        "'verify' accepts 'gadget' and 'scheme', not 'suite'/'bench'/'source'"
                            .into(),
                    );
                }
                if self.fast_forward.is_some() {
                    return Err(
                        "'fast_forward' is not accepted for kind 'verify' (functional \
                         warmup would skip the gadget prefix the two-trace check \
                         exists to observe)"
                            .into(),
                    );
                }
                if self.trace {
                    return Err("'trace' is only accepted for kind 'run'".into());
                }
            }
            JobKind::Asm => {
                let src = self
                    .source
                    .as_deref()
                    .ok_or("missing 'source' (assembly text)")?;
                // Reject unassemblable programs at admission, with the
                // assembler's line:column diagnostic, before anything
                // is enqueued.
                recon_asm::assemble(src).map_err(|e| format!("source does not assemble: {e}"))?;
                if self.scheme.is_none() {
                    return Err(format!("missing 'scheme' ({})", SecureConfig::PARSE_NAMES));
                }
                if self.suite.is_some() || self.bench.is_some() || self.gadget.is_some() {
                    return Err(
                        "'asm' accepts 'source' and 'scheme', not 'suite'/'bench'/'gadget'".into(),
                    );
                }
                if self.trace {
                    return Err("'trace' is only accepted for kind 'run'".into());
                }
            }
        }
        Ok(())
    }

    /// The canonical form the digest is computed over. Includes the
    /// workload scale so results cached under one `RECON_SCALE` are
    /// never served under another. Assembly source is folded in as its
    /// FxHash (`src=`), keeping the canonical string short while keying
    /// on every byte of the program text.
    #[must_use]
    pub fn canonical(&self) -> String {
        let opt = |o: &Option<String>| o.clone().unwrap_or_else(|| "-".into());
        let num = |o: &Option<u64>| o.map_or_else(|| "-".into(), |n| n.to_string());
        let scale = match Scale::from_env() {
            Scale::Quick => "quick",
            Scale::Paper => "paper",
        };
        let src = self.source.as_deref().map_or_else(
            || "-".into(),
            |s| {
                let mut h = FxHasher::default();
                h.write(s.as_bytes());
                format!("{:#018x}", h.finish())
            },
        );
        let mut s = format!(
            "v4|{}|suite={}|bench={}|scheme={}|gadget={}|fuel={}|max_cycles={}|wd={}|ff={}|trace={}|src={src}|scale={scale}",
            self.kind.label(),
            opt(&self.suite),
            opt(&self.bench),
            self.scheme.map_or_else(|| "-".into(), |s| s.label()),
            opt(&self.gadget),
            num(&self.fuel),
            num(&self.max_cycles),
            num(&self.watchdog_cycles),
            num(&self.fast_forward),
            u8::from(self.trace),
        );
        // Appended only when set, so unaudited specs keep the digests
        // (and cached results) they had before the field existed. An
        // audit cadence can turn a completed run into a 500, so audited
        // and unaudited jobs must never share a cache key.
        if let Some(n) = self.audit_every_cycles {
            use std::fmt::Write as _;
            let _ = write!(s, "|audit={n}");
        }
        s
    }

    /// The content address of this job: the FxHash digest of its
    /// canonical form, keying the result cache.
    #[must_use]
    pub fn digest(&self) -> u64 {
        let mut h = FxHasher::default();
        h.write(self.canonical().as_bytes());
        h.finish()
    }

    /// Renders the spec back to a submission-shaped JSON object — what
    /// a checkpoint's meta stores so an orphaned job can be re-parsed
    /// (via [`JobSpec::from_json`]) and re-enqueued after a restart.
    #[must_use]
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut s = format!("{{\"kind\":\"{}\"", self.kind.label());
        for (key, v) in [
            ("suite", &self.suite),
            ("bench", &self.bench),
            ("gadget", &self.gadget),
        ] {
            if let Some(v) = v {
                let _ = write!(s, ",\"{key}\":\"{}\"", escape(v));
            }
        }
        if let Some(scheme) = self.scheme {
            let _ = write!(s, ",\"scheme\":\"{}\"", escape(&scheme.label()));
        }
        for (key, v) in [
            ("fuel", self.fuel),
            ("max_cycles", self.max_cycles),
            ("watchdog_cycles", self.watchdog_cycles),
            ("fast_forward", self.fast_forward),
            ("audit_every_cycles", self.audit_every_cycles),
        ] {
            if let Some(v) = v {
                let _ = write!(s, ",\"{key}\":{v}");
            }
        }
        if self.trace {
            s.push_str(",\"trace\":true");
        }
        if let Some(src) = &self.source {
            let _ = write!(s, ",\"source\":\"{}\"", escape(src));
        }
        s.push('}');
        s
    }
}

/// Valid gadget names, for error messages.
fn gadget_names() -> Vec<&'static str> {
    recon_verify::gadget::all_with_embedded()
        .iter()
        .map(|g| g.name)
        .collect()
}

/// The experiment parameters `recon run`/`recon suite` use for a suite
/// (multicore memory geometry for PARSEC).
#[must_use]
pub fn experiment_for(suite: Suite) -> Experiment {
    let mem = if suite == Suite::Parsec {
        MemConfig::scaled_multicore()
    } else {
        MemConfig::scaled()
    };
    Experiment {
        mem,
        ..Experiment::default()
    }
}

/// The benchmark names of one suite, generated once per process.
///
/// Validation only needs name *existence*; running the suite generators
/// (which build every benchmark's synthetic program) per parsed spec
/// would dominate small-job service time on both the node and the
/// gateway.
fn suite_names(suite: Suite) -> &'static [&'static str] {
    use std::sync::OnceLock;
    static NAMES: OnceLock<[Vec<&'static str>; 4]> = OnceLock::new();
    let all = NAMES.get_or_init(|| {
        [
            recon_workloads::spec2017(Scale::Quick),
            recon_workloads::spec2006(Scale::Quick),
            recon_workloads::parsec(Scale::Quick),
            recon_workloads::corpus(Scale::Quick),
        ]
        .map(|suite| suite.iter().map(|b| b.name).collect())
    });
    match suite {
        Suite::Spec2017 => &all[0],
        Suite::Spec2006 => &all[1],
        Suite::Parsec => &all[2],
        Suite::Corpus => &all[3],
    }
}

/// The `GET /workloads` payload: every suite's benchmarks with thread
/// counts and static instruction counts, generated once per process
/// (names and static sizes are scale-invariant).
#[must_use]
pub fn workloads_payload() -> &'static str {
    use std::fmt::Write as _;
    use std::sync::OnceLock;
    static BODY: OnceLock<String> = OnceLock::new();
    BODY.get_or_init(|| {
        let mut s = String::from("{\"suites\":[");
        for (i, (name, suite)) in SUITE_NAMES
            .iter()
            .filter_map(|&n| parse_suite(n).map(|s| (n, s)))
            .enumerate()
        {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "{{\"suite\":\"{name}\",\"benchmarks\":[");
            let benches = match suite {
                Suite::Spec2017 => recon_workloads::spec2017(Scale::Quick),
                Suite::Spec2006 => recon_workloads::spec2006(Scale::Quick),
                Suite::Parsec => recon_workloads::parsec(Scale::Quick),
                Suite::Corpus => recon_workloads::corpus(Scale::Quick),
            };
            for (j, b) in benches.iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                let _ = write!(
                    s,
                    "{{\"name\":\"{}\",\"threads\":{},\"static_instructions\":{}}}",
                    escape(b.name),
                    b.workload.num_threads(),
                    b.workload.program.code.len(),
                );
            }
            s.push_str("]}");
        }
        s.push_str("]}");
        s
    })
}

/// Resolves a validated spec's benchmark, memoized per process.
///
/// The suite generators build *every* benchmark's synthetic program
/// just to select one by name — tens of milliseconds, which dwarfs a
/// small job's actual simulation. Repeat lookups share one immutable
/// [`Benchmark`] behind an [`Arc`]. The scale factor is part of the
/// key, so a mid-process `RECON_SCALE` flip cannot serve stale
/// workloads.
fn lookup(spec: &JobSpec) -> (Suite, Arc<Benchmark>) {
    use std::collections::HashMap;
    use std::sync::{Mutex, OnceLock};
    type Memo = Mutex<HashMap<(Suite, String, u64), Arc<Benchmark>>>;
    static MEMO: OnceLock<Memo> = OnceLock::new();

    let suite = parse_suite(spec.suite.as_deref().expect("validated")).expect("validated");
    let name = spec.bench.as_deref().expect("validated");
    let scale = Scale::from_env();
    let memo = MEMO.get_or_init(|| Mutex::new(HashMap::new()));
    let key = (suite, name.to_string(), scale.factor());
    if let Some(bench) = memo
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .get(&key)
    {
        return (suite, Arc::clone(bench));
    }
    let bench = Arc::new(find(suite, name, scale).expect("validated"));
    memo.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .insert(key, Arc::clone(&bench));
    (suite, bench)
}

fn render_system_result(out: &mut String, r: &SystemResult) {
    use std::fmt::Write as _;
    let _ = write!(
        out,
        "\"completed\":{},\"cycles\":{},\"committed\":{},\"ipc\":{:.4},\"tainted_loads\":{},\"reveals_set\":{},\"revealed_loads\":{},\"l1_hit_rate\":{:.4},\"trace_dropped\":{}",
        r.completed,
        r.cycles,
        r.committed(),
        r.ipc(),
        r.guarded_loads(),
        r.mem.reveals_set,
        r.mem.revealed_loads,
        r.mem.l1_hit_rate(),
        r.trace_dropped(),
    );
}

fn deadline_error(spec: &JobSpec, e: SimError, checkpoint: Option<String>) -> JobError {
    match e {
        SimError::Cancelled { .. } => JobError::Cancelled,
        SimError::Stalled { partial, report } => {
            let mut body = format!(
                "{{\"error\":\"stalled\",\"kind\":\"{}\",\"summary\":\"{}\",\"report\":\"{}\",\"partial\":{{",
                spec.kind.label(),
                escape(&report.summary()),
                escape(&report.to_string()),
            );
            render_system_result(&mut body, &partial);
            body.push_str("}}");
            JobError::Stalled { payload: body }
        }
        SimError::InvariantViolated { partial, report } => {
            let mut body = format!(
                "{{\"error\":\"invariant_violated\",\"kind\":\"{}\",\"summary\":\"{}\",\"report\":\"{}\",\"partial\":{{",
                spec.kind.label(),
                escape(&report.summary()),
                escape(&report.to_string()),
            );
            render_system_result(&mut body, &partial);
            body.push_str("}}");
            JobError::AuditViolated { payload: body }
        }
        SimError::DeadlineExceeded { partial, reason } => {
            let mut body = format!(
                "{{\"error\":\"deadline_exceeded\",\"kind\":\"{}\",\"reason\":\"{reason}\",\"partial\":{{",
                spec.kind.label()
            );
            render_system_result(&mut body, &partial);
            body.push_str("}}");
            JobError::DeadlineExceeded {
                reason,
                payload: body,
                checkpoint,
            }
        }
    }
}

/// Executes a validated job to its deterministic JSON payload.
///
/// `cancel` is the server's abort flag, polled cooperatively inside the
/// simulation loop.
///
/// # Errors
///
/// [`JobError::DeadlineExceeded`] (with partial stats) when the spec's
/// fuel or cycle budget fires, [`JobError::Cancelled`] on abort,
/// [`JobError::Invalid`]/[`JobError::Failed`] for semantic errors that
/// only surface at execution time.
pub fn execute(spec: &JobSpec, cancel: Option<&Arc<AtomicBool>>) -> Result<JobOutput, JobError> {
    execute_ckpt(spec, cancel, None).0
}

/// [`execute`] under a checkpoint plan. Only `run` jobs checkpoint (the
/// long-simulation kind); the other kinds ignore the plan. Returns the
/// persistence activity alongside the result so the server can export
/// it via `/metrics`.
pub fn execute_ckpt(
    spec: &JobSpec,
    cancel: Option<&Arc<AtomicBool>>,
    plan: Option<&CkptPlan>,
) -> (Result<JobOutput, JobError>, Option<CkptRunInfo>) {
    let budget = Budget {
        fuel: spec.fuel,
        max_cycles: spec.max_cycles,
        cancel: cancel.map(Arc::clone),
        checkpoint_every_cycles: None,
        fast_forward: spec.fast_forward,
        watchdog_cycles: spec.watchdog_cycles,
        audit_every_cycles: spec.audit_every_cycles,
    };
    match spec.kind {
        JobKind::Run => execute_run(spec, &budget, plan),
        JobKind::Matrix => (execute_matrix(spec, &budget), None),
        JobKind::Analyze => (execute_analyze(spec), None),
        JobKind::Verify => (execute_verify(spec, &budget), None),
        JobKind::Asm => (execute_asm(spec, &budget), None),
    }
}

fn run_payload(spec: &JobSpec, bench: &str, scheme: SecureConfig, r: &SystemResult) -> JobOutput {
    let mut payload = format!(
        "{{\"kind\":\"run\",\"suite\":\"{}\",\"bench\":\"{}\",\"scheme\":\"{}\",",
        escape(spec.suite.as_deref().expect("validated")),
        escape(bench),
        escape(&scheme.label()),
    );
    render_system_result(&mut payload, r);
    payload.push('}');
    JobOutput {
        payload,
        trace_dropped: r.trace_dropped(),
        instructions: r.committed(),
    }
}

fn execute_run(
    spec: &JobSpec,
    budget: &Budget,
    plan: Option<&CkptPlan>,
) -> (Result<JobOutput, JobError>, Option<CkptRunInfo>) {
    let (suite, b) = lookup(spec);
    let scheme = spec.scheme.expect("validated");
    let exp = experiment_for(suite);

    // Persisted path: crash-safe checkpoints under the plan's dir,
    // resumable across server restarts. Trace-enabled jobs fall through
    // to the cadence-only path (the trace ring hook predates the run).
    if let Some(plan) = plan {
        if let Some(dir) = plan.dir.as_ref().filter(|_| !spec.trace) {
            let ctx = CkptContext {
                dir: dir.clone(),
                cadence: plan.cadence,
                keep: plan.keep,
            };
            let meta = vec![
                ("kind".to_string(), "serve-job".to_string()),
                ("spec".to_string(), spec.to_json()),
            ];
            let (r, info) = ckpt::run_with_checkpoints(
                &exp,
                &b.workload,
                scheme,
                budget,
                &ctx,
                &meta,
                spec.digest(),
            );
            let out = match r {
                Ok(r) => Ok(run_payload(spec, b.name, scheme, &r)),
                Err(e) => {
                    // The resumable ref: the newest checkpoint of this
                    // job still on disk (written by this attempt or a
                    // previous one), so retries stay byte-stable.
                    let newest = ckpt::scan(&ctx.dir)
                        .ok()
                        .and_then(|s| s.latest_for(spec.digest()).map(|(_, c)| c.cycle))
                        .map(|cycle| ckpt::file_name(spec.digest(), cycle));
                    Err(deadline_error(spec, e, newest))
                }
            };
            return (out, Some(info));
        }
    }

    let mut sys = System::new(&b.workload, exp.core, exp.mem, scheme, exp.recon);
    if spec.trace {
        for core in sys.cores_mut() {
            core.record_trace(true);
        }
    }
    let r = match plan {
        // Cadence-only: identical drain timing to the persisted path,
        // no disk (expected-payload computations use this).
        Some(plan) => {
            let budget = Budget {
                checkpoint_every_cycles: Some(plan.cadence),
                ..budget.clone()
            };
            sys.run_budgeted_checkpointed(exp.max_cycles, &budget, |_, _| {})
        }
        None => sys.run_budgeted(exp.max_cycles, budget),
    };
    match r {
        Ok(r) => (Ok(run_payload(spec, b.name, scheme, &r)), None),
        Err(e) => (Err(deadline_error(spec, e, None)), None),
    }
}

fn execute_matrix(spec: &JobSpec, budget: &Budget) -> Result<JobOutput, JobError> {
    use std::fmt::Write as _;
    let (suite, b) = lookup(spec);
    let exp = experiment_for(suite);
    let schemes = [
        SecureConfig::unsafe_baseline(),
        SecureConfig::nda(),
        SecureConfig::nda_recon(),
        SecureConfig::stt(),
        SecureConfig::stt_recon(),
    ];
    let mut results = Vec::with_capacity(schemes.len());
    for s in schemes {
        results.push((
            s,
            exp.try_run(&b.workload, s, budget)
                .map_err(|e| deadline_error(spec, e, None))?,
        ));
    }
    let base_ipc = results[0].1.ipc();
    let mut payload = format!(
        "{{\"kind\":\"matrix\",\"suite\":\"{}\",\"bench\":\"{}\",\"schemes\":[",
        escape(spec.suite.as_deref().expect("validated")),
        escape(b.name),
    );
    for (i, (s, r)) in results.iter().enumerate() {
        if i > 0 {
            payload.push(',');
        }
        let norm = if base_ipc == 0.0 {
            0.0
        } else {
            r.ipc() / base_ipc
        };
        let _ = write!(
            payload,
            "{{\"scheme\":\"{}\",\"normalized_ipc\":{norm:.4},",
            escape(&s.label())
        );
        render_system_result(&mut payload, r);
        payload.push('}');
    }
    payload.push_str("]}");
    let instructions = results.iter().map(|(_, r)| r.committed()).sum();
    Ok(JobOutput {
        payload,
        trace_dropped: 0,
        instructions,
    })
}

fn execute_analyze(spec: &JobSpec) -> Result<JobOutput, JobError> {
    let (_, b) = lookup(spec);
    if b.workload.num_threads() != 1 {
        return Err(JobError::Invalid(
            "leakage analysis runs on single-thread benchmarks".into(),
        ));
    }
    // The analyzer is functional, so the job's fuel budget maps directly
    // onto its committed-instruction cap.
    let default_cap = 200_000_000u64;
    let max_steps =
        usize::try_from(spec.fuel.unwrap_or(default_cap).min(default_cap)).unwrap_or(usize::MAX);
    let (r, halted) = recon_dift::analyze_program_budgeted(&b.workload.program, max_steps)
        .map_err(|e| JobError::Failed(format!("analysis failed: {e}")))?;
    if !halted {
        return Err(JobError::DeadlineExceeded {
            reason: DeadlineReason::Fuel,
            payload: format!(
                "{{\"error\":\"deadline_exceeded\",\"kind\":\"analyze\",\"reason\":\"fuel\",\"partial\":{{\"instructions\":{},\"touched_words\":{},\"dift_leaked\":{},\"pair_leaked\":{}}}}}",
                r.instructions, r.touched_words, r.dift_leaked, r.pair_leaked,
            ),
            checkpoint: None,
        });
    }
    Ok(JobOutput {
        payload: format!(
            "{{\"kind\":\"analyze\",\"suite\":\"{}\",\"bench\":\"{}\",\"instructions\":{},\"touched_words\":{},\"dift_leaked\":{},\"pair_leaked\":{},\"dift_fraction\":{:.4},\"pair_fraction\":{:.4},\"coverage\":{:.4}}}",
            escape(spec.suite.as_deref().expect("validated")),
            escape(b.name),
            r.instructions,
            r.touched_words,
            r.dift_leaked,
            r.pair_leaked,
            r.dift_fraction(),
            r.pair_fraction(),
            r.coverage(),
        ),
        trace_dropped: 0,
        instructions: r.instructions,
    })
}

fn execute_verify(spec: &JobSpec, budget: &Budget) -> Result<JobOutput, JobError> {
    let gadget = spec.gadget.as_deref().expect("validated");
    let scheme = spec.scheme.expect("validated");
    let cell = recon_verify::run_cell_named_budgeted(gadget, scheme, budget)
        .ok_or_else(|| JobError::Invalid(format!("unknown gadget '{gadget}'")))?
        .map_err(|e| deadline_error(spec, e, None))?;
    let r = &cell.result;
    Ok(JobOutput {
        payload: format!(
            "{{\"kind\":\"verify\",\"gadget\":\"{}\",\"scheme\":\"{}\",\"verdict\":\"{}\",\"expected\":\"{}\",\"as_expected\":{},\"seq_equal\":{},\"digest_a\":\"{:#018x}\",\"digest_b\":\"{:#018x}\",\"cycles\":{}}}",
            escape(r.gadget),
            escape(&scheme.label()),
            r.verdict,
            cell.expected,
            cell.as_expected(),
            r.seq_equal,
            r.digest_a,
            r.digest_b,
            r.result_a.cycles,
        ),
        trace_dropped: 0,
        instructions: r.result_a.committed(),
    })
}

fn execute_asm(spec: &JobSpec, budget: &Budget) -> Result<JobOutput, JobError> {
    let src = spec.source.as_deref().expect("validated");
    let scheme = spec.scheme.expect("validated");
    let p = recon_asm::assemble(src)
        .map_err(|e| JobError::Invalid(format!("source does not assemble: {e}")))?;
    let threads = p
        .entries
        .iter()
        .map(|e| recon_workloads::ThreadSpec {
            entry: e.entry,
            seeds: e.seeds.clone(),
        })
        .collect::<Vec<_>>();
    let workload = recon_workloads::Workload {
        program: p.program,
        threads,
    };
    let exp = if workload.num_threads() > 1 {
        experiment_for(Suite::Parsec)
    } else {
        experiment_for(Suite::Corpus)
    };
    let mut sys = System::new(&workload, exp.core, exp.mem, scheme, exp.recon);
    let r = sys
        .run_budgeted(exp.max_cycles, budget)
        .map_err(|e| deadline_error(spec, e, None))?;
    // Programs following the corpus self-check convention leave their
    // digest and status at the well-known addresses; report both so the
    // client can check correctness without a second (functional) run.
    let digest = sys.data().peek(recon_asm::corpus::DIGEST_ADDR);
    let status = sys.data().peek(recon_asm::corpus::STATUS_ADDR);
    let mut payload = format!(
        "{{\"kind\":\"asm\",\"scheme\":\"{}\",\"static_instructions\":{},\"self_check\":{{\"digest\":\"{:#018x}\",\"status\":\"{:#x}\",\"passed\":{}}},",
        escape(&scheme.label()),
        workload.program.code.len(),
        digest,
        status,
        status == recon_asm::corpus::STATUS_PASS,
    );
    render_system_result(&mut payload, &r);
    payload.push('}');
    Ok(JobOutput {
        payload,
        trace_dropped: 0,
        instructions: r.committed(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    fn spec(body: &str) -> Result<JobSpec, String> {
        JobSpec::from_json(&parse(body).expect("valid json"))
    }

    #[test]
    fn parses_a_run_job() {
        let s =
            spec(r#"{"kind":"run","suite":"spec2017","bench":"mcf","scheme":"stt","fuel":1000}"#)
                .unwrap();
        assert_eq!(s.kind, JobKind::Run);
        assert_eq!(s.fuel, Some(1000));
        assert_eq!(s.scheme, Some(SecureConfig::stt()));
    }

    #[test]
    fn rejects_bad_submissions_with_clear_messages() {
        assert!(spec(r#"{"suite":"spec2017"}"#)
            .unwrap_err()
            .contains("kind"));
        assert!(
            spec(r#"{"kind":"run","suite":"spec9","bench":"mcf","scheme":"stt"}"#)
                .unwrap_err()
                .contains("spec2017")
        );
        assert!(
            spec(r#"{"kind":"run","suite":"spec2017","bench":"nope","scheme":"stt"}"#)
                .unwrap_err()
                .contains("nope")
        );
        assert!(
            spec(r#"{"kind":"run","suite":"spec2017","bench":"mcf","scheme":"xyz"}"#)
                .unwrap_err()
                .contains("stt+recon")
        );
        assert!(spec(r#"{"kind":"verify","gadget":"nope","scheme":"stt"}"#)
            .unwrap_err()
            .contains("spectre"));
        assert!(
            spec(r#"{"kind":"verify","gadget":"spectre-v1@quicksort","scheme":"stt"}"#).is_ok(),
            "embedded gadget names are valid verify jobs"
        );
        assert!(
            spec(r#"{"kind":"run","suite":"spec2017","bench":"mcf","scheme":"stt","fule":1}"#)
                .unwrap_err()
                .contains("fule")
        );
        assert!(
            spec(r#"{"kind":"run","suite":"spec2017","bench":"mcf","scheme":"stt","fuel":0}"#)
                .unwrap_err()
                .contains("positive")
        );
    }

    #[test]
    fn watchdog_cycles_parses_round_trips_and_keys_the_digest() {
        let s = spec(
            r#"{"kind":"run","suite":"spec2017","bench":"mcf","scheme":"stt","watchdog_cycles":50000}"#,
        )
        .unwrap();
        assert_eq!(s.watchdog_cycles, Some(50_000));
        let back = spec(&s.to_json()).unwrap();
        assert_eq!(back, s);
        // The window decides whether a run errs as a stall, so it must
        // key the result cache.
        let plain =
            spec(r#"{"kind":"run","suite":"spec2017","bench":"mcf","scheme":"stt"}"#).unwrap();
        assert_ne!(s.digest(), plain.digest());
        // Analyze is functional: no pipeline, no watchdog.
        assert!(
            spec(r#"{"kind":"analyze","suite":"spec2017","bench":"mcf","watchdog_cycles":1}"#)
                .unwrap_err()
                .contains("watchdog_cycles")
        );
    }

    #[test]
    fn stalled_run_maps_to_a_500_payload_with_forensics() {
        let s = spec(r#"{"kind":"run","suite":"spec2017","bench":"mcf","scheme":"stt"}"#).unwrap();
        let partial = SystemResult {
            completed: false,
            cycles: 12_345,
            cores: vec![],
            mem: recon_mem::MemStats::default(),
        };
        let report = recon_sim::stall::StallReport {
            cycle: 12_345,
            window: 10_000,
            cores: vec![],
        };
        let err = deadline_error(
            &s,
            SimError::Stalled {
                partial: Box::new(partial),
                report: Box::new(report),
            },
            None,
        );
        let JobError::Stalled { payload } = err else {
            panic!("expected JobError::Stalled, got {err:?}");
        };
        let v = parse(&payload).expect("stall payload is JSON");
        assert_eq!(
            v.get("error").and_then(crate::json::Json::as_str),
            Some("stalled")
        );
        assert!(v
            .get("summary")
            .and_then(crate::json::Json::as_str)
            .is_some_and(|s| s.contains("liveness stall")));
        let partial = v.get("partial").expect("partial stats ride along");
        assert_eq!(
            partial.get("cycles").and_then(crate::json::Json::as_u64),
            Some(12_345)
        );
    }

    #[test]
    fn fast_forward_parses_round_trips_and_keys_the_digest() {
        let s = spec(
            r#"{"kind":"run","suite":"spec2017","bench":"mcf","scheme":"stt","fast_forward":5000}"#,
        )
        .unwrap();
        assert_eq!(s.fast_forward, Some(5000));
        // to_json → from_json round-trip preserves the warmup length.
        let back = spec(&s.to_json()).unwrap();
        assert_eq!(back, s);
        // The warmup changes results, so it must change the digest.
        let plain =
            spec(r#"{"kind":"run","suite":"spec2017","bench":"mcf","scheme":"stt"}"#).unwrap();
        assert_ne!(s.digest(), plain.digest());
        let other = spec(
            r#"{"kind":"run","suite":"spec2017","bench":"mcf","scheme":"stt","fast_forward":6000}"#,
        )
        .unwrap();
        assert_ne!(s.digest(), other.digest());
        // Analyze is already functional: a warmup length is meaningless.
        assert!(
            spec(r#"{"kind":"analyze","suite":"spec2017","bench":"mcf","fast_forward":100}"#)
                .unwrap_err()
                .contains("fast_forward")
        );
        // Verify cells must observe the whole gadget: warmup is rejected.
        assert!(spec(
            r#"{"kind":"verify","gadget":"spectre-v1","scheme":"stt","fast_forward":10}"#
        )
        .unwrap_err()
        .contains("fast_forward"));
        // Matrix jobs are benchmark-scale: warmup is accepted and keyed.
        let m = spec(r#"{"kind":"matrix","suite":"spec2017","bench":"mcf","fast_forward":5000}"#)
            .unwrap();
        let m_plain = spec(r#"{"kind":"matrix","suite":"spec2017","bench":"mcf"}"#).unwrap();
        assert_ne!(m.digest(), m_plain.digest());
    }

    #[test]
    fn audit_cadence_parses_round_trips_and_keys_the_digest() {
        let s = spec(
            r#"{"kind":"run","suite":"spec2017","bench":"mcf","scheme":"stt","audit_every_cycles":4096}"#,
        )
        .unwrap();
        assert_eq!(s.audit_every_cycles, Some(4096));
        let back = spec(&s.to_json()).unwrap();
        assert_eq!(back, s);
        // A cadence can turn a completed run into a 500, so it must key
        // the result cache.
        let plain =
            spec(r#"{"kind":"run","suite":"spec2017","bench":"mcf","scheme":"stt"}"#).unwrap();
        assert_ne!(s.digest(), plain.digest());
        // Analyze is functional: nothing to audit.
        assert!(spec(
            r#"{"kind":"analyze","suite":"spec2017","bench":"mcf","audit_every_cycles":64}"#
        )
        .unwrap_err()
        .contains("audit_every_cycles"));
        // An audited clean run completes normally (no false positives)
        // and serves the usual payload.
        let s = spec(
            r#"{"kind":"run","suite":"corpus","bench":"quicksort","scheme":"stt","audit_every_cycles":256}"#,
        )
        .unwrap();
        let out = execute(&s, None).unwrap();
        assert!(
            out.payload.contains("\"completed\":true"),
            "{}",
            out.payload
        );
    }

    #[test]
    fn asm_job_assembles_runs_and_self_checks() {
        let src = "
.entry main
main:
    li r1, 5
    li r2, 0
top:
    add r2, r2, r1
    subi r1, r1, 1
    bne r1, r0, top
    li r3, 0xfeed0
    st r2, [r3]
    li r4, 0x600d
    st r4, [r3+8]
    halt
";
        let body = format!(
            "{{\"kind\":\"asm\",\"scheme\":\"stt+recon\",\"source\":\"{}\"}}",
            escape(src)
        );
        let s = spec(&body).unwrap();
        assert_eq!(s.kind, JobKind::Asm);
        // to_json round-trips the source (checkpoint re-parse path).
        assert_eq!(spec(&s.to_json()).unwrap(), s);
        let out = execute(&s, None).unwrap();
        assert!(out.payload.contains("\"passed\":true"), "{}", out.payload);
        assert!(
            out.payload.contains("\"completed\":true"),
            "{}",
            out.payload
        );
        // Determinism: byte-identical on re-execution.
        assert_eq!(out.payload, execute(&s, None).unwrap().payload);
        // The digest keys on the source text.
        let other = spec(&body.replace("li r1, 5", "li r1, 6")).unwrap();
        assert_ne!(s.digest(), other.digest());
    }

    #[test]
    fn asm_job_rejects_bad_submissions() {
        assert!(spec(r#"{"kind":"asm","scheme":"stt"}"#)
            .unwrap_err()
            .contains("source"));
        // Unassemblable source is refused at admission with the
        // assembler's diagnostic.
        let e = spec(r#"{"kind":"asm","scheme":"stt","source":"    li r99, 1\n    halt\n"}"#)
            .unwrap_err();
        assert!(e.contains("line 1:8"), "{e}");
        assert!(spec(r#"{"kind":"asm","source":"    halt\n"}"#)
            .unwrap_err()
            .contains("scheme"));
        assert!(
            spec(r#"{"kind":"asm","scheme":"stt","suite":"corpus","source":"    halt\n"}"#)
                .unwrap_err()
                .contains("'suite'")
        );
        // 'source' is an asm-only field.
        assert!(spec(
            r#"{"kind":"run","suite":"corpus","bench":"memref","scheme":"stt","source":"x"}"#
        )
        .unwrap_err()
        .contains("asm"));
    }

    #[test]
    fn corpus_suite_is_served_and_typos_get_suggestions() {
        let s =
            spec(r#"{"kind":"run","suite":"corpus","bench":"quicksort","scheme":"stt"}"#).unwrap();
        assert_eq!(s.suite.as_deref(), Some("corpus"));
        let e = spec(r#"{"kind":"run","suite":"corpsu","bench":"quicksort","scheme":"stt"}"#)
            .unwrap_err();
        assert!(e.contains("did you mean 'corpus'"), "{e}");
        let e = spec(r#"{"kind":"run","suite":"corpus","bench":"quicksot","scheme":"stt"}"#)
            .unwrap_err();
        assert!(e.contains("did you mean 'quicksort'"), "{e}");
    }

    #[test]
    fn workloads_payload_lists_every_suite() {
        let v = parse(workloads_payload()).expect("valid json");
        let suites = match v.get("suites") {
            Some(Json::Arr(a)) => a,
            other => panic!("expected suites array, got {other:?}"),
        };
        assert_eq!(suites.len(), 4);
        let corpus = suites
            .iter()
            .find(|s| s.get("suite").and_then(Json::as_str) == Some("corpus"))
            .expect("corpus suite listed");
        let benches = match corpus.get("benchmarks") {
            Some(Json::Arr(a)) => a,
            other => panic!("expected benchmarks array, got {other:?}"),
        };
        assert_eq!(benches.len(), 5);
        for b in benches {
            assert!(b.get("static_instructions").and_then(Json::as_u64).unwrap() > 10);
            assert_eq!(b.get("threads").and_then(Json::as_u64), Some(1));
        }
    }

    #[test]
    fn digest_is_stable_and_discriminating() {
        let a = spec(r#"{"kind":"run","suite":"spec2017","bench":"mcf","scheme":"stt"}"#).unwrap();
        let b = spec(r#"{"kind":"run","suite":"spec2017","bench":"mcf","scheme":"stt"}"#).unwrap();
        let c = spec(r#"{"kind":"run","suite":"spec2017","bench":"mcf","scheme":"stt+recon"}"#)
            .unwrap();
        assert_eq!(a.digest(), b.digest());
        assert_ne!(a.digest(), c.digest());
        assert_ne!(
            a.digest(),
            spec(r#"{"kind":"matrix","suite":"spec2017","bench":"mcf"}"#)
                .unwrap()
                .digest()
        );
    }

    #[test]
    fn verify_job_round_trips() {
        let s =
            spec(r#"{"kind":"verify","gadget":"already-leaked","scheme":"stt+recon"}"#).unwrap();
        let out = execute(&s, None).unwrap();
        assert!(
            out.payload.contains("\"verdict\":\"SECURE\""),
            "{}",
            out.payload
        );
        assert!(
            out.payload.contains("\"as_expected\":true"),
            "{}",
            out.payload
        );
        // Determinism: byte-identical on re-execution.
        assert_eq!(out.payload, execute(&s, None).unwrap().payload);
    }

    #[test]
    fn analyze_job_deadline_returns_partial_stats() {
        // A fuel budget far below the benchmark's instruction count:
        // the analyzer must stop at the cap and report partial counts.
        let s = spec(r#"{"kind":"analyze","suite":"spec2017","bench":"mcf","fuel":500}"#).unwrap();
        match execute(&s, None) {
            Err(JobError::DeadlineExceeded {
                reason, payload, ..
            }) => {
                assert_eq!(reason, DeadlineReason::Fuel);
                let v = parse(&payload).expect("partial payload is valid json");
                let partial = v.get("partial").expect("has partial stats");
                assert_eq!(
                    partial.get("instructions").and_then(Json::as_u64),
                    Some(500)
                );
            }
            other => panic!("expected deadline, got {other:?}"),
        }
        // Without fuel the same job completes.
        let s = spec(r#"{"kind":"analyze","suite":"spec2017","bench":"mcf"}"#).unwrap();
        assert!(execute(&s, None).is_ok());
    }

    #[test]
    fn verify_job_deadline_returns_partial_stats() {
        let s =
            spec(r#"{"kind":"verify","gadget":"already-leaked","scheme":"stt","max_cycles":100}"#)
                .unwrap();
        match execute(&s, None) {
            Err(JobError::DeadlineExceeded {
                reason, payload, ..
            }) => {
                assert_eq!(reason, DeadlineReason::MaxCycles);
                let v = parse(&payload).expect("partial payload is valid json");
                assert_eq!(
                    v.get("partial")
                        .and_then(|p| p.get("completed"))
                        .and_then(Json::as_bool),
                    Some(false)
                );
            }
            other => panic!("expected deadline, got {other:?}"),
        }
    }

    #[test]
    fn run_job_deadline_returns_partial_stats() {
        let s =
            spec(r#"{"kind":"run","suite":"spec2017","bench":"mcf","scheme":"stt","fuel":1000}"#)
                .unwrap();
        match execute(&s, None) {
            Err(JobError::DeadlineExceeded {
                reason, payload, ..
            }) => {
                assert_eq!(reason, DeadlineReason::Fuel);
                let v = parse(&payload).expect("partial payload is valid json");
                assert_eq!(
                    v.get("error").and_then(Json::as_str),
                    Some("deadline_exceeded")
                );
                let partial = v.get("partial").expect("has partial stats");
                let committed = partial.get("committed").and_then(Json::as_u64).unwrap();
                assert!(
                    committed > 0 && committed <= 1000 + 8,
                    "partial, capped: {committed}"
                );
            }
            other => panic!("expected deadline, got {other:?}"),
        }
    }
}

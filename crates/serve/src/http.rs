//! A minimal HTTP/1.1 framing layer over `std::net` streams.
//!
//! Just enough of the protocol for the serving endpoints and the
//! loopback bench client: request-line + headers + `Content-Length`
//! bodies, `Connection: close` semantics (one exchange per
//! connection), and nothing else — no chunked encoding, no keep-alive,
//! no TLS. Request bodies are capped so a hostile client cannot make
//! the server buffer without bound.

use std::io::{self, BufRead, Write};

/// Maximum accepted request/response body, in bytes.
pub const MAX_BODY: usize = 1 << 20;

/// Maximum accepted header section, in bytes (per request).
const MAX_HEADER_BYTES: usize = 16 * 1024;

/// One parsed HTTP request.
#[derive(Clone, Debug)]
pub struct Request {
    /// Request method (`GET`, `POST`, ...), uppercased as received.
    pub method: String,
    /// Request target path (query strings are not split off).
    pub path: String,
    /// Headers in arrival order, names lowercased.
    pub headers: Vec<(String, String)>,
    /// The body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl Request {
    /// The first header with the given (case-insensitive) name.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        let want = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == want)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8, if valid.
    #[must_use]
    pub fn body_str(&self) -> Option<&str> {
        std::str::from_utf8(&self.body).ok()
    }
}

/// Reads one request from the stream. `Ok(None)` means the peer closed
/// the connection before sending a request line.
///
/// # Errors
///
/// I/O errors from the stream, or `InvalidData` for malformed framing
/// (bad request line, oversized headers or body).
pub fn read_request(reader: &mut impl BufRead) -> io::Result<Option<Request>> {
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Ok(None);
    }
    let mut parts = line.split_whitespace();
    let (Some(method), Some(path)) = (parts.next(), parts.next()) else {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "malformed request line",
        ));
    };
    let method = method.to_ascii_uppercase();
    let path = path.to_string();

    let mut headers = Vec::new();
    let mut header_bytes = 0usize;
    loop {
        let mut h = String::new();
        if reader.read_line(&mut h)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed mid-headers",
            ));
        }
        header_bytes += h.len();
        if header_bytes > MAX_HEADER_BYTES {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "header section too large",
            ));
        }
        let h = h.trim_end();
        if h.is_empty() {
            break;
        }
        if let Some((name, value)) = h.split_once(':') {
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
        }
    }

    let content_length = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .and_then(|(_, v)| v.parse::<usize>().ok())
        .unwrap_or(0);
    if content_length > MAX_BODY {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "request body too large",
        ));
    }
    let mut body = vec![0u8; content_length];
    io::Read::read_exact(reader, &mut body)?;
    Ok(Some(Request {
        method,
        path,
        headers,
        body,
    }))
}

/// The standard reason phrase for the status codes the service uses.
#[must_use]
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Writes a complete response (status, extra headers, body) and
/// flushes. Always closes the exchange (`Connection: close`).
///
/// # Errors
///
/// Propagates stream I/O errors.
pub fn write_response(
    writer: &mut (impl Write + ?Sized),
    status: u16,
    extra_headers: &[(&str, String)],
    content_type: &str,
    body: &[u8],
) -> io::Result<()> {
    write!(
        writer,
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n",
        reason(status),
        body.len()
    )?;
    for (k, v) in extra_headers {
        write!(writer, "{k}: {v}\r\n")?;
    }
    writer.write_all(b"\r\n")?;
    writer.write_all(body)?;
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn parses_a_post_with_body() {
        let raw = b"POST /jobs HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nabcd";
        let mut r = BufReader::new(&raw[..]);
        let req = read_request(&mut r).unwrap().unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/jobs");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.header("HOST"), Some("x"));
        assert_eq!(req.body, b"abcd");
    }

    #[test]
    fn eof_before_request_is_none() {
        let mut r = BufReader::new(&b""[..]);
        assert!(read_request(&mut r).unwrap().is_none());
    }

    #[test]
    fn oversized_body_is_rejected() {
        let raw = format!(
            "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY + 1
        );
        let mut r = BufReader::new(raw.as_bytes());
        assert!(read_request(&mut r).is_err());
    }

    #[test]
    fn response_framing() {
        let mut out = Vec::new();
        write_response(
            &mut out,
            429,
            &[("Retry-After", "1".to_string())],
            "application/json",
            b"{}",
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(
            text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"),
            "{text}"
        );
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }
}

//! A minimal HTTP/1.1 framing layer over `std::net` streams.
//!
//! Just enough of the protocol for the serving endpoints and the
//! loopback clients: request-line + headers + `Content-Length` bodies,
//! HTTP/1.1 keep-alive (connections persist until either side sends
//! `Connection: close` or an idle timeout fires), and nothing else —
//! no chunked encoding, no TLS. Request bodies are capped so a hostile
//! client cannot make the server buffer without bound.

use std::io::{self, BufRead, Write};

/// Maximum accepted request/response body, in bytes.
///
/// Sized for the largest legitimate payload: a paper-scale RCK1
/// checkpoint shipped over `POST /migrate` is ~1.4 MiB, so 8 MiB
/// leaves generous headroom while still bounding hostile buffering.
pub const MAX_BODY: usize = 8 << 20;

/// Maximum accepted header section, in bytes (per request).
const MAX_HEADER_BYTES: usize = 16 * 1024;

/// One parsed HTTP request.
#[derive(Clone, Debug)]
pub struct Request {
    /// Request method (`GET`, `POST`, ...), uppercased as received.
    pub method: String,
    /// Request target path (query strings are not split off).
    pub path: String,
    /// Headers in arrival order, names lowercased.
    pub headers: Vec<(String, String)>,
    /// The body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl Request {
    /// The first header with the given (case-insensitive) name.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        let want = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == want)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8, if valid.
    #[must_use]
    pub fn body_str(&self) -> Option<&str> {
        std::str::from_utf8(&self.body).ok()
    }

    /// Whether the client asked to close the connection after this
    /// exchange (`Connection: close`).
    #[must_use]
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// Whether an I/O error is a read/write timeout (reported as either
/// `WouldBlock` or `TimedOut` depending on the platform).
#[must_use]
pub fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Reads one request from the stream. `Ok(None)` means the connection
/// ended cleanly between requests: the peer closed it, or (under a
/// read timeout) it sat idle without starting a new request. A timeout
/// *mid*-request is still an error — the peer went quiet halfway
/// through framing.
///
/// # Errors
///
/// I/O errors from the stream, or `InvalidData` for malformed framing
/// (bad request line, oversized headers or body).
pub fn read_request(reader: &mut impl BufRead) -> io::Result<Option<Request>> {
    let mut line = String::new();
    match reader.read_line(&mut line) {
        Ok(0) => return Ok(None),
        Ok(_) => {}
        // Idle timeout before any byte of a new request: clean close.
        Err(e) if is_timeout(&e) && line.is_empty() => return Ok(None),
        Err(e) => return Err(e),
    }
    let mut parts = line.split_whitespace();
    let (Some(method), Some(path), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "malformed request line",
        ));
    };
    if !version.starts_with("HTTP/") {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "request line version is not HTTP",
        ));
    }
    let method = method.to_ascii_uppercase();
    let path = path.to_string();

    let mut headers = Vec::new();
    let mut header_bytes = 0usize;
    loop {
        let mut h = String::new();
        if reader.read_line(&mut h)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed mid-headers",
            ));
        }
        header_bytes += h.len();
        if header_bytes > MAX_HEADER_BYTES {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "header section too large",
            ));
        }
        let h = h.trim_end();
        if h.is_empty() {
            break;
        }
        if let Some((name, value)) = h.split_once(':') {
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
        }
    }

    let content_length = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .and_then(|(_, v)| v.parse::<usize>().ok())
        .unwrap_or(0);
    if content_length > MAX_BODY {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "request body too large",
        ));
    }
    let mut body = vec![0u8; content_length];
    io::Read::read_exact(reader, &mut body)?;
    Ok(Some(Request {
        method,
        path,
        headers,
        body,
    }))
}

/// The standard reason phrase for the status codes the service uses.
#[must_use]
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Renders a complete response (status line, headers, body) to bytes.
/// `close` selects `Connection: close` vs `Connection: keep-alive`.
///
/// Rendering to a buffer instead of the stream gives the chaos layer a
/// seam: response-corruption faults mutate these bytes before they hit
/// the socket, so the fault is injected at exactly one defined point.
#[must_use]
pub fn render_response(
    status: u16,
    extra_headers: &[(&str, String)],
    content_type: &str,
    body: &[u8],
    close: bool,
) -> Vec<u8> {
    let mut out = Vec::with_capacity(128 + body.len());
    let conn = if close { "close" } else { "keep-alive" };
    let _ = write!(
        out,
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: {conn}\r\n",
        reason(status),
        body.len()
    );
    for (k, v) in extra_headers {
        let _ = write!(out, "{k}: {v}\r\n");
    }
    out.extend_from_slice(b"\r\n");
    out.extend_from_slice(body);
    out
}

/// Writes a complete response (status, extra headers, body) and
/// flushes. Always closes the exchange (`Connection: close`); the
/// keep-alive server path renders with [`render_response`] instead.
///
/// # Errors
///
/// Propagates stream I/O errors.
pub fn write_response(
    writer: &mut (impl Write + ?Sized),
    status: u16,
    extra_headers: &[(&str, String)],
    content_type: &str,
    body: &[u8],
) -> io::Result<()> {
    writer.write_all(&render_response(
        status,
        extra_headers,
        content_type,
        body,
        true,
    ))?;
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn parses_a_post_with_body() {
        let raw = b"POST /jobs HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nabcd";
        let mut r = BufReader::new(&raw[..]);
        let req = read_request(&mut r).unwrap().unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/jobs");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.header("HOST"), Some("x"));
        assert_eq!(req.body, b"abcd");
    }

    #[test]
    fn eof_before_request_is_none() {
        let mut r = BufReader::new(&b""[..]);
        assert!(read_request(&mut r).unwrap().is_none());
    }

    #[test]
    fn oversized_body_is_rejected() {
        let raw = format!(
            "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY + 1
        );
        let mut r = BufReader::new(raw.as_bytes());
        assert!(read_request(&mut r).is_err());
    }

    #[test]
    fn response_framing() {
        let mut out = Vec::new();
        write_response(
            &mut out,
            429,
            &[("Retry-After", "1".to_string())],
            "application/json",
            b"{}",
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(
            text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"),
            "{text}"
        );
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }

    #[test]
    fn render_selects_keep_alive_or_close() {
        let keep =
            String::from_utf8(render_response(200, &[], "text/plain", b"ok", false)).unwrap();
        assert!(keep.contains("Connection: keep-alive\r\n"), "{keep}");
        let close =
            String::from_utf8(render_response(200, &[], "text/plain", b"ok", true)).unwrap();
        assert!(close.contains("Connection: close\r\n"), "{close}");
    }

    #[test]
    fn wants_close_reads_the_connection_header() {
        let raw = b"GET / HTTP/1.1\r\nConnection: Close\r\n\r\n";
        let mut r = BufReader::new(&raw[..]);
        assert!(read_request(&mut r).unwrap().unwrap().wants_close());
        let raw = b"GET / HTTP/1.1\r\n\r\n";
        let mut r = BufReader::new(&raw[..]);
        assert!(!read_request(&mut r).unwrap().unwrap().wants_close());
    }

    #[test]
    fn idle_timeout_before_any_byte_is_a_clean_close() {
        struct TimesOut;
        impl io::Read for TimesOut {
            fn read(&mut self, _buf: &mut [u8]) -> io::Result<usize> {
                Err(io::Error::new(io::ErrorKind::WouldBlock, "idle"))
            }
        }
        let mut r = BufReader::new(TimesOut);
        assert!(read_request(&mut r).unwrap().is_none());
    }
}

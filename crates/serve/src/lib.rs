//! # recon-serve
//!
//! A production-shaped serving layer over the ReCon simulator: the
//! `recon serve` daemon and the `recon bench-serve` load generator.
//!
//! The service speaks a minimal HTTP/1.1 JSON dialect over
//! `std::net::TcpListener` — no dependencies, same hermetic build as
//! the rest of the workspace — and exposes every one-shot CLI workload
//! (`run`, `matrix`, `analyze`, `verify` cells) as a job:
//!
//! * `POST /jobs` — submit a job. Admission is a **bounded queue**:
//!   when it is full the submission is refused immediately with
//!   `429 Too Many Requests` + `Retry-After`, never buffered without
//!   bound.
//! * Jobs carry optional **deadlines** (`fuel` = committed-instruction
//!   budget, `max_cycles`) that are threaded into the core's commit
//!   loop; an expired job answers `408` with its partial statistics,
//!   and an aborting shutdown cancels cooperatively mid-simulation.
//! * Results are **content-addressed**: the FxHash digest of the
//!   canonical job spec keys a bounded cache, and repeated submissions
//!   are served from it (`X-Recon-Cache: hit`).
//! * `GET /metrics` — live counters, gauges, and per-kind latency
//!   histograms in Prometheus text format; `GET /healthz`;
//!   `POST /shutdown` (graceful drain, or `{"mode":"abort"}`).
//!
//! Simulation is deterministic, so the service's payloads are
//! byte-identical to direct in-process runs — `bench-serve` asserts
//! exactly that under concurrent load, alongside zero lost responses
//! and real backpressure.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bench;
pub mod cache;
pub mod client;
pub mod http;
pub mod job;
pub mod json;
pub mod metrics;
pub mod queue;
pub mod server;

pub use bench::{run_bench_serve, BenchServeConfig, BenchServeReport};
pub use cache::ResultCache;
pub use client::{request, submit_job, Response};
pub use job::{execute, JobError, JobKind, JobOutput, JobSpec};
pub use json::{parse, Json};
pub use metrics::Metrics;
pub use queue::{BoundedQueue, PushError};
pub use server::{ServeConfig, Server};

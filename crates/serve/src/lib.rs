//! # recon-serve
//!
//! A production-shaped serving layer over the ReCon simulator: the
//! `recon serve` daemon, the `recon bench-serve` load generator, and
//! the `recon chaos` fault storm.
//!
//! The service speaks HTTP/1.1 (keep-alive, per-connection timeouts)
//! over `std::net::TcpListener` — no dependencies, same hermetic build
//! as the rest of the workspace — and exposes every one-shot CLI
//! workload (`run`, `matrix`, `analyze`, `verify` cells) as a job:
//!
//! * `POST /jobs` (and `POST /jobs/batch`) — submit jobs. Admission is
//!   a **bounded queue**: when it is full the submission is refused
//!   immediately with `429 Too Many Requests` + `Retry-After`, never
//!   buffered without bound; connections beyond the capped handler
//!   pool get a fast `503`.
//! * Jobs carry optional **deadlines** (`fuel` = committed-instruction
//!   budget, `max_cycles`) that are threaded into the core's commit
//!   loop — for all four kinds, including `analyze`/`verify`; an
//!   expired job answers `408` with its partial statistics, and an
//!   aborting shutdown cancels cooperatively mid-simulation.
//! * Results are **content-addressed**: the FxHash digest of the
//!   canonical job spec keys a bounded cache, repeated submissions are
//!   served from it (`X-Recon-Cache: hit`), duplicates of a *running*
//!   job join its execution (single-flight), and `--cache-dir` makes
//!   the cache **crash-safe** (checksummed snapshot + log, torn tails
//!   truncated at recovery — see [`persist`]).
//! * `GET /metrics` — live counters, gauges, and per-kind latency
//!   histograms in Prometheus text format (labeled `node="<id>"` when
//!   the server runs as a cluster node); `GET /healthz`;
//!   `POST /shutdown` (graceful drain, or `{"mode":"abort"}`).
//! * Cluster endpoints for the `recon gateway` layer: `POST /migrate`
//!   accepts a peer's RCK1 checkpoint and resumes the job mid-run,
//!   `POST /cache` accepts a replicated result, and `POST /drain`
//!   evacuates this node — cancel, checkpoint, ship to a target peer,
//!   then exit.
//!
//! The robustness layer is first-class: a deterministic **chaos plane**
//! ([`chaos`]) injects worker panics, latency, dropped/corrupted
//! connections, and synthetic backpressure at seeded seams; workers run
//! under **supervisors** that respawn them after a panic and recover
//! the orphaned job; and the **self-healing client** ([`client`])
//! retries with bounded, deterministically-jittered backoff over
//! keep-alive connections. Simulation is deterministic, so the
//! service's payloads are byte-identical to direct in-process runs —
//! `bench-serve` asserts exactly that under concurrent load, and the
//! [`storm`] asserts it while every fault class fires.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bench;
pub mod cache;
pub mod chaos;
pub mod client;
pub mod http;
pub mod job;
pub mod json;
pub mod metrics;
pub mod persist;
pub mod queue;
pub mod server;
pub mod storm;

pub use bench::{run_bench_serve, BenchServeConfig, BenchServeReport};
pub use cache::ResultCache;
pub use chaos::{FaultPlan, FaultSite};
pub use client::{
    request, request_bytes, submit_job, submit_with_retry, Connection, Response, Retried,
    RetryPolicy,
};
pub use job::{execute, JobError, JobKind, JobOutput, JobSpec};
pub use json::{parse, Json};
pub use metrics::Metrics;
pub use queue::{BoundedQueue, PushError};
pub use server::{ServeConfig, Server};
pub use storm::{run_chaos_storm, ChaosStormConfig, ChaosStormReport};

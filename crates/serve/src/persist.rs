//! Crash-safe persistence for the result cache: a checksummed snapshot
//! plus an append-only log under `--cache-dir`.
//!
//! Both files share one record framing:
//!
//! ```text
//! magic  u32 LE  0x3143_4352  ("RCC1")
//! digest u64 LE  content address (the cache key)
//! len    u32 LE  payload length in bytes (capped at MAX_BODY)
//! payload [len]  the JSON body
//! check  u64 LE  FxHash of digest || payload
//! ```
//!
//! Recovery reads `cache.snap` (the last compaction) and then
//! `cache.log` (appends since), stopping at the first record that is
//! torn or fails its checksum. The damaged tail is **truncated, never
//! served**: a crash mid-append costs at most the record being written,
//! and the count of dropped records is reported so operators can see it
//! (`recon_cache_dropped_records_total`). After recovery the surviving
//! entries are compacted back into a fresh snapshot (written to a
//! temporary file and atomically renamed) and the log is reset, so the
//! log only ever holds the delta since startup.

use std::fs::{File, OpenOptions};
use std::hash::Hasher;
use std::io::{self, BufReader, BufWriter, Read, Seek, Write};
use std::path::{Path, PathBuf};

use recon_isa::hash::FxHasher;

use crate::http::MAX_BODY;

/// Record magic: "RCC1" little-endian.
const MAGIC: u32 = 0x3143_4352;

/// Snapshot file name inside the cache directory.
const SNAP_NAME: &str = "cache.snap";

/// Append-log file name inside the cache directory.
const LOG_NAME: &str = "cache.log";

/// What recovery found when opening a cache directory.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct RecoveryStats {
    /// Entries recovered (last write per digest wins).
    pub recovered: u64,
    /// Torn or corrupt records dropped from file tails.
    pub dropped: u64,
    /// Bytes truncated off damaged tails.
    pub truncated_bytes: u64,
}

/// The persistence handle: an open append log plus the directory paths.
#[derive(Debug)]
pub struct CacheStore {
    dir: PathBuf,
    log: BufWriter<File>,
}

fn checksum(digest: u64, payload: &[u8]) -> u64 {
    let mut h = FxHasher::default();
    h.write(&digest.to_le_bytes());
    h.write(payload);
    h.finish()
}

fn write_record(w: &mut impl Write, digest: u64, payload: &[u8]) -> io::Result<()> {
    w.write_all(&MAGIC.to_le_bytes())?;
    w.write_all(&digest.to_le_bytes())?;
    w.write_all(
        &u32::try_from(payload.len())
            .unwrap_or(u32::MAX)
            .to_le_bytes(),
    )?;
    w.write_all(payload)?;
    w.write_all(&checksum(digest, payload).to_le_bytes())
}

/// Reads one record. `Ok(None)` is clean EOF; `Err` means the tail is
/// torn or corrupt from the current offset on.
fn read_record(r: &mut impl Read) -> io::Result<Option<(u64, String)>> {
    let mut magic = [0u8; 4];
    match r.read_exact(&mut magic) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    if u32::from_le_bytes(magic) != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "bad record magic",
        ));
    }
    let mut digest = [0u8; 8];
    r.read_exact(&mut digest)?;
    let digest = u64::from_le_bytes(digest);
    let mut len = [0u8; 4];
    r.read_exact(&mut len)?;
    let len = u32::from_le_bytes(len) as usize;
    if len > MAX_BODY {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "record length exceeds the body cap",
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    let mut check = [0u8; 8];
    r.read_exact(&mut check)?;
    if u64::from_le_bytes(check) != checksum(digest, &payload) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "record checksum mismatch",
        ));
    }
    let payload = String::from_utf8(payload)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "record payload is not UTF-8"))?;
    Ok(Some((digest, payload)))
}

/// Replays one file into `out`, truncating a damaged tail in place.
fn replay_file(
    path: &Path,
    out: &mut Vec<(u64, String)>,
    stats: &mut RecoveryStats,
) -> io::Result<()> {
    let Ok(file) = File::open(path) else {
        return Ok(()); // absent file: nothing to recover
    };
    let file_len = file.metadata()?.len();
    let mut reader = BufReader::new(file);
    let mut good_end: u64 = 0;
    loop {
        match read_record(&mut reader) {
            Ok(Some((digest, payload))) => {
                stats.recovered += 1;
                out.push((digest, payload));
                good_end = reader.stream_position()?;
            }
            Ok(None) => break,
            Err(_) => {
                // Torn or corrupt from good_end on: count whole records
                // we can no longer trust as one dropped tail record,
                // truncate, and stop. Nothing past this point is served.
                stats.dropped += 1;
                stats.truncated_bytes += file_len.saturating_sub(good_end);
                drop(reader);
                let f = OpenOptions::new().write(true).open(path)?;
                f.set_len(good_end)?;
                break;
            }
        }
    }
    Ok(())
}

/// What [`CacheStore::open`] hands back: the store, the recovered
/// `(digest, payload)` entries, and the recovery statistics.
pub type Opened = (CacheStore, Vec<(u64, String)>, RecoveryStats);

impl CacheStore {
    /// Opens (creating if needed) a cache directory, recovering every
    /// intact entry and compacting them into a fresh snapshot.
    ///
    /// # Errors
    ///
    /// I/O errors creating the directory or files. Corrupt *contents*
    /// are never an error — damaged tails are truncated and counted in
    /// the returned [`RecoveryStats`].
    pub fn open(dir: &Path) -> io::Result<Opened> {
        std::fs::create_dir_all(dir)?;
        let mut stats = RecoveryStats::default();
        let mut entries = Vec::new();
        replay_file(&dir.join(SNAP_NAME), &mut entries, &mut stats)?;
        replay_file(&dir.join(LOG_NAME), &mut entries, &mut stats)?;

        // Last write per digest wins; earlier duplicates are dropped
        // (determinism makes duplicates identical, but the rule is
        // still stated).
        let mut seen = recon_isa::hash::FxHashMap::default();
        for (i, (digest, _)) in entries.iter().enumerate() {
            seen.insert(*digest, i);
        }
        let mut unique: Vec<(u64, String)> = Vec::with_capacity(seen.len());
        for (i, (digest, payload)) in entries.into_iter().enumerate() {
            if seen.get(&digest) == Some(&i) {
                unique.push((digest, payload));
            }
        }
        stats.recovered = unique.len() as u64;

        // Compact: snapshot = everything recovered, log = empty.
        let tmp = dir.join("cache.snap.tmp");
        {
            let mut w = BufWriter::new(File::create(&tmp)?);
            for (digest, payload) in &unique {
                write_record(&mut w, *digest, payload.as_bytes())?;
            }
            w.flush()?;
            w.get_ref().sync_all()?;
        }
        std::fs::rename(&tmp, dir.join(SNAP_NAME))?;
        let log_file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(dir.join(LOG_NAME))?;
        let store = CacheStore {
            dir: dir.to_path_buf(),
            log: BufWriter::new(log_file),
        };
        Ok((store, unique, stats))
    }

    /// Appends one entry to the log and flushes it to the OS, so a
    /// `kill -9` after this call never loses the record (a power
    /// failure may cost the tail — which recovery then truncates).
    ///
    /// # Errors
    ///
    /// File I/O errors (callers log and continue: persistence is an
    /// accelerator, never a correctness dependency).
    pub fn append(&mut self, digest: u64, payload: &str) -> io::Result<()> {
        write_record(&mut self.log, digest, payload.as_bytes())?;
        self.log.flush()
    }

    /// The directory this store persists into.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("recon-persist-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn round_trips_across_reopen() {
        let dir = tmp_dir("roundtrip");
        {
            let (mut store, entries, stats) = CacheStore::open(&dir).unwrap();
            assert!(entries.is_empty());
            assert_eq!(stats, RecoveryStats::default());
            store.append(7, "{\"a\":1}").unwrap();
            store.append(9, "{\"b\":2}").unwrap();
        }
        let (_store, entries, stats) = CacheStore::open(&dir).unwrap();
        assert_eq!(stats.recovered, 2);
        assert_eq!(stats.dropped, 0);
        assert_eq!(
            entries,
            vec![(7, "{\"a\":1}".to_string()), (9, "{\"b\":2}".to_string())]
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_not_served() {
        let dir = tmp_dir("torn");
        {
            let (mut store, _, _) = CacheStore::open(&dir).unwrap();
            store.append(1, "{\"ok\":true}").unwrap();
            store.append(2, "{\"ok\":true}").unwrap();
        }
        // Tear the log mid-record: keep the first record plus a few
        // bytes of the second.
        let log = dir.join(LOG_NAME);
        let len = std::fs::metadata(&log).unwrap().len();
        let f = OpenOptions::new().write(true).open(&log).unwrap();
        f.set_len(len - 5).unwrap();
        drop(f);

        let (_store, entries, stats) = CacheStore::open(&dir).unwrap();
        assert_eq!(stats.recovered, 1, "only the intact record survives");
        assert_eq!(stats.dropped, 1, "the torn tail is counted");
        assert!(stats.truncated_bytes > 0);
        assert_eq!(entries[0].0, 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_checksum_is_dropped() {
        let dir = tmp_dir("corrupt");
        {
            let (mut store, _, _) = CacheStore::open(&dir).unwrap();
            store.append(1, "{\"k\":1}").unwrap();
            store.append(2, "{\"k\":2}").unwrap();
        }
        // Flip a payload byte inside the *second* record.
        let log = dir.join(LOG_NAME);
        let mut bytes = std::fs::read(&log).unwrap();
        let n = bytes.len();
        bytes[n - 12] ^= 0xFF;
        std::fs::write(&log, &bytes).unwrap();

        let (_store, entries, stats) = CacheStore::open(&dir).unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(stats.dropped, 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recovery_compacts_into_the_snapshot() {
        let dir = tmp_dir("compact");
        {
            let (mut store, _, _) = CacheStore::open(&dir).unwrap();
            store.append(1, "{\"x\":1}").unwrap();
        }
        {
            let (mut store, entries, _) = CacheStore::open(&dir).unwrap();
            assert_eq!(entries.len(), 1);
            // After compaction the log is empty and the snapshot holds
            // the entry.
            assert_eq!(std::fs::metadata(dir.join(LOG_NAME)).unwrap().len(), 0);
            assert!(std::fs::metadata(dir.join(SNAP_NAME)).unwrap().len() > 0);
            store.append(2, "{\"x\":2}").unwrap();
        }
        let (_store, entries, stats) = CacheStore::open(&dir).unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(stats.recovered, 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn duplicate_digests_keep_the_last_write() {
        let dir = tmp_dir("dup");
        {
            let (mut store, _, _) = CacheStore::open(&dir).unwrap();
            store.append(5, "{\"v\":\"old\"}").unwrap();
            store.append(5, "{\"v\":\"new\"}").unwrap();
        }
        let (_store, entries, _) = CacheStore::open(&dir).unwrap();
        assert_eq!(entries, vec![(5, "{\"v\":\"new\"}".to_string())]);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

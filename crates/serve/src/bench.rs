//! `recon bench-serve`: a loopback load generator for the service.
//!
//! Starts an in-process server with a deliberately small queue, fans
//! out client threads over a deterministic job mix (all five schemes,
//! a verifier cell, and one fuel-limited job that must deadline), and
//! checks the service's three load-bearing properties under
//! concurrency:
//!
//! 1. **No lost or duplicated responses** — every request is answered
//!    exactly once (`ok + deadline == clients × requests`).
//! 2. **Byte-identical results** — each served payload equals a direct
//!    in-process execution of the same spec.
//! 3. **Real backpressure** — with a 1-slot queue the flood must
//!    observe `429`s, and every `429` is followed by a successful
//!    retry, not a drop.

use std::io::{self, Write as _};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::client;
use crate::job::{self, JobError, JobSpec};
use crate::json::parse;
use crate::server::{ServeConfig, Server};

/// Load-generator configuration (the `recon bench-serve` flags).
#[derive(Clone, Debug)]
pub struct BenchServeConfig {
    /// Concurrent client threads.
    pub clients: usize,
    /// Requests per client.
    pub requests: usize,
    /// Server queue capacity (1 = maximally flooded, the default).
    pub queue_cap: usize,
    /// Worker threads for the in-process server.
    pub workers: usize,
    /// Output report path.
    pub out: String,
}

impl Default for BenchServeConfig {
    fn default() -> Self {
        BenchServeConfig {
            clients: 8,
            requests: 200,
            queue_cap: 1,
            workers: std::thread::available_parallelism().map_or(2, |n| n.get().min(8)),
            out: "BENCH_serve.json".to_string(),
        }
    }
}

/// What one request in the mix must produce.
#[derive(Clone, Debug)]
struct Expected {
    json: String,
    /// `(status, body)` the service must answer with (200 payloads and
    /// 408 deadline bodies are both deterministic).
    status: u16,
    body: String,
}

/// Aggregated results of one bench run.
#[derive(Clone, Debug, Default)]
pub struct BenchServeReport {
    /// Concurrent client threads.
    pub clients: usize,
    /// Requests per client.
    pub requests_per_client: usize,
    /// Server queue capacity used.
    pub queue_cap: usize,
    /// Successful (`200`) responses.
    pub ok: u64,
    /// Deadline (`408`) responses (the fuel-limited spec).
    pub deadline: u64,
    /// `429` rejections observed (each was retried until served).
    pub backpressure_429: u64,
    /// Responses whose body differed from the direct execution.
    pub mismatches: u64,
    /// Requests never answered (`clients × requests − ok − deadline`).
    pub lost: u64,
    /// Cache hits reported by the server after the run.
    pub cache_hits: u64,
    /// Cache misses reported by the server after the run.
    pub cache_misses: u64,
    /// Wall-clock for the whole run, in seconds.
    pub wall_seconds: f64,
    /// Served responses per second.
    pub throughput_rps: f64,
    /// Median request latency (first attempt to final response,
    /// including backoff), in milliseconds.
    pub p50_ms: f64,
    /// 95th-percentile latency, in milliseconds.
    pub p95_ms: f64,
    /// 99th-percentile latency, in milliseconds.
    pub p99_ms: f64,
}

impl BenchServeReport {
    /// Renders the report as the `BENCH_serve.json` document (schema
    /// checked by `tests/bench_json_schema.rs`).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        use std::fmt::Write as _;
        let _ = writeln!(s, "{{");
        let _ = writeln!(s, "  \"clients\": {},", self.clients);
        let _ = writeln!(
            s,
            "  \"requests_per_client\": {},",
            self.requests_per_client
        );
        let _ = writeln!(s, "  \"queue_cap\": {},", self.queue_cap);
        let _ = writeln!(s, "  \"ok\": {},", self.ok);
        let _ = writeln!(s, "  \"deadline\": {},", self.deadline);
        let _ = writeln!(s, "  \"backpressure_429\": {},", self.backpressure_429);
        let _ = writeln!(s, "  \"mismatches\": {},", self.mismatches);
        let _ = writeln!(s, "  \"lost\": {},", self.lost);
        let _ = writeln!(s, "  \"cache_hits\": {},", self.cache_hits);
        let _ = writeln!(s, "  \"cache_misses\": {},", self.cache_misses);
        let _ = writeln!(s, "  \"wall_seconds\": {:.6},", self.wall_seconds);
        let _ = writeln!(s, "  \"throughput_rps\": {:.3},", self.throughput_rps);
        let _ = writeln!(s, "  \"p50_ms\": {:.3},", self.p50_ms);
        let _ = writeln!(s, "  \"p95_ms\": {:.3},", self.p95_ms);
        let _ = writeln!(s, "  \"p99_ms\": {:.3}", self.p99_ms);
        let _ = writeln!(s, "}}");
        s
    }

    /// Writes [`Self::to_json`] to `path`.
    ///
    /// # Errors
    ///
    /// File I/O errors.
    pub fn write_json(&self, path: &str) -> io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.to_json().as_bytes())
    }
}

/// The deterministic request mix: five `run` jobs (one per scheme), a
/// verifier cell, and one fuel-limited job that must answer `408`.
fn build_mix() -> Vec<Expected> {
    let mut specs = vec![
        r#"{"kind":"run","suite":"spec2017","bench":"mcf","scheme":"unsafe"}"#.to_string(),
        r#"{"kind":"run","suite":"spec2017","bench":"mcf","scheme":"nda"}"#.to_string(),
        r#"{"kind":"run","suite":"spec2017","bench":"mcf","scheme":"nda+recon"}"#.to_string(),
        r#"{"kind":"run","suite":"spec2017","bench":"mcf","scheme":"stt"}"#.to_string(),
        r#"{"kind":"run","suite":"spec2017","bench":"mcf","scheme":"stt+recon"}"#.to_string(),
        r#"{"kind":"verify","gadget":"spectre-v1","scheme":"stt+recon"}"#.to_string(),
        r#"{"kind":"run","suite":"spec2017","bench":"xalancbmk","scheme":"stt","fuel":1000}"#
            .to_string(),
    ];
    specs
        .drain(..)
        .map(|json| {
            let v = parse(&json).expect("mix spec parses");
            let spec = JobSpec::from_json(&v).expect("mix spec validates");
            match job::execute(&spec, None) {
                Ok(out) => Expected {
                    json,
                    status: 200,
                    body: out.payload,
                },
                Err(JobError::DeadlineExceeded { payload, .. }) => Expected {
                    json,
                    status: 408,
                    body: payload,
                },
                Err(e) => panic!("mix spec failed directly: {e:?}"),
            }
        })
        .collect()
}

struct ClientTally {
    ok: u64,
    deadline: u64,
    backpressure: u64,
    mismatches: u64,
    latencies_micros: Vec<u64>,
}

fn client_loop(
    addr: std::net::SocketAddr,
    mix: &[Expected],
    client_id: usize,
    requests: usize,
) -> ClientTally {
    let mut t = ClientTally {
        ok: 0,
        deadline: 0,
        backpressure: 0,
        mismatches: 0,
        latencies_micros: Vec::with_capacity(requests),
    };
    for j in 0..requests {
        let expected = &mix[(client_id + j) % mix.len()];
        let start = Instant::now();
        let resp = loop {
            match client::submit_job(addr, &expected.json) {
                Ok(r) if r.status == 429 => {
                    t.backpressure += 1;
                    std::thread::sleep(Duration::from_micros(500));
                }
                Ok(r) => break r,
                Err(_) => std::thread::sleep(Duration::from_micros(500)),
            }
        };
        t.latencies_micros
            .push(u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX));
        if resp.status == expected.status && resp.body == expected.body {
            if resp.status == 200 {
                t.ok += 1;
            } else {
                t.deadline += 1;
            }
        } else if resp.status == expected.status {
            t.mismatches += 1;
        }
        // Any other status is neither ok nor deadline: it will surface
        // as `lost` in the report.
    }
    t
}

fn percentile(sorted_micros: &[u64], q: f64) -> f64 {
    if sorted_micros.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_micros.len() - 1) as f64 * q).round() as usize;
    sorted_micros[idx] as f64 / 1e3
}

fn scrape_counter(metrics: &str, name: &str) -> u64 {
    metrics
        .lines()
        .find(|l| l.starts_with(name) && l.as_bytes().get(name.len()) == Some(&b' '))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

/// Runs the load generator and writes the report.
///
/// # Errors
///
/// I/O errors from the loopback server or the report file.
pub fn run_bench_serve(config: &BenchServeConfig) -> io::Result<BenchServeReport> {
    // Direct executions first: the ground truth the served bytes are
    // compared against (and a warm-up of the workload constructors).
    let mix = Arc::new(build_mix());

    let server = Server::start(&ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: config.workers,
        queue_cap: config.queue_cap,
        ..ServeConfig::default()
    })?;
    let addr = server.addr();

    let start = Instant::now();
    let total_backpressure = Arc::new(AtomicU64::new(0));
    let mut handles = Vec::new();
    for client_id in 0..config.clients {
        let mix = Arc::clone(&mix);
        let requests = config.requests;
        handles.push(std::thread::spawn(move || {
            client_loop(addr, &mix, client_id, requests)
        }));
    }
    let mut ok = 0u64;
    let mut deadline = 0u64;
    let mut mismatches = 0u64;
    let mut latencies = Vec::with_capacity(config.clients * config.requests);
    for h in handles {
        let t = h.join().expect("client thread");
        ok += t.ok;
        deadline += t.deadline;
        mismatches += t.mismatches;
        total_backpressure.fetch_add(t.backpressure, Ordering::Relaxed);
        latencies.extend(t.latencies_micros);
    }
    let wall = start.elapsed().as_secs_f64();

    let metrics = client::request(addr, "GET", "/metrics", None)?.body;
    let resp = client::request(addr, "POST", "/shutdown", None)?;
    debug_assert_eq!(resp.status, 200);
    server.wait();

    latencies.sort_unstable();
    let total = (config.clients * config.requests) as u64;
    let report = BenchServeReport {
        clients: config.clients,
        requests_per_client: config.requests,
        queue_cap: config.queue_cap,
        ok,
        deadline,
        backpressure_429: total_backpressure.load(Ordering::Relaxed),
        mismatches,
        lost: total.saturating_sub(ok + deadline + mismatches),
        cache_hits: scrape_counter(&metrics, "recon_cache_hits_total"),
        cache_misses: scrape_counter(&metrics, "recon_cache_misses_total"),
        wall_seconds: wall,
        throughput_rps: if wall > 0.0 { total as f64 / wall } else { 0.0 },
        p50_ms: percentile(&latencies, 0.50),
        p95_ms: percentile(&latencies, 0.95),
        p99_ms: percentile(&latencies, 0.99),
    };
    report.write_json(&config.out)?;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_from_sorted_micros() {
        let micros: Vec<u64> = (1..=100).map(|i| i * 1000).collect();
        // idx = round((n-1) * q): 49.5 rounds away from zero to 50.
        assert!((percentile(&micros, 0.50) - 51.0).abs() < 1e-9);
        assert!((percentile(&micros, 0.99) - 99.0).abs() < 1e-9);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }

    #[test]
    fn scrape_counter_matches_whole_names() {
        let text = "recon_cache_hits_total 7\nrecon_cache_hits_total_suffix 9\n";
        assert_eq!(scrape_counter(text, "recon_cache_hits_total"), 7);
        assert_eq!(scrape_counter(text, "recon_cache"), 0);
    }

    #[test]
    fn report_json_is_complete() {
        let r = BenchServeReport {
            clients: 2,
            requests_per_client: 3,
            ..BenchServeReport::default()
        };
        let v = parse(&r.to_json()).expect("report parses");
        for key in [
            "clients",
            "requests_per_client",
            "queue_cap",
            "ok",
            "deadline",
            "backpressure_429",
            "mismatches",
            "lost",
            "cache_hits",
            "cache_misses",
            "wall_seconds",
            "throughput_rps",
            "p50_ms",
            "p95_ms",
            "p99_ms",
        ] {
            assert!(v.get(key).is_some(), "missing {key}");
        }
    }
}

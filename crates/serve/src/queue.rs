//! A bounded MPMC job queue with explicit backpressure.
//!
//! The admission path *never* buffers without bound: when the queue is
//! at capacity, [`BoundedQueue::try_push`] fails immediately and the
//! HTTP layer turns that into `429 Too Many Requests` + `Retry-After`.
//! Workers block on [`BoundedQueue::pop`]; closing the queue wakes them
//! after the backlog drains (graceful shutdown), while
//! [`BoundedQueue::drain`] empties the backlog immediately (abort).

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard};

/// Locks a mutex, recovering the data from a poisoned lock instead of
/// panicking. Every shared structure in this crate guards plain data
/// whose invariants hold between statements (counters, maps, deques),
/// so a handler that panicked while holding the lock leaves the data
/// usable — propagating the poison would instead wedge the queue for
/// every other handler and worker, turning one injected panic into a
/// full outage.
pub fn lock_ignore_poison<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Why a push was refused.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PushError {
    /// The queue is at capacity — back off and retry.
    Full,
    /// The queue was closed (server shutting down).
    Closed,
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A fixed-capacity FIFO shared between connection handlers (pushing)
/// and the worker pool (popping).
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    available: Condvar,
    capacity: usize,
}

impl<T> std::fmt::Debug for BoundedQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BoundedQueue")
            .field("capacity", &self.capacity)
            .field("len", &self.len())
            .finish()
    }
}

impl<T> BoundedQueue<T> {
    /// Creates a queue holding at most `capacity` items (minimum 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                closed: false,
            }),
            available: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// The configured capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Items currently queued.
    #[must_use]
    pub fn len(&self) -> usize {
        lock_ignore_poison(&self.inner).items.len()
    }

    /// Whether no items are queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enqueues without blocking.
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] at capacity (the caller applies
    /// backpressure), [`PushError::Closed`] after [`close`](Self::close).
    pub fn try_push(&self, item: T) -> Result<(), PushError> {
        let mut inner = lock_ignore_poison(&self.inner);
        if inner.closed {
            return Err(PushError::Closed);
        }
        if inner.items.len() >= self.capacity {
            return Err(PushError::Full);
        }
        inner.items.push_back(item);
        drop(inner);
        self.available.notify_one();
        Ok(())
    }

    /// As [`try_push`](Self::try_push), but hands the item back on
    /// refusal so the caller can still use it (e.g. write a refusal
    /// response on a connection that did not fit the handler pool).
    ///
    /// # Errors
    ///
    /// The rejected item paired with the reason.
    pub fn try_push_or_return(&self, item: T) -> Result<(), (T, PushError)> {
        let mut inner = lock_ignore_poison(&self.inner);
        if inner.closed {
            return Err((item, PushError::Closed));
        }
        if inner.items.len() >= self.capacity {
            return Err((item, PushError::Full));
        }
        inner.items.push_back(item);
        drop(inner);
        self.available.notify_one();
        Ok(())
    }

    /// Blocks until an item is available or the queue is closed *and*
    /// empty (`None`) — a closed queue still hands out its backlog, so
    /// graceful shutdown drains rather than drops.
    pub fn pop(&self) -> Option<T> {
        let mut inner = lock_ignore_poison(&self.inner);
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self
                .available
                .wait(inner)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Closes the queue: future pushes fail, poppers drain the backlog
    /// and then observe `None`.
    pub fn close(&self) {
        lock_ignore_poison(&self.inner).closed = true;
        self.available.notify_all();
    }

    /// Removes and returns every queued item (used on abort so pending
    /// jobs can be answered as cancelled instead of silently dropped).
    #[must_use]
    pub fn drain(&self) -> Vec<T> {
        let mut inner = lock_ignore_poison(&self.inner);
        inner.items.drain(..).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn capacity_is_enforced() {
        let q = BoundedQueue::new(2);
        assert!(q.try_push(1).is_ok());
        assert!(q.try_push(2).is_ok());
        assert_eq!(q.try_push(3), Err(PushError::Full));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn close_drains_then_ends() {
        let q = BoundedQueue::new(4);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        q.close();
        assert_eq!(q.try_push(3), Err(PushError::Closed));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn pop_blocks_until_push() {
        let q = Arc::new(BoundedQueue::new(1));
        let q2 = Arc::clone(&q);
        let t = std::thread::spawn(move || q2.pop());
        std::thread::sleep(std::time::Duration::from_millis(10));
        q.try_push(42).unwrap();
        assert_eq!(t.join().unwrap(), Some(42));
    }

    #[test]
    fn drain_empties_the_backlog() {
        let q = BoundedQueue::new(4);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.drain(), vec![1, 2]);
        assert!(q.is_empty());
    }

    #[test]
    fn poisoned_lock_does_not_wedge_the_queue() {
        let q = Arc::new(BoundedQueue::new(4));
        q.try_push(1).unwrap();
        // Panic while holding the inner lock: the mutex is now
        // poisoned, but the queue keeps serving.
        let q2 = Arc::clone(&q);
        let _ = std::thread::spawn(move || {
            let _guard = lock_ignore_poison(&q2.inner);
            panic!("injected panic with the queue lock held");
        })
        .join();
        assert!(q.inner.is_poisoned());
        assert!(q.try_push(2).is_ok());
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let q = BoundedQueue::new(0);
        assert_eq!(q.capacity(), 1);
        assert!(q.try_push(7).is_ok());
        assert_eq!(q.try_push(8), Err(PushError::Full));
    }
}

//! A content-addressed result cache, optionally crash-safe.
//!
//! Simulation is deterministic, so a job's payload is a pure function
//! of its canonical spec (which includes the workload scale): the
//! FxHash digest of that spec is the cache key. Entries are bounded and
//! evicted in insertion order — the cache is an accelerator, never a
//! correctness dependency, so eviction only costs a recompute.
//!
//! With [`ResultCache::with_persistence`] every insert is also appended
//! to a checksummed on-disk log (see [`crate::persist`]), and a restart
//! recovers all intact entries — a `kill -9` costs at most the record
//! being written, and a torn tail is truncated, never served.

use std::collections::VecDeque;
use std::io;
use std::path::Path;
use std::sync::{Arc, Mutex};

use recon_isa::hash::FxHashMap;

use crate::persist::{CacheStore, RecoveryStats};
use crate::queue::lock_ignore_poison;

/// Default maximum cached payloads.
pub const DEFAULT_CAPACITY: usize = 1024;

struct Inner {
    map: FxHashMap<u64, Arc<String>>,
    order: VecDeque<u64>,
}

/// A bounded digest → payload map shared by all workers.
pub struct ResultCache {
    inner: Mutex<Inner>,
    store: Option<Mutex<CacheStore>>,
    recovery: RecoveryStats,
    capacity: usize,
}

impl std::fmt::Debug for ResultCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResultCache")
            .field("capacity", &self.capacity)
            .field("len", &self.len())
            .field("persistent", &self.store.is_some())
            .finish()
    }
}

impl ResultCache {
    /// Creates an in-memory cache holding at most `capacity` payloads
    /// (minimum 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        ResultCache {
            inner: Mutex::new(Inner {
                map: FxHashMap::default(),
                order: VecDeque::new(),
            }),
            store: None,
            recovery: RecoveryStats::default(),
            capacity: capacity.max(1),
        }
    }

    /// Creates a crash-safe cache backed by `dir`, recovering every
    /// intact persisted entry (newest-first up to `capacity`).
    ///
    /// # Errors
    ///
    /// I/O errors creating or opening the directory. Corrupt contents
    /// are recovered around, not errors — the dropped-record count is
    /// available via [`recovery`](Self::recovery).
    pub fn with_persistence(capacity: usize, dir: &Path) -> io::Result<Self> {
        let (store, entries, recovery) = CacheStore::open(dir)?;
        let mut cache = ResultCache::new(capacity);
        cache.recovery = recovery;
        // Prefer the newest entries when the snapshot outgrew the
        // in-memory bound; insertion order within the kept window is
        // preserved.
        let skip = entries.len().saturating_sub(cache.capacity);
        {
            let mut inner = lock_ignore_poison(&cache.inner);
            for (digest, payload) in entries.into_iter().skip(skip) {
                inner.order.push_back(digest);
                inner.map.insert(digest, Arc::new(payload));
            }
        }
        cache.store = Some(Mutex::new(store));
        Ok(cache)
    }

    /// What recovery found when the backing directory was opened
    /// (all-zero for in-memory caches).
    #[must_use]
    pub fn recovery(&self) -> RecoveryStats {
        self.recovery
    }

    /// Entries currently cached.
    #[must_use]
    pub fn len(&self) -> usize {
        lock_ignore_poison(&self.inner).map.len()
    }

    /// Whether the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Looks up a payload by job digest.
    #[must_use]
    pub fn get(&self, digest: u64) -> Option<Arc<String>> {
        lock_ignore_poison(&self.inner).map.get(&digest).cloned()
    }

    /// Stores a payload, evicting the oldest entry at capacity. A
    /// digest already present keeps its existing payload (determinism
    /// makes the two identical). Persistent caches also append the
    /// entry to the on-disk log; an I/O failure there degrades to
    /// in-memory-only for that entry rather than failing the job.
    pub fn insert(&self, digest: u64, payload: Arc<String>) {
        {
            let mut inner = lock_ignore_poison(&self.inner);
            if inner.map.contains_key(&digest) {
                return;
            }
            while inner.map.len() >= self.capacity {
                match inner.order.pop_front() {
                    Some(oldest) => {
                        inner.map.remove(&oldest);
                    }
                    None => break,
                }
            }
            inner.map.insert(digest, Arc::clone(&payload));
            inner.order.push_back(digest);
        }
        if let Some(store) = &self.store {
            if let Err(e) = lock_ignore_poison(store).append(digest, &payload) {
                eprintln!("recon-serve: cache persistence append failed: {e}");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_insert() {
        let c = ResultCache::new(4);
        assert!(c.get(7).is_none());
        c.insert(7, Arc::new("{\"x\":1}".to_string()));
        assert_eq!(c.get(7).unwrap().as_str(), "{\"x\":1}");
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn evicts_oldest_at_capacity() {
        let c = ResultCache::new(2);
        c.insert(1, Arc::new("a".into()));
        c.insert(2, Arc::new("b".into()));
        c.insert(3, Arc::new("c".into()));
        assert!(c.get(1).is_none(), "oldest evicted");
        assert!(c.get(2).is_some());
        assert!(c.get(3).is_some());
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn duplicate_insert_keeps_first() {
        let c = ResultCache::new(2);
        c.insert(1, Arc::new("first".into()));
        c.insert(1, Arc::new("second".into()));
        assert_eq!(c.get(1).unwrap().as_str(), "first");
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn persistent_cache_survives_reopen() {
        let dir = std::env::temp_dir().join(format!("recon-cache-reopen-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let c = ResultCache::with_persistence(8, &dir).unwrap();
            c.insert(11, Arc::new("{\"r\":1}".into()));
            c.insert(22, Arc::new("{\"r\":2}".into()));
        }
        let c = ResultCache::with_persistence(8, &dir).unwrap();
        assert_eq!(c.recovery().recovered, 2);
        assert_eq!(c.recovery().dropped, 0);
        assert_eq!(c.get(11).unwrap().as_str(), "{\"r\":1}");
        assert_eq!(c.get(22).unwrap().as_str(), "{\"r\":2}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recovery_respects_capacity_keeping_newest() {
        let dir = std::env::temp_dir().join(format!("recon-cache-cap-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let c = ResultCache::with_persistence(8, &dir).unwrap();
            for i in 0..6u64 {
                c.insert(i, Arc::new(format!("{{\"i\":{i}}}")));
            }
        }
        let c = ResultCache::with_persistence(2, &dir).unwrap();
        assert_eq!(c.len(), 2);
        assert!(c.get(4).is_some());
        assert!(c.get(5).is_some());
        assert!(c.get(0).is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

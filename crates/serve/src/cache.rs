//! A content-addressed result cache.
//!
//! Simulation is deterministic, so a job's payload is a pure function
//! of its canonical spec (which includes the workload scale): the
//! FxHash digest of that spec is the cache key. Entries are bounded and
//! evicted in insertion order — the cache is an accelerator, never a
//! correctness dependency, so eviction only costs a recompute.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

use recon_isa::hash::FxHashMap;

/// Default maximum cached payloads.
pub const DEFAULT_CAPACITY: usize = 1024;

struct Inner {
    map: FxHashMap<u64, Arc<String>>,
    order: VecDeque<u64>,
}

/// A bounded digest → payload map shared by all workers.
pub struct ResultCache {
    inner: Mutex<Inner>,
    capacity: usize,
}

impl std::fmt::Debug for ResultCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResultCache")
            .field("capacity", &self.capacity)
            .field("len", &self.len())
            .finish()
    }
}

impl ResultCache {
    /// Creates a cache holding at most `capacity` payloads (minimum 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        ResultCache {
            inner: Mutex::new(Inner {
                map: FxHashMap::default(),
                order: VecDeque::new(),
            }),
            capacity: capacity.max(1),
        }
    }

    /// Entries currently cached.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().map.len()
    }

    /// Whether the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Looks up a payload by job digest.
    #[must_use]
    pub fn get(&self, digest: u64) -> Option<Arc<String>> {
        self.inner.lock().unwrap().map.get(&digest).cloned()
    }

    /// Stores a payload, evicting the oldest entry at capacity. A
    /// digest already present keeps its existing payload (determinism
    /// makes the two identical).
    pub fn insert(&self, digest: u64, payload: Arc<String>) {
        let mut inner = self.inner.lock().unwrap();
        if inner.map.contains_key(&digest) {
            return;
        }
        while inner.map.len() >= self.capacity {
            match inner.order.pop_front() {
                Some(oldest) => {
                    inner.map.remove(&oldest);
                }
                None => break,
            }
        }
        inner.map.insert(digest, payload);
        inner.order.push_back(digest);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_insert() {
        let c = ResultCache::new(4);
        assert!(c.get(7).is_none());
        c.insert(7, Arc::new("{\"x\":1}".to_string()));
        assert_eq!(c.get(7).unwrap().as_str(), "{\"x\":1}");
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn evicts_oldest_at_capacity() {
        let c = ResultCache::new(2);
        c.insert(1, Arc::new("a".into()));
        c.insert(2, Arc::new("b".into()));
        c.insert(3, Arc::new("c".into()));
        assert!(c.get(1).is_none(), "oldest evicted");
        assert!(c.get(2).is_some());
        assert!(c.get(3).is_some());
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn duplicate_insert_keeps_first() {
        let c = ResultCache::new(2);
        c.insert(1, Arc::new("first".into()));
        c.insert(1, Arc::new("second".into()));
        assert_eq!(c.get(1).unwrap().as_str(), "first");
        assert_eq!(c.len(), 1);
    }
}

//! A minimal, dependency-free JSON reader/writer.
//!
//! The serving protocol needs both directions — parsing job
//! submissions and schema-checking the JSON reports the repo writes
//! (`BENCH_runner.json`, `BENCH_serve.json`) — but only the small,
//! strict subset real payloads use: objects, arrays, strings, numbers
//! (as `f64`), booleans, and `null`. Input is bounded by the HTTP
//! layer's body cap and nesting is depth-limited, so a hostile payload
//! cannot recurse the parser off the stack.

/// Maximum nesting depth accepted by [`parse`].
const MAX_DEPTH: usize = 32;

/// A parsed JSON value. Object keys keep their source order so schema
/// tests can assert field ordering.
#[derive(Clone, PartialEq, Debug)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (integers up to 2^53 round-trip exactly).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source key order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up a key in an object (`None` for other variants).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is a whole number
    /// representable without loss (`|n| <= 2^53`).
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 9_007_199_254_740_992.0 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Object keys in source order (empty for non-objects).
    #[must_use]
    pub fn keys(&self) -> Vec<&str> {
        match self {
            Json::Obj(fields) => fields.iter().map(|(k, _)| k.as_str()).collect(),
            _ => Vec::new(),
        }
    }
}

/// Parses a complete JSON document (trailing garbage is an error).
///
/// # Errors
///
/// Returns a human-readable description of the first syntax error,
/// with its byte offset.
pub fn parse(input: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", char::from(b), self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, String> {
        if depth > MAX_DEPTH {
            return Err("nesting too deep".into());
        }
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(format!(
                "unexpected '{}' at byte {}",
                char::from(c),
                self.pos
            )),
            None => Err("unexpected end of input".into()),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "invalid \\u escape".to_string())?;
                            self.pos += 4;
                            // Surrogates are rejected rather than paired:
                            // no simulator payload contains them.
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| "unpaired surrogate".to_string())?,
                            );
                        }
                        c => return Err(format!("invalid escape '\\{}'", char::from(c))),
                    }
                }
                Some(c) if c < 0x20 => return Err("control character in string".into()),
                Some(_) => {
                    // Copy one UTF-8 scalar (input is a &str, so the
                    // boundary math is safe).
                    let start = self.pos;
                    let mut end = start + 1;
                    while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..end])
                            .map_err(|_| "invalid utf-8".to_string())?,
                    );
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("invalid number '{text}' at byte {start}"))
    }
}

/// Escapes a string for embedding in a JSON document (quotes not
/// included).
#[must_use]
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_job_submission() {
        let v = parse(r#"{"kind":"run","suite":"spec2017","bench":"mcf","fuel":1000}"#).unwrap();
        assert_eq!(v.get("kind").and_then(Json::as_str), Some("run"));
        assert_eq!(v.get("fuel").and_then(Json::as_u64), Some(1000));
        assert_eq!(v.keys(), vec!["kind", "suite", "bench", "fuel"]);
    }

    #[test]
    fn parses_nested_arrays_numbers_bools() {
        let v = parse(r#"{"a":[1, 2.5, -3e2], "b":true, "c":null}"#).unwrap();
        let Json::Arr(items) = v.get("a").unwrap() else {
            panic!("array");
        };
        assert_eq!(items[0].as_u64(), Some(1));
        assert_eq!(items[1].as_f64(), Some(2.5));
        assert_eq!(items[2].as_f64(), Some(-300.0));
        assert_eq!(v.get("b").and_then(Json::as_bool), Some(true));
        assert_eq!(v.get("c"), Some(&Json::Null));
    }

    #[test]
    fn escapes_round_trip() {
        let s = "a\"b\\c\nd\te";
        let doc = format!("{{\"k\":\"{}\"}}", escape(s));
        let v = parse(&doc).unwrap();
        assert_eq!(v.get("k").and_then(Json::as_str), Some(s));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("{}x").is_err());
        assert!(parse(r#"{"a":}"#).is_err());
        assert!(parse("[1,2").is_err());
        assert!(parse("").is_err());
        let deep = "[".repeat(64) + &"]".repeat(64);
        assert!(parse(&deep).is_err(), "depth limit");
    }

    #[test]
    fn u64_bounds() {
        assert_eq!(parse("1.5").unwrap().as_u64(), None);
        assert_eq!(parse("-1").unwrap().as_u64(), None);
        assert_eq!(parse("0").unwrap().as_u64(), Some(0));
    }
}

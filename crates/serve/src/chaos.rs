//! Deterministic fault injection: the chaos plane behind
//! `recon serve --chaos`.
//!
//! A [`FaultPlan`] is a SplitMix64-seeded oracle consulted at defined
//! seams in the serving path (the [`FaultSite`]s). Each decision is a
//! pure function of `(seed, site, key, draw-index)`, where `key` is the
//! job's content-addressed digest and the draw index is a per-`(site,
//! key)` counter — **not** a global stream. That keying is what makes
//! the chaos storm reproducible: the n-th time a given job passes a
//! given seam it always sees the same verdict, no matter how client
//! threads interleave, so the total number of injected faults converges
//! to the same fixed point on every run with the same seed (each
//! injected fault triggers exactly one retry, and retries draw the next
//! index).
//!
//! The plan never fires on non-job endpoints (`/metrics`, `/healthz`,
//! `/shutdown`) — the observability and control plane stays reliable
//! while the data plane is being broken on purpose.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use recon_isa::hash::FxHashMap;
use recon_isa::rng::{Rng, SplitMix64};

use crate::queue::lock_ignore_poison;

/// The seams where the chaos plane may inject a fault.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FaultSite {
    /// The worker thread panics after popping the job and before
    /// producing a result (exercises the supervisor + orphan
    /// resubmission path).
    WorkerPanic,
    /// Artificial latency before the job is admitted (exercises client
    /// timeouts and queueing under slow handlers).
    JobLatency,
    /// The connection is dropped after the request is read but before
    /// any response byte is written (the client observes a request that
    /// vanished mid-flight).
    DropRequest,
    /// The connection is dropped after roughly half the response bytes
    /// (the client observes a truncated response).
    DropResponse,
    /// The response is replaced by a truncated HTTP header section.
    TruncateHttp,
    /// The response is replaced by garbage bytes that parse as neither
    /// HTTP nor JSON.
    GarbageBytes,
    /// The submission is refused with a synthetic `429` as if the queue
    /// were saturated (a queue-saturation burst).
    QueueBurst,
    /// The job's newest on-disk checkpoint is truncated after the run,
    /// as if the process died mid-write (exercises torn-checkpoint
    /// recovery: the next resume must drop it, not trust it).
    CkptTorn,
}

impl FaultSite {
    /// Every site, in metric/spec order.
    pub const ALL: [FaultSite; 8] = [
        FaultSite::WorkerPanic,
        FaultSite::JobLatency,
        FaultSite::DropRequest,
        FaultSite::DropResponse,
        FaultSite::TruncateHttp,
        FaultSite::GarbageBytes,
        FaultSite::QueueBurst,
        FaultSite::CkptTorn,
    ];

    /// Stable spelling (spec key and metric label).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            FaultSite::WorkerPanic => "worker-panic",
            FaultSite::JobLatency => "latency",
            FaultSite::DropRequest => "drop-request",
            FaultSite::DropResponse => "drop-response",
            FaultSite::TruncateHttp => "truncate-http",
            FaultSite::GarbageBytes => "garbage",
            FaultSite::QueueBurst => "queue-burst",
            FaultSite::CkptTorn => "ckpt-torn",
        }
    }

    /// Index into per-site arrays.
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            FaultSite::WorkerPanic => 0,
            FaultSite::JobLatency => 1,
            FaultSite::DropRequest => 2,
            FaultSite::DropResponse => 3,
            FaultSite::TruncateHttp => 4,
            FaultSite::GarbageBytes => 5,
            FaultSite::QueueBurst => 6,
            FaultSite::CkptTorn => 7,
        }
    }

    fn from_label(s: &str) -> Option<FaultSite> {
        FaultSite::ALL.into_iter().find(|site| site.label() == s)
    }

    /// A per-site salt so the same `(key, index)` draws independent
    /// bits at different seams.
    fn salt(self) -> u64 {
        // Arbitrary odd constants; only distinctness matters.
        [
            0x9E37_79B9_0000_0001,
            0x9E37_79B9_0000_0003,
            0x9E37_79B9_0000_0005,
            0x9E37_79B9_0000_0007,
            0x9E37_79B9_0000_0009,
            0x9E37_79B9_0000_000B,
            0x9E37_79B9_0000_000D,
            0x9E37_79B9_0000_000F,
        ][self.index()]
    }
}

/// How a `/jobs` response should be delivered, as decided by the plan.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ResponseFault {
    /// Deliver the response intact.
    None,
    /// Write about half the bytes, then close.
    DropMidWrite,
    /// Write a truncated HTTP header section, then close.
    TruncatedHttp,
    /// Write garbage bytes, then close.
    Garbage,
}

/// A seeded, deterministic fault-injection plan.
///
/// Probabilities are per-site in tenths of a percent (0‒1000 permil).
/// Injected faults are counted per site and exported through
/// `/metrics` as `recon_chaos_injected_total{site="..."}`.
pub struct FaultPlan {
    seed: u64,
    rate_permil: [u32; FaultSite::ALL.len()],
    injected: [AtomicU64; FaultSite::ALL.len()],
    /// Next draw index per `(site, key)`.
    counters: Mutex<FxHashMap<(u8, u64), u64>>,
    /// Upper bound on injected latency, in milliseconds.
    max_latency_ms: u64,
}

impl std::fmt::Debug for FaultPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultPlan")
            .field("seed", &self.seed)
            .field("rate_permil", &self.rate_permil)
            .finish()
    }
}

impl FaultPlan {
    /// A plan with every rate at zero (useful as a base for tests).
    #[must_use]
    pub fn quiet(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            rate_permil: [0; FaultSite::ALL.len()],
            injected: Default::default(),
            counters: Mutex::new(FxHashMap::default()),
            max_latency_ms: 2,
        }
    }

    /// Parses the `--chaos` spec: `<seed>[,<site>=<permil>]...` with an
    /// optional `all=<permil>` applying one rate to every site and
    /// `max-latency-ms=<n>` bounding injected latency. Example:
    /// `42,all=100,latency=200` — seed 42, every fault class at 10%,
    /// latency bumped to 20%.
    ///
    /// # Errors
    ///
    /// A message naming the malformed part and the accepted site names.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut parts = spec.split(',');
        let seed_text = parts.next().unwrap_or("").trim();
        let seed: u64 = seed_text
            .parse()
            .map_err(|_| format!("chaos spec must start with a numeric seed, got '{seed_text}'"))?;
        let mut plan = FaultPlan::quiet(seed);
        for part in parts {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (name, value) = part
                .split_once('=')
                .ok_or_else(|| format!("chaos spec entry '{part}' is not <site>=<permil>"))?;
            let permil: u32 = value
                .parse()
                .ok()
                .filter(|&p| p <= 1000)
                .ok_or_else(|| format!("chaos rate '{value}' must be an integer 0..=1000"))?;
            match name.trim() {
                "all" => plan.rate_permil = [permil; FaultSite::ALL.len()],
                "max-latency-ms" => plan.max_latency_ms = u64::from(permil),
                site_name => match FaultSite::from_label(site_name) {
                    Some(site) => plan.rate_permil[site.index()] = permil,
                    None => {
                        let names: Vec<_> = FaultSite::ALL.iter().map(|s| s.label()).collect();
                        return Err(format!(
                            "unknown chaos site '{site_name}' (all|max-latency-ms|{})",
                            names.join("|")
                        ));
                    }
                },
            }
        }
        Ok(plan)
    }

    /// Sets one site's rate (in permil), for programmatic plans.
    pub fn set_rate(&mut self, site: FaultSite, permil: u32) {
        self.rate_permil[site.index()] = permil.min(1000);
    }

    /// The seed the plan was built with.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The next deterministic draw for `(site, key)`: a full 64-bit
    /// word, with the draw index advanced.
    fn draw(&self, site: FaultSite, key: u64) -> u64 {
        let idx = {
            let mut counters = lock_ignore_poison(&self.counters);
            let c = counters.entry((site.index() as u8, key)).or_insert(0);
            let idx = *c;
            *c += 1;
            idx
        };
        // One splitmix step over the combined identity: stateless, so
        // the verdict depends only on (seed, site, key, idx).
        SplitMix64::new(
            self.seed ^ site.salt() ^ key.rotate_left(17) ^ idx.wrapping_mul(0xA076_1D64_78BD_642F),
        )
        .next_u64()
    }

    /// Decides whether the fault at `site` fires for this pass of job
    /// `key`, counting it when it does.
    #[must_use]
    pub fn decide(&self, site: FaultSite, key: u64) -> bool {
        let rate = self.rate_permil[site.index()];
        if rate == 0 {
            return false;
        }
        let fire = self.draw(site, key) % 1000 < u64::from(rate);
        if fire {
            self.injected[site.index()].fetch_add(1, Ordering::Relaxed);
        }
        fire
    }

    /// Latency to inject before admitting job `key` (zero when the
    /// latency site does not fire).
    #[must_use]
    pub fn latency(&self, key: u64) -> Duration {
        if !self.decide(FaultSite::JobLatency, key) {
            return Duration::ZERO;
        }
        // Deterministic magnitude in 1..=max, drawn separately so the
        // fire/no-fire bit keeps its meaning.
        let ms = if self.max_latency_ms == 0 {
            0
        } else {
            1 + self.draw(FaultSite::JobLatency, key ^ 0x5A5A) % self.max_latency_ms
        };
        Duration::from_millis(ms)
    }

    /// Picks the response-delivery fault for this pass of job `key`
    /// (first firing site wins, in drop → truncate → garbage order).
    #[must_use]
    pub fn response_fault(&self, key: u64) -> ResponseFault {
        if self.decide(FaultSite::DropResponse, key) {
            ResponseFault::DropMidWrite
        } else if self.decide(FaultSite::TruncateHttp, key) {
            ResponseFault::TruncatedHttp
        } else if self.decide(FaultSite::GarbageBytes, key) {
            ResponseFault::Garbage
        } else {
            ResponseFault::None
        }
    }

    /// Faults injected so far at `site`.
    #[must_use]
    pub fn injected(&self, site: FaultSite) -> u64 {
        self.injected[site.index()].load(Ordering::Relaxed)
    }

    /// Total faults injected across all sites.
    #[must_use]
    pub fn injected_total(&self) -> u64 {
        FaultSite::ALL.iter().map(|&s| self.injected(s)).sum()
    }

    /// Appends the per-site injected counters in Prometheus text
    /// format (rendered after the main metric set).
    #[must_use]
    pub fn render_metrics(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(512);
        let _ = writeln!(
            out,
            "# HELP recon_chaos_injected_total Faults injected by the chaos plane."
        );
        let _ = writeln!(out, "# TYPE recon_chaos_injected_total counter");
        for site in FaultSite::ALL {
            let _ = writeln!(
                out,
                "recon_chaos_injected_total{{site=\"{}\"}} {}",
                site.label(),
                self.injected(site)
            );
        }
        out
    }
}

/// Deterministic garbage bytes for [`ResponseFault::Garbage`]: not a
/// valid HTTP status line, not valid JSON, includes NULs and high bytes.
#[must_use]
pub fn garbage_bytes(seed: u64) -> Vec<u8> {
    let mut rng = SplitMix64::new(seed ^ 0x0BAD_5EED);
    let mut out = Vec::with_capacity(64);
    out.extend_from_slice(b"\x00\xfficky ");
    for _ in 0..56 {
        out.push((rng.next_u64() & 0xFF) as u8);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_seed_and_rates() {
        let p = FaultPlan::parse("42,all=100,latency=200,worker-panic=50").unwrap();
        assert_eq!(p.seed(), 42);
        assert_eq!(p.rate_permil[FaultSite::JobLatency.index()], 200);
        assert_eq!(p.rate_permil[FaultSite::WorkerPanic.index()], 50);
        assert_eq!(p.rate_permil[FaultSite::QueueBurst.index()], 100);
    }

    #[test]
    fn parse_rejects_bad_specs() {
        assert!(FaultPlan::parse("").is_err());
        assert!(FaultPlan::parse("x,all=10").is_err());
        assert!(FaultPlan::parse("1,bogus=10")
            .unwrap_err()
            .contains("bogus"));
        assert!(FaultPlan::parse("1,latency=1001").is_err());
        assert!(FaultPlan::parse("1,latency").is_err());
    }

    #[test]
    fn decisions_are_deterministic_per_site_key_and_index() {
        let a = FaultPlan::parse("7,all=500").unwrap();
        let b = FaultPlan::parse("7,all=500").unwrap();
        for key in [1u64, 2, 3] {
            for _ in 0..32 {
                assert_eq!(
                    a.decide(FaultSite::DropRequest, key),
                    b.decide(FaultSite::DropRequest, key)
                );
            }
        }
        assert_eq!(
            a.injected(FaultSite::DropRequest),
            b.injected(FaultSite::DropRequest)
        );
        assert!(a.injected(FaultSite::DropRequest) > 0, "50% over 96 draws");
    }

    #[test]
    fn interleaving_does_not_change_verdicts() {
        // The same (site, key) sequence gives the same verdicts whether
        // keys are interleaved or batched — the per-key counters are
        // independent.
        let a = FaultPlan::parse("9,all=300").unwrap();
        let b = FaultPlan::parse("9,all=300").unwrap();
        let mut batched = Vec::new();
        for key in 0..4u64 {
            for _ in 0..8 {
                batched.push((key, a.decide(FaultSite::QueueBurst, key)));
            }
        }
        let mut interleaved = Vec::new();
        for round in 0..8 {
            for key in 0..4u64 {
                let _ = round;
                interleaved.push((key, b.decide(FaultSite::QueueBurst, key)));
            }
        }
        batched.sort_unstable();
        interleaved.sort_unstable();
        assert_eq!(batched, interleaved);
    }

    #[test]
    fn different_seeds_differ() {
        let a = FaultPlan::parse("1,all=500").unwrap();
        let b = FaultPlan::parse("2,all=500").unwrap();
        let va: Vec<bool> = (0..64)
            .map(|_| a.decide(FaultSite::GarbageBytes, 11))
            .collect();
        let vb: Vec<bool> = (0..64)
            .map(|_| b.decide(FaultSite::GarbageBytes, 11))
            .collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn quiet_plan_never_fires() {
        let p = FaultPlan::quiet(3);
        for site in FaultSite::ALL {
            for key in 0..8 {
                assert!(!p.decide(site, key));
            }
        }
        assert_eq!(p.injected_total(), 0);
        assert_eq!(p.latency(1), Duration::ZERO);
        assert_eq!(p.response_fault(1), ResponseFault::None);
    }

    #[test]
    fn metrics_render_names_every_site() {
        let p = FaultPlan::parse("5,all=1000").unwrap();
        assert!(p.decide(FaultSite::WorkerPanic, 1));
        let text = p.render_metrics();
        for site in FaultSite::ALL {
            assert!(
                text.contains(&format!("site=\"{}\"", site.label())),
                "{text}"
            );
        }
        assert!(text.contains("site=\"worker-panic\"} 1"));
    }

    #[test]
    fn garbage_is_not_http() {
        let g = garbage_bytes(42);
        assert!(!g.starts_with(b"HTTP/"));
        assert_eq!(g, garbage_bytes(42));
        assert_ne!(g, garbage_bytes(43));
    }
}

//! Live service metrics in Prometheus text exposition format.
//!
//! All counters are lock-free atomics updated on the worker and
//! connection-handler paths; `GET /metrics` renders a point-in-time
//! snapshot. Latency histograms are fixed-bucket (no allocation on the
//! observe path) and kept per job kind, so a slow `matrix` job does not
//! hide a regression in `verify` cells.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::job::JobKind;

/// Histogram bucket upper bounds, in seconds.
pub const BUCKETS: [f64; 9] = [0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0];

/// A fixed-bucket latency histogram (cumulative on render, per the
/// Prometheus convention).
#[derive(Default, Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS.len()],
    /// Sum of observations in microseconds (integer so it can be an
    /// atomic; rendered back as seconds).
    sum_micros: AtomicU64,
    count: AtomicU64,
}

impl Histogram {
    /// Records one observation, in seconds.
    pub fn observe(&self, seconds: f64) {
        for (i, bound) in BUCKETS.iter().enumerate() {
            if seconds <= *bound {
                self.buckets[i].fetch_add(1, Ordering::Relaxed);
                break;
            }
        }
        let micros = (seconds * 1e6).round().max(0.0) as u64;
        self.sum_micros.fetch_add(micros, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Total observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    fn render(&self, out: &mut String, kind: &str, node: &str) {
        use std::fmt::Write as _;
        let mut cumulative = 0u64;
        for (i, bound) in BUCKETS.iter().enumerate() {
            cumulative += self.buckets[i].load(Ordering::Relaxed);
            let _ = writeln!(
                out,
                "recon_job_seconds_bucket{{kind=\"{kind}\"{node},le=\"{bound}\"}} {cumulative}"
            );
        }
        let count = self.count.load(Ordering::Relaxed);
        let _ = writeln!(
            out,
            "recon_job_seconds_bucket{{kind=\"{kind}\"{node},le=\"+Inf\"}} {count}"
        );
        let sum = self.sum_micros.load(Ordering::Relaxed) as f64 / 1e6;
        let _ = writeln!(
            out,
            "recon_job_seconds_sum{{kind=\"{kind}\"{node}}} {sum:.6}"
        );
        let _ = writeln!(
            out,
            "recon_job_seconds_count{{kind=\"{kind}\"{node}}} {count}"
        );
    }
}

/// One monotonically increasing counter.
#[derive(Default, Debug)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts one (for the running-jobs gauge).
    pub fn dec(&self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// The full service metric set.
#[derive(Default, Debug)]
pub struct Metrics {
    /// Jobs accepted into the queue.
    pub jobs_queued: Counter,
    /// Jobs currently executing (gauge).
    pub jobs_running: Counter,
    /// Jobs that completed with a result.
    pub jobs_completed: Counter,
    /// Jobs that failed (bad spec at execution time, panic, internal
    /// error).
    pub jobs_failed: Counter,
    /// Jobs cancelled by an aborting shutdown.
    pub jobs_cancelled: Counter,
    /// Jobs that hit their fuel or cycle deadline.
    pub jobs_deadline: Counter,
    /// Jobs the liveness watchdog declared deadlocked.
    pub stalls_detected: Counter,
    /// Jobs whose invariant-audit sweep found inconsistent simulator
    /// state (served as 500 with the forensic report).
    pub audit_violations: Counter,
    /// Submissions refused with `429` because the queue was full.
    pub jobs_rejected: Counter,
    /// Result-cache hits (response served without executing).
    pub cache_hits: Counter,
    /// Result-cache misses (job executed).
    pub cache_misses: Counter,
    /// Pipeline-trace events dropped by ring buffers across all served
    /// jobs.
    pub trace_ring_dropped: Counter,
    /// Instructions simulated across all completed jobs (committed for
    /// timing runs, functional steps for analysis).
    pub sim_instructions: Counter,
    /// Wall-clock execution time of completed jobs, in microseconds
    /// (execution only — queue wait excluded, so MIPS reflects
    /// simulator throughput, not queueing).
    pub sim_exec_micros: Counter,
    /// Panicked workers restarted by the supervisor.
    pub worker_restarts: Counter,
    /// Duplicate in-flight submissions joined to an already-running
    /// execution instead of re-running (single-flight dedup).
    pub singleflight_joined: Counter,
    /// Connections refused with `503` because the handler pool was
    /// saturated.
    pub conns_rejected: Counter,
    /// Cache entries recovered from disk at startup.
    pub cache_recovered: Counter,
    /// Torn or corrupt persisted records dropped at startup.
    pub cache_dropped_records: Counter,
    /// Simulation checkpoints written to disk by running jobs.
    pub checkpoints_written: Counter,
    /// Jobs that resumed from an on-disk checkpoint instead of starting
    /// from cycle zero (startup orphan recovery or a retried deadline).
    pub checkpoints_resumed: Counter,
    /// Torn or corrupt checkpoint files dropped during recovery.
    pub checkpoints_dropped_corrupt: Counter,
    /// Superseded checkpoints garbage-collected (keep-latest-N).
    pub checkpoints_gc_deleted: Counter,
    /// Distinct jobs admitted but not yet answered (gauge): incremented
    /// on enqueue, decremented when the result fans out. Unlike the
    /// point-in-time queue depth, this covers queued *and* executing
    /// jobs, so summing it across cluster nodes gives true in-flight
    /// load.
    pub jobs_inflight: Counter,
    /// Checkpoints accepted from another node over `POST /migrate`.
    pub migrations_in: Counter,
    /// Checkpoints shipped to another node while draining.
    pub migrations_out: Counter,
    /// Cache entries accepted from a gateway replication
    /// (`POST /cache`).
    pub replications_in: Counter,
    /// Per-kind job latency (queue wait + execution), indexed by
    /// [`JobKind::index`].
    pub latency: [Histogram; 5],
}

impl Metrics {
    /// Records a finished job's latency under its kind.
    pub fn observe_latency(&self, kind: JobKind, seconds: f64) {
        self.latency[kind.index()].observe(seconds);
    }

    /// Renders the Prometheus text format. Queue depth and capacity are
    /// sampled by the caller (they live on the queue, not here). When
    /// `node` is set every sample line carries a `node="..."` label, so
    /// cluster dashboards can sum gauges like `recon_jobs_inflight`
    /// across nodes without relabeling at scrape time.
    #[must_use]
    pub fn render(&self, queue_depth: usize, queue_capacity: usize, node: Option<&str>) -> String {
        use std::fmt::Write as _;
        let lbl = node.map_or(String::new(), |n| {
            format!("{{node=\"{}\"}}", n.replace('"', "_"))
        });
        // The histogram path merges into an existing label set, so it
        // needs the bare `,node="..."` form.
        let hist_lbl = node.map_or(String::new(), |n| {
            format!(",node=\"{}\"", n.replace('"', "_"))
        });
        let mut out = String::with_capacity(2048);
        let mut counter = |name: &str, help: &str, value: u64| {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name}{lbl} {value}");
        };
        counter(
            "recon_jobs_queued_total",
            "Jobs accepted into the bounded queue.",
            self.jobs_queued.get(),
        );
        counter(
            "recon_jobs_completed_total",
            "Jobs that finished with a result.",
            self.jobs_completed.get(),
        );
        counter(
            "recon_jobs_failed_total",
            "Jobs that failed during execution.",
            self.jobs_failed.get(),
        );
        counter(
            "recon_jobs_cancelled_total",
            "Jobs cancelled by an aborting shutdown.",
            self.jobs_cancelled.get(),
        );
        counter(
            "recon_jobs_deadline_exceeded_total",
            "Jobs that hit their fuel or cycle deadline.",
            self.jobs_deadline.get(),
        );
        counter(
            "recon_stalls_detected_total",
            "Jobs the liveness watchdog declared deadlocked.",
            self.stalls_detected.get(),
        );
        counter(
            "recon_audit_violations_total",
            "Jobs whose invariant-audit sweep found inconsistent state.",
            self.audit_violations.get(),
        );
        counter(
            "recon_jobs_rejected_total",
            "Submissions refused with 429 (queue full).",
            self.jobs_rejected.get(),
        );
        counter(
            "recon_cache_hits_total",
            "Result-cache hits.",
            self.cache_hits.get(),
        );
        counter(
            "recon_cache_misses_total",
            "Result-cache misses.",
            self.cache_misses.get(),
        );
        counter(
            "recon_trace_ring_dropped_total",
            "Pipeline-trace events dropped by ring buffers.",
            self.trace_ring_dropped.get(),
        );
        counter(
            "recon_sim_instructions_total",
            "Instructions simulated across all completed jobs.",
            self.sim_instructions.get(),
        );
        counter(
            "recon_worker_restarts_total",
            "Panicked workers restarted by the supervisor.",
            self.worker_restarts.get(),
        );
        counter(
            "recon_singleflight_joined_total",
            "Duplicate submissions joined to an in-flight execution.",
            self.singleflight_joined.get(),
        );
        counter(
            "recon_conns_rejected_total",
            "Connections refused with 503 (handler pool saturated).",
            self.conns_rejected.get(),
        );
        counter(
            "recon_cache_recovered_total",
            "Cache entries recovered from disk at startup.",
            self.cache_recovered.get(),
        );
        counter(
            "recon_cache_dropped_records_total",
            "Torn or corrupt persisted records dropped at startup.",
            self.cache_dropped_records.get(),
        );
        counter(
            "recon_checkpoints_written_total",
            "Simulation checkpoints written to disk by running jobs.",
            self.checkpoints_written.get(),
        );
        counter(
            "recon_checkpoints_resumed_total",
            "Jobs resumed from an on-disk checkpoint.",
            self.checkpoints_resumed.get(),
        );
        counter(
            "recon_checkpoints_dropped_corrupt_total",
            "Torn or corrupt checkpoint files dropped during recovery.",
            self.checkpoints_dropped_corrupt.get(),
        );
        counter(
            "recon_checkpoints_gc_deleted_total",
            "Superseded checkpoints garbage-collected (keep-latest-N).",
            self.checkpoints_gc_deleted.get(),
        );
        counter(
            "recon_migrations_in_total",
            "Checkpoints accepted from another node over POST /migrate.",
            self.migrations_in.get(),
        );
        counter(
            "recon_migrations_out_total",
            "Checkpoints shipped to another node while draining.",
            self.migrations_out.get(),
        );
        counter(
            "recon_replications_in_total",
            "Cache entries accepted from a gateway replication.",
            self.replications_in.get(),
        );
        let exec_secs = self.sim_exec_micros.get() as f64 / 1e6;
        let _ = writeln!(
            out,
            "# HELP recon_sim_exec_seconds_total Wall-clock execution time of completed jobs."
        );
        let _ = writeln!(out, "# TYPE recon_sim_exec_seconds_total counter");
        let _ = writeln!(out, "recon_sim_exec_seconds_total{lbl} {exec_secs:.6}");
        let mips = if exec_secs > 0.0 {
            self.sim_instructions.get() as f64 / 1e6 / exec_secs
        } else {
            0.0
        };
        let _ = writeln!(
            out,
            "# HELP recon_sim_mips Aggregate simulated MIPS over completed jobs (instructions / execution time)."
        );
        let _ = writeln!(out, "# TYPE recon_sim_mips gauge");
        let _ = writeln!(out, "recon_sim_mips{lbl} {mips:.3}");
        let _ = writeln!(out, "# HELP recon_jobs_running Jobs currently executing.");
        let _ = writeln!(out, "# TYPE recon_jobs_running gauge");
        let _ = writeln!(out, "recon_jobs_running{lbl} {}", self.jobs_running.get());
        let _ = writeln!(
            out,
            "# HELP recon_jobs_inflight Jobs admitted but not yet answered (queued + executing)."
        );
        let _ = writeln!(out, "# TYPE recon_jobs_inflight gauge");
        let _ = writeln!(out, "recon_jobs_inflight{lbl} {}", self.jobs_inflight.get());
        let _ = writeln!(out, "# HELP recon_queue_depth Jobs waiting in the queue.");
        let _ = writeln!(out, "# TYPE recon_queue_depth gauge");
        let _ = writeln!(out, "recon_queue_depth{lbl} {queue_depth}");
        let _ = writeln!(out, "# HELP recon_queue_capacity Configured queue bound.");
        let _ = writeln!(out, "# TYPE recon_queue_capacity gauge");
        let _ = writeln!(out, "recon_queue_capacity{lbl} {queue_capacity}");
        let _ = writeln!(
            out,
            "# HELP recon_job_seconds Job latency (queue wait + execution) by kind."
        );
        let _ = writeln!(out, "# TYPE recon_job_seconds histogram");
        for kind in JobKind::ALL {
            self.latency[kind.index()].render(&mut out, kind.label(), &hist_lbl);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_cumulative() {
        let m = Metrics::default();
        m.observe_latency(JobKind::Run, 0.0004);
        m.observe_latency(JobKind::Run, 0.02);
        m.observe_latency(JobKind::Run, 99.0); // beyond the last bound
        let text = m.render(0, 4, None);
        assert!(text.contains("recon_job_seconds_bucket{kind=\"run\",le=\"0.001\"} 1"));
        assert!(text.contains("recon_job_seconds_bucket{kind=\"run\",le=\"0.05\"} 2"));
        assert!(text.contains("recon_job_seconds_bucket{kind=\"run\",le=\"10\"} 2"));
        assert!(text.contains("recon_job_seconds_bucket{kind=\"run\",le=\"+Inf\"} 3"));
        assert!(text.contains("recon_job_seconds_count{kind=\"run\"} 3"));
    }

    #[test]
    fn mips_gauge_divides_instructions_by_exec_time() {
        let m = Metrics::default();
        m.sim_instructions.add(3_000_000);
        m.sim_exec_micros.add(2_000_000); // 2 s → 1.5 MIPS
        let text = m.render(0, 4, None);
        assert!(
            text.contains("recon_sim_instructions_total 3000000"),
            "{text}"
        );
        assert!(
            text.contains("recon_sim_exec_seconds_total 2.000000"),
            "{text}"
        );
        assert!(text.contains("recon_sim_mips 1.500"), "{text}");
    }

    #[test]
    fn mips_gauge_is_zero_before_any_job() {
        let text = Metrics::default().render(0, 4, None);
        assert!(text.contains("recon_sim_mips 0.000"), "{text}");
    }

    #[test]
    fn counters_render() {
        let m = Metrics::default();
        m.jobs_queued.inc();
        m.jobs_queued.inc();
        m.cache_hits.add(5);
        m.jobs_running.inc();
        m.jobs_running.dec();
        let text = m.render(3, 16, None);
        assert!(text.contains("recon_jobs_queued_total 2"));
        assert!(text.contains("recon_cache_hits_total 5"));
        assert!(text.contains("recon_jobs_running 0"));
        assert!(text.contains("recon_queue_depth 3"));
        assert!(text.contains("recon_queue_capacity 16"));
    }

    #[test]
    fn node_label_lands_on_every_sample_line() {
        let m = Metrics::default();
        m.jobs_queued.inc();
        m.jobs_inflight.inc();
        m.observe_latency(JobKind::Run, 0.02);
        let text = m.render(1, 4, Some("n0"));
        assert!(
            text.contains("recon_jobs_queued_total{node=\"n0\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("recon_jobs_inflight{node=\"n0\"} 1"),
            "{text}"
        );
        assert!(text.contains("recon_queue_depth{node=\"n0\"} 1"), "{text}");
        assert!(
            text.contains("recon_job_seconds_bucket{kind=\"run\",node=\"n0\",le=\"0.05\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("recon_job_seconds_count{kind=\"run\",node=\"n0\"} 1"),
            "{text}"
        );
        // No sample line is left unlabeled (HELP/TYPE lines excepted).
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            assert!(line.contains("{"), "unlabeled sample: {line}");
        }
    }
}

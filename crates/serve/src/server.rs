//! The serving loop: listener, connection handlers, and worker pool.
//!
//! One thread accepts connections and hands each to a short-lived
//! handler thread (`Connection: close`, one exchange per connection).
//! Handlers never execute simulations: a `POST /jobs` submission is
//! validated, checked against the result cache, and — on a miss —
//! pushed into the bounded queue with a reply channel. When the queue
//! is full the submission is refused *immediately* with `429` and
//! `Retry-After`; nothing buffers without bound.
//!
//! A fixed pool of worker threads pops jobs and executes them under
//! [`crate::job::execute`], wrapped in `catch_unwind` so one panicking
//! job answers `500` without shrinking the pool.

use std::io::{self, BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::Instant;

use crate::cache::{ResultCache, DEFAULT_CAPACITY};
use crate::http::{read_request, write_response, Request};
use crate::job::{self, JobError, JobOutput, JobSpec};
use crate::json::{escape, parse};
use crate::metrics::Metrics;
use crate::queue::{BoundedQueue, PushError};

/// Server configuration (the `recon serve` flags).
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Listen address, e.g. `127.0.0.1:7090`. Port 0 binds an ephemeral
    /// port (the bound address is reported by [`Server::addr`]).
    pub addr: String,
    /// Worker threads executing jobs.
    pub workers: usize,
    /// Bounded queue capacity (submissions beyond it get `429`).
    pub queue_cap: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:7090".to_string(),
            workers: std::thread::available_parallelism().map_or(2, |n| n.get().min(8)),
            queue_cap: 16,
        }
    }
}

/// How `POST /shutdown` winds the service down.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum ShutdownMode {
    /// Stop accepting work, drain the queue, answer everything queued.
    Graceful,
    /// Also raise the cancel flag and fail queued/running jobs fast.
    Abort,
}

/// One queued unit of work (opaque outside this module; exposed only
/// so [`Shared`] can name its queue's element type).
pub struct QueuedJob {
    spec: JobSpec,
    digest: u64,
    enqueued: Instant,
    reply: mpsc::Sender<Result<JobOutput, JobError>>,
}

/// State shared by the accept loop, handlers, and workers.
pub struct Shared {
    /// The bounded admission queue.
    pub queue: BoundedQueue<QueuedJob>,
    /// Live counters and histograms (`GET /metrics`).
    pub metrics: Metrics,
    /// The content-addressed result cache.
    pub cache: ResultCache,
    shutting_down: AtomicBool,
    cancel: Arc<AtomicBool>,
}

impl std::fmt::Debug for Shared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shared")
            .field("queue", &self.queue)
            .field("cache", &self.cache)
            .field("shutting_down", &self.shutting_down.load(Ordering::Relaxed))
            .finish()
    }
}

impl std::fmt::Debug for QueuedJob {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueuedJob")
            .field("spec", &self.spec)
            .field("digest", &self.digest)
            .finish()
    }
}

/// A running `recon serve` instance.
#[derive(Debug)]
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds the listener and starts the accept loop and worker pool.
    ///
    /// # Errors
    ///
    /// I/O errors from binding the address.
    pub fn start(config: &ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            queue: BoundedQueue::new(config.queue_cap),
            metrics: Metrics::default(),
            cache: ResultCache::new(DEFAULT_CAPACITY),
            shutting_down: AtomicBool::new(false),
            cancel: Arc::new(AtomicBool::new(false)),
        });

        let workers = (0..config.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("recon-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker")
            })
            .collect();

        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("recon-accept".to_string())
                .spawn(move || accept_loop(&listener, &shared))
                .expect("spawn accept loop")
        };

        Ok(Server {
            addr,
            shared,
            accept: Some(accept),
            workers,
        })
    }

    /// The actual bound address (useful with port 0).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Shared state, for in-process inspection in tests.
    #[must_use]
    pub fn shared(&self) -> &Shared {
        &self.shared
    }

    /// Blocks until a `POST /shutdown` stops the service, then joins
    /// the accept loop and every worker.
    pub fn wait(mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    for stream in listener.incoming() {
        if shared.shutting_down.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let shared = Arc::clone(shared);
        let addr = listener.local_addr().ok();
        let _ = std::thread::Builder::new()
            .name("recon-conn".to_string())
            .spawn(move || {
                let _ = handle_connection(stream, &shared, addr);
            });
    }
}

fn worker_loop(shared: &Arc<Shared>) {
    while let Some(job) = shared.queue.pop() {
        shared.metrics.jobs_running.inc();
        let cancel = Arc::clone(&shared.cancel);
        let result = catch_unwind(AssertUnwindSafe(|| job::execute(&job.spec, Some(&cancel))))
            .unwrap_or_else(|_| {
                Err(JobError::Failed(
                    "job panicked (worker pool intact)".to_string(),
                ))
            });
        shared.metrics.jobs_running.dec();
        shared
            .metrics
            .observe_latency(job.spec.kind, job.enqueued.elapsed().as_secs_f64());
        match &result {
            Ok(out) => {
                shared.metrics.jobs_completed.inc();
                shared.metrics.trace_ring_dropped.add(out.trace_dropped);
                shared
                    .cache
                    .insert(job.digest, Arc::new(out.payload.clone()));
            }
            Err(JobError::DeadlineExceeded { .. }) => shared.metrics.jobs_deadline.inc(),
            Err(JobError::Cancelled) => shared.metrics.jobs_cancelled.inc(),
            Err(JobError::Invalid(_) | JobError::Failed(_)) => shared.metrics.jobs_failed.inc(),
        }
        // The handler may have given up (client disconnected) — a
        // failed send is not an error.
        let _ = job.reply.send(result);
    }
}

fn error_body(kind: &str, message: &str) -> String {
    format!(
        "{{\"error\":\"{kind}\",\"message\":\"{}\"}}",
        escape(message)
    )
}

fn handle_connection(
    stream: TcpStream,
    shared: &Arc<Shared>,
    self_addr: Option<SocketAddr>,
) -> io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    let Some(req) = read_request(&mut reader)? else {
        return Ok(());
    };

    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => write_response(
            &mut writer,
            200,
            &[],
            "application/json",
            b"{\"status\":\"ok\"}",
        ),
        ("GET", "/metrics") => {
            let body = shared
                .metrics
                .render(shared.queue.len(), shared.queue.capacity());
            write_response(
                &mut writer,
                200,
                &[],
                "text/plain; version=0.0.4",
                body.as_bytes(),
            )
        }
        ("POST", "/jobs") => handle_job(&req, &mut writer, shared),
        ("POST", "/shutdown") => handle_shutdown(&req, &mut writer, shared, self_addr),
        ("GET" | "POST", _) => write_response(
            &mut writer,
            404,
            &[],
            "application/json",
            error_body("not_found", &req.path).as_bytes(),
        ),
        _ => write_response(
            &mut writer,
            405,
            &[],
            "application/json",
            error_body("method_not_allowed", &req.method).as_bytes(),
        ),
    }
}

fn handle_job(req: &Request, writer: &mut impl io::Write, shared: &Arc<Shared>) -> io::Result<()> {
    let bad_request = |writer: &mut dyn io::Write, msg: &str| {
        write_response(
            writer,
            400,
            &[],
            "application/json",
            error_body("invalid_job", msg).as_bytes(),
        )
    };
    let Some(body) = req.body_str() else {
        return bad_request(writer, "body is not UTF-8");
    };
    let parsed = match parse(body) {
        Ok(v) => v,
        Err(e) => return bad_request(writer, &e),
    };
    let spec = match JobSpec::from_json(&parsed) {
        Ok(s) => s,
        Err(e) => return bad_request(writer, &e),
    };
    let digest = spec.digest();

    if let Some(hit) = shared.cache.get(digest) {
        shared.metrics.cache_hits.inc();
        return write_response(
            writer,
            200,
            &[("X-Recon-Cache", "hit".to_string())],
            "application/json",
            hit.as_bytes(),
        );
    }
    let (tx, rx) = mpsc::channel();
    let push = shared.queue.try_push(QueuedJob {
        spec,
        digest,
        enqueued: Instant::now(),
        reply: tx,
    });
    match push {
        Err(PushError::Full) => {
            shared.metrics.jobs_rejected.inc();
            return write_response(
                writer,
                429,
                &[("Retry-After", "1".to_string())],
                "application/json",
                error_body("queue_full", "bounded queue at capacity; retry later").as_bytes(),
            );
        }
        Err(PushError::Closed) => {
            return write_response(
                writer,
                503,
                &[],
                "application/json",
                error_body("shutting_down", "server is draining; not accepting jobs").as_bytes(),
            );
        }
        Ok(()) => {
            shared.metrics.jobs_queued.inc();
            shared.metrics.cache_misses.inc();
        }
    }

    // The worker always replies (panics are caught); a RecvError can
    // only mean the pool is gone mid-shutdown.
    let reply = rx.recv().unwrap_or(Err(JobError::Cancelled));
    match reply {
        Ok(out) => write_response(
            writer,
            200,
            &[("X-Recon-Cache", "miss".to_string())],
            "application/json",
            out.payload.as_bytes(),
        ),
        Err(JobError::DeadlineExceeded { payload, .. }) => {
            write_response(writer, 408, &[], "application/json", payload.as_bytes())
        }
        Err(JobError::Cancelled) => write_response(
            writer,
            503,
            &[],
            "application/json",
            error_body("cancelled", "job cancelled by shutdown").as_bytes(),
        ),
        Err(JobError::Invalid(msg)) => bad_request(writer, &msg),
        Err(JobError::Failed(msg)) => write_response(
            writer,
            500,
            &[],
            "application/json",
            error_body("job_failed", &msg).as_bytes(),
        ),
    }
}

fn handle_shutdown(
    req: &Request,
    writer: &mut impl io::Write,
    shared: &Arc<Shared>,
    self_addr: Option<SocketAddr>,
) -> io::Result<()> {
    let mode = match req.body_str().filter(|b| !b.trim().is_empty()) {
        None => ShutdownMode::Graceful,
        Some(body) => match parse(body) {
            Ok(v) => match v.get("mode").and_then(crate::json::Json::as_str) {
                None | Some("graceful") => ShutdownMode::Graceful,
                Some("abort") => ShutdownMode::Abort,
                Some(other) => {
                    return write_response(
                        writer,
                        400,
                        &[],
                        "application/json",
                        error_body("invalid_shutdown", &format!("unknown mode '{other}'"))
                            .as_bytes(),
                    );
                }
            },
            Err(e) => {
                return write_response(
                    writer,
                    400,
                    &[],
                    "application/json",
                    error_body("invalid_shutdown", &e).as_bytes(),
                );
            }
        },
    };

    // Answer first so the client is not racing the teardown.
    let body = format!(
        "{{\"status\":\"shutting_down\",\"mode\":\"{}\",\"queued\":{}}}",
        if mode == ShutdownMode::Abort {
            "abort"
        } else {
            "graceful"
        },
        shared.queue.len()
    );
    write_response(writer, 200, &[], "application/json", body.as_bytes())?;

    shared.shutting_down.store(true, Ordering::SeqCst);
    if mode == ShutdownMode::Abort {
        shared.cancel.store(true, Ordering::SeqCst);
        for job in shared.queue.drain() {
            shared.metrics.jobs_cancelled.inc();
            let _ = job.reply.send(Err(JobError::Cancelled));
        }
    }
    // Close the queue: workers drain the (graceful) backlog, then exit.
    shared.queue.close();
    // Poke the accept loop so it observes the flag and returns.
    if let Some(addr) = self_addr {
        let _ = TcpStream::connect(addr);
    }
    Ok(())
}

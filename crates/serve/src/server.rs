//! The serving loop: listener, a capped handler pool, and a supervised
//! worker pool.
//!
//! One thread accepts connections and feeds them to a **fixed pool of
//! handler threads** through a bounded connection queue — when the pool
//! and its backlog are saturated, new connections get a quick `503` and
//! a close instead of an unbounded thread spawn. Connections are
//! HTTP/1.1 keep-alive with per-connection read/write timeouts: an idle
//! peer is closed cleanly, a peer that stalls mid-request is dropped.
//!
//! Handlers never execute simulations: a `POST /jobs` submission is
//! validated, checked against the result cache **and the in-flight
//! table** (single-flight: duplicate submissions of the same digest
//! join the running execution instead of re-running it), and — on a
//! miss — pushed into the bounded queue with a reply channel. When the
//! queue is full the submission is refused *immediately* with `429` and
//! `Retry-After`; nothing buffers without bound.
//!
//! Workers run under **supervisors**: a worker that panics outside the
//! per-job `catch_unwind` (the chaos plane injects exactly that) is
//! respawned, its orphaned job is recovered and re-executed by the
//! replacement (immune to further injected panics, so progress is
//! guaranteed), and the restart is counted in `/metrics`.
//!
//! With `--chaos`, a [`FaultPlan`] is consulted at the seams marked
//! `chaos seam` below. With `--cache-dir`, the result cache is
//! crash-safe (see [`crate::persist`]).

use std::fs;
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use recon_isa::hash::FxHashMap;
use recon_sim::ckpt;

use crate::cache::{ResultCache, DEFAULT_CAPACITY};
use crate::chaos::{garbage_bytes, FaultPlan, FaultSite, ResponseFault};
use crate::http::{read_request, render_response, Request};
use crate::job::{self, CkptPlan, JobError, JobOutput, JobSpec};
use crate::json::{escape, parse, Json};
use crate::metrics::Metrics;
use crate::queue::{lock_ignore_poison, BoundedQueue, PushError};

/// Most specs accepted in one `POST /jobs/batch` submission.
pub const MAX_BATCH: usize = 64;

/// Server configuration (the `recon serve` flags).
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Listen address, e.g. `127.0.0.1:7090`. Port 0 binds an ephemeral
    /// port (the bound address is reported by [`Server::addr`]).
    pub addr: String,
    /// Worker threads executing jobs.
    pub workers: usize,
    /// Bounded queue capacity (submissions beyond it get `429`).
    pub queue_cap: usize,
    /// Connection-handler threads (connections beyond the pool and its
    /// equal-sized backlog get a quick `503`).
    pub handler_cap: usize,
    /// Per-connection read timeout: idle keep-alive connections are
    /// closed cleanly after this long; a peer stalling mid-request is
    /// dropped.
    pub read_timeout: Duration,
    /// Per-connection write timeout.
    pub write_timeout: Duration,
    /// Chaos spec (`<seed>[,<site>=<permil>]...`, see
    /// [`FaultPlan::parse`]). `None` serves faithfully.
    pub chaos: Option<String>,
    /// Directory for crash-safe cache persistence. `None` keeps the
    /// cache in memory only.
    ///
    /// With a directory, `run` jobs also write resumable simulation
    /// checkpoints there: a killed server re-enqueues orphaned jobs at
    /// startup and resumes them from their last checkpoint.
    pub cache_dir: Option<PathBuf>,
    /// Simulation-checkpoint cadence for `run` jobs, in simulated
    /// cycles (only effective with `cache_dir`).
    pub checkpoint_every_cycles: u64,
    /// Cluster node identity. When set, every `/metrics` sample line
    /// carries a `node="<id>"` label so a gateway dashboard can sum
    /// gauges across nodes.
    pub node_id: Option<String>,
}

/// Default checkpoint cadence for served `run` jobs.
pub const DEFAULT_CKPT_EVERY: u64 = 250_000;

/// Checkpoints retained per running job (keep-latest-N GC).
const CKPT_KEEP: usize = 2;

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:7090".to_string(),
            workers: std::thread::available_parallelism().map_or(2, |n| n.get().min(8)),
            queue_cap: 16,
            handler_cap: 32,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            chaos: None,
            cache_dir: None,
            checkpoint_every_cycles: DEFAULT_CKPT_EVERY,
            node_id: None,
        }
    }
}

/// How `POST /shutdown` winds the service down.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum ShutdownMode {
    /// Stop accepting work, drain the queue, answer everything queued.
    Graceful,
    /// Also raise the cancel flag and fail queued/running jobs fast.
    Abort,
}

type JobResult = Result<JobOutput, JobError>;

/// One queued unit of work (opaque outside this module; exposed only
/// so [`Shared`] can name its queue's element type).
#[derive(Clone)]
pub struct QueuedJob {
    spec: JobSpec,
    digest: u64,
    enqueued: Instant,
    reply: mpsc::Sender<JobResult>,
}

/// State shared by the accept loop, handlers, and workers.
pub struct Shared {
    /// The bounded admission queue.
    pub queue: BoundedQueue<QueuedJob>,
    /// Live counters and histograms (`GET /metrics`).
    pub metrics: Metrics,
    /// The content-addressed result cache.
    pub cache: ResultCache,
    /// The chaos plane (a quiet plan when `--chaos` is not given).
    pub chaos: FaultPlan,
    /// Checkpoint plan for `run` jobs (`Some` when `cache_dir` is set).
    pub ckpt: Option<CkptPlan>,
    /// Digests currently executing, with the reply channels of
    /// duplicate submissions that joined them (single-flight).
    inflight: Mutex<FxHashMap<u64, Vec<mpsc::Sender<JobResult>>>>,
    /// Cluster node identity (labels `/metrics` output).
    node_id: Option<String>,
    shutting_down: AtomicBool,
    cancel: Arc<AtomicBool>,
}

impl std::fmt::Debug for Shared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shared")
            .field("queue", &self.queue)
            .field("cache", &self.cache)
            .field("chaos", &self.chaos)
            .field("shutting_down", &self.shutting_down.load(Ordering::Relaxed))
            .finish()
    }
}

impl std::fmt::Debug for QueuedJob {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueuedJob")
            .field("spec", &self.spec)
            .field("digest", &self.digest)
            .finish()
    }
}

/// A running `recon serve` instance.
#[derive(Debug)]
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    handlers: Vec<JoinHandle<()>>,
    supervisors: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds the listener and starts the accept loop, the handler pool,
    /// and the supervised worker pool.
    ///
    /// # Errors
    ///
    /// I/O errors from binding the address or opening the cache
    /// directory; `InvalidInput` for a malformed chaos spec.
    pub fn start(config: &ServeConfig) -> io::Result<Server> {
        let chaos = match &config.chaos {
            None => FaultPlan::quiet(0),
            Some(spec) => FaultPlan::parse(spec)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e))?,
        };
        let cache = match &config.cache_dir {
            None => ResultCache::new(DEFAULT_CAPACITY),
            Some(dir) => ResultCache::with_persistence(DEFAULT_CAPACITY, dir)?,
        };
        let recovery = cache.recovery();

        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            queue: BoundedQueue::new(config.queue_cap),
            metrics: Metrics::default(),
            cache,
            chaos,
            ckpt: config.cache_dir.as_ref().map(|dir| CkptPlan {
                dir: Some(dir.clone()),
                cadence: config.checkpoint_every_cycles.max(1),
                keep: CKPT_KEEP,
            }),
            inflight: Mutex::new(FxHashMap::default()),
            node_id: config.node_id.clone(),
            shutting_down: AtomicBool::new(false),
            cancel: Arc::new(AtomicBool::new(false)),
        });
        shared.metrics.cache_recovered.add(recovery.recovered);
        shared.metrics.cache_dropped_records.add(recovery.dropped);
        if recovery.recovered > 0 || recovery.dropped > 0 {
            println!(
                "cache recovery: {} entries restored, {} corrupt tail records dropped ({} bytes truncated)",
                recovery.recovered, recovery.dropped, recovery.truncated_bytes
            );
        }
        if let Some(dir) = &config.cache_dir {
            recover_orphans(&shared, dir);
        }

        let supervisors = (0..config.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("recon-supervisor-{i}"))
                    .spawn(move || supervise_worker(i, &shared))
                    .expect("spawn supervisor")
            })
            .collect();

        let conns = Arc::new(BoundedQueue::new(config.handler_cap.max(1)));
        let handlers = (0..config.handler_cap.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                let conns = Arc::clone(&conns);
                let timeouts = (config.read_timeout, config.write_timeout);
                std::thread::Builder::new()
                    .name(format!("recon-conn-{i}"))
                    .spawn(move || {
                        while let Some(stream) = conns.pop() {
                            let _ = handle_connection(stream, &shared, Some(addr), timeouts);
                        }
                    })
                    .expect("spawn handler")
            })
            .collect();

        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("recon-accept".to_string())
                .spawn(move || accept_loop(&listener, &shared, &conns))
                .expect("spawn accept loop")
        };

        Ok(Server {
            addr,
            shared,
            accept: Some(accept),
            handlers,
            supervisors,
        })
    }

    /// The actual bound address (useful with port 0).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Shared state, for in-process inspection in tests.
    #[must_use]
    pub fn shared(&self) -> &Shared {
        &self.shared
    }

    /// Blocks until a `POST /shutdown` stops the service, then joins
    /// the accept loop, the handler pool, and every worker supervisor.
    pub fn wait(mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        for h in self.handlers.drain(..) {
            let _ = h.join();
        }
        for h in self.supervisors.drain(..) {
            let _ = h.join();
        }
    }
}

/// Startup orphan recovery: a killed server leaves checkpoints (but no
/// cached result) for every job that was mid-flight. Each one is
/// re-enqueued from the spec embedded in its checkpoint meta, so the
/// replacement workers resume it from its last checkpoint instead of
/// cycle zero. No job is running yet, so corrupt files are necessarily
/// torn leftovers — dropped and counted, never trusted.
fn recover_orphans(shared: &Arc<Shared>, dir: &Path) {
    let Ok(scan) = ckpt::scan(dir) else { return };
    for path in &scan.corrupt {
        if fs::remove_file(path).is_ok() {
            shared.metrics.checkpoints_dropped_corrupt.inc();
        }
    }
    // Stale atomic-write temps (a kill between write and rename) are
    // litter — no job is running yet, so all of them can go.
    if let Ok(rd) = fs::read_dir(dir) {
        for e in rd.filter_map(Result::ok) {
            let p = e.path();
            if p.extension().is_some_and(|x| x == "tmp") {
                let _ = fs::remove_file(&p);
            }
        }
    }
    // `scan.valid` is newest-first; the first checkpoint seen per digest
    // is the one a resume would pick.
    let mut seen = std::collections::HashSet::new();
    for (_, ck) in &scan.valid {
        if !seen.insert(ck.config_digest) || ck.meta("kind") != Some("serve-job") {
            continue;
        }
        if shared.cache.get(ck.config_digest).is_some() {
            // Completed job with stale checkpoints (e.g. killed between
            // the cache insert and the checkpoint cleanup).
            let _ = ckpt::delete_for_digest(dir, ck.config_digest);
            continue;
        }
        let Some(spec) = ck
            .meta("spec")
            .and_then(|s| parse(s).ok())
            .and_then(|v| JobSpec::from_json(&v).ok())
        else {
            continue;
        };
        // Re-enqueue with a dead reply channel: no client is waiting,
        // but the in-flight entry lets a resubmission join the resumed
        // execution, and completion lands in the (persistent) cache.
        let mut inflight = lock_ignore_poison(&shared.inflight);
        if inflight.contains_key(&ck.config_digest) {
            continue;
        }
        let (tx, _rx) = mpsc::channel();
        match shared.queue.try_push(QueuedJob {
            spec,
            digest: ck.config_digest,
            enqueued: Instant::now(),
            reply: tx,
        }) {
            Ok(()) => {
                inflight.insert(ck.config_digest, Vec::new());
                shared.metrics.jobs_queued.inc();
                shared.metrics.jobs_inflight.inc();
                println!(
                    "resuming orphaned job {:016x} from checkpoint at cycle {}",
                    ck.config_digest, ck.cycle
                );
            }
            // Queue full or closed: remaining orphans stay on disk and
            // resume when resubmitted (or at the next restart).
            Err(_) => break,
        }
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>, conns: &Arc<BoundedQueue<TcpStream>>) {
    for stream in listener.incoming() {
        if shared.shutting_down.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        match conns.try_push_or_return(stream) {
            Ok(()) => {}
            Err((mut stream, PushError::Full)) => {
                // The handler pool and its backlog are saturated:
                // refuse fast instead of growing without bound.
                shared.metrics.conns_rejected.inc();
                let _ = stream.write_all(&render_response(
                    503,
                    &[("Retry-After", "1".to_string())],
                    "application/json",
                    error_body("overloaded", "connection backlog full; retry later").as_bytes(),
                    true,
                ));
            }
            Err((_, PushError::Closed)) => break,
        }
    }
    conns.close();
}

fn supervise_worker(index: usize, shared: &Arc<Shared>) {
    // The orphan slot: a worker that is about to take an injected panic
    // parks its job here; the replacement worker picks it up first.
    let orphan: Arc<Mutex<Option<QueuedJob>>> = Arc::new(Mutex::new(None));
    loop {
        let initial = lock_ignore_poison(&orphan).take();
        let worker = {
            let shared = Arc::clone(shared);
            let orphan = Arc::clone(&orphan);
            std::thread::Builder::new()
                .name(format!("recon-worker-{index}"))
                .spawn(move || worker_loop(&shared, &orphan, initial))
                .expect("spawn worker")
        };
        match worker.join() {
            // Clean exit: the queue closed. The supervisor's job is done.
            Ok(()) => return,
            // The worker died. Count the restart and respawn; the
            // orphaned job (if any) is recovered on the next iteration
            // and executed immune to further injected panics, so the
            // supervisor always makes progress.
            Err(_) => shared.metrics.worker_restarts.inc(),
        }
    }
}

fn worker_loop(
    shared: &Arc<Shared>,
    orphan: &Arc<Mutex<Option<QueuedJob>>>,
    initial: Option<QueuedJob>,
) {
    let mut recovered = initial;
    loop {
        let (job, immune) = match recovered.take() {
            Some(job) => (job, true),
            None => match shared.queue.pop() {
                Some(job) => (job, false),
                None => return,
            },
        };
        if !immune {
            // chaos seam: worker panic mid-job. The job is parked in
            // the orphan slot first, so the supervisor's replacement
            // worker recovers it — the client never observes the crash.
            if shared.chaos.decide(FaultSite::WorkerPanic, job.digest) {
                *lock_ignore_poison(orphan) = Some(job);
                panic!("chaos: injected worker panic");
            }
            // chaos seam: artificial job latency.
            let lat = shared.chaos.latency(job.digest);
            if !lat.is_zero() {
                std::thread::sleep(lat);
            }
        }
        run_one(shared, &job);
    }
}

/// Executes one job and notifies the submitter plus every single-flight
/// joiner. The cache insert happens **before** the in-flight entry is
/// removed, so a resubmission that finds no in-flight entry is
/// guaranteed to find the cached result instead — a retried job is
/// never double-executed.
fn run_one(shared: &Arc<Shared>, job: &QueuedJob) {
    shared.metrics.jobs_running.inc();
    let cancel = Arc::clone(&shared.cancel);
    let exec_started = Instant::now();
    let (result, ckpt_info) = catch_unwind(AssertUnwindSafe(|| {
        job::execute_ckpt(&job.spec, Some(&cancel), shared.ckpt.as_ref())
    }))
    .unwrap_or_else(|_| {
        (
            Err(JobError::Failed(
                "job panicked (worker pool intact)".to_string(),
            )),
            None,
        )
    });
    shared.metrics.jobs_running.dec();
    if let Some(info) = ckpt_info {
        shared
            .metrics
            .checkpoints_written
            .add(info.checkpoints_written);
        if info.resumed_from_cycle.is_some() {
            shared.metrics.checkpoints_resumed.inc();
        }
        shared
            .metrics
            .checkpoints_dropped_corrupt
            .add(info.dropped_corrupt);
        shared.metrics.checkpoints_gc_deleted.add(info.gc_deleted);
    }
    // chaos seam: the newest checkpoint this job left on disk is torn,
    // as if the process died mid-write — recovery (here at the next
    // resume, or at startup) must drop it without changing any response
    // byte.
    if let Some(dir) = shared.ckpt.as_ref().and_then(|p| p.dir.as_deref()) {
        if shared.chaos.decide(FaultSite::CkptTorn, job.digest) {
            tear_newest_checkpoint(dir, job.digest);
        }
    }
    shared
        .metrics
        .observe_latency(job.spec.kind, job.enqueued.elapsed().as_secs_f64());
    match &result {
        Ok(out) => {
            shared.metrics.jobs_completed.inc();
            shared.metrics.trace_ring_dropped.add(out.trace_dropped);
            shared.metrics.sim_instructions.add(out.instructions);
            shared
                .metrics
                .sim_exec_micros
                .add(exec_started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64);
            shared
                .cache
                .insert(job.digest, Arc::new(out.payload.clone()));
        }
        Err(JobError::DeadlineExceeded { .. }) => shared.metrics.jobs_deadline.inc(),
        Err(JobError::Stalled { .. }) => shared.metrics.stalls_detected.inc(),
        Err(JobError::AuditViolated { .. }) => shared.metrics.audit_violations.inc(),
        Err(JobError::Cancelled) => shared.metrics.jobs_cancelled.inc(),
        Err(JobError::Invalid(_) | JobError::Failed(_)) => shared.metrics.jobs_failed.inc(),
    }
    notify(shared, job, &result);
}

/// Removes the job's in-flight entry and fans the result out to the
/// submitter and every joiner. A failed send means that client gave up
/// (disconnected) — not an error.
/// Truncates the newest on-disk checkpoint of `digest` to half its
/// bytes (the chaos plane's torn-checkpoint injection).
fn tear_newest_checkpoint(dir: &Path, digest: u64) {
    let Ok(scan) = ckpt::scan(dir) else { return };
    if let Some((path, _)) = scan.latest_for(digest) {
        if let Ok(bytes) = fs::read(path) {
            let _ = fs::write(path, &bytes[..bytes.len() / 2]);
        }
    }
}

fn notify(shared: &Arc<Shared>, job: &QueuedJob, result: &JobResult) {
    let waiters = lock_ignore_poison(&shared.inflight)
        .remove(&job.digest)
        .unwrap_or_default();
    shared.metrics.jobs_inflight.dec();
    let _ = job.reply.send(result.clone());
    for w in waiters {
        let _ = w.send(result.clone());
    }
}

fn error_body(kind: &str, message: &str) -> String {
    format!(
        "{{\"error\":\"{kind}\",\"message\":\"{}\"}}",
        escape(message)
    )
}

/// Whether the connection stays open after a response.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum ConnOutcome {
    Keep,
    Close,
}

/// Writes a rendered response and flushes.
fn send(
    writer: &mut impl Write,
    status: u16,
    extra_headers: &[(&str, String)],
    content_type: &str,
    body: &[u8],
    close: bool,
) -> io::Result<ConnOutcome> {
    writer.write_all(&render_response(
        status,
        extra_headers,
        content_type,
        body,
        close,
    ))?;
    writer.flush()?;
    Ok(if close {
        ConnOutcome::Close
    } else {
        ConnOutcome::Keep
    })
}

fn handle_connection(
    stream: TcpStream,
    shared: &Arc<Shared>,
    self_addr: Option<SocketAddr>,
    (read_timeout, write_timeout): (Duration, Duration),
) -> io::Result<()> {
    stream.set_read_timeout(Some(read_timeout.max(Duration::from_millis(1))))?;
    stream.set_write_timeout(Some(write_timeout.max(Duration::from_millis(1))))?;
    stream.set_nodelay(true)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);

    // Keep-alive loop: one iteration per exchange. `Ok(None)` from the
    // reader is a clean end (peer closed, or sat idle past the read
    // timeout); a framing error gets a best-effort 400 and a close —
    // the server never hangs on, or propagates, malformed bytes.
    loop {
        let req = match read_request(&mut reader) {
            Ok(Some(req)) => req,
            Ok(None) => return Ok(()),
            Err(_) => {
                let body = error_body("malformed_request", "unparseable HTTP request");
                let _ = send(
                    &mut writer,
                    400,
                    &[],
                    "application/json",
                    body.as_bytes(),
                    true,
                );
                return Ok(());
            }
        };
        let close = req.wants_close() || shared.shutting_down.load(Ordering::SeqCst);
        let outcome = route(&req, &mut writer, shared, self_addr, close)?;
        if close || outcome == ConnOutcome::Close {
            return Ok(());
        }
    }
}

fn route(
    req: &Request,
    writer: &mut impl Write,
    shared: &Arc<Shared>,
    self_addr: Option<SocketAddr>,
    close: bool,
) -> io::Result<ConnOutcome> {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => send(
            writer,
            200,
            &[],
            "application/json",
            b"{\"status\":\"ok\"}",
            close,
        ),
        ("GET", "/metrics") => {
            let mut body = shared.metrics.render(
                shared.queue.len(),
                shared.queue.capacity(),
                shared.node_id.as_deref(),
            );
            body.push_str(&shared.chaos.render_metrics());
            send(
                writer,
                200,
                &[],
                "text/plain; version=0.0.4",
                body.as_bytes(),
                close,
            )
        }
        ("GET", "/workloads") => send(
            writer,
            200,
            &[],
            "application/json",
            crate::job::workloads_payload().as_bytes(),
            close,
        ),
        ("POST", "/jobs") => handle_job(req, writer, shared, close),
        ("POST", "/jobs/batch") => handle_batch(req, writer, shared, close),
        ("POST", "/migrate") => handle_migrate(req, writer, shared, close),
        ("POST", "/cache") => handle_cache_put(req, writer, shared, close),
        ("POST", "/drain") => handle_drain(req, writer, shared, self_addr),
        ("POST", "/shutdown") => handle_shutdown(req, writer, shared, self_addr),
        ("GET" | "POST", _) => send(
            writer,
            404,
            &[],
            "application/json",
            error_body("not_found", &req.path).as_bytes(),
            close,
        ),
        _ => send(
            writer,
            405,
            &[],
            "application/json",
            error_body("method_not_allowed", &req.method).as_bytes(),
            close,
        ),
    }
}

/// How a submission was admitted.
enum Submit {
    /// Served from the result cache.
    CacheHit(Arc<String>),
    /// Enqueued; the receiver yields the execution's result.
    Enqueued(mpsc::Receiver<JobResult>),
    /// Joined an identical in-flight execution (single-flight).
    Joined(mpsc::Receiver<JobResult>),
    /// Refused: queue at capacity.
    Full,
    /// Refused: shutting down.
    Closed,
}

/// Admission control for one validated spec. Cache, in-flight table,
/// and enqueue are checked under one lock so a digest is never executed
/// twice concurrently, and a completed execution is always visible
/// (cache insert happens before the in-flight entry is removed).
fn submit(shared: &Arc<Shared>, spec: JobSpec, digest: u64) -> Submit {
    let mut inflight = lock_ignore_poison(&shared.inflight);
    if let Some(hit) = shared.cache.get(digest) {
        shared.metrics.cache_hits.inc();
        return Submit::CacheHit(hit);
    }
    if let Some(waiters) = inflight.get_mut(&digest) {
        let (tx, rx) = mpsc::channel();
        waiters.push(tx);
        shared.metrics.singleflight_joined.inc();
        return Submit::Joined(rx);
    }
    let (tx, rx) = mpsc::channel();
    match shared.queue.try_push(QueuedJob {
        spec,
        digest,
        enqueued: Instant::now(),
        reply: tx,
    }) {
        Ok(()) => {
            inflight.insert(digest, Vec::new());
            shared.metrics.jobs_queued.inc();
            shared.metrics.jobs_inflight.inc();
            shared.metrics.cache_misses.inc();
            Submit::Enqueued(rx)
        }
        Err(PushError::Full) => {
            shared.metrics.jobs_rejected.inc();
            Submit::Full
        }
        Err(PushError::Closed) => Submit::Closed,
    }
}

/// Maps a job result to `(status, cache-header, checkpoint-header,
/// body)`. The checkpoint ref travels as a header (`X-Recon-Checkpoint`)
/// rather than in the body, so deadline payloads stay byte-stable
/// across retries that resume from different checkpoints.
fn job_response(
    reply: JobResult,
    cache_state: &str,
) -> (u16, Option<String>, Option<String>, String) {
    match reply {
        Ok(out) => (200, Some(cache_state.to_string()), None, out.payload),
        Err(JobError::DeadlineExceeded {
            payload,
            checkpoint,
            ..
        }) => (408, None, checkpoint, payload),
        Err(JobError::Stalled { payload }) => (500, None, None, payload),
        Err(JobError::AuditViolated { payload }) => (500, None, None, payload),
        Err(JobError::Cancelled) => (
            503,
            None,
            None,
            error_body("cancelled", "job cancelled by shutdown"),
        ),
        Err(JobError::Invalid(msg)) => (400, None, None, error_body("invalid_job", &msg)),
        Err(JobError::Failed(msg)) => (500, None, None, error_body("job_failed", &msg)),
    }
}

fn handle_job(
    req: &Request,
    writer: &mut impl Write,
    shared: &Arc<Shared>,
    close: bool,
) -> io::Result<ConnOutcome> {
    let bad = |writer: &mut _, msg: &str| {
        send(
            writer,
            400,
            &[],
            "application/json",
            error_body("invalid_job", msg).as_bytes(),
            close,
        )
    };
    let Some(body) = req.body_str() else {
        return bad(writer, "body is not UTF-8");
    };
    let parsed = match parse(body) {
        Ok(v) => v,
        Err(e) => return bad(writer, &e),
    };
    let spec = match JobSpec::from_json(&parsed) {
        Ok(s) => s,
        Err(e) => return bad(writer, &e),
    };
    let digest = spec.digest();

    // chaos seam: connection dropped after the request was read, before
    // any response byte — the submission vanishes mid-flight.
    if shared.chaos.decide(FaultSite::DropRequest, digest) {
        return Ok(ConnOutcome::Close);
    }
    // chaos seam: synthetic queue-saturation burst.
    if shared.chaos.decide(FaultSite::QueueBurst, digest) {
        return send_job_response(
            writer,
            shared,
            digest,
            429,
            &[("Retry-After", "1".to_string())],
            error_body("queue_full", "bounded queue at capacity; retry later").as_bytes(),
            close,
        );
    }

    let (status, cache_header, ckpt_header, payload): (
        u16,
        Option<String>,
        Option<String>,
        String,
    ) = match submit(shared, spec, digest) {
        Submit::CacheHit(hit) => (200, Some("hit".to_string()), None, hit.as_str().to_string()),
        Submit::Full => {
            return send_job_response(
                writer,
                shared,
                digest,
                429,
                &[("Retry-After", "1".to_string())],
                error_body("queue_full", "bounded queue at capacity; retry later").as_bytes(),
                close,
            );
        }
        Submit::Closed => {
            return send_job_response(
                writer,
                shared,
                digest,
                503,
                &[],
                error_body("shutting_down", "server is draining; not accepting jobs").as_bytes(),
                close,
            );
        }
        Submit::Enqueued(rx) | Submit::Joined(rx) => {
            // The worker always replies (panics are caught, orphans
            // are recovered); RecvError can only mean the pool is
            // gone mid-shutdown.
            let reply = rx.recv().unwrap_or(Err(JobError::Cancelled));
            job_response(reply, "miss")
        }
    };
    let mut headers: Vec<(&str, String)> = cache_header
        .into_iter()
        .map(|v| ("X-Recon-Cache", v))
        .collect();
    if let Some(c) = ckpt_header {
        headers.push(("X-Recon-Checkpoint", c));
    }
    send_job_response(
        writer,
        shared,
        digest,
        status,
        &headers,
        payload.as_bytes(),
        close,
    )
}

/// Writes a `/jobs` response through the chaos plane's response seams:
/// the rendered bytes may be cut mid-write, truncated to a header
/// fragment, or replaced with garbage — all keyed by the job digest, so
/// the same retry sequence sees the same faults on every run.
fn send_job_response(
    writer: &mut impl Write,
    shared: &Arc<Shared>,
    digest: u64,
    status: u16,
    extra_headers: &[(&str, String)],
    body: &[u8],
    close: bool,
) -> io::Result<ConnOutcome> {
    match shared.chaos.response_fault(digest) {
        ResponseFault::None => send(
            writer,
            status,
            extra_headers,
            "application/json",
            body,
            close,
        ),
        ResponseFault::DropMidWrite => {
            let rendered = render_response(status, extra_headers, "application/json", body, close);
            writer.write_all(&rendered[..rendered.len() / 2])?;
            writer.flush()?;
            Ok(ConnOutcome::Close)
        }
        ResponseFault::TruncatedHttp => {
            let rendered = render_response(status, extra_headers, "application/json", body, close);
            let cut = rendered.len().min(20);
            writer.write_all(&rendered[..cut])?;
            writer.flush()?;
            Ok(ConnOutcome::Close)
        }
        ResponseFault::Garbage => {
            writer.write_all(&garbage_bytes(digest))?;
            writer.flush()?;
            Ok(ConnOutcome::Close)
        }
    }
}

/// `POST /jobs/batch`: many specs in one request, each admitted through
/// the same cache/single-flight/queue path as `POST /jobs`, answered
/// with per-spec statuses in submission order. The batch endpoint is
/// not a chaos seam — per-job faults are injected on `/jobs`, where the
/// retry contract is per-digest.
fn handle_batch(
    req: &Request,
    writer: &mut impl Write,
    shared: &Arc<Shared>,
    close: bool,
) -> io::Result<ConnOutcome> {
    let bad = |writer: &mut _, msg: &str| {
        send(
            writer,
            400,
            &[],
            "application/json",
            error_body("invalid_batch", msg).as_bytes(),
            close,
        )
    };
    let Some(body) = req.body_str() else {
        return bad(writer, "body is not UTF-8");
    };
    let parsed = match parse(body) {
        Ok(v) => v,
        Err(e) => return bad(writer, &e),
    };
    let Some(jobs) = parsed.get("jobs").and_then(Json::as_array) else {
        return bad(writer, "batch must be {\"jobs\":[<spec>, ...]}");
    };
    if jobs.is_empty() {
        return bad(writer, "batch is empty");
    }
    if jobs.len() > MAX_BATCH {
        return bad(
            writer,
            &format!("batch of {} exceeds the cap of {MAX_BATCH}", jobs.len()),
        );
    }

    // Admit everything first (sharing the queue's capacity), then wait:
    // independent jobs execute concurrently across the worker pool
    // instead of serializing one recv at a time.
    enum Pending {
        Done(u16, Option<String>, String),
        Waiting(mpsc::Receiver<JobResult>),
    }
    let mut pending = Vec::with_capacity(jobs.len());
    for v in jobs {
        match JobSpec::from_json(v) {
            Err(e) => pending.push(Pending::Done(400, None, error_body("invalid_job", &e))),
            Ok(spec) => {
                let digest = spec.digest();
                match submit(shared, spec, digest) {
                    Submit::CacheHit(hit) => pending.push(Pending::Done(
                        200,
                        Some("hit".to_string()),
                        hit.as_str().to_string(),
                    )),
                    Submit::Full => pending.push(Pending::Done(
                        429,
                        None,
                        error_body("queue_full", "bounded queue at capacity; retry later"),
                    )),
                    Submit::Closed => pending.push(Pending::Done(
                        503,
                        None,
                        error_body("shutting_down", "server is draining; not accepting jobs"),
                    )),
                    Submit::Enqueued(rx) | Submit::Joined(rx) => {
                        pending.push(Pending::Waiting(rx));
                    }
                }
            }
        }
    }

    let mut out = String::with_capacity(256 * pending.len());
    out.push_str("{\"results\":[");
    for (i, p) in pending.into_iter().enumerate() {
        let (status, cache_state, payload) = match p {
            Pending::Done(s, c, b) => (s, c, b),
            Pending::Waiting(rx) => {
                let reply = rx.recv().unwrap_or(Err(JobError::Cancelled));
                // The checkpoint ref is a header on `/jobs`; batch
                // responses are multiplexed bodies, so it is dropped.
                let (s, c, _ckpt, b) = job_response(reply, "miss");
                (s, c, b)
            }
        };
        if i > 0 {
            out.push(',');
        }
        use std::fmt::Write as _;
        let _ = write!(out, "{{\"status\":{status},");
        if let Some(c) = cache_state {
            let _ = write!(out, "\"cache\":\"{c}\",");
        }
        // Payloads are themselves JSON objects, embedded raw.
        let _ = write!(out, "\"body\":{payload}}}");
    }
    out.push_str("]}");
    send(writer, 200, &[], "application/json", out.as_bytes(), close)
}

/// `POST /migrate`: accepts raw RCK1 checkpoint bytes from a draining
/// peer node. The checkpoint is decoded and validated (magic, checksum,
/// an embedded `serve-job` spec whose digest matches the checkpoint's
/// own `config_digest`) — bytes from the wire are never trusted — then
/// written into this node's checkpoint directory through the same
/// atomic temp+rename path local jobs use. The job is re-enqueued
/// best-effort with a dead reply channel (exactly like startup orphan
/// recovery): even when the queue is full, the on-disk checkpoint means
/// any later submission of the digest resumes mid-run instead of
/// starting from cycle zero.
fn handle_migrate(
    req: &Request,
    writer: &mut impl Write,
    shared: &Arc<Shared>,
    close: bool,
) -> io::Result<ConnOutcome> {
    let bad = |writer: &mut _, msg: &str| {
        send(
            writer,
            400,
            &[],
            "application/json",
            error_body("invalid_migration", msg).as_bytes(),
            close,
        )
    };
    let Some(dir) = shared.ckpt.as_ref().and_then(|p| p.dir.clone()) else {
        return bad(writer, "node has no checkpoint directory (--cache-dir)");
    };
    let ck = match ckpt::Checkpoint::decode(&req.body) {
        Ok(ck) => ck,
        Err(e) => return bad(writer, &format!("checkpoint rejected: {e:?}")),
    };
    if ck.meta("kind") != Some("serve-job") {
        return bad(writer, "checkpoint does not embed a serve-job spec");
    }
    let Some(spec) = ck
        .meta("spec")
        .and_then(|s| parse(s).ok())
        .and_then(|v| JobSpec::from_json(&v).ok())
    else {
        return bad(writer, "embedded spec does not parse or validate");
    };
    if spec.digest() != ck.config_digest {
        return bad(writer, "embedded spec digest does not match checkpoint");
    }
    let digest = ck.config_digest;
    let cycle = ck.cycle;
    if let Err(e) = ckpt::write(&dir, &ck) {
        return send(
            writer,
            500,
            &[],
            "application/json",
            error_body("migration_failed", &format!("checkpoint write: {e}")).as_bytes(),
            close,
        );
    }
    shared.metrics.migrations_in.inc();

    // Best-effort resume: enqueue with a dead reply channel so the
    // migrated job starts executing before anyone resubmits it.
    let mut enqueued = false;
    if shared.cache.get(digest).is_none() {
        let mut inflight = lock_ignore_poison(&shared.inflight);
        if let std::collections::hash_map::Entry::Vacant(slot) = inflight.entry(digest) {
            let (tx, _rx) = mpsc::channel();
            if shared
                .queue
                .try_push(QueuedJob {
                    spec,
                    digest,
                    enqueued: Instant::now(),
                    reply: tx,
                })
                .is_ok()
            {
                slot.insert(Vec::new());
                shared.metrics.jobs_queued.inc();
                shared.metrics.jobs_inflight.inc();
                enqueued = true;
            }
        }
    }
    let body = format!(
        "{{\"status\":\"accepted\",\"digest\":\"{digest:016x}\",\"cycle\":{cycle},\"enqueued\":{enqueued}}}"
    );
    send(writer, 200, &[], "application/json", body.as_bytes(), close)
}

/// `POST /cache`: accepts a replicated result from the gateway —
/// `{"digest":"<16 hex>","payload":"<result JSON as a string>"}` — so
/// the ring successor can answer this digest from cache if the primary
/// dies. First-write-wins like every other cache insert.
fn handle_cache_put(
    req: &Request,
    writer: &mut impl Write,
    shared: &Arc<Shared>,
    close: bool,
) -> io::Result<ConnOutcome> {
    let bad = |writer: &mut _, msg: &str| {
        send(
            writer,
            400,
            &[],
            "application/json",
            error_body("invalid_replication", msg).as_bytes(),
            close,
        )
    };
    let Some(body) = req.body_str() else {
        return bad(writer, "body is not UTF-8");
    };
    let parsed = match parse(body) {
        Ok(v) => v,
        Err(e) => return bad(writer, &e),
    };
    let Some(digest) = parsed
        .get("digest")
        .and_then(Json::as_str)
        .and_then(|s| u64::from_str_radix(s, 16).ok())
    else {
        return bad(writer, "digest must be a hex string");
    };
    let Some(payload) = parsed.get("payload").and_then(Json::as_str) else {
        return bad(writer, "payload must be a string");
    };
    shared.cache.insert(digest, Arc::new(payload.to_string()));
    shared.metrics.replications_in.inc();
    send(
        writer,
        200,
        &[],
        "application/json",
        format!("{{\"status\":\"stored\",\"digest\":\"{digest:016x}\"}}").as_bytes(),
        close,
    )
}

/// `POST /drain`: planned evacuation. The node stops admitting work,
/// cancels everything queued or running (cancelled runs keep their
/// newest on-disk checkpoint at the last commit boundary), waits for
/// the workers to go quiet, then — if the body names a `{"to":"addr"}`
/// target — ships the newest checkpoint of every unfinished job to that
/// peer's `/migrate` endpoint. The response reports how many jobs
/// migrated, *after* the shipping completed, so the caller knows the
/// hand-off is durable before this node exits.
fn handle_drain(
    req: &Request,
    writer: &mut impl Write,
    shared: &Arc<Shared>,
    self_addr: Option<SocketAddr>,
) -> io::Result<ConnOutcome> {
    use std::net::ToSocketAddrs as _;
    let to: Option<SocketAddr> = match req.body_str().filter(|b| !b.trim().is_empty()) {
        None => None,
        Some(body) => match parse(body) {
            Ok(v) => match v.get("to").and_then(Json::as_str) {
                None => None,
                Some(addr) => match addr.to_socket_addrs().ok().and_then(|mut a| a.next()) {
                    Some(a) => Some(a),
                    None => {
                        return send(
                            writer,
                            400,
                            &[],
                            "application/json",
                            error_body("invalid_drain", &format!("unresolvable target '{addr}'"))
                                .as_bytes(),
                            true,
                        );
                    }
                },
            },
            Err(e) => {
                return send(
                    writer,
                    400,
                    &[],
                    "application/json",
                    error_body("invalid_drain", &e).as_bytes(),
                    true,
                );
            }
        },
    };

    // Stop admissions, cancel queued + running work, let the workers
    // wind down. Cancelled clients get 503 (no Retry-After) and their
    // retries will be refused here and rerouted by the gateway.
    shared.shutting_down.store(true, Ordering::SeqCst);
    shared.cancel.store(true, Ordering::SeqCst);
    shared.queue.close();
    let deadline = Instant::now() + Duration::from_secs(60);
    while (shared.metrics.jobs_running.get() > 0 || !shared.queue.is_empty())
        && Instant::now() < deadline
    {
        std::thread::sleep(Duration::from_millis(5));
    }
    // Settle: the last worker decrements jobs_running before its final
    // bookkeeping (cache insert, notify) finishes.
    std::thread::sleep(Duration::from_millis(50));

    let mut migrated = 0u64;
    let mut failed = 0u64;
    if let (Some(to_addr), Some(dir)) = (to, shared.ckpt.as_ref().and_then(|p| p.dir.clone())) {
        if let Ok(scan) = ckpt::scan(&dir) {
            // `scan.valid` is newest-first: ship one checkpoint per
            // digest, skipping jobs that already have a cached result.
            let mut seen = std::collections::HashSet::new();
            for (path, ck) in &scan.valid {
                if !seen.insert(ck.config_digest)
                    || ck.meta("kind") != Some("serve-job")
                    || shared.cache.get(ck.config_digest).is_some()
                {
                    continue;
                }
                let shipped = fs::read(path).ok().and_then(|bytes| {
                    crate::client::request_bytes(
                        to_addr,
                        "POST",
                        "/migrate",
                        "application/octet-stream",
                        &bytes,
                    )
                    .ok()
                });
                match shipped {
                    Some(resp) if resp.status == 200 => {
                        shared.metrics.migrations_out.inc();
                        migrated += 1;
                        println!(
                            "drained job {:016x} (checkpoint at cycle {}) to {to_addr}",
                            ck.config_digest, ck.cycle
                        );
                    }
                    _ => failed += 1,
                }
            }
        }
    }

    let body = format!("{{\"status\":\"drained\",\"migrated\":{migrated},\"failed\":{failed}}}");
    send(writer, 200, &[], "application/json", body.as_bytes(), true)?;
    // Poke the accept loop so it observes the flag and returns.
    if let Some(addr) = self_addr {
        let _ = TcpStream::connect(addr);
    }
    Ok(ConnOutcome::Close)
}

fn handle_shutdown(
    req: &Request,
    writer: &mut impl Write,
    shared: &Arc<Shared>,
    self_addr: Option<SocketAddr>,
) -> io::Result<ConnOutcome> {
    let mode = match req.body_str().filter(|b| !b.trim().is_empty()) {
        None => ShutdownMode::Graceful,
        Some(body) => match parse(body) {
            Ok(v) => match v.get("mode").and_then(Json::as_str) {
                None | Some("graceful") => ShutdownMode::Graceful,
                Some("abort") => ShutdownMode::Abort,
                Some(other) => {
                    return send(
                        writer,
                        400,
                        &[],
                        "application/json",
                        error_body("invalid_shutdown", &format!("unknown mode '{other}'"))
                            .as_bytes(),
                        true,
                    );
                }
            },
            Err(e) => {
                return send(
                    writer,
                    400,
                    &[],
                    "application/json",
                    error_body("invalid_shutdown", &e).as_bytes(),
                    true,
                );
            }
        },
    };

    // Answer first so the client is not racing the teardown.
    let body = format!(
        "{{\"status\":\"shutting_down\",\"mode\":\"{}\",\"queued\":{}}}",
        if mode == ShutdownMode::Abort {
            "abort"
        } else {
            "graceful"
        },
        shared.queue.len()
    );
    send(writer, 200, &[], "application/json", body.as_bytes(), true)?;

    shared.shutting_down.store(true, Ordering::SeqCst);
    if mode == ShutdownMode::Abort {
        shared.cancel.store(true, Ordering::SeqCst);
        for job in shared.queue.drain() {
            shared.metrics.jobs_cancelled.inc();
            notify(shared, &job, &Err(JobError::Cancelled));
        }
    }
    // Close the queue: workers drain the (graceful) backlog, then exit.
    shared.queue.close();
    // Poke the accept loop so it observes the flag and returns.
    if let Some(addr) = self_addr {
        let _ = TcpStream::connect(addr);
    }
    Ok(ConnOutcome::Close)
}

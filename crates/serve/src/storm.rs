//! `recon chaos`: a seeded fault storm against a loopback server.
//!
//! Starts an in-process server with the chaos plane enabled, fans out
//! client threads over a deterministic mix of *unique-digest* jobs
//! (every fault class armed), and drives each request through the
//! self-healing client ([`crate::client::submit_with_retry`] over a
//! keep-alive [`crate::client::Connection`]). The storm then checks the
//! robustness claim end-to-end:
//!
//! 1. **Nothing is lost** — every request ends in a final response
//!    despite dropped connections, corrupted bytes, synthetic `429`
//!    bursts, and panicking workers.
//! 2. **Nothing is wrong** — every `200` body is byte-identical to a
//!    direct in-process execution of the same spec, and every deadline
//!    spec answers its exact `408` partial-stats body. Faults can delay
//!    an answer; they can never change it.
//! 3. **The storm itself is reproducible** — job digests are disjoint
//!    across clients and every client is serial, so each digest's
//!    fault-draw sequence is consumed in submission order regardless of
//!    thread interleaving: the same seed yields the same per-site
//!    injected-fault counts on every run.
//!
//! Determinism prerequisites (all arranged here): `queue_cap >=
//! clients` so no timing-dependent *real* `429`s occur, generous
//! client/server timeouts so no timing-dependent timeout ever fires,
//! and worker panics recovered internally so clients never observe
//! them.

use std::io::{self, Write as _};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::chaos::FaultSite;
use crate::client::{Connection, RetryPolicy};
use crate::job::{self, CkptPlan, JobError, JobSpec};
use crate::json::parse;
use crate::server::{ServeConfig, Server};

/// Checkpoint cadence for storm jobs, in simulated cycles — small
/// enough that run jobs cross several checkpoint boundaries, so the
/// torn-checkpoint seam and resume-on-retry paths are actually
/// exercised.
const STORM_CKPT_EVERY: u64 = 5_000;

/// Storm configuration (the `recon chaos` flags).
#[derive(Clone, Debug)]
pub struct ChaosStormConfig {
    /// Chaos seed: same seed ⇒ same injected-fault counts.
    pub seed: u64,
    /// Concurrent client threads (each with a disjoint job slice).
    pub clients: usize,
    /// Requests per client.
    pub requests: usize,
    /// Fault rates, as the `<site>=<permil>` tail of a `--chaos` spec
    /// (every class should be armed for a full storm).
    pub faults: String,
    /// Worker threads for the in-process server.
    pub workers: usize,
    /// Report path (`None` skips the file).
    pub out: Option<String>,
}

impl Default for ChaosStormConfig {
    fn default() -> Self {
        ChaosStormConfig {
            seed: 42,
            clients: 6,
            requests: 8,
            faults: "all=80,max-latency-ms=2".to_string(),
            workers: std::thread::available_parallelism().map_or(2, |n| n.get().min(8)),
            out: Some("BENCH_chaos.json".to_string()),
        }
    }
}

/// Aggregated results of one storm.
#[derive(Clone, Debug, Default)]
pub struct ChaosStormReport {
    /// The chaos seed used.
    pub seed: u64,
    /// Client threads.
    pub clients: usize,
    /// Requests per client.
    pub requests_per_client: usize,
    /// The fault-rate spec used.
    pub faults: String,
    /// Final `200` responses matching the direct execution byte-for-byte.
    pub ok: u64,
    /// Final `408` responses matching the expected partial-stats body.
    pub deadline: u64,
    /// Final responses whose body differed from the direct execution
    /// (must be 0).
    pub mismatches: u64,
    /// Requests with no final response — retries exhausted or an
    /// unexpected status (must be 0).
    pub lost: u64,
    /// Extra attempts beyond the first, across all requests (how much
    /// self-healing the storm demanded).
    pub retries: u64,
    /// TCP reconnects performed by the clients (keep-alive connections
    /// re-dialed after a fault).
    pub reconnects: u64,
    /// Injected faults per site, in [`FaultSite::ALL`] order.
    pub injected: Vec<(String, u64)>,
    /// Total injected faults.
    pub injected_total: u64,
    /// Panicked workers restarted by the supervisor.
    pub worker_restarts: u64,
    /// Real queue rejections (0 in a deterministic storm — the
    /// synthetic bursts are counted under `injected` instead).
    pub jobs_rejected: u64,
    /// Result-cache hits (retries of completed jobs land here).
    pub cache_hits: u64,
    /// Result-cache misses (first executions).
    pub cache_misses: u64,
    /// Duplicate submissions joined to a running execution.
    pub singleflight_joined: u64,
    /// Simulation checkpoints written by storm jobs.
    pub checkpoints_written: u64,
    /// Jobs that resumed from an on-disk checkpoint (retried deadline
    /// jobs land here).
    pub checkpoints_resumed: u64,
    /// Torn checkpoints (the `ckpt-torn` seam's output) dropped during
    /// recovery instead of being trusted.
    pub checkpoints_dropped_corrupt: u64,
    /// Wall-clock for the storm, in seconds.
    pub wall_seconds: f64,
}

impl ChaosStormReport {
    /// Whether the storm met the robustness claim.
    #[must_use]
    pub fn pass(&self) -> bool {
        self.lost == 0 && self.mismatches == 0
    }

    /// Renders the report as the `BENCH_chaos.json` document.
    #[must_use]
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(s, "{{");
        let _ = writeln!(s, "  \"seed\": {},", self.seed);
        let _ = writeln!(s, "  \"clients\": {},", self.clients);
        let _ = writeln!(
            s,
            "  \"requests_per_client\": {},",
            self.requests_per_client
        );
        let _ = writeln!(s, "  \"faults\": \"{}\",", self.faults);
        let _ = writeln!(s, "  \"ok\": {},", self.ok);
        let _ = writeln!(s, "  \"deadline\": {},", self.deadline);
        let _ = writeln!(s, "  \"mismatches\": {},", self.mismatches);
        let _ = writeln!(s, "  \"lost\": {},", self.lost);
        let _ = writeln!(s, "  \"retries\": {},", self.retries);
        let _ = writeln!(s, "  \"reconnects\": {},", self.reconnects);
        let _ = writeln!(s, "  \"injected\": {{");
        for (i, (site, n)) in self.injected.iter().enumerate() {
            let comma = if i + 1 < self.injected.len() { "," } else { "" };
            let _ = writeln!(s, "    \"{site}\": {n}{comma}");
        }
        let _ = writeln!(s, "  }},");
        let _ = writeln!(s, "  \"injected_total\": {},", self.injected_total);
        let _ = writeln!(s, "  \"worker_restarts\": {},", self.worker_restarts);
        let _ = writeln!(s, "  \"jobs_rejected\": {},", self.jobs_rejected);
        let _ = writeln!(s, "  \"cache_hits\": {},", self.cache_hits);
        let _ = writeln!(s, "  \"cache_misses\": {},", self.cache_misses);
        let _ = writeln!(
            s,
            "  \"singleflight_joined\": {},",
            self.singleflight_joined
        );
        let _ = writeln!(
            s,
            "  \"checkpoints_written\": {},",
            self.checkpoints_written
        );
        let _ = writeln!(
            s,
            "  \"checkpoints_resumed\": {},",
            self.checkpoints_resumed
        );
        let _ = writeln!(
            s,
            "  \"checkpoints_dropped_corrupt\": {},",
            self.checkpoints_dropped_corrupt
        );
        let _ = writeln!(s, "  \"wall_seconds\": {:.6}", self.wall_seconds);
        let _ = writeln!(s, "}}");
        s
    }

    /// Writes [`Self::to_json`] to `path`.
    ///
    /// # Errors
    ///
    /// File I/O errors.
    pub fn write_json(&self, path: &str) -> io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.to_json().as_bytes())
    }
}

/// One request in a client's slice: the spec to send and the final
/// `(status, body)` it must eventually produce.
#[derive(Clone, Debug)]
struct Expected {
    json: String,
    digest: u64,
    status: u16,
    body: String,
}

/// Builds one client's request slice. Every spec carries a unique
/// `fuel` value, so digests are disjoint across the whole storm (the
/// keystone of reproducible injected-fault counts) while the payloads
/// of completing jobs stay identical to a run with any other
/// sufficient fuel.
fn build_slice(client_id: usize, requests: usize) -> Vec<Expected> {
    let schemes = ["unsafe", "nda", "nda+recon", "stt", "stt+recon"];
    (0..requests)
        .map(|r| {
            let uniq = (client_id * requests + r) as u64;
            let json = match r % 4 {
                // A full simulated run; ample fuel, unique digest.
                0 => format!(
                    r#"{{"kind":"run","suite":"spec2017","bench":"mcf","scheme":"{}","fuel":{}}}"#,
                    schemes[(client_id + r) % schemes.len()],
                    50_000_000 + uniq
                ),
                // A two-trace verifier cell under budget.
                1 => format!(
                    r#"{{"kind":"verify","gadget":"spectre-v1","scheme":"stt+recon","fuel":{}}}"#,
                    50_000_000 + uniq
                ),
                // Scheme-independent leakage analysis.
                2 => format!(
                    r#"{{"kind":"analyze","suite":"spec2017","bench":"mcf","fuel":{}}}"#,
                    100_000_000 + uniq
                ),
                // A fuel-starved run that must deadline with partial
                // stats — the 408 path stays correct under faults too.
                _ => format!(
                    r#"{{"kind":"run","suite":"spec2017","bench":"xalancbmk","scheme":"stt","fuel":{}}}"#,
                    1000 + uniq
                ),
            };
            let v = parse(&json).expect("storm spec parses");
            let spec = JobSpec::from_json(&v).expect("storm spec validates");
            let digest = spec.digest();
            // Cadence-only plan: same drain timing as the server's
            // persisted executions, no disk — the expected bytes must
            // be computed the way the server will compute them.
            let plan = CkptPlan {
                dir: None,
                cadence: STORM_CKPT_EVERY,
                keep: 2,
            };
            match job::execute_ckpt(&spec, None, Some(&plan)).0 {
                Ok(out) => Expected {
                    json,
                    digest,
                    status: 200,
                    body: out.payload,
                },
                Err(JobError::DeadlineExceeded { payload, .. }) => Expected {
                    json,
                    digest,
                    status: 408,
                    body: payload,
                },
                Err(e) => panic!("storm spec failed directly: {e:?}"),
            }
        })
        .collect()
}

#[derive(Default)]
struct ClientTally {
    ok: u64,
    deadline: u64,
    mismatches: u64,
    lost: u64,
    retries: u64,
    reconnects: u64,
}

fn client_loop(
    addr: std::net::SocketAddr,
    slice: &[Expected],
    seed: u64,
    client_id: usize,
) -> ClientTally {
    let mut t = ClientTally::default();
    // Generous timeout: nothing in the storm legitimately takes this
    // long, so timeouts never fire and never perturb determinism.
    let mut conn = Connection::with_timeout(addr, Duration::from_secs(60));
    let policy = RetryPolicy {
        max_attempts: 16,
        base_delay: Duration::from_millis(1),
        max_delay: Duration::from_millis(20),
        retry_after_cap: Duration::from_millis(20),
        seed: seed ^ (client_id as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        // The single-node storm's server stays up for the whole run;
        // refused would be a harness bug, so surface it as `lost`.
        fail_fast_refused: true,
    };
    let mut sleep = |d: Duration| std::thread::sleep(d);
    for expected in slice {
        match crate::client::submit_with_retry(
            &mut conn,
            &expected.json,
            expected.digest,
            &policy,
            &mut sleep,
        ) {
            Ok(r) => {
                t.retries += u64::from(r.attempts - 1);
                if r.response.status == expected.status && r.response.body == expected.body {
                    if r.response.status == 200 {
                        t.ok += 1;
                    } else {
                        t.deadline += 1;
                    }
                } else if r.response.status == expected.status {
                    t.mismatches += 1;
                } else {
                    t.lost += 1;
                }
            }
            Err(_) => {
                t.retries += u64::from(policy.max_attempts - 1);
                t.lost += 1;
            }
        }
    }
    t.reconnects = conn.connects().saturating_sub(1);
    t
}

/// Runs the storm and (optionally) writes the `BENCH_chaos.json`
/// report.
///
/// # Errors
///
/// I/O errors from the loopback server or the report file.
///
/// # Panics
///
/// Panics if a storm spec fails when executed directly (a bug in the
/// mix, not in the service).
pub fn run_chaos_storm(config: &ChaosStormConfig) -> io::Result<ChaosStormReport> {
    let clients = config.clients.max(1);
    let requests = config.requests.max(1);

    // Precompute every client's slice (and expected bytes) before the
    // server starts, so the storm clock measures serving, not setup.
    let slices: Vec<Arc<Vec<Expected>>> = (0..clients)
        .map(|c| Arc::new(build_slice(c, requests)))
        .collect();

    // A fresh scratch dir per storm: checkpoints and the persisted
    // result cache from a previous run would turn executions into cache
    // hits and perturb the injected-fault fixed point.
    let ckpt_dir = storm_scratch_dir(config.seed);
    let _ = std::fs::remove_dir_all(&ckpt_dir);
    std::fs::create_dir_all(&ckpt_dir)?;

    let server = Server::start(&ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: config.workers,
        // No timing-dependent real 429s: every client is serial, so at
        // most `clients` jobs are ever queued at once.
        queue_cap: clients.max(4),
        handler_cap: clients * 2 + 4,
        read_timeout: Duration::from_secs(60),
        write_timeout: Duration::from_secs(60),
        chaos: Some(format!("{},{}", config.seed, config.faults)),
        cache_dir: Some(ckpt_dir.clone()),
        checkpoint_every_cycles: STORM_CKPT_EVERY,
        node_id: None,
    })?;
    let addr = server.addr();

    let start = Instant::now();
    let handles: Vec<_> = slices
        .iter()
        .enumerate()
        .map(|(c, slice)| {
            let slice = Arc::clone(slice);
            let seed = config.seed;
            std::thread::spawn(move || client_loop(addr, &slice, seed, c))
        })
        .collect();
    let mut report = ChaosStormReport {
        seed: config.seed,
        clients,
        requests_per_client: requests,
        faults: config.faults.clone(),
        ..ChaosStormReport::default()
    };
    for h in handles {
        let t = h.join().expect("client thread");
        report.ok += t.ok;
        report.deadline += t.deadline;
        report.mismatches += t.mismatches;
        report.lost += t.lost;
        report.retries += t.retries;
        report.reconnects += t.reconnects;
    }
    report.wall_seconds = start.elapsed().as_secs_f64();

    let shared = server.shared();
    report.injected = FaultSite::ALL
        .iter()
        .map(|&s| (s.label().to_string(), shared.chaos.injected(s)))
        .collect();
    report.injected_total = shared.chaos.injected_total();
    report.worker_restarts = shared.metrics.worker_restarts.get();
    report.jobs_rejected = shared.metrics.jobs_rejected.get();
    report.cache_hits = shared.metrics.cache_hits.get();
    report.cache_misses = shared.metrics.cache_misses.get();
    report.singleflight_joined = shared.metrics.singleflight_joined.get();
    report.checkpoints_written = shared.metrics.checkpoints_written.get();
    report.checkpoints_resumed = shared.metrics.checkpoints_resumed.get();
    report.checkpoints_dropped_corrupt = shared.metrics.checkpoints_dropped_corrupt.get();

    let _ = crate::client::request(addr, "POST", "/shutdown", None);
    server.wait();
    let _ = std::fs::remove_dir_all(&ckpt_dir);

    if let Some(path) = &config.out {
        report.write_json(path)?;
    }
    Ok(report)
}

/// A unique scratch directory for one storm's checkpoints and cache.
fn storm_scratch_dir(seed: u64) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("recon-chaos-{}-{seed}-{n}", std::process::id()))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small storm with every fault class armed: nothing lost,
    /// nothing mismatched, and the same seed reproduces the same
    /// injected-fault counts.
    #[test]
    fn storm_is_lossless_and_reproducible() {
        let config = ChaosStormConfig {
            seed: 7,
            clients: 3,
            requests: 4,
            faults: "all=120,max-latency-ms=2".to_string(),
            workers: 3,
            out: None,
        };
        let a = run_chaos_storm(&config).expect("storm runs");
        assert_eq!(a.lost, 0, "no request may go unanswered: {a:?}");
        assert_eq!(a.mismatches, 0, "no response may differ: {a:?}");
        assert_eq!(a.ok + a.deadline, (config.clients * config.requests) as u64);
        assert_eq!(a.jobs_rejected, 0, "storm must avoid real 429s");
        assert!(a.injected_total > 0, "a 12% storm must inject something");

        let b = run_chaos_storm(&config).expect("storm reruns");
        assert_eq!(
            a.injected, b.injected,
            "same seed must give the same per-site injected counts"
        );
        assert_eq!(a.retries, b.retries, "same faults, same healing work");
    }
}

//! Security regression harness for the ReCon reproduction.
//!
//! ReCon's claim (§3, §5.4 of the paper) is *relative* non-interference:
//! lifting speculative defenses on a revealed word discloses nothing the
//! program has not already leaked non-speculatively. Following
//! SPECTECTOR's formulation, this crate checks it end-to-end on the real
//! simulator: run each attack gadget twice with two different secrets
//! and require the attacker-visible microarchitectural traces to be
//! indistinguishable *whenever the sequential (in-order, non-speculative)
//! traces are* — and, per RCP, the coherence layer is part of what the
//! attacker sees, so directory and invalidation traffic count.
//!
//! The pieces:
//!
//! * [`trace`] — the canonical attacker observation model, built from the
//!   `recon-mem` transaction log/snapshot and `recon-cpu` probe timings;
//! * [`gadget`] — secret-parameterized attack programs (Spectre v1,
//!   store-bypass v4, cross-core transmit, and an "already-leaked"
//!   control whose secret escapes architecturally first);
//! * [`differ`] — the two-trace SECURE/LEAKS verdict with first-divergence
//!   reporting;
//! * [`matrix`] — the full gadget × scheme verdict matrix plus the
//!   reveal-soundness invariant runs, wired to `recon verify`.

#![warn(missing_docs)]

pub mod differ;
pub mod gadget;
pub mod matrix;
pub mod trace;

pub use differ::{run_cell, run_cell_budgeted, CellResult, Verdict};
pub use gadget::{Gadget, GadgetKind, SECRET_A, SECRET_B};
pub use matrix::{
    run_cell_named, run_cell_named_budgeted, run_matrix, run_matrix_budgeted,
    run_matrix_budgeted_with, soundness_sweep, soundness_sweep_budgeted, MatrixCell, MatrixReport,
    SoundnessRun,
};
pub use trace::{Divergence, ObservationTrace};

//! Secret-parameterized attack gadgets in the simulator's ISA.
//!
//! Each gadget builds the *same* program and memory image for any
//! secret except for one slot holding the secret value — an address
//! inside the probe array — so any observable difference between two
//! secrets is a genuine transmission. The secrets map to different
//! cache sets ([`SECRET_A`] is probe line 5, [`SECRET_B`] line 11), so
//! a transmitting access perturbs set occupancy, miss traffic, and —
//! cross-core — directory state differently per secret.

use recon_cpu::{CoreConfig, MdpMode};
use recon_isa::asm::Asm;
use recon_isa::reg::names::*;
use recon_mem::MemConfig;
use recon_workloads::{ThreadSpec, Workload};

/// Base of the probe region the transmitters touch.
pub const PROBE: u64 = 0x40_0000;
/// First secret: probe line 5 (L1 set 1 under the scaled geometry).
pub const SECRET_A: u64 = PROBE + 5 * 64;
/// Second secret: probe line 11 (L1 set 3 under the scaled geometry).
pub const SECRET_B: u64 = PROBE + 11 * 64;

/// Base of the victim array whose out-of-bounds slot holds the secret.
const ARRAY: u64 = 0x10_0000;
/// The out-of-bounds slot: `array[16]`, i.e. byte offset 128 (line 2).
const SECRET_SLOT: u64 = ARRAY + 128;

/// Which attack program a [`Gadget`] builds.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum GadgetKind {
    /// Spectre v1: a trained bounds check is speculatively bypassed and
    /// the out-of-bounds value indexes the probe array.
    SpectreV1,
    /// Spectre v4: a load speculatively bypasses an older store with an
    /// unresolved address and transmits the stale (secret) value.
    StoreBypass,
    /// Cross-core: the transmit lands in lines a second core owns in M
    /// state, so the leak is visible as directory/downgrade traffic.
    CrossCore,
    /// Control: a committed direct load pair discloses the secret
    /// architecturally *before* the speculative access — the classic
    /// case where ReCon may lift the defense.
    AlreadyLeaked,
}

/// A named, secret-parameterized attack program.
#[derive(Clone, Copy, Debug)]
pub struct Gadget {
    /// Stable name (CLI `--gadget` value).
    pub name: &'static str,
    /// One-line description for reports.
    pub description: &'static str,
    /// Whether the gadget *speculatively* transmits the secret — i.e.
    /// whether `unsafe` is expected to LEAK on it.
    pub transmit: bool,
    /// Which program to build.
    pub kind: GadgetKind,
}

/// All verify gadgets, in matrix order.
#[must_use]
pub fn all() -> Vec<Gadget> {
    vec![
        Gadget {
            name: "spectre-v1",
            description: "bounds-check bypass, same-core probe transmit",
            transmit: true,
            kind: GadgetKind::SpectreV1,
        },
        Gadget {
            name: "store-bypass",
            description: "v4 store-bypass of a stale secret, same-core transmit",
            transmit: true,
            kind: GadgetKind::StoreBypass,
        },
        Gadget {
            name: "cross-core",
            description: "speculative transmit into another core's M-state lines",
            transmit: true,
            kind: GadgetKind::CrossCore,
        },
        Gadget {
            name: "already-leaked",
            description: "committed load pair leaks first; speculation adds nothing",
            transmit: false,
            kind: GadgetKind::AlreadyLeaked,
        },
    ]
}

/// Looks a gadget up by its CLI name.
#[must_use]
pub fn find(name: &str) -> Option<Gadget> {
    all()
        .into_iter()
        .find(|g| g.name.eq_ignore_ascii_case(name))
}

impl Gadget {
    /// Core configuration the gadget needs (`store-bypass` requires
    /// memory-dependence speculation to bypass the store at all).
    #[must_use]
    pub fn core_config(&self) -> CoreConfig {
        let mut cfg = CoreConfig::paper();
        if self.kind == GadgetKind::StoreBypass {
            cfg.mdp = MdpMode::Predictor;
        }
        cfg
    }

    /// Memory configuration (multicore geometry for the cross-core
    /// gadget, the standard scaled hierarchy otherwise).
    #[must_use]
    pub fn mem_config(&self) -> MemConfig {
        if self.kind == GadgetKind::CrossCore {
            MemConfig::scaled_multicore()
        } else {
            MemConfig::scaled()
        }
    }

    /// Builds the workload with `secret` in the secret slot. The code
    /// and the rest of the image are identical for any secret.
    #[must_use]
    pub fn build(&self, secret: u64) -> Workload {
        match self.kind {
            GadgetKind::SpectreV1 => spectre_v1(secret),
            GadgetKind::StoreBypass => store_bypass(secret),
            GadgetKind::CrossCore => cross_core(secret),
            GadgetKind::AlreadyLeaked => already_leaked(secret),
        }
    }
}

/// Seeds the image slots common to every gadget: the probe words both
/// secrets point at exist (identically) in both variants, so only the
/// secret slot differs between a secret-A and a secret-B image.
fn common_data(a: &mut Asm, secret: u64) {
    a.data(SECRET_A, 1);
    a.data(SECRET_B, 1);
    a.data(PROBE, 0);
    a.data(SECRET_SLOT, secret);
}

/// Spectre v1. A six-iteration loop bounds-checks `x < len` and, in
/// bounds, transmits `probe[array[x]]`. The length sits behind a
/// two-deep cold pointer chase (~230 cycles), holding the window open;
/// the first five iterations train the branch, the last runs `x = 16`
/// out of bounds: predicted taken, architecturally not taken, so the
/// secret-dependent probe access happens only on the wrong path.
fn spectre_v1(secret: u64) -> Workload {
    const LENP: u64 = 0x20_0000; // per-iteration pointer to the length
    const LEN2: u64 = 0x28_0000; // per-iteration length slots (value 4)
    const XV: u64 = 0x30_0000; // per-iteration index values
    const N: u64 = 6;

    let mut a = Asm::new();
    common_data(&mut a, secret);
    for j in 0..4 {
        a.data(ARRAY + j * 8, PROBE); // in-bounds entries: benign probe
    }
    for i in 0..N {
        a.data(LENP + i * 64, LEN2 + i * 64);
        a.data(LEN2 + i * 64, 4);
        let x = if i == N - 1 { 16 } else { i % 4 };
        a.data(XV + i * 8, x);
    }

    a.li(R20, ARRAY)
        .li(R21, XV)
        .li(R22, LENP)
        .load(R1, R21, 0) // warm the index line
        .load(R1, R20, 0) // warm the in-bounds array line
        .li(R10, 0)
        .li(R11, N);
    let loop_top = a.here();
    let endit = a.new_label();
    let body = a.new_label();
    a.muli(R3, R10, 64)
        .add(R3, R3, R22)
        .load(R4, R3, 0) // pointer to the length (cold)
        .load(R4, R4, 0) // the length itself (cold): slow bound
        .muli(R5, R10, 8)
        .add(R5, R5, R21)
        .load(R6, R5, 0) // x (warm)
        .bltu(R6, R4, body)
        .jump(endit);
    a.bind(body);
    a.loadidx(R7, R20, R6) // array[x]; x=16 reads the secret slot
        .load(R8, R7, 0); // transmit: probe[secret]
    a.bind(endit);
    a.addi(R10, R10, 1).bltu_to(R10, R11, loop_top).halt();
    Workload::single(a.assemble().expect("spectre-v1 assembles"))
}

/// Spectre v4. The store's target address arrives late (cold pointer
/// load); the younger load to the same address issues first under
/// memory-dependence speculation, reads the stale secret from a warm
/// line, and transmits it — all long before the violation squash.
/// After recovery the load forwards the store's benign value, so the
/// architectural results are secret-independent.
fn store_bypass(secret: u64) -> Workload {
    const WARM: u64 = 0x60_0000; // same line as the secret word
    const P: u64 = 0x60_0008; // the contested address
    const PTRSLOT: u64 = 0x50_0000; // cold slot holding P

    let mut a = Asm::new();
    common_data(&mut a, secret);
    a.data(WARM, 0);
    a.data(P, secret);
    a.data(PTRSLOT, P);

    a.li(R1, WARM)
        .load(R2, R1, 0) // warm the secret's line
        .li(R3, PTRSLOT)
        .load(R4, R3, 0) // store address, resolves ~116 cycles later
        .li(R5, PROBE)
        .store(R5, R4, 0) // [P] <- benign probe base
        .load(R7, R1, 8) // bypassing load of [P]: stale secret
        .load(R8, R7, 0) // transmit: probe[secret]
        .halt();
    Workload::single(a.assemble().expect("store-bypass assembles"))
}

/// Cross-core transmit. Core 1 (the attacker) first takes the probe
/// lines into M state, then halts; core 0 (the victim) burns a delay
/// loop so ownership settles, then runs an untrained-branch bounds
/// bypass whose transmit lands in one of the attacker's M lines — the
/// leak shows up as a secret-dependent directory downgrade.
fn cross_core(secret: u64) -> Workload {
    const VLENP: u64 = 0x70_0000;
    const VLEN2: u64 = 0x78_0000;
    const DELAY: u64 = 6000;
    const PROBE_LINES: u64 = 17; // covers both secrets' lines (5, 11)

    let mut a = Asm::new();
    common_data(&mut a, secret);
    a.data(VLENP, VLEN2);
    a.data(VLEN2, 4);

    // Victim (entry 0): delay, then the speculative gadget. A fresh
    // two-bit counter predicts taken, so no training loop is needed.
    a.li(R2, DELAY);
    let vloop = a.here();
    a.subi(R2, R2, 1).bne_to(R2, R0, vloop);
    let vbody = a.new_label();
    let vend = a.new_label();
    a.li(R20, ARRAY)
        .li(R2, VLENP)
        .load(R3, R2, 0)
        .load(R4, R3, 0) // len = 4 behind a cold chase
        .li(R6, 16)
        .bltu(R6, R4, vbody)
        .jump(vend);
    a.bind(vbody);
    a.loadidx(R7, R20, R6) // the secret slot
        .load(R8, R7, 0); // transmit into an attacker-owned line
    a.bind(vend);
    a.halt();

    // Attacker (second thread): own the probe region in M state.
    let attacker_entry = a.here();
    a.li(R1, PROBE).li(R2, PROBE_LINES).li(R3, 0);
    let aloop = a.here();
    a.muli(R4, R3, 64)
        .add(R4, R4, R1)
        .store(R0, R4, 0)
        .addi(R3, R3, 1)
        .bltu_to(R3, R2, aloop)
        .halt();

    let program = a.assemble().expect("cross-core assembles");
    Workload {
        program,
        threads: vec![
            ThreadSpec {
                entry: 0,
                seeds: Vec::new(),
            },
            ThreadSpec {
                entry: attacker_entry,
                seeds: Vec::new(),
            },
        ],
    }
}

/// Already-leaked control. A committed chain of direct load pairs
/// (`r2 = [slot]; r3 = [r2]; r4 = [r3 + 7]`) discloses the secret
/// architecturally up front — and, under ReCon, the first pair reveals
/// the slot while the second reveals the probed word. The loop then
/// redoes the same access pattern *speculatively* (under slow-resolving
/// but always-taken branches) and commits it. STT/NDA guard the slot
/// load and delay the transmit every iteration; with ReCon the revealed
/// words lift the guards, making the scheme measurably faster with no
/// new observations.
fn already_leaked(secret: u64) -> Workload {
    const COND: u64 = 0x20_0000; // per-iteration cold condition lines
    const N: u64 = 4;

    let mut a = Asm::new();
    common_data(&mut a, secret);
    a.data(8, 1); // LD3's target (probe value + 7), so the chain seed is 1
    for i in 0..N {
        a.data(COND + i * 64, 1);
    }

    a.load(R28, R0, 0) // warm line 0 so LD3 below hits
        .li(R1, SECRET_SLOT)
        .load(R2, R1, 0) // LD1: the secret (commits)
        .load(R3, R2, 0) // LD2: probe[secret] (commits; reveals LD1)
        .load(R4, R3, 7); // LD3 at 1+7=8: pair with LD2 reveals the probed word
                          // Dependency chain on LD3's value (0 for either secret): the loop's
                          // base addresses become ready only after both pairs have committed
                          // and the reveals have reached the caches, so every loop access
                          // observes the already-leaked state.
    a.addi(R9, R4, 0);
    for _ in 0..20 {
        a.addi(R9, R9, 0);
    }
    a.li(R10, 0)
        .li(R11, N)
        .li(R12, COND)
        .add(R12, R12, R9) // COND + 1, dependent on the chain
        .subi(R12, R12, 1)
        .li(R13, SECRET_SLOT)
        .add(R13, R13, R9)
        .subi(R13, R13, 1);
    let loop_top = a.here();
    let body = a.new_label();
    let lend = a.new_label();
    a.muli(R4, R10, 64)
        .add(R4, R4, R12)
        .load(R5, R4, 0) // cold condition: the branch resolves late
        .bne(R5, R0, body) // always taken (and predicted taken)
        .jump(lend);
    a.bind(body);
    a.load(R7, R13, 0) // the revealed slot (warm)
        .load(R8, R7, 0); // probe[secret] — already public
    a.bind(lend);
    a.addi(R10, R10, 1).bltu_to(R10, R11, loop_top).halt();
    Workload::single(a.assemble().expect("already-leaked assembles"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_gadgets_with_unique_names() {
        let g = all();
        assert_eq!(g.len(), 4);
        let mut names: Vec<_> = g.iter().map(|g| g.name).collect();
        names.dedup();
        assert_eq!(names.len(), 4);
        assert!(find("SPECTRE-V1").is_some());
        assert!(find("nope").is_none());
    }

    #[test]
    fn images_differ_only_in_the_secret_slot() {
        for g in all() {
            let wa = g.build(SECRET_A);
            let wb = g.build(SECRET_B);
            assert_eq!(wa.program.code, wb.program.code, "{}", g.name);
            let mut diff: Vec<u64> = wa
                .program
                .image
                .iter()
                .filter(|&(addr, val)| wb.program.image.get(addr) != Some(val))
                .map(|(addr, _)| addr)
                .collect();
            diff.sort_unstable();
            let expected = match g.kind {
                GadgetKind::StoreBypass => vec![SECRET_SLOT, 0x60_0008],
                _ => vec![SECRET_SLOT],
            };
            assert_eq!(diff, expected, "{}", g.name);
        }
    }
}

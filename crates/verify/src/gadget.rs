//! Secret-parameterized attack gadgets in the simulator's ISA.
//!
//! Each gadget builds the *same* program and memory image for any
//! secret except for one slot holding the secret value — an address
//! inside the probe array — so any observable difference between two
//! secrets is a genuine transmission. The secrets map to different
//! cache sets ([`SECRET_A`] is probe line 5, [`SECRET_B`] line 11), so
//! a transmitting access perturbs set occupancy, miss traffic, and —
//! cross-core — directory state differently per secret.

use recon_cpu::{CoreConfig, MdpMode};
use recon_isa::asm::Asm;
use recon_isa::reg::names::*;
use recon_mem::MemConfig;
use recon_workloads::{ThreadSpec, Workload};

/// Base of the probe region the transmitters touch.
pub const PROBE: u64 = 0x40_0000;
/// First secret: probe line 5 (L1 set 1 under the scaled geometry).
pub const SECRET_A: u64 = PROBE + 5 * 64;
/// Second secret: probe line 11 (L1 set 3 under the scaled geometry).
pub const SECRET_B: u64 = PROBE + 11 * 64;

/// Base of the victim array whose out-of-bounds slot holds the secret.
const ARRAY: u64 = 0x10_0000;
/// The out-of-bounds slot: `array[16]`, i.e. byte offset 128 (line 2).
const SECRET_SLOT: u64 = ARRAY + 128;

/// Which attack program a [`Gadget`] builds.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum GadgetKind {
    /// Spectre v1: a trained bounds check is speculatively bypassed and
    /// the out-of-bounds value indexes the probe array.
    SpectreV1,
    /// Spectre v4: a load speculatively bypasses an older store with an
    /// unresolved address and transmits the stale (secret) value.
    StoreBypass,
    /// Cross-core: the transmit lands in lines a second core owns in M
    /// state, so the leak is visible as directory/downgrade traffic.
    CrossCore,
    /// Control: a committed direct load pair discloses the secret
    /// architecturally *before* the speculative access — the classic
    /// case where ReCon may lift the defense.
    AlreadyLeaked,
    /// The spectre-v1 gadget spliced into the corpus `quicksort` host
    /// program at its `;@gadget` marker: the bypass runs inside a
    /// realistically warmed-up machine (trained predictors, populated
    /// caches, live store sets) instead of a minimal snippet.
    EmbeddedSpectreV1,
    /// The store-bypass gadget spliced into the corpus `memref` host —
    /// the pointer chase leaves the memory-dependence predictor and
    /// cache hierarchy in a realistic state before the v4 bypass.
    EmbeddedStoreBypass,
}

/// A named, secret-parameterized attack program.
#[derive(Clone, Copy, Debug)]
pub struct Gadget {
    /// Stable name (CLI `--gadget` value).
    pub name: &'static str,
    /// One-line description for reports.
    pub description: &'static str,
    /// Whether the gadget *speculatively* transmits the secret — i.e.
    /// whether `unsafe` is expected to LEAK on it.
    pub transmit: bool,
    /// Which program to build.
    pub kind: GadgetKind,
}

/// All verify gadgets, in matrix order.
#[must_use]
pub fn all() -> Vec<Gadget> {
    vec![
        Gadget {
            name: "spectre-v1",
            description: "bounds-check bypass, same-core probe transmit",
            transmit: true,
            kind: GadgetKind::SpectreV1,
        },
        Gadget {
            name: "store-bypass",
            description: "v4 store-bypass of a stale secret, same-core transmit",
            transmit: true,
            kind: GadgetKind::StoreBypass,
        },
        Gadget {
            name: "cross-core",
            description: "speculative transmit into another core's M-state lines",
            transmit: true,
            kind: GadgetKind::CrossCore,
        },
        Gadget {
            name: "already-leaked",
            description: "committed load pair leaks first; speculation adds nothing",
            transmit: false,
            kind: GadgetKind::AlreadyLeaked,
        },
    ]
}

/// The embedded-gadget variants (`recon verify --embedded`): the same
/// transmitters spliced into corpus host programs at their `;@gadget`
/// markers, so the two-trace differ judges them inside real surrounding
/// code — tens of thousands of committed host instructions of control
/// flow, trained predictors, and warm caches — rather than in
/// isolation.
#[must_use]
pub fn embedded() -> Vec<Gadget> {
    vec![
        Gadget {
            name: "spectre-v1@quicksort",
            description: "bounds-check bypass spliced after a full quicksort run",
            transmit: true,
            kind: GadgetKind::EmbeddedSpectreV1,
        },
        Gadget {
            name: "store-bypass@memref",
            description: "v4 store-bypass spliced after a full pointer-chase run",
            transmit: true,
            kind: GadgetKind::EmbeddedStoreBypass,
        },
    ]
}

/// Base and embedded gadgets, base-first.
#[must_use]
pub fn all_with_embedded() -> Vec<Gadget> {
    let mut v = all();
    v.extend(embedded());
    v
}

/// Looks a gadget up by its CLI name (base and embedded sets).
#[must_use]
pub fn find(name: &str) -> Option<Gadget> {
    all_with_embedded()
        .into_iter()
        .find(|g| g.name.eq_ignore_ascii_case(name))
}

impl Gadget {
    /// Core configuration the gadget needs (`store-bypass` requires
    /// memory-dependence speculation to bypass the store at all).
    #[must_use]
    pub fn core_config(&self) -> CoreConfig {
        let mut cfg = CoreConfig::paper();
        if matches!(
            self.kind,
            GadgetKind::StoreBypass | GadgetKind::EmbeddedStoreBypass
        ) {
            cfg.mdp = MdpMode::Predictor;
        }
        cfg
    }

    /// Memory configuration (multicore geometry for the cross-core
    /// gadget, the standard scaled hierarchy otherwise).
    #[must_use]
    pub fn mem_config(&self) -> MemConfig {
        if self.kind == GadgetKind::CrossCore {
            MemConfig::scaled_multicore()
        } else {
            MemConfig::scaled()
        }
    }

    /// Builds the workload with `secret` in the secret slot. The code
    /// and the rest of the image are identical for any secret.
    #[must_use]
    pub fn build(&self, secret: u64) -> Workload {
        match self.kind {
            GadgetKind::SpectreV1 => spectre_v1(secret),
            GadgetKind::StoreBypass => store_bypass(secret),
            GadgetKind::CrossCore => cross_core(secret),
            GadgetKind::AlreadyLeaked => already_leaked(secret),
            GadgetKind::EmbeddedSpectreV1 => embedded_in("quicksort", &spectre_v1_text(secret)),
            GadgetKind::EmbeddedStoreBypass => embedded_in("memref", &store_bypass_text(secret)),
        }
    }
}

/// Seeds the image slots common to every gadget: the probe words both
/// secrets point at exist (identically) in both variants, so only the
/// secret slot differs between a secret-A and a secret-B image.
fn common_data(a: &mut Asm, secret: u64) {
    a.data(SECRET_A, 1);
    a.data(SECRET_B, 1);
    a.data(PROBE, 0);
    a.data(SECRET_SLOT, secret);
}

/// Spectre v1. A six-iteration loop bounds-checks `x < len` and, in
/// bounds, transmits `probe[array[x]]`. The length sits behind a
/// two-deep cold pointer chase (~230 cycles), holding the window open;
/// the first five iterations train the branch, the last runs `x = 16`
/// out of bounds: predicted taken, architecturally not taken, so the
/// secret-dependent probe access happens only on the wrong path.
fn spectre_v1(secret: u64) -> Workload {
    const LENP: u64 = 0x20_0000; // per-iteration pointer to the length
    const LEN2: u64 = 0x28_0000; // per-iteration length slots (value 4)
    const XV: u64 = 0x30_0000; // per-iteration index values
    const N: u64 = 6;

    let mut a = Asm::new();
    common_data(&mut a, secret);
    for j in 0..4 {
        a.data(ARRAY + j * 8, PROBE); // in-bounds entries: benign probe
    }
    for i in 0..N {
        a.data(LENP + i * 64, LEN2 + i * 64);
        a.data(LEN2 + i * 64, 4);
        let x = if i == N - 1 { 16 } else { i % 4 };
        a.data(XV + i * 8, x);
    }

    a.li(R20, ARRAY)
        .li(R21, XV)
        .li(R22, LENP)
        .load(R1, R21, 0) // warm the index line
        .load(R1, R20, 0) // warm the in-bounds array line
        .li(R10, 0)
        .li(R11, N);
    let loop_top = a.here();
    let endit = a.new_label();
    let body = a.new_label();
    a.muli(R3, R10, 64)
        .add(R3, R3, R22)
        .load(R4, R3, 0) // pointer to the length (cold)
        .load(R4, R4, 0) // the length itself (cold): slow bound
        .muli(R5, R10, 8)
        .add(R5, R5, R21)
        .load(R6, R5, 0) // x (warm)
        .bltu(R6, R4, body)
        .jump(endit);
    a.bind(body);
    a.loadidx(R7, R20, R6) // array[x]; x=16 reads the secret slot
        .load(R8, R7, 0); // transmit: probe[secret]
    a.bind(endit);
    a.addi(R10, R10, 1).bltu_to(R10, R11, loop_top).halt();
    Workload::single(a.assemble().expect("spectre-v1 assembles"))
}

/// Spectre v4. The store's target address arrives late (cold pointer
/// load); the younger load to the same address issues first under
/// memory-dependence speculation, reads the stale secret from a warm
/// line, and transmits it — all long before the violation squash.
/// After recovery the load forwards the store's benign value, so the
/// architectural results are secret-independent.
fn store_bypass(secret: u64) -> Workload {
    const WARM: u64 = 0x60_0000; // same line as the secret word
    const P: u64 = 0x60_0008; // the contested address
    const PTRSLOT: u64 = 0x50_0000; // cold slot holding P

    let mut a = Asm::new();
    common_data(&mut a, secret);
    a.data(WARM, 0);
    a.data(P, secret);
    a.data(PTRSLOT, P);

    a.li(R1, WARM)
        .load(R2, R1, 0) // warm the secret's line
        .li(R3, PTRSLOT)
        .load(R4, R3, 0) // store address, resolves ~116 cycles later
        .li(R5, PROBE)
        .store(R5, R4, 0) // [P] <- benign probe base
        .load(R7, R1, 8) // bypassing load of [P]: stale secret
        .load(R8, R7, 0) // transmit: probe[secret]
        .halt();
    Workload::single(a.assemble().expect("store-bypass assembles"))
}

/// Cross-core transmit. Core 1 (the attacker) first takes the probe
/// lines into M state, then halts; core 0 (the victim) burns a delay
/// loop so ownership settles, then runs an untrained-branch bounds
/// bypass whose transmit lands in one of the attacker's M lines — the
/// leak shows up as a secret-dependent directory downgrade.
fn cross_core(secret: u64) -> Workload {
    const VLENP: u64 = 0x70_0000;
    const VLEN2: u64 = 0x78_0000;
    const DELAY: u64 = 6000;
    const PROBE_LINES: u64 = 17; // covers both secrets' lines (5, 11)

    let mut a = Asm::new();
    common_data(&mut a, secret);
    a.data(VLENP, VLEN2);
    a.data(VLEN2, 4);

    // Victim (entry 0): delay, then the speculative gadget. A fresh
    // two-bit counter predicts taken, so no training loop is needed.
    a.li(R2, DELAY);
    let vloop = a.here();
    a.subi(R2, R2, 1).bne_to(R2, R0, vloop);
    let vbody = a.new_label();
    let vend = a.new_label();
    a.li(R20, ARRAY)
        .li(R2, VLENP)
        .load(R3, R2, 0)
        .load(R4, R3, 0) // len = 4 behind a cold chase
        .li(R6, 16)
        .bltu(R6, R4, vbody)
        .jump(vend);
    a.bind(vbody);
    a.loadidx(R7, R20, R6) // the secret slot
        .load(R8, R7, 0); // transmit into an attacker-owned line
    a.bind(vend);
    a.halt();

    // Attacker (second thread): own the probe region in M state.
    let attacker_entry = a.here();
    a.li(R1, PROBE).li(R2, PROBE_LINES).li(R3, 0);
    let aloop = a.here();
    a.muli(R4, R3, 64)
        .add(R4, R4, R1)
        .store(R0, R4, 0)
        .addi(R3, R3, 1)
        .bltu_to(R3, R2, aloop)
        .halt();

    let program = a.assemble().expect("cross-core assembles");
    Workload {
        program,
        threads: vec![
            ThreadSpec {
                entry: 0,
                seeds: Vec::new(),
            },
            ThreadSpec {
                entry: attacker_entry,
                seeds: Vec::new(),
            },
        ],
    }
}

/// Already-leaked control. A committed chain of direct load pairs
/// (`r2 = [slot]; r3 = [r2]; r4 = [r3 + 7]`) discloses the secret
/// architecturally up front — and, under ReCon, the first pair reveals
/// the slot while the second reveals the probed word. The loop then
/// redoes the same access pattern *speculatively* (under slow-resolving
/// but always-taken branches) and commits it. STT/NDA guard the slot
/// load and delay the transmit every iteration; with ReCon the revealed
/// words lift the guards, making the scheme measurably faster with no
/// new observations.
fn already_leaked(secret: u64) -> Workload {
    const COND: u64 = 0x20_0000; // per-iteration cold condition lines
    const N: u64 = 4;

    let mut a = Asm::new();
    common_data(&mut a, secret);
    a.data(8, 1); // LD3's target (probe value + 7), so the chain seed is 1
    for i in 0..N {
        a.data(COND + i * 64, 1);
    }

    a.load(R28, R0, 0) // warm line 0 so LD3 below hits
        .li(R1, SECRET_SLOT)
        .load(R2, R1, 0) // LD1: the secret (commits)
        .load(R3, R2, 0) // LD2: probe[secret] (commits; reveals LD1)
        .load(R4, R3, 7); // LD3 at 1+7=8: pair with LD2 reveals the probed word
                          // Dependency chain on LD3's value (0 for either secret): the loop's
                          // base addresses become ready only after both pairs have committed
                          // and the reveals have reached the caches, so every loop access
                          // observes the already-leaked state.
    a.addi(R9, R4, 0);
    for _ in 0..20 {
        a.addi(R9, R9, 0);
    }
    a.li(R10, 0)
        .li(R11, N)
        .li(R12, COND)
        .add(R12, R12, R9) // COND + 1, dependent on the chain
        .subi(R12, R12, 1)
        .li(R13, SECRET_SLOT)
        .add(R13, R13, R9)
        .subi(R13, R13, 1);
    let loop_top = a.here();
    let body = a.new_label();
    let lend = a.new_label();
    a.muli(R4, R10, 64)
        .add(R4, R4, R12)
        .load(R5, R4, 0) // cold condition: the branch resolves late
        .bne(R5, R0, body) // always taken (and predicted taken)
        .jump(lend);
    a.bind(body);
    a.load(R7, R13, 0) // the revealed slot (warm)
        .load(R8, R7, 0); // probe[secret] — already public
    a.bind(lend);
    a.addi(R10, R10, 1).bltu_to(R10, R11, loop_top).halt();
    Workload::single(a.assemble().expect("already-leaked assembles"))
}

/// Assembles a corpus host program with `payload` spliced in at its
/// `;@gadget` marker. The host's own entry seeds (pass count 1) are
/// kept, so the gadget runs once, after the full computation and before
/// the self-check epilogue.
fn embedded_in(host: &str, payload: &str) -> Workload {
    let entry = recon_asm::corpus::find(host).expect("corpus host exists");
    let src = recon_asm::corpus::splice_gadget(entry.source, payload)
        .expect("corpus hosts carry a gadget marker");
    let p = recon_asm::assemble(&src)
        .unwrap_or_else(|e| panic!("spliced {host} does not assemble: {e}"));
    let threads = p
        .entries
        .iter()
        .map(|e| ThreadSpec {
            entry: e.entry,
            seeds: e.seeds.clone(),
        })
        .collect();
    Workload {
        program: p.program,
        threads,
    }
}

/// The image slots every embedded gadget needs, as `.data` directives:
/// both probe words exist identically in either variant, so only the
/// secret slot (and, for store-bypass, the contested word) differs
/// between a secret-A and a secret-B image. Corpus data lives below
/// `0x10_0000` by convention, so none of these collide with the host.
fn common_data_text(secret: u64) -> String {
    format!(
        ".data {SECRET_A:#x} 1\n\
         .data {SECRET_B:#x} 1\n\
         .data {PROBE:#x} 0\n\
         .data {SECRET_SLOT:#x} {secret:#x}\n"
    )
}

/// Text form of [`spectre_v1`] for splicing into a corpus host. Same
/// program shape and constants; labels are `gadget_`-prefixed and the
/// registers used (`r1`–`r22`) are all dead in the host at the splice
/// point (the epilogue only reads `r24`/`r26`–`r28`).
fn spectre_v1_text(secret: u64) -> String {
    use std::fmt::Write as _;
    const LENP: u64 = 0x20_0000;
    const LEN2: u64 = 0x28_0000;
    const XV: u64 = 0x30_0000;
    const N: u64 = 6;

    let mut s = common_data_text(secret);
    for j in 0..4 {
        let _ = writeln!(s, ".data {:#x} {PROBE:#x}", ARRAY + j * 8);
    }
    for i in 0..N {
        let _ = writeln!(s, ".data {:#x} {:#x}", LENP + i * 64, LEN2 + i * 64);
        let _ = writeln!(s, ".data {:#x} 4", LEN2 + i * 64);
        let x = if i == N - 1 { 16 } else { i % 4 };
        let _ = writeln!(s, ".data {:#x} {x}", XV + i * 8);
    }
    let _ = write!(
        s,
        "    # ---- embedded spectre-v1 (recon verify --embedded) ----\n\
         \x20   li r20, {ARRAY:#x}\n\
         \x20   li r21, {XV:#x}\n\
         \x20   li r22, {LENP:#x}\n\
         \x20   ld r1, [r21]              # warm the index line\n\
         \x20   ld r1, [r20]              # warm the in-bounds array line\n\
         \x20   li r10, 0\n\
         \x20   li r11, {N}\n\
         gadget_loop:\n\
         \x20   muli r3, r10, 64\n\
         \x20   add r3, r3, r22\n\
         \x20   ld r4, [r3]               # pointer to the length (cold)\n\
         \x20   ld r4, [r4]               # the length itself: slow bound\n\
         \x20   muli r5, r10, 8\n\
         \x20   add r5, r5, r21\n\
         \x20   ld r6, [r5]               # x (warm)\n\
         \x20   bltu r6, r4, gadget_body\n\
         \x20   j gadget_end\n\
         gadget_body:\n\
         \x20   ldx r7, [r20+r6*8]        # array[x]; x=16 reads the secret\n\
         \x20   ld r8, [r7]               # transmit: probe[secret]\n\
         gadget_end:\n\
         \x20   addi r10, r10, 1\n\
         \x20   bltu r10, r11, gadget_loop\n"
    );
    s
}

/// Text form of [`store_bypass`] for splicing into a corpus host.
fn store_bypass_text(secret: u64) -> String {
    use std::fmt::Write as _;
    const WARM: u64 = 0x60_0000;
    const P: u64 = 0x60_0008;
    const PTRSLOT: u64 = 0x50_0000;

    let mut s = common_data_text(secret);
    let _ = writeln!(s, ".data {WARM:#x} 0");
    let _ = writeln!(s, ".data {P:#x} {secret:#x}");
    let _ = writeln!(s, ".data {PTRSLOT:#x} {P:#x}");
    let _ = write!(
        s,
        "    # ---- embedded store-bypass (recon verify --embedded) ----\n\
         \x20   li r1, {WARM:#x}\n\
         \x20   ld r2, [r1]               # warm the secret's line\n\
         \x20   li r3, {PTRSLOT:#x}\n\
         \x20   ld r4, [r3]               # store address, resolves late\n\
         \x20   li r5, {PROBE:#x}\n\
         \x20   st r5, [r4]               # [P] <- benign probe base\n\
         \x20   ld r7, [r1+8]             # bypassing load: stale secret\n\
         \x20   ld r8, [r7]               # transmit: probe[secret]\n"
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_gadgets_with_unique_names() {
        let g = all();
        assert_eq!(g.len(), 4);
        let mut names: Vec<_> = g.iter().map(|g| g.name).collect();
        names.dedup();
        assert_eq!(names.len(), 4);
        assert!(find("SPECTRE-V1").is_some());
        assert!(find("nope").is_none());
    }

    #[test]
    fn images_differ_only_in_the_secret_slot() {
        for g in all() {
            let wa = g.build(SECRET_A);
            let wb = g.build(SECRET_B);
            assert_eq!(wa.program.code, wb.program.code, "{}", g.name);
            let mut diff: Vec<u64> = wa
                .program
                .image
                .iter()
                .filter(|&(addr, val)| wb.program.image.get(addr) != Some(val))
                .map(|(addr, _)| addr)
                .collect();
            diff.sort_unstable();
            let expected = match g.kind {
                GadgetKind::StoreBypass => vec![SECRET_SLOT, 0x60_0008],
                _ => vec![SECRET_SLOT],
            };
            assert_eq!(diff, expected, "{}", g.name);
        }
    }

    #[test]
    fn embedded_gadgets_resolve_by_name() {
        assert_eq!(all_with_embedded().len(), all().len() + 2);
        for g in embedded() {
            assert!(g.transmit, "{} must be a transmit gadget", g.name);
            assert_eq!(find(g.name).map(|f| f.kind), Some(g.kind));
        }
        assert!(find("spectre-v1@quicksort").is_some());
        assert!(find("store-bypass@memref").is_some());
    }

    /// The spliced host + payload assembles, dwarfs the synthetic
    /// snippet, and the two secret variants still differ only in the
    /// secret state — the non-interference precondition.
    #[test]
    fn embedded_images_differ_only_in_the_secret_state() {
        for g in embedded() {
            let wa = g.build(SECRET_A);
            let wb = g.build(SECRET_B);
            assert_eq!(wa.program.code, wb.program.code, "{}", g.name);
            let host = g.name.split('@').nth(1).unwrap();
            let host_alone = recon_asm::corpus::find(host).unwrap().assemble();
            assert!(
                wa.program.code.len() > host_alone.program.code.len(),
                "{}: splicing must add the payload to the host",
                g.name
            );
            let mut diff: Vec<u64> = wa
                .program
                .image
                .iter()
                .filter(|&(addr, val)| wb.program.image.get(addr) != Some(val))
                .map(|(addr, _)| addr)
                .collect();
            diff.sort_unstable();
            let expected = match g.kind {
                GadgetKind::EmbeddedStoreBypass => vec![SECRET_SLOT, 0x60_0008],
                _ => vec![SECRET_SLOT],
            };
            assert_eq!(diff, expected, "{}", g.name);
        }
    }
}

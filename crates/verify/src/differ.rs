//! The two-trace differ: run one (gadget, scheme) cell under two
//! secrets and decide SECURE or LEAKS.
//!
//! The property checked is *relative* (speculative) non-interference,
//! SPECTECTOR-style: a cell LEAKS iff the attacker observation traces
//! of the two secrets differ **and** the sequential (in-order,
//! non-speculative) executions are indistinguishable. If the sequential
//! runs already differ — the program discloses the secret
//! architecturally, as the already-leaked gadget does by construction —
//! then speculation revealed nothing new and the cell is SECURE for
//! every scheme. This is exactly the safety notion ReCon's reveal
//! mechanism targets (§3).

use recon::ReconConfig;
use recon_isa::exec::{step, ArchState, MemEffect};
use recon_isa::SparseMem;
use recon_secure::SecureConfig;
use recon_sim::{Budget, SimError, System, SystemResult};
use recon_workloads::Workload;

use crate::gadget::{Gadget, SECRET_A, SECRET_B};
use crate::trace::{Divergence, ObservationTrace};

/// Cycle budget per gadget run (they finish in thousands of cycles).
const MAX_CYCLES: u64 = 2_000_000;

/// Outcome of one (gadget, scheme) cell.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Verdict {
    /// The two secrets were indistinguishable to the attacker (or were
    /// already distinguishable sequentially, so speculation added
    /// nothing).
    Secure,
    /// Speculation transmitted the secret: the observation traces
    /// diverge although the sequential executions do not.
    Leaks,
}

impl core::fmt::Display for Verdict {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(match self {
            Verdict::Secure => "SECURE",
            Verdict::Leaks => "LEAKS",
        })
    }
}

/// Full result of one cell: the verdict plus everything needed for
/// reporting and for the already-leaked performance checks.
#[derive(Clone, Debug)]
pub struct CellResult {
    /// Gadget name.
    pub gadget: &'static str,
    /// Scheme the cell ran under.
    pub scheme: SecureConfig,
    /// The verdict.
    pub verdict: Verdict,
    /// Whether the sequential executions were indistinguishable.
    pub seq_equal: bool,
    /// First divergent speculative observation, when the speculative
    /// traces differ (present for LEAKS cells and for architecturally
    /// leaking SECURE cells).
    pub divergence: Option<Divergence>,
    /// Digest of the secret-A observation trace.
    pub digest_a: u64,
    /// Digest of the secret-B observation trace.
    pub digest_b: u64,
    /// Simulation result of the secret-A run (cycles, per-core stats).
    pub result_a: SystemResult,
    /// Reveal-soundness violations across both runs (must be empty).
    pub soundness_violations: Vec<String>,
}

/// Runs one gadget under one scheme with both secrets and returns the
/// verdict. Deterministic: repeated calls (on any thread) produce
/// byte-identical traces and digests.
#[must_use]
pub fn run_cell(gadget: Gadget, scheme: SecureConfig) -> CellResult {
    run_cell_budgeted(gadget, scheme, &Budget::default())
        .expect("gadgets complete under the default (unlimited) budget")
}

/// As [`run_cell`], under an explicit [`Budget`] — the deadline-aware
/// entry point behind `recon serve` verify jobs. Under
/// `Budget::default()` this is exactly `run_cell`.
///
/// # Errors
///
/// [`SimError`] when either secret's run exhausts the budget or is
/// cancelled; the error carries that run's partial [`SystemResult`], so
/// the caller can report how far the cell got.
pub fn run_cell_budgeted(
    gadget: Gadget,
    scheme: SecureConfig,
    budget: &Budget,
) -> Result<CellResult, SimError> {
    let (trace_a, result_a, mut violations) = run_observed(&gadget, scheme, SECRET_A, budget)?;
    let (trace_b, _result_b, violations_b) = run_observed(&gadget, scheme, SECRET_B, budget)?;
    violations.extend(violations_b);
    let seq_equal =
        sequential_trace(&gadget.build(SECRET_A)) == sequential_trace(&gadget.build(SECRET_B));
    let divergence = trace_a.first_divergence(&trace_b);
    let verdict = if divergence.is_none() || !seq_equal {
        Verdict::Secure
    } else {
        Verdict::Leaks
    };
    Ok(CellResult {
        gadget: gadget.name,
        scheme,
        verdict,
        seq_equal,
        divergence,
        digest_a: trace_a.digest(),
        digest_b: trace_b.digest(),
        result_a,
        soundness_violations: violations,
    })
}

/// One instrumented out-of-order run: observation recording on, the
/// memory transaction log on, and the reveal-soundness checker armed.
fn run_observed(
    gadget: &Gadget,
    scheme: SecureConfig,
    secret: u64,
    budget: &Budget,
) -> Result<(ObservationTrace, SystemResult, Vec<String>), SimError> {
    let workload = gadget.build(secret);
    let mut sys = System::new(
        &workload,
        gadget.core_config(),
        gadget.mem_config(),
        scheme,
        ReconConfig::default(),
    );
    for core in sys.cores_mut() {
        core.record_observations(true);
    }
    sys.mem_mut().record_transactions(true);
    sys.mem_mut().enable_soundness_checks();
    let result = sys.run_budgeted(MAX_CYCLES, budget)?;
    assert!(
        result.completed,
        "gadget {} did not finish under {scheme}",
        gadget.name
    );
    sys.mem_mut().soundness_sweep();
    let cpu = sys
        .cores_mut()
        .iter_mut()
        .map(recon_cpu::Core::take_observations)
        .collect();
    let mem = sys.mem_mut().take_transactions();
    let snapshot = sys.mem().snapshot();
    let violations = sys.mem().soundness_violations().to_vec();
    Ok((ObservationTrace { cpu, mem, snapshot }, result, violations))
}

/// The sequential (in-order, non-speculative) observation of a
/// workload: per-thread memory accesses in program order, each thread
/// executed to completion on its own copy of the image (a deterministic
/// canonical order; only *equality between secrets* is consumed).
#[must_use]
pub fn sequential_trace(workload: &Workload) -> Vec<Vec<(u8, u64)>> {
    workload
        .threads
        .iter()
        .map(|t| {
            let mut state = ArchState::at_entry(&workload.program);
            state.pc = t.entry;
            for &(reg, v) in &t.seeds {
                state.write(reg, v);
            }
            let mut mem = SparseMem::from_image(&workload.program.image);
            let mut out = Vec::new();
            let mut steps = 0u64;
            while !state.halted {
                let rec = step(&workload.program, &mut state, &mut mem)
                    .expect("gadget executes sequentially");
                match rec.mem {
                    MemEffect::Load { addr, .. } => out.push((0, addr)),
                    MemEffect::Store { addr, .. } => out.push((1, addr)),
                    MemEffect::Amo { addr, .. } => out.push((2, addr)),
                    MemEffect::None => {}
                }
                steps += 1;
                assert!(steps < 10_000_000, "sequential run diverged");
            }
            out
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gadget;

    #[test]
    fn sequential_traces_are_secret_independent_for_transmit_gadgets() {
        for g in gadget::all().into_iter().filter(|g| g.transmit) {
            let a = sequential_trace(&g.build(SECRET_A));
            let b = sequential_trace(&g.build(SECRET_B));
            assert_eq!(a, b, "{} must not leak architecturally", g.name);
        }
    }

    #[test]
    fn already_leaked_diverges_sequentially() {
        let g = gadget::find("already-leaked").unwrap();
        let a = sequential_trace(&g.build(SECRET_A));
        let b = sequential_trace(&g.build(SECRET_B));
        assert_ne!(a, b, "the load pair discloses the secret in order");
    }
}

//! The gadget × scheme verdict matrix and the reveal-soundness runs —
//! the engine behind `recon verify`.
//!
//! Expectations encode the security claim: the unsafe baseline LEAKS on
//! every transmit gadget; all four secure configurations are SECURE on
//! every gadget; and on the already-leaked gadget the ReCon-stacked
//! schemes must be *cheaper* than their bases (strictly fewer delayed
//! and tainted loads, fewer cycles) while staying SECURE — the paper's
//! "detecting non-speculative leakage lets you stop re-protecting it"
//! argument, checked end-to-end.

use recon::ReconConfig;
use recon_cpu::CoreConfig;
use recon_mem::MemConfig;
use recon_secure::SecureConfig;
use recon_sim::{parallel_map, Budget, SimError, System};
use recon_workloads::{find, Scale, Suite};

use crate::differ::{run_cell, CellResult, Verdict};
use crate::gadget::{self, Gadget};

/// The five evaluated configurations, baseline first (the paper's
/// Figure 5/6 matrix minus the fence baseline).
#[must_use]
pub fn schemes() -> [SecureConfig; 5] {
    [
        SecureConfig::unsafe_baseline(),
        SecureConfig::nda(),
        SecureConfig::nda_recon(),
        SecureConfig::stt(),
        SecureConfig::stt_recon(),
    ]
}

/// The verdict a correct implementation must produce for one cell:
/// LEAKS only for a transmit gadget on the unprotected baseline.
#[must_use]
pub fn expected_verdict(g: &Gadget, scheme: SecureConfig) -> Verdict {
    if g.transmit && scheme == SecureConfig::unsafe_baseline() {
        Verdict::Leaks
    } else {
        Verdict::Secure
    }
}

/// One matrix cell: the measured result and what it must be.
#[derive(Clone, Debug)]
pub struct MatrixCell {
    /// The measured cell result.
    pub result: CellResult,
    /// The verdict required by the security claim.
    pub expected: Verdict,
}

impl MatrixCell {
    /// Whether the cell matches its expectation and raised no
    /// reveal-soundness violations.
    #[must_use]
    pub fn as_expected(&self) -> bool {
        self.result.verdict == self.expected && self.result.soundness_violations.is_empty()
    }
}

/// ReCon-vs-base cost comparison on the already-leaked gadget: the
/// stacked scheme must protect strictly less (the word is revealed) and
/// therefore run strictly faster.
#[derive(Clone, Copy, Debug)]
pub struct LiftCheck {
    /// The base scheme (NDA or STT).
    pub base: SecureConfig,
    /// The same scheme with ReCon stacked.
    pub with_recon: SecureConfig,
    /// Loads whose issue the base scheme delayed.
    pub delayed_base: u64,
    /// Loads whose issue the stacked scheme delayed.
    pub delayed_recon: u64,
    /// Committed tainted/guarded loads under the base scheme.
    pub guarded_base: u64,
    /// Committed tainted/guarded loads under the stacked scheme.
    pub guarded_recon: u64,
    /// Run length under the base scheme.
    pub cycles_base: u64,
    /// Run length under the stacked scheme.
    pub cycles_recon: u64,
}

impl LiftCheck {
    /// Whether ReCon strictly reduced delayed loads, tainted loads, and
    /// cycles relative to its base.
    #[must_use]
    pub fn pass(&self) -> bool {
        self.delayed_recon < self.delayed_base
            && self.guarded_recon < self.guarded_base
            && self.cycles_recon < self.cycles_base
    }
}

/// The full report `recon verify` prints and CI gates on.
#[derive(Clone, Debug)]
pub struct MatrixReport {
    /// Every (gadget, scheme) cell run, gadget-major.
    pub cells: Vec<MatrixCell>,
    /// Already-leaked cost comparisons (present when both schemes of a
    /// pair were in the filtered matrix).
    pub lifts: Vec<LiftCheck>,
}

impl MatrixReport {
    /// Human-readable descriptions of every violated expectation.
    #[must_use]
    pub fn unexpected(&self) -> Vec<String> {
        let mut out = Vec::new();
        for cell in &self.cells {
            let r = &cell.result;
            if r.verdict != cell.expected {
                out.push(format!(
                    "{} under {}: got {}, expected {}",
                    r.gadget,
                    r.scheme.label(),
                    r.verdict,
                    cell.expected
                ));
            }
            for v in &r.soundness_violations {
                out.push(format!(
                    "{} under {}: reveal-soundness violation: {v}",
                    r.gadget,
                    r.scheme.label()
                ));
            }
        }
        for l in &self.lifts {
            if !l.pass() {
                out.push(format!(
                    "already-leaked: {} not strictly cheaper than {} \
                     (delayed {} vs {}, tainted {} vs {}, cycles {} vs {})",
                    l.with_recon.label(),
                    l.base.label(),
                    l.delayed_recon,
                    l.delayed_base,
                    l.guarded_recon,
                    l.guarded_base,
                    l.cycles_recon,
                    l.cycles_base
                ));
            }
        }
        out
    }

    /// Whether every cell and every lift check met its expectation.
    #[must_use]
    pub fn pass(&self) -> bool {
        self.cells.iter().all(MatrixCell::as_expected) && self.lifts.iter().all(LiftCheck::pass)
    }
}

/// Runs the (optionally filtered) gadget × scheme matrix with `jobs`
/// worker threads. Results are deterministic and independent of `jobs`.
///
/// # Panics
///
/// Panics if `gadget_filter` names an unknown gadget (the CLI validates
/// names first).
#[must_use]
pub fn run_matrix(
    gadget_filter: Option<&str>,
    scheme_filter: Option<SecureConfig>,
    jobs: usize,
) -> MatrixReport {
    run_matrix_budgeted(gadget_filter, scheme_filter, jobs, &Budget::default())
}

/// As [`run_matrix`], under an explicit [`Budget`] (fuel, cycle caps,
/// cancellation).
///
/// The budget's `fast_forward` field is deliberately ignored for
/// gadget cells: ReCon's reveal state is *trained* by the detailed
/// region (a functional warmup commits no load pairs, sets no reveal
/// bits, and records no attacker observations), so skipping any prefix
/// of a tiny gadget changes the security question being asked — the
/// already-leaked gadget's architectural disclosure, for instance,
/// would simply never be seen. Functional warmup in `recon verify`
/// belongs to the benchmark-scale [`soundness_sweep_budgeted`] runs
/// instead.
///
/// # Panics
///
/// Panics on an unknown `gadget_filter` name, or if a cell hits the
/// budget's fuel/cycle deadline (the matrix has no partial-result
/// form; deadline-tolerant callers use [`run_cell_named_budgeted`]).
#[must_use]
pub fn run_matrix_budgeted(
    gadget_filter: Option<&str>,
    scheme_filter: Option<SecureConfig>,
    jobs: usize,
    budget: &Budget,
) -> MatrixReport {
    run_matrix_budgeted_with(gadget_filter, scheme_filter, jobs, budget, false)
}

/// As [`run_matrix_budgeted`], optionally widening the unfiltered
/// matrix to the embedded gadgets ([`gadget::embedded`]) — leakage
/// payloads spliced into corpus host programs, where the speculative
/// window opens inside a realistically warmed-up machine instead of a
/// cold synthetic snippet. Naming an embedded gadget explicitly via
/// `gadget_filter` works regardless of `embedded`.
///
/// # Panics
///
/// As [`run_matrix_budgeted`].
#[must_use]
pub fn run_matrix_budgeted_with(
    gadget_filter: Option<&str>,
    scheme_filter: Option<SecureConfig>,
    jobs: usize,
    budget: &Budget,
    embedded: bool,
) -> MatrixReport {
    let budget = &Budget {
        fast_forward: None,
        ..budget.clone()
    };
    let gadgets: Vec<Gadget> = match gadget_filter {
        Some(name) => vec![gadget::find(name).expect("gadget name validated by caller")],
        None if embedded => gadget::all_with_embedded(),
        None => gadget::all(),
    };
    let picked: Vec<SecureConfig> = schemes()
        .into_iter()
        .filter(|s| scheme_filter.is_none_or(|want| *s == want))
        .collect();
    let work: Vec<(Gadget, SecureConfig)> = gadgets
        .iter()
        .flat_map(|g| picked.iter().map(|s| (*g, *s)))
        .collect();
    let cells: Vec<MatrixCell> = parallel_map(jobs, work, |(g, s)| MatrixCell {
        expected: expected_verdict(&g, s),
        result: crate::differ::run_cell_budgeted(g, s, budget)
            .unwrap_or_else(|e| panic!("matrix cell {} under {} hit its budget: {e}", g.name, s)),
    });
    let lifts = lift_checks(&cells);
    MatrixReport { cells, lifts }
}

/// Runs one (gadget, scheme) matrix cell by gadget name — the
/// cell-as-job entry point `recon serve` dispatches verify jobs
/// through. Returns `None` for an unknown gadget name (callers turn
/// that into their own error; valid names come from
/// [`gadget::all`]).
#[must_use]
pub fn run_cell_named(gadget_name: &str, scheme: SecureConfig) -> Option<MatrixCell> {
    let g = gadget::find(gadget_name)?;
    Some(MatrixCell {
        expected: expected_verdict(&g, scheme),
        result: run_cell(g, scheme),
    })
}

/// As [`run_cell_named`], under an explicit [`Budget`] — lets `recon
/// serve` apply per-job deadlines to verify cells. `None` for an
/// unknown gadget name; `Some(Err(..))` when the budget expired, with
/// the partial result inside the error.
#[must_use]
pub fn run_cell_named_budgeted(
    gadget_name: &str,
    scheme: SecureConfig,
    budget: &Budget,
) -> Option<Result<MatrixCell, SimError>> {
    let g = gadget::find(gadget_name)?;
    Some(
        crate::differ::run_cell_budgeted(g, scheme, budget).map(|result| MatrixCell {
            expected: expected_verdict(&g, scheme),
            result,
        }),
    )
}

/// Builds the already-leaked cost comparisons from whatever cells ran.
fn lift_checks(cells: &[MatrixCell]) -> Vec<LiftCheck> {
    let get = |scheme: SecureConfig| {
        cells
            .iter()
            .map(|c| &c.result)
            .find(|r| r.gadget == "already-leaked" && r.scheme == scheme)
    };
    let delayed = |r: &CellResult| {
        r.result_a
            .cores
            .iter()
            .map(|c| c.loads_delayed_by_scheme)
            .sum::<u64>()
    };
    let pairs = [
        (SecureConfig::nda(), SecureConfig::nda_recon()),
        (SecureConfig::stt(), SecureConfig::stt_recon()),
    ];
    pairs
        .iter()
        .filter_map(|&(base, with_recon)| {
            let b = get(base)?;
            let r = get(with_recon)?;
            Some(LiftCheck {
                base,
                with_recon,
                delayed_base: delayed(b),
                delayed_recon: delayed(r),
                guarded_base: b.result_a.guarded_loads(),
                guarded_recon: r.result_a.guarded_loads(),
                cycles_base: b.result_a.cycles,
                cycles_recon: r.result_a.cycles,
            })
        })
        .collect()
}

/// One reveal-soundness benchmark run.
#[derive(Clone, Debug)]
pub struct SoundnessRun {
    /// Benchmark name.
    pub name: &'static str,
    /// Its suite.
    pub suite: Suite,
    /// Scheme the run used.
    pub scheme: SecureConfig,
    /// Invariant violations (must be empty).
    pub violations: Vec<String>,
}

/// Runs the §5.2/§5.3 reveal-soundness invariant checker on one
/// benchmark per suite under STT+ReCon: every reveal bit observed or
/// left standing must trace back to a committed load-pair reveal that
/// no store or fill has since cleared.
///
/// # Panics
///
/// Panics if a benchmark run does not terminate within its budget.
#[must_use]
pub fn soundness_sweep(jobs: usize) -> Vec<SoundnessRun> {
    soundness_sweep_budgeted(jobs, &Budget::default())
}

/// As [`soundness_sweep`], under an explicit [`Budget`]. Unlike gadget
/// cells (see [`run_matrix_budgeted`]), these are benchmark-scale runs
/// where functional warmup is both safe and useful: the sweep validates
/// whatever reveal bits the *detailed* region sets, so `fast_forward`
/// merely shrinks the checked region — it cannot manufacture a
/// violation or hide one that the detailed region would raise. (A
/// warmup longer than the benchmark halts it functionally and leaves
/// an empty — vacuously sound — detailed region.)
///
/// # Panics
///
/// Panics if a benchmark run does not terminate within its budget.
#[must_use]
pub fn soundness_sweep_budgeted(jobs: usize, budget: &Budget) -> Vec<SoundnessRun> {
    let picks = [
        (Suite::Spec2017, "mcf"),
        (Suite::Spec2006, "milc"),
        (Suite::Parsec, "canneal"),
    ];
    let ff = budget.fast_forward;
    parallel_map(jobs, picks.to_vec(), move |(suite, name)| {
        let bench = find(suite, name, Scale::Quick).expect("benchmark exists");
        let mem = if suite == Suite::Parsec {
            MemConfig::scaled_multicore()
        } else {
            MemConfig::scaled()
        };
        let scheme = SecureConfig::stt_recon();
        let mut sys = System::new(
            &bench.workload,
            CoreConfig::paper(),
            mem,
            scheme,
            ReconConfig::default(),
        );
        if let Some(n) = ff {
            sys.fast_forward(n);
        }
        sys.mem_mut().enable_soundness_checks();
        let r = sys.run(200_000_000);
        assert!(r.completed, "{name} did not finish under {scheme}");
        sys.mem_mut().soundness_sweep();
        SoundnessRun {
            name: bench.name,
            suite,
            scheme,
            violations: sys.mem().soundness_violations().to_vec(),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expectations_only_leak_on_the_unprotected_baseline() {
        let mut leaks = 0;
        for g in gadget::all() {
            for s in schemes() {
                if expected_verdict(&g, s) == Verdict::Leaks {
                    leaks += 1;
                    assert!(g.transmit);
                    assert_eq!(s, SecureConfig::unsafe_baseline());
                }
            }
        }
        assert_eq!(leaks, 3, "three transmit gadgets leak on the baseline");
    }
}

//! The canonical attacker observation: everything a same-core or
//! cross-core attacker could see during and after a run.
//!
//! The model deliberately *over-approximates* the attacker: per-probe
//! latencies and reveal status from the issuing core's point of view
//! (`recon-cpu` observations), every memory-system transaction including
//! directory downgrades/invalidations/upgrades and LLC traffic
//! (`recon-mem` transaction log), and the final per-set tag occupancy,
//! MESI state, and reveal-mask state of every cache (`recon-mem`
//! snapshot). Equality of two observation traces therefore implies
//! indistinguishability for any attacker limited to timing, occupancy,
//! and coherence channels.

use std::hash::{Hash, Hasher};

use recon_cpu::Observation;
use recon_isa::hash::FxHasher;
use recon_mem::{MemEvent, MemEventKind, MemSnapshot};

/// One run's complete attacker-visible observation.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct ObservationTrace {
    /// Per-core demand-load probes (cycle, pc, address, latency,
    /// speculative), in issue order.
    pub cpu: Vec<Vec<Observation>>,
    /// Cycle-stamped memory-system transactions, in application order.
    pub mem: Vec<MemEvent>,
    /// Final canonical cache/directory snapshot.
    pub snapshot: MemSnapshot,
}

impl ObservationTrace {
    /// A deterministic 64-bit digest of the whole observation (stable
    /// across hosts, worker counts, and repeated runs).
    #[must_use]
    pub fn digest(&self) -> u64 {
        let mut h = FxHasher::default();
        for (core, obs) in self.cpu.iter().enumerate() {
            core.hash(&mut h);
            obs.hash(&mut h);
        }
        self.mem.hash(&mut h);
        self.snapshot.hash(&mut h);
        h.finish()
    }

    /// The first observable difference from `other`, if any.
    ///
    /// Memory transactions are compared first (they carry cycle stamps
    /// for the whole system), then per-core probe streams, then the
    /// final snapshot.
    #[must_use]
    pub fn first_divergence(&self, other: &ObservationTrace) -> Option<Divergence> {
        if let Some(d) = diff_mem(&self.mem, &other.mem) {
            return Some(d);
        }
        for (core, (a, b)) in self.cpu.iter().zip(other.cpu.iter()).enumerate() {
            if a == b {
                continue;
            }
            for (x, y) in a.iter().zip(b.iter()) {
                if x != y {
                    return Some(Divergence {
                        cycle: x.cycle.min(y.cycle),
                        structure: format!("core{core} probe"),
                        detail: format!(
                            "pc {} addr {:#x} lat {} vs pc {} addr {:#x} lat {}",
                            x.pc, x.addr, x.latency, y.pc, y.addr, y.latency
                        ),
                    });
                }
            }
            return Some(Divergence {
                cycle: 0,
                structure: format!("core{core} probe"),
                detail: format!("{} vs {} probes", a.len(), b.len()),
            });
        }
        self.snapshot
            .first_divergence(&other.snapshot)
            .map(|detail| Divergence {
                cycle: u64::MAX, // end-of-run state
                structure: "final snapshot".to_string(),
                detail,
            })
    }
}

/// The first divergent observation between two runs — where and what.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Divergence {
    /// Cycle of the divergent observation (`u64::MAX` for the
    /// end-of-run snapshot).
    pub cycle: u64,
    /// Which structure diverged (transaction log, a core's probe
    /// stream, or the final snapshot).
    pub structure: String,
    /// Human-readable description of the two observations.
    pub detail: String,
}

impl core::fmt::Display for Divergence {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        if self.cycle == u64::MAX {
            write!(f, "{}: {}", self.structure, self.detail)
        } else {
            write!(
                f,
                "cycle {}, {}: {}",
                self.cycle, self.structure, self.detail
            )
        }
    }
}

fn event_name(kind: &MemEventKind) -> &'static str {
    match kind {
        MemEventKind::Read { .. } => "read",
        MemEventKind::Write { .. } => "write",
        MemEventKind::Rmw { .. } => "rmw",
        MemEventKind::RevealSet { .. } => "reveal-set",
        MemEventKind::RevealDropped { .. } => "reveal-dropped",
        MemEventKind::Downgrade { .. } => "downgrade",
        MemEventKind::Invalidate { .. } => "invalidate",
        MemEventKind::Upgrade { .. } => "upgrade",
        MemEventKind::MemFetch { .. } => "memory fetch",
        MemEventKind::LlcEvict { .. } => "LLC eviction",
    }
}

fn diff_mem(a: &[MemEvent], b: &[MemEvent]) -> Option<Divergence> {
    if a == b {
        return None;
    }
    for (x, y) in a.iter().zip(b.iter()) {
        if x != y {
            return Some(Divergence {
                cycle: x.cycle.min(y.cycle),
                structure: "memory transaction log".to_string(),
                detail: format!(
                    "{} {:?} vs {} {:?}",
                    event_name(&x.kind),
                    x.kind,
                    event_name(&y.kind),
                    y.kind
                ),
            });
        }
    }
    Some(Divergence {
        cycle: a.last().or(b.last()).map_or(0, |e| e.cycle),
        structure: "memory transaction log".to_string(),
        detail: format!("{} vs {} transactions", a.len(), b.len()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_traces_have_equal_digests_and_no_divergence() {
        let t = ObservationTrace::default();
        assert_eq!(t.digest(), t.clone().digest());
        assert!(t.first_divergence(&t.clone()).is_none());
    }

    #[test]
    fn mem_event_difference_is_reported_first() {
        let a = ObservationTrace {
            mem: vec![MemEvent {
                cycle: 7,
                kind: MemEventKind::MemFetch { line: 0x40 },
            }],
            ..Default::default()
        };
        let b = ObservationTrace {
            mem: vec![MemEvent {
                cycle: 7,
                kind: MemEventKind::MemFetch { line: 0x80 },
            }],
            ..Default::default()
        };
        let d = a.first_divergence(&b).expect("diverges");
        assert_eq!(d.cycle, 7);
        assert!(d.detail.contains("0x40") || d.detail.contains("64"));
        assert_ne!(a.digest(), b.digest());
    }
}

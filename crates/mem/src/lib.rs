//! # recon-mem
//!
//! The memory-hierarchy substrate of the ReCon reproduction: private
//! L1/L2 caches per core, a shared LLC with an in-cache directory, and a
//! MESI protocol whose transactions **piggyback the ReCon reveal/conceal
//! bit-vectors** ([`recon::RevealMask`]) per §5.3 of the paper.
//!
//! The model is *timing-directed*: the arrays store tags, MESI states,
//! and masks — architectural data lives in the functional memory owned by
//! the simulator (`recon-sim`). Each access atomically applies the
//! protocol transitions and returns its latency, which the out-of-order
//! core (`recon-cpu`) uses to schedule completion.
//!
//! ```
//! use recon_mem::{MemorySystem, MemConfig, ServedBy};
//! use recon::ReconConfig;
//!
//! let mut mem = MemorySystem::new(2, MemConfig::scaled(), ReconConfig::default());
//!
//! // Core 0 loads a line and reveals one word (a committed load pair).
//! assert_eq!(mem.read(0, 0x1000).served_by, ServedBy::Memory);
//! mem.reveal(0, 0x1000);
//!
//! // Core 1's read is forwarded from core 0's cache, *with* the mask:
//! let r = mem.read(1, 0x1000);
//! assert_eq!(r.served_by, ServedBy::RemoteCache);
//! assert!(r.revealed); // core 1 can lift defenses without re-learning
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod array;
pub mod config;
pub mod geometry;
pub mod mesi;
pub mod observe;
pub mod stats;
pub mod system;

pub use array::{CacheArray, Evicted};
pub use config::{LatencyConfig, MemConfig};
pub use geometry::CacheGeometry;
pub use mesi::{DirState, Mesi, SharerSet};
pub use observe::{LineState, MemEvent, MemEventKind, MemSnapshot};
pub use stats::MemStats;
pub use system::{MemorySystem, ReadOutcome, ServedBy, WriteOutcome};

//! Memory-system configuration: geometries and latencies (Table 2).

use crate::geometry::CacheGeometry;

/// Access latencies in cycles (roundtrip from the core), per Table 2 of
/// the paper plus derived coherence costs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct LatencyConfig {
    /// L1 data hit (2 cycles roundtrip).
    pub l1_hit: u32,
    /// L2 hit (6 cycles roundtrip).
    pub l2_hit: u32,
    /// LLC hit (16 cycles roundtrip).
    pub llc_hit: u32,
    /// Full memory access (LLC miss).
    pub mem: u32,
    /// Cache-to-cache forward from a remote owner (LLC + probe + hop).
    pub remote_fwd: u32,
    /// Ownership upgrade (invalidate sharers) on top of the hit latency.
    pub upgrade: u32,
}

impl Default for LatencyConfig {
    fn default() -> Self {
        LatencyConfig {
            l1_hit: 2,
            l2_hit: 6,
            llc_hit: 16,
            mem: 116,
            remote_fwd: 26,
            upgrade: 8,
        }
    }
}

/// Geometry + latency configuration of the whole hierarchy.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MemConfig {
    /// Private L1 data cache geometry.
    pub l1: CacheGeometry,
    /// Private L2 geometry.
    pub l2: CacheGeometry,
    /// Shared LLC geometry (the in-cache directory lives here).
    pub llc: CacheGeometry,
    /// Latencies.
    pub lat: LatencyConfig,
}

impl MemConfig {
    /// The paper's Table 2 configuration: 64 KiB 8-way L1, 2 MiB 16-way
    /// L2, 16 MiB 32-way LLC.
    #[must_use]
    pub fn paper() -> Self {
        MemConfig {
            l1: CacheGeometry::new(64 * 1024, 8),
            l2: CacheGeometry::new(2 * 1024 * 1024, 16),
            llc: CacheGeometry::new(16 * 1024 * 1024, 32),
            lat: LatencyConfig::default(),
        }
    }

    /// A capacity-scaled configuration (×1/32) preserving the level
    /// ratios, so the synthetic workloads exercise the same hit/miss
    /// structure at a fraction of the simulation cost. Latencies are
    /// unchanged.
    #[must_use]
    pub fn scaled() -> Self {
        MemConfig {
            l1: CacheGeometry::new(2 * 1024, 8),
            l2: CacheGeometry::new(64 * 1024, 16),
            llc: CacheGeometry::new(512 * 1024, 32),
            lat: LatencyConfig::default(),
        }
    }

    /// The scaled configuration for the 4-core PARSEC system: Table 2
    /// gives the multicore system 4 MiB of LLC *per core* (16 MiB
    /// total), i.e. the shared LLC grows with the core count.
    #[must_use]
    pub fn scaled_multicore() -> Self {
        MemConfig {
            llc: CacheGeometry::new(2 * 1024 * 1024, 32),
            ..MemConfig::scaled()
        }
    }
}

impl Default for MemConfig {
    fn default() -> Self {
        MemConfig::scaled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_matches_table2() {
        let c = MemConfig::paper();
        assert_eq!(c.l1.capacity_bytes(), 64 * 1024);
        assert_eq!(c.l1.ways(), 8);
        assert_eq!(c.l2.capacity_bytes(), 2 * 1024 * 1024);
        assert_eq!(c.l2.ways(), 16);
        assert_eq!(c.llc.capacity_bytes(), 16 * 1024 * 1024);
        assert_eq!(c.llc.ways(), 32);
        assert_eq!(c.lat.l1_hit, 2);
        assert_eq!(c.lat.l2_hit, 6);
        assert_eq!(c.lat.llc_hit, 16);
    }

    #[test]
    fn scaled_preserves_ordering() {
        let c = MemConfig::scaled();
        assert!(c.l1.capacity_bytes() < c.l2.capacity_bytes());
        assert!(c.l2.capacity_bytes() < c.llc.capacity_bytes());
    }
}

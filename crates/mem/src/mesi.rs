//! MESI coherence states and directory-side bookkeeping.

use core::fmt;

/// Private-cache MESI state of a line.
///
/// The derived ordering follows increasing permission:
/// `Invalid < Shared < Exclusive < Modified`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub enum Mesi {
    /// Invalid — not present.
    #[default]
    Invalid,
    /// Shared — clean, possibly other copies exist.
    Shared,
    /// Exclusive — clean, only copy; may silently upgrade to Modified.
    Exclusive,
    /// Modified — dirty, only copy; owner of the authoritative
    /// [`RevealMask`](recon::RevealMask) (§5.3).
    Modified,
}

impl Mesi {
    /// Whether the line can be read without a coherence transaction.
    #[must_use]
    pub fn readable(self) -> bool {
        !matches!(self, Mesi::Invalid)
    }

    /// Whether the line can be written without a coherence transaction.
    #[must_use]
    pub fn writable(self) -> bool {
        matches!(self, Mesi::Exclusive | Mesi::Modified)
    }

    /// Whether this copy is the *owner* of the coherent reveal mask
    /// (write permission implies mask ownership, §5.3).
    #[must_use]
    pub fn owns_mask(self) -> bool {
        self.writable()
    }
}

impl fmt::Display for Mesi {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = match self {
            Mesi::Invalid => 'I',
            Mesi::Shared => 'S',
            Mesi::Exclusive => 'E',
            Mesi::Modified => 'M',
        };
        write!(f, "{c}")
    }
}

/// A compact set of sharer core ids (the directory's sharer vector).
///
/// Supports up to 64 cores, plenty for the 4-core PARSEC configuration.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct SharerSet(u64);

impl SharerSet {
    /// The empty set.
    #[must_use]
    pub fn empty() -> Self {
        SharerSet(0)
    }

    /// A set containing a single core.
    ///
    /// # Panics
    ///
    /// Panics if `core >= 64`.
    #[must_use]
    pub fn single(core: usize) -> Self {
        let mut s = SharerSet(0);
        s.insert(core);
        s
    }

    /// Inserts a core id.
    ///
    /// # Panics
    ///
    /// Panics if `core >= 64`.
    pub fn insert(&mut self, core: usize) {
        assert!(core < 64, "core id {core} out of range");
        self.0 |= 1 << core;
    }

    /// Removes a core id.
    pub fn remove(&mut self, core: usize) {
        assert!(core < 64, "core id {core} out of range");
        self.0 &= !(1 << core);
    }

    /// Whether the set contains `core`.
    #[must_use]
    pub fn contains(&self, core: usize) -> bool {
        core < 64 && self.0 & (1 << core) != 0
    }

    /// Number of sharers.
    #[must_use]
    pub fn len(&self) -> usize {
        self.0.count_ones() as usize
    }

    /// Whether the set is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.0 == 0
    }

    /// Iterates over core ids in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        let bits = self.0;
        (0..64).filter(move |i| bits & (1 << i) != 0)
    }
}

impl FromIterator<usize> for SharerSet {
    fn from_iter<T: IntoIterator<Item = usize>>(iter: T) -> Self {
        let mut s = SharerSet::empty();
        for c in iter {
            s.insert(c);
        }
        s
    }
}

/// Directory-side state of a line (in-cache directory at the LLC).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum DirState {
    /// No private cache holds the line.
    #[default]
    Uncached,
    /// One or more private caches hold the line in S (or one in E when
    /// `exclusive` is set — the directory cannot distinguish silent
    /// E→M upgrades, so E is tracked as a potentially-dirty single owner).
    Shared(SharerSet),
    /// Exactly one private cache holds the line in E or M; it owns the
    /// authoritative reveal mask.
    Owned {
        /// The owning core.
        owner: usize,
    },
}

impl DirState {
    /// Cores that must be invalidated before another core may write.
    #[must_use]
    pub fn holders(&self) -> SharerSet {
        match *self {
            DirState::Uncached => SharerSet::empty(),
            DirState::Shared(s) => s,
            DirState::Owned { owner } => SharerSet::single(owner),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_permissions() {
        assert!(!Mesi::Invalid.readable());
        assert!(Mesi::Shared.readable() && !Mesi::Shared.writable());
        assert!(Mesi::Exclusive.writable() && Mesi::Exclusive.owns_mask());
        assert!(Mesi::Modified.writable() && Mesi::Modified.owns_mask());
        assert!(!Mesi::Shared.owns_mask());
    }

    #[test]
    fn sharer_set_basics() {
        let mut s = SharerSet::empty();
        assert!(s.is_empty());
        s.insert(0);
        s.insert(3);
        assert_eq!(s.len(), 2);
        assert!(s.contains(0) && s.contains(3) && !s.contains(1));
        s.remove(0);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![3]);
    }

    #[test]
    fn sharer_set_from_iterator() {
        let s: SharerSet = [1, 2, 5].into_iter().collect();
        assert_eq!(s.len(), 3);
        assert!(s.contains(5));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn sharer_set_bounds() {
        let mut s = SharerSet::empty();
        s.insert(64);
    }

    #[test]
    fn dir_state_holders() {
        assert!(DirState::Uncached.holders().is_empty());
        let sh = DirState::Shared([0, 2].into_iter().collect());
        assert_eq!(sh.holders().len(), 2);
        let own = DirState::Owned { owner: 1 };
        assert_eq!(own.holders().iter().collect::<Vec<_>>(), vec![1]);
    }

    #[test]
    fn display_single_letter() {
        assert_eq!(Mesi::Modified.to_string(), "M");
        assert_eq!(Mesi::Invalid.to_string(), "I");
    }
}

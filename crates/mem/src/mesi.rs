//! MESI coherence states and directory-side bookkeeping.

use core::fmt;

/// Private-cache MESI state of a line.
///
/// The derived ordering follows increasing permission:
/// `Invalid < Shared < Exclusive < Modified`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub enum Mesi {
    /// Invalid — not present.
    #[default]
    Invalid,
    /// Shared — clean, possibly other copies exist.
    Shared,
    /// Exclusive — clean, only copy; may silently upgrade to Modified.
    Exclusive,
    /// Modified — dirty, only copy; owner of the authoritative
    /// [`RevealMask`](recon::RevealMask) (§5.3).
    Modified,
}

impl Mesi {
    /// Whether the line can be read without a coherence transaction.
    #[must_use]
    pub fn readable(self) -> bool {
        !matches!(self, Mesi::Invalid)
    }

    /// Whether the line can be written without a coherence transaction.
    #[must_use]
    pub fn writable(self) -> bool {
        matches!(self, Mesi::Exclusive | Mesi::Modified)
    }

    /// Whether this copy is the *owner* of the coherent reveal mask
    /// (write permission implies mask ownership, §5.3).
    #[must_use]
    pub fn owns_mask(self) -> bool {
        self.writable()
    }
}

impl fmt::Display for Mesi {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = match self {
            Mesi::Invalid => 'I',
            Mesi::Shared => 'S',
            Mesi::Exclusive => 'E',
            Mesi::Modified => 'M',
        };
        write!(f, "{c}")
    }
}

/// A compact set of sharer core ids (the directory's sharer vector).
///
/// Supports up to 64 cores, plenty for the 4-core PARSEC configuration.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct SharerSet(u64);

impl SharerSet {
    /// The empty set.
    #[must_use]
    pub fn empty() -> Self {
        SharerSet(0)
    }

    /// A set containing a single core.
    ///
    /// # Panics
    ///
    /// Panics if `core >= 64`.
    #[must_use]
    pub fn single(core: usize) -> Self {
        let mut s = SharerSet(0);
        s.insert(core);
        s
    }

    /// Inserts a core id.
    ///
    /// # Panics
    ///
    /// Panics if `core >= 64`.
    pub fn insert(&mut self, core: usize) {
        assert!(core < 64, "core id {core} out of range");
        self.0 |= 1 << core;
    }

    /// Removes a core id.
    pub fn remove(&mut self, core: usize) {
        assert!(core < 64, "core id {core} out of range");
        self.0 &= !(1 << core);
    }

    /// Whether the set contains `core`.
    #[must_use]
    pub fn contains(&self, core: usize) -> bool {
        core < 64 && self.0 & (1 << core) != 0
    }

    /// Number of sharers.
    #[must_use]
    pub fn len(&self) -> usize {
        self.0.count_ones() as usize
    }

    /// Whether the set is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.0 == 0
    }

    /// Iterates over core ids in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        let bits = self.0;
        (0..64).filter(move |i| bits & (1 << i) != 0)
    }
}

impl FromIterator<usize> for SharerSet {
    fn from_iter<T: IntoIterator<Item = usize>>(iter: T) -> Self {
        let mut s = SharerSet::empty();
        for c in iter {
            s.insert(c);
        }
        s
    }
}

/// Directory-side state of a line (in-cache directory at the LLC).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum DirState {
    /// No private cache holds the line.
    #[default]
    Uncached,
    /// One or more private caches hold the line in S (or one in E when
    /// `exclusive` is set — the directory cannot distinguish silent
    /// E→M upgrades, so E is tracked as a potentially-dirty single owner).
    Shared(SharerSet),
    /// Exactly one private cache holds the line in E or M; it owns the
    /// authoritative reveal mask.
    Owned {
        /// The owning core.
        owner: usize,
    },
}

impl DirState {
    /// Cores that must be invalidated before another core may write.
    #[must_use]
    pub fn holders(&self) -> SharerSet {
        match *self {
            DirState::Uncached => SharerSet::empty(),
            DirState::Shared(s) => s,
            DirState::Owned { owner } => SharerSet::single(owner),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_permissions() {
        assert!(!Mesi::Invalid.readable());
        assert!(Mesi::Shared.readable() && !Mesi::Shared.writable());
        assert!(Mesi::Exclusive.writable() && Mesi::Exclusive.owns_mask());
        assert!(Mesi::Modified.writable() && Mesi::Modified.owns_mask());
        assert!(!Mesi::Shared.owns_mask());
    }

    #[test]
    fn sharer_set_basics() {
        let mut s = SharerSet::empty();
        assert!(s.is_empty());
        s.insert(0);
        s.insert(3);
        assert_eq!(s.len(), 2);
        assert!(s.contains(0) && s.contains(3) && !s.contains(1));
        s.remove(0);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![3]);
    }

    #[test]
    fn sharer_set_from_iterator() {
        let s: SharerSet = [1, 2, 5].into_iter().collect();
        assert_eq!(s.len(), 3);
        assert!(s.contains(5));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn sharer_set_bounds() {
        let mut s = SharerSet::empty();
        s.insert(64);
    }

    #[test]
    fn dir_state_holders() {
        assert!(DirState::Uncached.holders().is_empty());
        let sh = DirState::Shared([0, 2].into_iter().collect());
        assert_eq!(sh.holders().len(), 2);
        let own = DirState::Owned { owner: 1 };
        assert_eq!(own.holders().iter().collect::<Vec<_>>(), vec![1]);
    }

    #[test]
    fn display_single_letter() {
        assert_eq!(Mesi::Modified.to_string(), "M");
        assert_eq!(Mesi::Invalid.to_string(), "I");
    }

    // ---------------------------------------------------------------
    // §5.3 mask-coherence edge cases, exercised directly against the
    // protocol transitions (not through whole-system runs).
    // ---------------------------------------------------------------

    use crate::config::MemConfig;
    use crate::system::MemorySystem;
    use recon::ReconConfig;

    fn proto(cores: usize) -> MemorySystem {
        MemorySystem::new(cores, MemConfig::scaled(), ReconConfig::default())
    }

    /// Reads the LLC's mask copy of `line` from a canonical snapshot.
    fn llc_mask(m: &MemorySystem, line: u64) -> u8 {
        m.snapshot()
            .llc
            .iter()
            .find(|l| l.line == line)
            .map_or(0, |l| l.mask)
    }

    #[test]
    fn reader_eviction_ors_l1_mask_into_directory_copy() {
        // Two S-state readers reveal different words of one line; both
        // evictions must OR into the directory copy, never overwrite.
        let mut m = proto(2);
        m.read(0, 0x0);
        m.read(1, 0x0); // both Shared now
        assert!(m.reveal(0, 0x0), "word 0 revealed by core 0");
        assert!(m.reveal(1, 0x8), "word 1 revealed by core 1");
        // Evict both private copies: scaled L2 is 64 KiB 16-way = 64
        // sets, so lines 4 KiB apart contend for set 0.
        for i in 1..=16u64 {
            m.read(0, i * 4096);
            m.read(1, i * 4096);
        }
        assert_eq!(m.l2_state(0, 0x0), None);
        assert_eq!(m.l2_state(1, 0x0), None);
        assert_eq!(llc_mask(&m, 0x0), 0b11, "directory ORed both reveals");
    }

    #[test]
    fn invalidated_reader_loses_its_mask_copy() {
        // Footnote 1: a reader invalidated by a writer's GetM loses its
        // mask copy entirely — the reveal does not survive anywhere.
        let mut m = proto(2);
        m.read(0, 0x40);
        m.read(1, 0x40);
        assert!(m.reveal(1, 0x48), "core 1's private reveal");
        let lost_before = m.stats().mask_bits_lost_inval;
        m.write(0, 0x40); // GetM invalidates core 1
        let snap = m.snapshot();
        let (l1, l2) = &snap.cores[1];
        assert!(l1.iter().all(|l| l.line != 0x40), "L1 copy gone");
        assert!(l2.iter().all(|l| l.line != 0x40), "L2 copy gone");
        assert_eq!(m.stats().mask_bits_lost_inval, lost_before + 1);
        assert!(!m.read(1, 0x48).revealed, "reveal did not survive");
    }

    #[test]
    fn modified_writer_owns_the_only_coherent_copy() {
        // While a writer holds M, its private mask is authoritative and
        // the directory copy is stale: a reveal set by the owner lives
        // only in its L1 until a downgrade publishes it.
        let mut m = proto(2);
        m.write(0, 0x88); // core 0: Modified
        assert!(m.reveal(0, 0x88));
        assert_eq!(m.l1_state(0, 0x88), Some(Mesi::Modified));
        assert_eq!(m.dir_state(0x88), Some(DirState::Owned { owner: 0 }));
        assert_eq!(llc_mask(&m, 0x80), 0, "directory copy is stale");
        // Core 1's GetS downgrades the owner: the owner's mask travels
        // and *overwrites* the stale directory copy.
        let r = m.read(1, 0x88);
        assert!(r.revealed, "owner's authoritative mask was forwarded");
        assert_eq!(m.l1_state(0, 0x88), Some(Mesi::Shared));
        assert_eq!(llc_mask(&m, 0x80), 0b10, "owner mask overwrote");
    }
}

//! Attacker observation hooks: a cycle-stamped transaction log and a
//! canonical end-of-run snapshot of all cache/directory metadata.
//!
//! `recon-verify` builds its two-trace non-interference check on these:
//! everything here is an *over-approximation* of what a same-core or
//! cross-core attacker could observe (probe latencies, which sets and
//! tags are occupied, MESI states, directory/invalidation traffic, and
//! reveal-mask state). If two runs produce equal logs and equal
//! snapshots, no attacker limited to those channels can distinguish
//! them.
//!
//! Recording is off by default and costs one branch per transaction.

use crate::mesi::{DirState, Mesi};
use crate::system::ServedBy;

/// One attacker-observable memory-system transaction.
///
/// Every demand access and every coherence side effect it triggers is
/// logged with the cycle the memory system was told about last (see
/// `MemorySystem::set_now`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct MemEvent {
    /// Cycle at which the transaction was applied.
    pub cycle: u64,
    /// What happened.
    pub kind: MemEventKind,
}

/// Memory-system transaction kinds.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum MemEventKind {
    /// A demand load: which core probed which address, the roundtrip
    /// latency it observed, which level served it, and whether the word
    /// was revealed (all timing-visible to the issuing core).
    Read {
        /// Issuing core.
        core: usize,
        /// Word address.
        addr: u64,
        /// Observed roundtrip latency.
        latency: u32,
        /// Level that served the access.
        served_by: ServedBy,
        /// Reveal status the core saw.
        revealed: bool,
    },
    /// A performed store (store-buffer drain).
    Write {
        /// Issuing core.
        core: usize,
        /// Word address.
        addr: u64,
        /// Observed roundtrip latency.
        latency: u32,
    },
    /// An atomic read-modify-write.
    Rmw {
        /// Issuing core.
        core: usize,
        /// Word address.
        addr: u64,
        /// Observed roundtrip latency.
        latency: u32,
        /// Pre-write reveal status the core saw.
        revealed: bool,
    },
    /// A commit-stage reveal request that set a mask bit.
    RevealSet {
        /// Requesting core.
        core: usize,
        /// Word address revealed.
        addr: u64,
    },
    /// A reveal request dropped (line not cached at a covered level).
    RevealDropped {
        /// Requesting core.
        core: usize,
        /// Word address.
        addr: u64,
    },
    /// A remote owner's copy was downgraded M/E -> S by a GetS.
    Downgrade {
        /// The previous owner whose copy was demoted.
        owner: usize,
        /// Line address.
        line: u64,
    },
    /// A private copy was invalidated (GetM or LLC back-invalidation).
    Invalidate {
        /// Core losing its copy.
        victim: usize,
        /// Line address.
        line: u64,
    },
    /// A sharer upgraded to ownership at the directory (GetM on S).
    Upgrade {
        /// Upgrading core.
        core: usize,
        /// Line address.
        line: u64,
    },
    /// An LLC miss went to memory.
    MemFetch {
        /// Line address fetched.
        line: u64,
    },
    /// The LLC evicted a line (directory entry and masks lost).
    LlcEvict {
        /// Line address evicted.
        line: u64,
    },
}

/// One valid line of a cache array in the canonical snapshot.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct LineState {
    /// Line (tag) address.
    pub line: u64,
    /// Set index the line occupies.
    pub set: usize,
    /// MESI state.
    pub state: Mesi,
    /// Reveal-mask bits ([`recon::RevealMask::bits`]).
    pub mask: u8,
}

/// Canonical end-of-run snapshot of every tag, MESI state, and reveal
/// mask in the hierarchy, plus the directory. Lines are sorted by
/// address within each array, so two snapshots compare structurally.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct MemSnapshot {
    /// Per-core `(L1 lines, L2 lines)`.
    pub cores: Vec<(Vec<LineState>, Vec<LineState>)>,
    /// Shared LLC lines.
    pub llc: Vec<LineState>,
    /// Directory entries, sorted by line address.
    pub dir: Vec<(u64, DirState)>,
}

impl MemSnapshot {
    /// Describes the first structural difference from `other`, if any —
    /// which array, which line/set — for LEAKS debugging output.
    #[must_use]
    pub fn first_divergence(&self, other: &MemSnapshot) -> Option<String> {
        fn diff_lines(name: &str, a: &[LineState], b: &[LineState]) -> Option<String> {
            if a == b {
                return None;
            }
            for (x, y) in a.iter().zip(b.iter()) {
                if x != y {
                    return Some(format!(
                        "{name}: line {:#x} set {} ({:?} mask {:#04x}) vs line {:#x} set {} ({:?} mask {:#04x})",
                        x.line, x.set, x.state, x.mask, y.line, y.set, y.state, y.mask
                    ));
                }
            }
            Some(format!("{name}: occupancy {} vs {}", a.len(), b.len()))
        }
        for (i, ((l1a, l2a), (l1b, l2b))) in self.cores.iter().zip(other.cores.iter()).enumerate() {
            if let Some(d) = diff_lines(&format!("core{i}.L1"), l1a, l1b) {
                return Some(d);
            }
            if let Some(d) = diff_lines(&format!("core{i}.L2"), l2a, l2b) {
                return Some(d);
            }
        }
        if let Some(d) = diff_lines("LLC", &self.llc, &other.llc) {
            return Some(d);
        }
        if self.dir != other.dir {
            for (a, b) in self.dir.iter().zip(other.dir.iter()) {
                if a != b {
                    return Some(format!(
                        "directory: line {:#x} {:?} vs line {:#x} {:?}",
                        a.0, a.1, b.0, b.1
                    ));
                }
            }
            return Some(format!(
                "directory: {} vs {} entries",
                self.dir.len(),
                other.dir.len()
            ));
        }
        None
    }
}

//! Cache geometry: capacity/associativity and address slicing.

use recon::LINE_BYTES;

/// Geometry of one cache level.
///
/// ```
/// use recon_mem::CacheGeometry;
///
/// let l1 = CacheGeometry::new(64 * 1024, 8); // 64 KiB, 8-way (paper L1)
/// assert_eq!(l1.num_sets(), 128);
/// assert_eq!(l1.num_lines(), 1024);
/// let (set, tag) = l1.slice(0x1_2340);
/// assert_eq!(set, (0x1_2340 / 64) % 128);
/// assert_eq!(tag, 0x1_2340 / 64 / 128);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CacheGeometry {
    capacity_bytes: u64,
    ways: usize,
    sets: usize,
}

impl CacheGeometry {
    /// Creates a geometry from capacity (bytes) and associativity.
    ///
    /// # Panics
    ///
    /// Panics unless capacity is a power-of-two multiple of
    /// `ways * LINE_BYTES` producing a power-of-two set count.
    #[must_use]
    pub fn new(capacity_bytes: u64, ways: usize) -> Self {
        assert!(ways > 0, "associativity must be positive");
        let lines = capacity_bytes / LINE_BYTES;
        assert_eq!(
            lines % ways as u64,
            0,
            "capacity must be a multiple of ways * line size"
        );
        let sets = (lines / ways as u64) as usize;
        assert!(
            sets.is_power_of_two(),
            "set count {sets} must be a power of two"
        );
        CacheGeometry {
            capacity_bytes,
            ways,
            sets,
        }
    }

    /// Total capacity in bytes.
    #[must_use]
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity_bytes
    }

    /// Associativity (ways per set).
    #[must_use]
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Number of sets.
    #[must_use]
    pub fn num_sets(&self) -> usize {
        self.sets
    }

    /// Total number of lines.
    #[must_use]
    pub fn num_lines(&self) -> usize {
        self.sets * self.ways
    }

    /// Splits a byte address into `(set index, tag)`.
    #[must_use]
    pub fn slice(&self, addr: u64) -> (usize, u64) {
        let line = addr / LINE_BYTES;
        let set = (line % self.sets as u64) as usize;
        let tag = line / self.sets as u64;
        (set, tag)
    }

    /// Reconstructs the line base address from `(set, tag)`.
    #[must_use]
    pub fn unslice(&self, set: usize, tag: u64) -> u64 {
        (tag * self.sets as u64 + set as u64) * LINE_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_l1_geometry() {
        let g = CacheGeometry::new(64 * 1024, 8);
        assert_eq!(g.num_sets(), 128);
        assert_eq!(g.num_lines(), 1024);
        assert_eq!(g.ways(), 8);
        assert_eq!(g.capacity_bytes(), 64 * 1024);
    }

    #[test]
    fn slice_unslice_round_trip() {
        let g = CacheGeometry::new(32 * 1024, 4);
        for addr in [0u64, 0x40, 0x1000, 0xDE_ADC0, 0xFFFF_FFC0] {
            let line_base = addr & !63;
            let (set, tag) = g.slice(addr);
            assert_eq!(g.unslice(set, tag), line_base);
        }
    }

    #[test]
    fn same_set_different_tag_conflict() {
        let g = CacheGeometry::new(8 * 1024, 2); // 64 sets
        let (s1, t1) = g.slice(0x0);
        let (s2, t2) = g.slice(64 * 64); // one full stride away
        assert_eq!(s1, s2);
        assert_ne!(t1, t2);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_sets_panics() {
        let _ = CacheGeometry::new(3 * 64 * 5, 1);
    }
}

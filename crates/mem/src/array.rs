//! Generic set-associative cache array with LRU replacement.
//!
//! The array stores coherence metadata (tag, MESI state) plus the ReCon
//! [`RevealMask`]. Data values are *not* stored: the reproduction is a
//! timing-directed model where architectural data lives in a flat
//! functional memory (see `recon-sim`), as in many timing simulators.
//!
//! Reveal masks live in a dense [`MaskArray`] indexed by `(set, way)`
//! rather than inside the per-way metadata, so array-wide mask
//! operations (occupancy-style reveal counts, any-revealed probes) run
//! over packed `u64` words instead of walking every way a byte at a
//! time.

use recon::{MaskArray, RevealMask};
use recon_isa::snap::{SnapError, SnapReader, SnapWriter};

use crate::geometry::CacheGeometry;
use crate::mesi::Mesi;

/// One way of one set (coherence metadata only — the reveal mask is in
/// the array's packed [`MaskArray`]).
#[derive(Clone, Copy, Debug, Default)]
struct Way {
    valid: bool,
    tag: u64,
    state: Mesi,
    last_use: u64,
}

/// A line evicted by [`CacheArray::fill`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Evicted {
    /// Line base address of the victim.
    pub addr: u64,
    /// Its MESI state at eviction.
    pub state: Mesi,
    /// Its reveal mask at eviction (to be merged or written back).
    pub mask: RevealMask,
}

/// Set-associative array of coherence + reveal metadata.
///
/// ```
/// use recon_mem::{CacheArray, CacheGeometry, Mesi};
/// use recon::RevealMask;
///
/// let mut c = CacheArray::new(CacheGeometry::new(1024, 2));
/// assert!(c.state_of(0x0).is_none());
/// c.fill(0x0, Mesi::Shared, RevealMask::all_concealed());
/// assert_eq!(c.state_of(0x0), Some(Mesi::Shared));
/// ```
#[derive(Clone, Debug)]
pub struct CacheArray {
    geom: CacheGeometry,
    sets: Vec<Vec<Way>>,
    masks: MaskArray,
    tick: u64,
}

impl CacheArray {
    /// Creates an empty array with the given geometry.
    #[must_use]
    pub fn new(geom: CacheGeometry) -> Self {
        let sets = vec![vec![Way::default(); geom.ways()]; geom.num_sets()];
        let masks = MaskArray::new(geom.num_sets() * geom.ways());
        CacheArray {
            geom,
            sets,
            masks,
            tick: 0,
        }
    }

    /// The array's geometry.
    #[must_use]
    pub fn geometry(&self) -> CacheGeometry {
        self.geom
    }

    /// Flat index of `(set, way)` into the packed mask array.
    #[inline]
    fn mask_slot(&self, set: usize, way: usize) -> usize {
        set * self.geom.ways() + way
    }

    fn find(&self, addr: u64) -> Option<(usize, usize)> {
        let (set, tag) = self.geom.slice(addr);
        self.sets[set]
            .iter()
            .position(|w| w.valid && w.tag == tag)
            .map(|way| (set, way))
    }

    /// The MESI state of the line containing `addr`, if present.
    #[must_use]
    pub fn state_of(&self, addr: u64) -> Option<Mesi> {
        self.find(addr).map(|(s, w)| self.sets[s][w].state)
    }

    /// The reveal mask of the line containing `addr`, if present.
    #[must_use]
    pub fn mask_of(&self, addr: u64) -> Option<RevealMask> {
        self.find(addr)
            .map(|(s, w)| self.masks.get(self.mask_slot(s, w)))
    }

    /// Looks up the line and refreshes its LRU position. Returns
    /// `(state, mask)` on hit.
    pub fn touch(&mut self, addr: u64) -> Option<(Mesi, RevealMask)> {
        let (s, w) = self.find(addr)?;
        self.tick += 1;
        self.sets[s][w].last_use = self.tick;
        Some((self.sets[s][w].state, self.masks.get(self.mask_slot(s, w))))
    }

    /// Changes the state of a present line. Returns `false` if absent.
    pub fn set_state(&mut self, addr: u64, state: Mesi) -> bool {
        match self.find(addr) {
            Some((s, w)) => {
                self.sets[s][w].state = state;
                true
            }
            None => false,
        }
    }

    /// Replaces the mask of a present line. Returns `false` if absent.
    pub fn set_mask(&mut self, addr: u64, mask: RevealMask) -> bool {
        match self.find(addr) {
            Some((s, w)) => {
                self.masks.set(self.mask_slot(s, w), mask);
                true
            }
            None => false,
        }
    }

    /// Applies `f` to the mask of a present line. Returns `false` if
    /// absent.
    pub fn update_mask(&mut self, addr: u64, f: impl FnOnce(&mut RevealMask)) -> bool {
        match self.find(addr) {
            Some((s, w)) => {
                let slot = self.mask_slot(s, w);
                let mut mask = self.masks.get(slot);
                f(&mut mask);
                self.masks.set(slot, mask);
                true
            }
            None => false,
        }
    }

    /// ORs `mask` into a present line's mask via the packed batch path
    /// (the §5.3 merge rule). Returns `false` if absent.
    pub fn or_mask(&mut self, addr: u64, mask: RevealMask) -> bool {
        match self.find(addr) {
            Some((s, w)) => {
                self.masks.or_line(self.mask_slot(s, w), mask);
                true
            }
            None => false,
        }
    }

    /// Inserts a line, evicting the LRU victim if the set is full.
    ///
    /// The caller handles the returned victim (writeback / directory
    /// notification / mask merge). Filling an already-present line just
    /// updates its state and mask.
    pub fn fill(&mut self, addr: u64, state: Mesi, mask: RevealMask) -> Option<Evicted> {
        debug_assert!(state.readable(), "filling an Invalid line is meaningless");
        self.tick += 1;
        let tick = self.tick;
        if let Some((s, w)) = self.find(addr) {
            let slot = self.mask_slot(s, w);
            let way = &mut self.sets[s][w];
            way.state = state;
            way.last_use = tick;
            self.masks.set(slot, mask);
            return None;
        }
        let (set, tag) = self.geom.slice(addr);
        let slot = if let Some(i) = self.sets[set].iter().position(|w| !w.valid) {
            i
        } else {
            // LRU victim.
            self.sets[set]
                .iter()
                .enumerate()
                .min_by_key(|(_, w)| w.last_use)
                .map(|(i, _)| i)
                .expect("associativity is positive")
        };
        let mask_slot = self.mask_slot(set, slot);
        let victim = &self.sets[set][slot];
        let evicted = victim.valid.then(|| Evicted {
            addr: self.geom.unslice(set, victim.tag),
            state: victim.state,
            mask: self.masks.get(mask_slot),
        });
        self.sets[set][slot] = Way {
            valid: true,
            tag,
            state,
            last_use: tick,
        };
        self.masks.set(mask_slot, mask);
        evicted
    }

    /// Removes a line, returning its `(state, mask)` if it was present.
    pub fn invalidate(&mut self, addr: u64) -> Option<(Mesi, RevealMask)> {
        let (s, w) = self.find(addr)?;
        let slot = self.mask_slot(s, w);
        let mask = self.masks.get(slot);
        // Conceal the slot so array-wide packed scans only see valid
        // lines' reveal bits.
        self.masks.set(slot, RevealMask::all_concealed());
        let way = &mut self.sets[s][w];
        way.valid = false;
        Some((way.state, mask))
    }

    /// Number of valid lines (for tests and occupancy stats).
    #[must_use]
    pub fn occupancy(&self) -> usize {
        self.sets.iter().flatten().filter(|w| w.valid).count()
    }

    /// Total revealed words across all resident lines, computed by
    /// `u64` popcount over the packed mask array — no per-way walk.
    ///
    /// Invalidated slots are concealed eagerly, so the packed count
    /// equals the sum over valid lines.
    #[must_use]
    pub fn revealed_words(&self) -> u64 {
        self.masks.count_revealed()
    }

    /// Iterates over `(line_addr, state, mask)` of every valid line.
    pub fn iter_lines(&self) -> impl Iterator<Item = (u64, Mesi, RevealMask)> + '_ {
        self.sets.iter().enumerate().flat_map(move |(set, ways)| {
            ways.iter()
                .enumerate()
                .filter(|(_, w)| w.valid)
                .map(move |(way, w)| {
                    (
                        self.geom.unslice(set, w.tag),
                        w.state,
                        self.masks.get(self.mask_slot(set, way)),
                    )
                })
        })
    }

    /// Invariant sweep over this array's internal bookkeeping:
    ///
    /// * an **invalid** slot's packed reveal mask must be fully
    ///   concealed ([`CacheArray::invalidate`] conceals eagerly, and
    ///   [`CacheArray::revealed_words`] depends on it);
    /// * a **valid** way must be in a readable MESI state — `Invalid`
    ///   metadata under a set valid bit is a contradiction
    ///   ([`CacheArray::fill`] asserts readability on entry);
    /// * no set may hold two valid ways with the same tag (lookups
    ///   would resolve nondeterministically).
    ///
    /// Violations are appended to `out` labeled with `site`.
    pub fn audit(&self, site: &str, out: &mut Vec<recon::AuditViolation>) {
        for (set, ways) in self.sets.iter().enumerate() {
            for (way, meta) in ways.iter().enumerate() {
                let mask = self.masks.get(self.mask_slot(set, way));
                if !meta.valid && mask.bits() != 0 {
                    out.push(recon::AuditViolation::new(
                        "mask-on-invalid-way",
                        site,
                        format!(
                            "set {set} way {way}: invalid slot carries reveal bits {:#04x}",
                            mask.bits()
                        ),
                    ));
                }
                if meta.valid && !meta.state.readable() {
                    out.push(recon::AuditViolation::new(
                        "valid-way-unreadable",
                        site,
                        format!(
                            "set {set} way {way} (line {:#x}): valid bit set but state Invalid",
                            self.geom.unslice(set, meta.tag)
                        ),
                    ));
                }
            }
            for (i, a) in ways.iter().enumerate() {
                if !a.valid {
                    continue;
                }
                for b in &ways[i + 1..] {
                    if b.valid && a.tag == b.tag {
                        out.push(recon::AuditViolation::new(
                            "duplicate-tag",
                            site,
                            format!(
                                "set {set}: two valid ways hold line {:#x}",
                                self.geom.unslice(set, a.tag)
                            ),
                        ));
                    }
                }
            }
        }
    }

    /// Soft-error injection hook: flips one random bit of one slot's
    /// packed reveal mask (valid or invalid — soft errors do not read
    /// the valid bit first). Returns a description of the flip.
    pub fn inject_mask_bit(&mut self, rng: &mut recon_isa::rng::SplitMix64) -> Option<String> {
        use recon_isa::rng::Rng as _;
        let slots = self.sets.len() * self.geom.ways();
        if slots == 0 {
            return None;
        }
        let slot = rng.next_u64() as usize % slots;
        let word = rng.next_u64() as usize % recon::WORDS_PER_LINE;
        let mut mask = self.masks.get(slot);
        if mask.is_revealed(word) {
            mask.conceal(word);
        } else {
            mask.reveal(word);
        }
        self.masks.set(slot, mask);
        let (set, way) = (slot / self.geom.ways(), slot % self.geom.ways());
        let valid = self.sets[set][way].valid;
        Some(format!(
            "mask bit {word} of set {set} way {way} flipped (way {})",
            if valid { "valid" } else { "invalid" }
        ))
    }

    /// Soft-error injection hook: overwrites the MESI state of a random
    /// *valid* way with a different random state (possibly `Invalid`,
    /// modeling a decayed state field). Returns a description, or
    /// `None` when the array holds no valid line.
    pub fn inject_state_flip(&mut self, rng: &mut recon_isa::rng::SplitMix64) -> Option<String> {
        use recon_isa::rng::Rng as _;
        let valid: Vec<(usize, usize)> = self
            .sets
            .iter()
            .enumerate()
            .flat_map(|(s, ways)| {
                ways.iter()
                    .enumerate()
                    .filter(|(_, w)| w.valid)
                    .map(move |(w, _)| (s, w))
            })
            .collect();
        let &(set, way) = valid.get(rng.next_u64() as usize % valid.len().max(1))?;
        let old = self.sets[set][way].state;
        let choices = [Mesi::Invalid, Mesi::Shared, Mesi::Exclusive, Mesi::Modified];
        let new = choices[rng.next_u64() as usize % choices.len()];
        let new = if new == old {
            choices[(mesi_to_u8(old) as usize + 1) % choices.len()]
        } else {
            new
        };
        self.sets[set][way].state = new;
        Some(format!(
            "line {:#x}: MESI {old:?} -> {new:?}",
            self.geom.unslice(set, self.sets[set][way].tag)
        ))
    }

    /// Serializes every way of every set in array order, including LRU
    /// timestamps, so replacement decisions replay identically after a
    /// restore. Geometry is *not* stored — it is re-derived from the
    /// run configuration and validated by the caller.
    pub fn save_snap(&self, w: &mut SnapWriter) {
        w.tag(b"CARR");
        w.u64(self.tick);
        w.u32(self.sets.len() as u32);
        w.u32(self.geom.ways() as u32);
        for (set, ways) in self.sets.iter().enumerate() {
            for (way, meta) in ways.iter().enumerate() {
                w.bool(meta.valid);
                w.u64(meta.tag);
                w.u8(mesi_to_u8(meta.state));
                w.u8(self.masks.get(self.mask_slot(set, way)).bits());
                w.u64(meta.last_use);
            }
        }
    }

    /// Reconstructs an array from [`CacheArray::save_snap`] bytes into
    /// a freshly built array of geometry `geom`.
    ///
    /// # Errors
    ///
    /// Fails if the stored dimensions disagree with `geom` (the run was
    /// checkpointed under a different cache configuration) or the
    /// stream is corrupt.
    pub fn load_snap(geom: CacheGeometry, r: &mut SnapReader<'_>) -> Result<CacheArray, SnapError> {
        r.expect_tag(b"CARR")?;
        let tick = r.u64()?;
        let num_sets = r.u32()? as usize;
        let num_ways = r.u32()? as usize;
        if num_sets != geom.num_sets() || num_ways != geom.ways() {
            return Err(SnapError {
                what: format!(
                    "cache dimensions {num_sets}x{num_ways} do not match configured {}x{}",
                    geom.num_sets(),
                    geom.ways()
                ),
                offset: r.offset(),
            });
        }
        let mut sets = Vec::with_capacity(num_sets);
        let mut masks = MaskArray::new(num_sets * num_ways);
        for set in 0..num_sets {
            let mut ways = Vec::with_capacity(num_ways);
            for way in 0..num_ways {
                let valid = r.bool()?;
                let tag = r.u64()?;
                let state = mesi_from_u8(r.u8()?, r)?;
                let mask = RevealMask::from_bits(r.u8()?);
                let last_use = r.u64()?;
                ways.push(Way {
                    valid,
                    tag,
                    state,
                    last_use,
                });
                // Invalid slots stay concealed in the packed array so
                // revealed_words() counts only resident lines.
                if valid {
                    masks.set(set * num_ways + way, mask);
                }
            }
            sets.push(ways);
        }
        Ok(CacheArray {
            geom,
            sets,
            masks,
            tick,
        })
    }
}

/// Stable byte encoding of a [`Mesi`] state for snapshots.
pub(crate) fn mesi_to_u8(m: Mesi) -> u8 {
    match m {
        Mesi::Invalid => 0,
        Mesi::Shared => 1,
        Mesi::Exclusive => 2,
        Mesi::Modified => 3,
    }
}

/// Inverse of [`mesi_to_u8`], failing on unknown bytes.
pub(crate) fn mesi_from_u8(b: u8, r: &SnapReader<'_>) -> Result<Mesi, SnapError> {
    Ok(match b {
        0 => Mesi::Invalid,
        1 => Mesi::Shared,
        2 => Mesi::Exclusive,
        3 => Mesi::Modified,
        other => {
            return Err(SnapError {
                what: format!("invalid MESI byte {other:#x}"),
                offset: r.offset(),
            })
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CacheArray {
        // 2 sets, 2 ways, 64B lines = 256 B.
        CacheArray::new(CacheGeometry::new(256, 2))
    }

    #[test]
    fn fill_and_probe() {
        let mut c = small();
        assert_eq!(
            c.fill(0x000, Mesi::Exclusive, RevealMask::all_concealed()),
            None
        );
        assert_eq!(c.state_of(0x000), Some(Mesi::Exclusive));
        assert_eq!(c.state_of(0x040), None);
        assert_eq!(c.occupancy(), 1);
    }

    #[test]
    fn sub_line_addresses_hit_same_line() {
        let mut c = small();
        c.fill(0x000, Mesi::Shared, RevealMask::all_concealed());
        assert_eq!(c.state_of(0x038), Some(Mesi::Shared));
    }

    #[test]
    fn lru_evicts_least_recently_touched() {
        let mut c = small();
        // Set 0 holds lines 0x000, 0x080, 0x100 (stride = 2 sets * 64).
        c.fill(0x000, Mesi::Shared, RevealMask::all_concealed());
        c.fill(0x080, Mesi::Shared, RevealMask::all_concealed());
        c.touch(0x000); // make 0x080 the LRU
        let ev = c
            .fill(0x100, Mesi::Shared, RevealMask::all_concealed())
            .unwrap();
        assert_eq!(ev.addr, 0x080);
        assert_eq!(c.state_of(0x000), Some(Mesi::Shared));
        assert_eq!(c.state_of(0x100), Some(Mesi::Shared));
    }

    #[test]
    fn eviction_carries_state_and_mask() {
        let mut c = small();
        let mut m = RevealMask::all_concealed();
        m.reveal(3);
        c.fill(0x000, Mesi::Modified, m);
        c.fill(0x080, Mesi::Shared, RevealMask::all_concealed());
        let ev = c
            .fill(0x100, Mesi::Shared, RevealMask::all_concealed())
            .unwrap();
        assert_eq!(
            ev,
            Evicted {
                addr: 0x000,
                state: Mesi::Modified,
                mask: m
            }
        );
    }

    #[test]
    fn refill_updates_in_place() {
        let mut c = small();
        c.fill(0x000, Mesi::Shared, RevealMask::all_concealed());
        assert_eq!(
            c.fill(0x000, Mesi::Modified, RevealMask::all_revealed()),
            None
        );
        assert_eq!(c.state_of(0x000), Some(Mesi::Modified));
        assert_eq!(c.mask_of(0x000), Some(RevealMask::all_revealed()));
        assert_eq!(c.occupancy(), 1);
    }

    #[test]
    fn invalidate_removes_and_returns() {
        let mut c = small();
        c.fill(0x000, Mesi::Modified, RevealMask::all_revealed());
        let (st, mask) = c.invalidate(0x000).unwrap();
        assert_eq!(st, Mesi::Modified);
        assert_eq!(mask, RevealMask::all_revealed());
        assert_eq!(c.state_of(0x000), None);
        assert_eq!(c.invalidate(0x000), None);
    }

    #[test]
    fn update_mask_mutates() {
        let mut c = small();
        c.fill(0x000, Mesi::Modified, RevealMask::all_concealed());
        assert!(c.update_mask(0x000, |m| m.reveal(5)));
        assert!(c.mask_of(0x000).unwrap().is_revealed(5));
        assert!(!c.update_mask(0x040, |m| m.reveal(1)), "absent line");
    }

    #[test]
    fn or_mask_merges_via_packed_path() {
        let mut c = small();
        c.fill(0x000, Mesi::Modified, RevealMask::from_bits(0b0001));
        assert!(c.or_mask(0x000, RevealMask::from_bits(0b1010)));
        assert_eq!(c.mask_of(0x000), Some(RevealMask::from_bits(0b1011)));
        assert!(!c.or_mask(0x040, RevealMask::all_revealed()), "absent line");
    }

    #[test]
    fn revealed_words_counts_only_resident_lines() {
        let mut c = small();
        c.fill(0x000, Mesi::Modified, RevealMask::from_bits(0b0111));
        c.fill(0x040, Mesi::Shared, RevealMask::from_bits(0b1000));
        assert_eq!(c.revealed_words(), 4);
        c.invalidate(0x000);
        assert_eq!(c.revealed_words(), 1, "invalidated slot is concealed");
        // Evicting 0x040 (set 1, along with 0x0C0 and 0x140) must drop
        // its bits from the packed count as the victim leaves.
        c.fill(0x0C0, Mesi::Shared, RevealMask::all_concealed());
        let ev = c
            .fill(0x140, Mesi::Shared, RevealMask::all_concealed())
            .unwrap();
        assert_eq!(ev.addr, 0x040);
        assert_eq!(c.revealed_words(), 0);
    }

    #[test]
    fn iter_lines_lists_valid() {
        let mut c = small();
        c.fill(0x000, Mesi::Shared, RevealMask::all_concealed());
        c.fill(0x040, Mesi::Modified, RevealMask::all_concealed());
        let mut lines: Vec<_> = c.iter_lines().map(|(a, s, _)| (a, s)).collect();
        lines.sort();
        assert_eq!(lines, vec![(0x000, Mesi::Shared), (0x040, Mesi::Modified)]);
    }

    #[test]
    fn snapshot_round_trips_masks_in_packed_store() {
        let mut c = small();
        c.fill(0x000, Mesi::Modified, RevealMask::from_bits(0b0101));
        c.fill(0x080, Mesi::Shared, RevealMask::from_bits(0b0010));
        c.invalidate(0x080);
        let mut w = SnapWriter::new();
        c.save_snap(&mut w);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        let back = CacheArray::load_snap(c.geometry(), &mut r).unwrap();
        assert_eq!(back.mask_of(0x000), Some(RevealMask::from_bits(0b0101)));
        assert_eq!(back.occupancy(), 1);
        assert_eq!(back.revealed_words(), 2);
    }
}

//! Generic set-associative cache array with LRU replacement.
//!
//! The array stores coherence metadata (tag, MESI state) plus the ReCon
//! [`RevealMask`]. Data values are *not* stored: the reproduction is a
//! timing-directed model where architectural data lives in a flat
//! functional memory (see `recon-sim`), as in many timing simulators.

use recon::RevealMask;
use recon_isa::snap::{SnapError, SnapReader, SnapWriter};

use crate::geometry::CacheGeometry;
use crate::mesi::Mesi;

/// One way of one set.
#[derive(Clone, Copy, Debug, Default)]
struct Way {
    valid: bool,
    tag: u64,
    state: Mesi,
    mask: RevealMask,
    last_use: u64,
}

/// A line evicted by [`CacheArray::fill`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Evicted {
    /// Line base address of the victim.
    pub addr: u64,
    /// Its MESI state at eviction.
    pub state: Mesi,
    /// Its reveal mask at eviction (to be merged or written back).
    pub mask: RevealMask,
}

/// Set-associative array of coherence + reveal metadata.
///
/// ```
/// use recon_mem::{CacheArray, CacheGeometry, Mesi};
/// use recon::RevealMask;
///
/// let mut c = CacheArray::new(CacheGeometry::new(1024, 2));
/// assert!(c.state_of(0x0).is_none());
/// c.fill(0x0, Mesi::Shared, RevealMask::all_concealed());
/// assert_eq!(c.state_of(0x0), Some(Mesi::Shared));
/// ```
#[derive(Clone, Debug)]
pub struct CacheArray {
    geom: CacheGeometry,
    sets: Vec<Vec<Way>>,
    tick: u64,
}

impl CacheArray {
    /// Creates an empty array with the given geometry.
    #[must_use]
    pub fn new(geom: CacheGeometry) -> Self {
        let sets = vec![vec![Way::default(); geom.ways()]; geom.num_sets()];
        CacheArray {
            geom,
            sets,
            tick: 0,
        }
    }

    /// The array's geometry.
    #[must_use]
    pub fn geometry(&self) -> CacheGeometry {
        self.geom
    }

    fn find(&self, addr: u64) -> Option<(usize, usize)> {
        let (set, tag) = self.geom.slice(addr);
        self.sets[set]
            .iter()
            .position(|w| w.valid && w.tag == tag)
            .map(|way| (set, way))
    }

    /// The MESI state of the line containing `addr`, if present.
    #[must_use]
    pub fn state_of(&self, addr: u64) -> Option<Mesi> {
        self.find(addr).map(|(s, w)| self.sets[s][w].state)
    }

    /// The reveal mask of the line containing `addr`, if present.
    #[must_use]
    pub fn mask_of(&self, addr: u64) -> Option<RevealMask> {
        self.find(addr).map(|(s, w)| self.sets[s][w].mask)
    }

    /// Looks up the line and refreshes its LRU position. Returns
    /// `(state, mask)` on hit.
    pub fn touch(&mut self, addr: u64) -> Option<(Mesi, RevealMask)> {
        let (s, w) = self.find(addr)?;
        self.tick += 1;
        self.sets[s][w].last_use = self.tick;
        Some((self.sets[s][w].state, self.sets[s][w].mask))
    }

    /// Changes the state of a present line. Returns `false` if absent.
    pub fn set_state(&mut self, addr: u64, state: Mesi) -> bool {
        match self.find(addr) {
            Some((s, w)) => {
                self.sets[s][w].state = state;
                true
            }
            None => false,
        }
    }

    /// Replaces the mask of a present line. Returns `false` if absent.
    pub fn set_mask(&mut self, addr: u64, mask: RevealMask) -> bool {
        match self.find(addr) {
            Some((s, w)) => {
                self.sets[s][w].mask = mask;
                true
            }
            None => false,
        }
    }

    /// Applies `f` to the mask of a present line. Returns `false` if
    /// absent.
    pub fn update_mask(&mut self, addr: u64, f: impl FnOnce(&mut RevealMask)) -> bool {
        match self.find(addr) {
            Some((s, w)) => {
                f(&mut self.sets[s][w].mask);
                true
            }
            None => false,
        }
    }

    /// Inserts a line, evicting the LRU victim if the set is full.
    ///
    /// The caller handles the returned victim (writeback / directory
    /// notification / mask merge). Filling an already-present line just
    /// updates its state and mask.
    pub fn fill(&mut self, addr: u64, state: Mesi, mask: RevealMask) -> Option<Evicted> {
        debug_assert!(state.readable(), "filling an Invalid line is meaningless");
        self.tick += 1;
        let tick = self.tick;
        if let Some((s, w)) = self.find(addr) {
            let way = &mut self.sets[s][w];
            way.state = state;
            way.mask = mask;
            way.last_use = tick;
            return None;
        }
        let (set, tag) = self.geom.slice(addr);
        let ways = &mut self.sets[set];
        let slot = if let Some(i) = ways.iter().position(|w| !w.valid) {
            i
        } else {
            // LRU victim.
            ways.iter()
                .enumerate()
                .min_by_key(|(_, w)| w.last_use)
                .map(|(i, _)| i)
                .expect("associativity is positive")
        };
        let victim = &ways[slot];
        let evicted = victim.valid.then(|| Evicted {
            addr: self.geom.unslice(set, victim.tag),
            state: victim.state,
            mask: victim.mask,
        });
        ways[slot] = Way {
            valid: true,
            tag,
            state,
            mask,
            last_use: tick,
        };
        evicted
    }

    /// Removes a line, returning its `(state, mask)` if it was present.
    pub fn invalidate(&mut self, addr: u64) -> Option<(Mesi, RevealMask)> {
        let (s, w) = self.find(addr)?;
        let way = &mut self.sets[s][w];
        way.valid = false;
        Some((way.state, way.mask))
    }

    /// Number of valid lines (for tests and occupancy stats).
    #[must_use]
    pub fn occupancy(&self) -> usize {
        self.sets.iter().flatten().filter(|w| w.valid).count()
    }

    /// Iterates over `(line_addr, state, mask)` of every valid line.
    pub fn iter_lines(&self) -> impl Iterator<Item = (u64, Mesi, RevealMask)> + '_ {
        self.sets.iter().enumerate().flat_map(move |(set, ways)| {
            ways.iter()
                .filter(|w| w.valid)
                .map(move |w| (self.geom.unslice(set, w.tag), w.state, w.mask))
        })
    }

    /// Serializes every way of every set in array order, including LRU
    /// timestamps, so replacement decisions replay identically after a
    /// restore. Geometry is *not* stored — it is re-derived from the
    /// run configuration and validated by the caller.
    pub fn save_snap(&self, w: &mut SnapWriter) {
        w.tag(b"CARR");
        w.u64(self.tick);
        w.u32(self.sets.len() as u32);
        w.u32(self.geom.ways() as u32);
        for ways in &self.sets {
            for way in ways {
                w.bool(way.valid);
                w.u64(way.tag);
                w.u8(mesi_to_u8(way.state));
                w.u8(way.mask.bits());
                w.u64(way.last_use);
            }
        }
    }

    /// Reconstructs an array from [`CacheArray::save_snap`] bytes into
    /// a freshly built array of geometry `geom`.
    ///
    /// # Errors
    ///
    /// Fails if the stored dimensions disagree with `geom` (the run was
    /// checkpointed under a different cache configuration) or the
    /// stream is corrupt.
    pub fn load_snap(geom: CacheGeometry, r: &mut SnapReader<'_>) -> Result<CacheArray, SnapError> {
        r.expect_tag(b"CARR")?;
        let tick = r.u64()?;
        let num_sets = r.u32()? as usize;
        let num_ways = r.u32()? as usize;
        if num_sets != geom.num_sets() || num_ways != geom.ways() {
            return Err(SnapError {
                what: format!(
                    "cache dimensions {num_sets}x{num_ways} do not match configured {}x{}",
                    geom.num_sets(),
                    geom.ways()
                ),
                offset: r.offset(),
            });
        }
        let mut sets = Vec::with_capacity(num_sets);
        for _ in 0..num_sets {
            let mut ways = Vec::with_capacity(num_ways);
            for _ in 0..num_ways {
                ways.push(Way {
                    valid: r.bool()?,
                    tag: r.u64()?,
                    state: mesi_from_u8(r.u8()?, r)?,
                    mask: RevealMask::from_bits(r.u8()?),
                    last_use: r.u64()?,
                });
            }
            sets.push(ways);
        }
        Ok(CacheArray { geom, sets, tick })
    }
}

/// Stable byte encoding of a [`Mesi`] state for snapshots.
pub(crate) fn mesi_to_u8(m: Mesi) -> u8 {
    match m {
        Mesi::Invalid => 0,
        Mesi::Shared => 1,
        Mesi::Exclusive => 2,
        Mesi::Modified => 3,
    }
}

/// Inverse of [`mesi_to_u8`], failing on unknown bytes.
pub(crate) fn mesi_from_u8(b: u8, r: &SnapReader<'_>) -> Result<Mesi, SnapError> {
    Ok(match b {
        0 => Mesi::Invalid,
        1 => Mesi::Shared,
        2 => Mesi::Exclusive,
        3 => Mesi::Modified,
        other => {
            return Err(SnapError {
                what: format!("invalid MESI byte {other:#x}"),
                offset: r.offset(),
            })
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CacheArray {
        // 2 sets, 2 ways, 64B lines = 256 B.
        CacheArray::new(CacheGeometry::new(256, 2))
    }

    #[test]
    fn fill_and_probe() {
        let mut c = small();
        assert_eq!(
            c.fill(0x000, Mesi::Exclusive, RevealMask::all_concealed()),
            None
        );
        assert_eq!(c.state_of(0x000), Some(Mesi::Exclusive));
        assert_eq!(c.state_of(0x040), None);
        assert_eq!(c.occupancy(), 1);
    }

    #[test]
    fn sub_line_addresses_hit_same_line() {
        let mut c = small();
        c.fill(0x000, Mesi::Shared, RevealMask::all_concealed());
        assert_eq!(c.state_of(0x038), Some(Mesi::Shared));
    }

    #[test]
    fn lru_evicts_least_recently_touched() {
        let mut c = small();
        // Set 0 holds lines 0x000, 0x080, 0x100 (stride = 2 sets * 64).
        c.fill(0x000, Mesi::Shared, RevealMask::all_concealed());
        c.fill(0x080, Mesi::Shared, RevealMask::all_concealed());
        c.touch(0x000); // make 0x080 the LRU
        let ev = c
            .fill(0x100, Mesi::Shared, RevealMask::all_concealed())
            .unwrap();
        assert_eq!(ev.addr, 0x080);
        assert_eq!(c.state_of(0x000), Some(Mesi::Shared));
        assert_eq!(c.state_of(0x100), Some(Mesi::Shared));
    }

    #[test]
    fn eviction_carries_state_and_mask() {
        let mut c = small();
        let mut m = RevealMask::all_concealed();
        m.reveal(3);
        c.fill(0x000, Mesi::Modified, m);
        c.fill(0x080, Mesi::Shared, RevealMask::all_concealed());
        let ev = c
            .fill(0x100, Mesi::Shared, RevealMask::all_concealed())
            .unwrap();
        assert_eq!(
            ev,
            Evicted {
                addr: 0x000,
                state: Mesi::Modified,
                mask: m
            }
        );
    }

    #[test]
    fn refill_updates_in_place() {
        let mut c = small();
        c.fill(0x000, Mesi::Shared, RevealMask::all_concealed());
        assert_eq!(
            c.fill(0x000, Mesi::Modified, RevealMask::all_revealed()),
            None
        );
        assert_eq!(c.state_of(0x000), Some(Mesi::Modified));
        assert_eq!(c.mask_of(0x000), Some(RevealMask::all_revealed()));
        assert_eq!(c.occupancy(), 1);
    }

    #[test]
    fn invalidate_removes_and_returns() {
        let mut c = small();
        c.fill(0x000, Mesi::Modified, RevealMask::all_revealed());
        let (st, mask) = c.invalidate(0x000).unwrap();
        assert_eq!(st, Mesi::Modified);
        assert_eq!(mask, RevealMask::all_revealed());
        assert_eq!(c.state_of(0x000), None);
        assert_eq!(c.invalidate(0x000), None);
    }

    #[test]
    fn update_mask_mutates() {
        let mut c = small();
        c.fill(0x000, Mesi::Modified, RevealMask::all_concealed());
        assert!(c.update_mask(0x000, |m| m.reveal(5)));
        assert!(c.mask_of(0x000).unwrap().is_revealed(5));
        assert!(!c.update_mask(0x040, |m| m.reveal(1)), "absent line");
    }

    #[test]
    fn iter_lines_lists_valid() {
        let mut c = small();
        c.fill(0x000, Mesi::Shared, RevealMask::all_concealed());
        c.fill(0x040, Mesi::Modified, RevealMask::all_concealed());
        let mut lines: Vec<_> = c.iter_lines().map(|(a, s, _)| (a, s)).collect();
        lines.sort();
        assert_eq!(lines, vec![(0x000, Mesi::Shared), (0x040, Mesi::Modified)]);
    }
}

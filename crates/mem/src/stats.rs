//! Memory-system statistics.

/// Counters accumulated by the memory system. All counters are
/// monotonically increasing; snapshot and subtract for intervals.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct MemStats {
    /// Demand loads that hit in the L1.
    pub l1_hits: u64,
    /// Demand loads that missed the L1 and hit the L2.
    pub l2_hits: u64,
    /// Loads that missed the private levels and hit the LLC (including
    /// remote forwards).
    pub llc_hits: u64,
    /// Loads served from memory.
    pub mem_fetches: u64,
    /// Stores performed.
    pub stores_performed: u64,
    /// Ownership transactions (GetM with other holders present).
    pub upgrades: u64,
    /// Cache-to-cache forwards from a remote Modified/Exclusive owner.
    pub remote_forwards: u64,
    /// Invalidation messages sent to sharers.
    pub invalidations: u64,

    // ---- ReCon metadata traffic ----------------------------------------
    /// Reveal requests that set a bit somewhere in the hierarchy.
    pub reveals_set: u64,
    /// Reveal requests dropped (line not present at any covered level).
    pub reveals_dropped: u64,
    /// Words concealed by performed stores.
    pub conceals: u64,
    /// Loads whose word was revealed at the level that served them.
    pub revealed_loads: u64,
    /// Reveal bits lost when an invalidated reader dropped its mask.
    pub mask_bits_lost_inval: u64,
    /// Reveal bits lost because a level below was not covered (Figure 10
    /// ablation) or the line left the hierarchy.
    pub mask_bits_lost_evict: u64,
    /// Mask merges (OR) performed on evictions/downgrades.
    pub mask_merges: u64,
}

impl MemStats {
    /// Total demand loads observed.
    #[must_use]
    pub fn total_loads(&self) -> u64 {
        self.l1_hits + self.l2_hits + self.llc_hits + self.mem_fetches
    }

    /// L1 load hit rate in 0..=1 (0 when no loads).
    #[must_use]
    pub fn l1_hit_rate(&self) -> f64 {
        let total = self.total_loads();
        if total == 0 {
            0.0
        } else {
            self.l1_hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_zero_when_empty() {
        assert_eq!(MemStats::default().l1_hit_rate(), 0.0);
    }

    #[test]
    fn hit_rate_computes() {
        let s = MemStats {
            l1_hits: 3,
            l2_hits: 1,
            ..MemStats::default()
        };
        assert_eq!(s.total_loads(), 4);
        assert!((s.l1_hit_rate() - 0.75).abs() < 1e-12);
    }
}
